"""Tests for the statistical helpers."""

from __future__ import annotations

import statistics

import pytest

from repro.analysis.stats import (
    bootstrap_ci,
    geometric_tail_fit,
    success_rate_ci,
    tail_probability,
)
from repro.scheduler.rng import make_rng


class TestBootstrap:
    def test_ci_brackets_true_median(self):
        rng = make_rng(1)
        samples = [rng.gauss(100, 10) for _ in range(200)]
        ci = bootstrap_ci(samples, rng=make_rng(2))
        assert ci.low <= ci.point <= ci.high
        assert ci.contains(statistics.median(samples))
        assert ci.width < 10  # tight for 200 samples

    def test_degenerate_sample(self):
        ci = bootstrap_ci([5.0], resamples=50, rng=make_rng(0))
        assert ci.point == ci.low == ci.high == 5.0

    def test_custom_statistic(self):
        ci = bootstrap_ci([1.0, 2.0, 3.0], statistic=max, resamples=100, rng=make_rng(0))
        assert ci.point == 3.0

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_deterministic_given_rng(self):
        samples = list(range(50))
        a = bootstrap_ci(samples, rng=make_rng(7))
        b = bootstrap_ci(samples, rng=make_rng(7))
        assert (a.low, a.high) == (b.low, b.high)


class TestTailProbability:
    def test_counts_exceedances(self):
        assert tail_probability([1, 2, 3, 10], threshold=5) == 0.25

    def test_rule_of_three_when_clean(self):
        assert tail_probability([1.0] * 300, threshold=5) == pytest.approx(0.01)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tail_probability([], 1)


class TestGeometricTail:
    def test_exponential_tail_recovered(self):
        rng = make_rng(3)
        samples = [rng.expovariate(1 / 50.0) for _ in range(3000)]
        t0, tau = geometric_tail_fit(samples, quantile=0.5)
        # Memorylessness: residual mean beyond any threshold stays ≈ 50.
        assert tau == pytest.approx(50.0, rel=0.15)

    def test_constant_samples_zero_tail(self):
        t0, tau = geometric_tail_fit([7.0, 7.0, 7.0])
        assert t0 == 7.0
        assert tau == 0.0

    def test_validates(self):
        with pytest.raises(ValueError):
            geometric_tail_fit([])
        with pytest.raises(ValueError):
            geometric_tail_fit([1.0], quantile=1.0)


class TestWilson:
    def test_perfect_success_has_sub_one_lower_bound(self):
        ci = success_rate_ci(20, 20)
        assert ci.point == 1.0
        assert 0.8 < ci.low < 1.0
        assert ci.high == 1.0

    def test_symmetric_at_half(self):
        ci = success_rate_ci(50, 100)
        assert ci.point == 0.5
        assert ci.low == pytest.approx(1 - ci.high, abs=1e-9)

    def test_zero_successes(self):
        ci = success_rate_ci(0, 30)
        assert ci.low == 0.0
        assert 0 < ci.high < 0.25

    def test_validates(self):
        with pytest.raises(ValueError):
            success_rate_ci(1, 0)
        with pytest.raises(ValueError):
            success_rate_ci(5, 3)
        with pytest.raises(ValueError):
            success_rate_ci(1, 2, confidence=0.5)

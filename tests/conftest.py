"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.elect_leader import ElectLeader
from repro.core.params import BaselineParams, ProtocolParams
from repro.core.partition import RankPartition
from repro.scheduler.rng import make_rng


@pytest.fixture
def rng():
    return make_rng(12345)


@pytest.fixture
def small_params() -> ProtocolParams:
    """A small, fast parametrization used across unit tests."""
    return ProtocolParams(n=12, r=3)


@pytest.fixture
def small_partition(small_params: ProtocolParams) -> RankPartition:
    return RankPartition(small_params.n, small_params.r)


@pytest.fixture
def small_protocol(small_params: ProtocolParams) -> ElectLeader:
    return ElectLeader(small_params)


@pytest.fixture
def medium_params() -> ProtocolParams:
    return ProtocolParams(n=24, r=4)


@pytest.fixture
def medium_protocol(medium_params: ProtocolParams) -> ElectLeader:
    return ElectLeader(medium_params)


@pytest.fixture
def baseline_params() -> BaselineParams:
    return BaselineParams(n=16)

"""Property-based tests for ``AssignRanks_r`` invariants (Observation D.1).

The correctness proof of Lemma D.1 rests on a handful of execution
invariants stated as Observation D.1; these tests check them along random
executions from clean starts:

(a/b/c) channel entries only grow, and only a deputy's labeling grows the
        maximum of its own channel entry;
(d/e)   badge intervals held by sheriffs/deputies stay disjoint and their
        union is exactly the badges issued so far;
plus: deputy ids unique, counters within pool bounds, labels unique.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assign_ranks import AssignRanksProtocol
from repro.core.params import ProtocolParams
from repro.core.state import ARPhase, ARState
from repro.scheduler.rng import make_rng


def run_with_invariant_checks(n: int, r: int, seed: int, steps: int) -> None:
    from hypothesis import assume

    params = ProtocolParams(n=n, r=r)
    protocol = AssignRanksProtocol(params)
    config = [protocol.initial_state() for _ in range(n)]
    rng = make_rng(seed)
    schedule_rng = make_rng(seed ^ 0x5A5A5A)
    previous_max_channel = [0] * r

    for step in range(steps):
        i = schedule_rng.randrange(n)
        j = schedule_rng.randrange(n - 1)
        if j >= i:
            j += 1
        protocol.transition(config[i], config[j], rng)
        # The Observation D.1 invariants are conditional on FastLeaderElect
        # electing a unique winner; the winner's leader_bit persists across
        # phase changes, so a failed election is directly observable.
        # Discard (don't fail) such executions — they are the protocol's
        # designed w.h.p. failure path, caught later by verification.
        winners = sum(1 for s in config if s.leader_bit)
        assume(winners <= 1)
        _check_invariants(config, params, previous_max_channel, step)


def _check_invariants(
    config: list[ARState],
    params: ProtocolParams,
    previous_max_channel: list[int],
    step: int,
) -> None:
    r = params.r
    # Badge intervals disjoint across all sheriffs; deputy ids unique.
    intervals = []
    deputy_ids = []
    labels = []
    for state in config:
        if state.phase is ARPhase.SHERIFF:
            assert 1 <= state.low_badge <= state.high_badge <= r, (step, state)
            intervals.append((state.low_badge, state.high_badge))
        elif state.phase is ARPhase.DEPUTY:
            assert 1 <= state.deputy_id <= r
            assert 1 <= state.counter <= params.labels_per_deputy
            deputy_ids.append(state.deputy_id)
            labels.append((state.deputy_id, 1))
        elif state.phase in (ARPhase.RECIPIENT, ARPhase.SLEEPER):
            if state.label is not None:
                labels.append(state.label)
    # Disjointness of badge intervals and deputy ids (Obs. D.1(d/e)).
    occupied: set[int] = set()
    for low, high in intervals:
        badge_range = set(range(low, high + 1))
        assert not (occupied & badge_range), (step, intervals)
        occupied |= badge_range
    assert len(deputy_ids) == len(set(deputy_ids)), (step, deputy_ids)
    assert not (occupied & set(deputy_ids)), (step, intervals, deputy_ids)
    # Labels unique across the population (safety of the label pools).
    assert len(labels) == len(set(labels)), (step, sorted(labels))
    # Channel maxima are monotone (Obs. D.1(c): they only grow) — until
    # agents rank and legitimately discard their channel fields, after
    # which the population-wide maximum may shed information.
    if not any(s.phase is ARPhase.RANKED for s in config):
        for index in range(r):
            current = max(
                (s.channel[index] for s in config if len(s.channel) == r), default=0
            )
            assert current >= previous_max_channel[index], (step, index)
            previous_max_channel[index] = max(previous_max_channel[index], current)
    # No channel value may exceed the pool size.
    for state in config:
        for value in state.channel:
            assert 0 <= value <= params.labels_per_deputy


class TestObservationD1:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_invariants_hold_r4(self, seed):
        run_with_invariant_checks(n=16, r=4, seed=seed, steps=1_500)

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=6, deadline=None)
    def test_invariants_hold_r1(self, seed):
        run_with_invariant_checks(n=10, r=1, seed=seed, steps=1_000)

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=6, deadline=None)
    def test_invariants_hold_r_half_n(self, seed):
        run_with_invariant_checks(n=12, r=6, seed=seed, steps=1_500)

    def test_ranked_agents_never_change(self):
        """Silence: once RANKED, an AR state is frozen (Lemma D.1)."""
        params = ProtocolParams(n=12, r=3)
        protocol = AssignRanksProtocol(params)
        config = [protocol.initial_state() for _ in range(12)]
        rng = make_rng(3)
        schedule_rng = make_rng(4)
        frozen: dict[int, int] = {}
        for _ in range(30_000):
            i = schedule_rng.randrange(12)
            j = schedule_rng.randrange(11)
            if j >= i:
                j += 1
            protocol.transition(config[i], config[j], rng)
            for index in (i, j):
                state = config[index]
                if state.phase is ARPhase.RANKED:
                    if index in frozen:
                        assert frozen[index] == state.rank
                    frozen[index] = state.rank
        assert frozen, "no agent ever ranked"

"""Tests for the fault injector and availability measurement."""

from __future__ import annotations

import pytest

from repro.adversary.initializers import (
    correct_verifier_configuration,
    single_agent_scrambler,
)
from repro.baselines.nonss_leader import PairwiseElimination
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.scheduler.rng import make_rng
from repro.sim.faults import FaultEvent, FaultInjector, measure_availability
from repro.sim.simulation import Simulation


@pytest.fixture
def protocol() -> ElectLeader:
    return ElectLeader(ProtocolParams(n=16, r=4))


class ScriptedInjector:
    """Injector-shaped test double: burst bookkeeping at fixed interactions,
    no corruption — so repair-time accounting can be checked exactly."""

    def __init__(self, burst_interactions):
        self.events = []
        self._script = sorted(burst_interactions)

    def observe(self, sim, i, j):
        while self._script and sim.metrics.interactions >= self._script[0]:
            self.events.append(FaultEvent(self._script.pop(0), []))


class TestFaultInjector:
    def test_rejects_bad_parameters(self, protocol):
        corrupt = single_agent_scrambler(protocol)
        with pytest.raises(ValueError):
            FaultInjector(corrupt, rate=0, burst_size=1, rng=make_rng(0))
        with pytest.raises(ValueError):
            FaultInjector(corrupt, rate=1.0, burst_size=0, rng=make_rng(0))

    def test_bursts_arrive_at_roughly_the_requested_rate(self, protocol):
        corrupt = single_agent_scrambler(protocol)
        injector = FaultInjector(corrupt, rate=0.01, burst_size=1, rng=make_rng(1))
        sim = Simulation(protocol, config=correct_verifier_configuration(protocol), seed=2)
        sim.observers.append(injector.observe)
        sim.run(80_000)  # 5000 parallel time → expect ~50 bursts at rate 0.01
        assert 20 <= len(injector.events) <= 100

    def test_burst_corrupts_requested_number_of_agents(self, protocol):
        corrupt = single_agent_scrambler(protocol)
        injector = FaultInjector(corrupt, rate=1.0, burst_size=3, rng=make_rng(3))
        sim = Simulation(protocol, config=correct_verifier_configuration(protocol), seed=4)
        sim.observers.append(injector.observe)
        sim.run(200)
        assert injector.events
        assert all(len(event.agents) == 3 for event in injector.events)

    def test_corrupted_states_remain_well_formed(self, protocol):
        corrupt = single_agent_scrambler(protocol)
        injector = FaultInjector(corrupt, rate=0.5, burst_size=2, rng=make_rng(5))
        sim = Simulation(protocol, config=correct_verifier_configuration(protocol), seed=6)
        sim.observers.append(injector.observe)
        sim.run(2_000)
        assert injector.events
        assert all(agent.consistent() for agent in sim.config)


class TestAvailability:
    def test_low_fault_rate_high_availability(self, protocol):
        corrupt = single_agent_scrambler(protocol)
        injector = FaultInjector(corrupt, rate=0.002, burst_size=1, rng=make_rng(7))
        report = measure_availability(
            protocol,
            lambda config: protocol.leader_count(config) == 1,
            injector,
            n=16,
            seed=8,
            total_interactions=60_000,
            checkpoint_every=500,
            config=correct_verifier_configuration(protocol),
        )
        assert report.checkpoints == 120
        assert report.availability > 0.7

    def test_availability_decreases_with_fault_rate(self, protocol):
        corrupt = single_agent_scrambler(protocol)
        availabilities = []
        for rate, seed in ((0.001, 10), (0.3, 11)):
            injector = FaultInjector(corrupt, rate=rate, burst_size=2, rng=make_rng(seed))
            report = measure_availability(
                protocol,
                lambda config: protocol.leader_count(config) == 1,
                injector,
                n=16,
                seed=seed + 1,
                total_interactions=60_000,
                checkpoint_every=500,
                config=correct_verifier_configuration(protocol),
            )
            availabilities.append(report.availability)
        assert availabilities[0] > availabilities[1]

    def test_one_repair_sample_per_burst(self):
        # Regression: the checkpoint loop used to overwrite its pending
        # burst with the *latest* one, so of several bursts landing before
        # a correct checkpoint only the last produced a repair sample and
        # earlier bursts were silently dropped.  The docstring contract is
        # one sample per burst, measured to the first correct checkpoint.
        protocol = PairwiseElimination(4)
        report = measure_availability(
            protocol,
            lambda config: True,  # every checkpoint is correct
            ScriptedInjector([100, 300]),
            n=4,
            seed=0,
            total_interactions=1_000,
            checkpoint_every=500,
        )
        assert report.fault_bursts == 2
        # Both bursts repair at the checkpoint after interaction 500:
        # 500 - 100 and 500 - 300 — not just the latest burst's 200.
        assert report.repair_times == [400, 200]
        assert report.availability == 1.0

    def test_repair_measured_from_each_bursts_own_checkpoint(self):
        protocol = PairwiseElimination(4)
        report = measure_availability(
            protocol,
            lambda config: True,
            ScriptedInjector([100, 700]),
            n=4,
            seed=0,
            total_interactions=1_000,
            checkpoint_every=500,
        )
        # Bursts in different checkpoint windows repair independently.
        assert report.repair_times == [400, 300]

    def test_repair_times_recorded(self, protocol):
        corrupt = single_agent_scrambler(protocol)
        injector = FaultInjector(corrupt, rate=0.05, burst_size=2, rng=make_rng(12))
        report = measure_availability(
            protocol,
            lambda config: protocol.leader_count(config) == 1,
            injector,
            n=16,
            seed=13,
            total_interactions=100_000,
            checkpoint_every=500,
            config=correct_verifier_configuration(protocol),
        )
        assert report.fault_bursts > 0
        assert report.repair_times, "no repairs were ever observed"
        assert report.median_repair_interactions > 0

"""Tests for the state-space calculators (E1)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.statespace import (
    assign_ranks_bits,
    burman_style_bits,
    cai_izumi_wada_bits,
    comparison_table,
    detect_collision_bits,
    elect_leader_bits,
    elect_leader_report,
    fast_leader_elect_bits,
    log2_add,
    log2_binomial,
    log2_sum,
    propagate_reset_bits,
    sublinear_ssr_quoted_bits,
    sublinear_ssr_quoted_time,
    sublinear_ssr_time_optimal_bits,
    theorem_bound_bits,
    tradeoff_frontier,
)
from repro.core.params import BaselineParams, ProtocolParams


class TestLogHelpers:
    def test_log2_add_exact(self):
        assert log2_add(3.0, 3.0) == pytest.approx(4.0)
        assert log2_add(10.0, 0.0) == pytest.approx(math.log2(1024 + 1))

    def test_log2_add_handles_neg_inf(self):
        assert log2_add(float("-inf"), 5.0) == 5.0

    def test_log2_sum(self):
        assert log2_sum([1.0, 1.0, 1.0, 1.0]) == pytest.approx(3.0)

    def test_log2_binomial_small_exact(self):
        assert log2_binomial(5, 2) == pytest.approx(math.log2(10), rel=1e-9)

    def test_log2_binomial_out_of_range(self):
        assert log2_binomial(5, 6) == float("-inf")


class TestComponentFormulas:
    def test_propagate_reset_is_theta_log_n(self):
        bits_small = propagate_reset_bits(ProtocolParams(n=64, r=4))
        bits_large = propagate_reset_bits(ProtocolParams(n=4096, r=4))
        # Θ(log n) states → Θ(log log n) bits: tiny growth.
        assert bits_small < bits_large < bits_small + 4

    def test_fast_leader_elect_is_theta_log_n_bits(self):
        bits = fast_leader_elect_bits(ProtocolParams(n=256, r=4))
        assert bits == pytest.approx(6 * math.log2(256), rel=0.2)

    def test_assign_ranks_dominated_by_channel(self):
        """Lemma D.1: 2^{O(r log n)} states — bits scale ~linearly in r
        once the channel term dominates the O(log n) FastLeaderElect part."""
        n = 4096
        b16 = assign_ranks_bits(ProtocolParams(n=n, r=16))
        b64 = assign_ranks_bits(ProtocolParams(n=n, r=64))
        b256 = assign_ranks_bits(ProtocolParams(n=n, r=256))
        assert b16 < b64 < b256
        # Quadrupling r should roughly quadruple the channel bits (within
        # log-factor slack from the shrinking per-deputy pool).
        assert 2 < (b256 - b64) / (b64 - b16) < 8

    def test_detect_collision_r_squared_log_scaling(self):
        """Fig. 3: 2^{O(r² log r)} — quadrupling r multiplies bits ~16×·log-factor."""
        params8 = ProtocolParams(n=1024, r=8)
        params32 = ProtocolParams(n=1024, r=32)
        b8 = detect_collision_bits(params8, 8)
        b32 = detect_collision_bits(params32, 32)
        ratio = b32 / b8
        assert 10 < ratio < 40  # 16 × (log 32 / log 8) ≈ 27 with slack

    def test_verifier_dominates_total(self):
        report = elect_leader_report(ProtocolParams(n=64, r=8))
        assert report.total_bits == pytest.approx(report.verifier_bits, rel=0.01)
        assert report.verifier_bits > report.ranker_bits > report.resetter_bits


class TestTheoremEnvelope:
    @pytest.mark.parametrize("n", [32, 128, 512, 2048])
    def test_total_bits_within_r2_log_n_envelope(self, n):
        """Theorem 1.1: bit complexity O(r² log n), across the r range."""
        for r in (1, 2, max(2, n // 32), n // 2):
            bits = elect_leader_bits(n, r)
            envelope = theorem_bound_bits(n, r, constant=60.0) + 20 * math.log2(n) + 200
            assert bits < envelope, (n, r, bits, envelope)

    def test_bits_increase_with_r(self):
        n = 256
        values = [elect_leader_bits(n, r) for r in (2, 4, 8, 16, 32)]
        assert values == sorted(values)

    def test_bits_grow_slowly_with_n_at_fixed_r(self):
        """At fixed r the bit complexity is O(log n)·poly(r)."""
        b1 = elect_leader_bits(256, 4)
        b2 = elect_leader_bits(4096, 4)
        assert b2 < b1 * 2.0


class TestBaselineFormulas:
    def test_ciw_is_log_n(self):
        assert cai_izumi_wada_bits(1024) == 10.0

    def test_burman_sim_is_theta_n_log_n(self):
        b1 = burman_style_bits(BaselineParams(n=64))
        b2 = burman_style_bits(BaselineParams(n=256))
        ratio = b2 / b1
        predicted = (256 * math.log(256)) / (64 * math.log(64))
        assert abs(ratio - predicted) / predicted < 0.3

    def test_quoted_bits_super_polynomial(self):
        """n^{Θ(log n)} beats any fixed power of n eventually."""
        for n in (64, 256, 1024):
            assert sublinear_ssr_time_optimal_bits(n) > n**3

    def test_quoted_time_decreases_with_h(self):
        times = [sublinear_ssr_quoted_time(1024, H) for H in (1, 2, 4, 7)]
        assert times == sorted(times, reverse=True)

    def test_quoted_bits_increase_with_h(self):
        bits = [sublinear_ssr_quoted_bits(1024, H) for H in (1, 2, 4, 7)]
        assert bits == sorted(bits)

    def test_quoted_bits_validation(self):
        with pytest.raises(ValueError):
            sublinear_ssr_quoted_bits(64, 0)


class TestTables:
    def test_comparison_table_columns(self):
        rows = comparison_table([16, 64])
        assert len(rows) == 2
        assert {"n", "ciw_bits", "burman_sim_bits", "burman_quoted_bits"} <= set(rows[0])

    def test_frontier_headline_crossover(self):
        """The paper's headline: at the time-optimal end, ours needs
        massively fewer bits than the quoted Sublinear-Time-SSR."""
        rows = tradeoff_frontier(1024)
        fastest = min(rows, key=lambda row: row["ours_parallel_time"])
        assert fastest["ours_bits"] < fastest["their_bits_quoted"] / 1e6

    def test_frontier_times_comparable(self):
        """Paired rows match time targets within an order of magnitude."""
        for row in tradeoff_frontier(256):
            ours = row["ours_parallel_time"]
            theirs = row["their_parallel_time"]
            assert theirs <= ours * 10 or ours <= theirs * 10

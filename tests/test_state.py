"""Tests for the agent state containers."""

from __future__ import annotations

from repro.core.roles import (
    Role,
    generation_ahead,
    generation_successor,
    generations_equal,
)
from repro.core.state import (
    TOP,
    AgentState,
    ARPhase,
    ARState,
    DCState,
    PRState,
    SVState,
    Top,
)


class TestTop:
    def test_singleton(self):
        assert Top() is TOP
        assert Top() is Top()

    def test_identity_checks(self):
        state = SVState(dc=TOP)
        assert state.dc is TOP
        assert state.has_error


class TestClones:
    def test_pr_clone_independent(self):
        original = PRState(reset_count=3, delay_timer=5)
        copy = original.clone()
        copy.reset_count = 0
        assert original.reset_count == 3

    def test_ar_clone_independent(self):
        original = ARState(phase=ARPhase.DEPUTY, deputy_id=2, counter=4, channel=(1, 2))
        copy = original.clone()
        copy.counter = 99
        copy.channel = (9, 9)
        assert original.counter == 4
        assert original.channel == (1, 2)

    def test_dc_clone_deep_copies_messages(self):
        original = DCState(signature=7, msgs={1: {1: 7, 2: 7}}, observations=[7, 7])
        copy = original.clone()
        copy.msgs[1][1] = 99
        copy.observations[0] = 99
        assert original.msgs[1][1] == 7
        assert original.observations[0] == 7

    def test_sv_clone_preserves_top(self):
        original = SVState(generation=2, probation_timer=3, dc=TOP)
        copy = original.clone()
        assert copy.dc is TOP
        assert copy.generation == 2

    def test_agent_clone_full_depth(self):
        agent = AgentState(
            role=Role.VERIFYING,
            rank=5,
            sv=SVState(generation=1, probation_timer=2, dc=DCState(observations=[1])),
        )
        copy = agent.clone()
        assert copy.sv is not agent.sv
        copy.sv.dc.observations[0] = 42
        assert agent.sv.dc.observations[0] == 1


class TestConsistency:
    def test_fresh_verifier_consistent(self):
        agent = AgentState(role=Role.VERIFYING, sv=SVState())
        assert agent.consistent()

    def test_role_substate_mismatch(self):
        agent = AgentState(role=Role.VERIFYING, ar=ARState())
        assert not agent.consistent()

    def test_two_substates_inconsistent(self):
        agent = AgentState(role=Role.RANKING, ar=ARState(), sv=SVState())
        assert not agent.consistent()

    def test_resetter_consistent(self):
        agent = AgentState(role=Role.RESETTING, pr=PRState(1, 1))
        assert agent.consistent()


class TestDCStateHelpers:
    def test_held_count(self):
        dc = DCState(msgs={1: {1: 5, 2: 5}, 2: {7: 3}})
        assert dc.held_count() == 3

    def test_holds(self):
        dc = DCState(msgs={1: {1: 5}})
        assert dc.holds(1, 1)
        assert not dc.holds(1, 2)
        assert not dc.holds(2, 1)


class TestPRState:
    def test_dormant_predicate(self):
        assert PRState(reset_count=0, delay_timer=3).dormant
        assert not PRState(reset_count=1, delay_timer=3).dormant


class TestGenerationArithmetic:
    def test_successor_wraps(self):
        assert generation_successor(5, 6) == 0
        assert generation_successor(0, 6) == 1

    def test_ahead_is_plus_one_only(self):
        assert generation_ahead(0, 1)
        assert generation_ahead(5, 0)
        assert not generation_ahead(0, 2)
        assert not generation_ahead(1, 0)
        assert not generation_ahead(3, 3)

    def test_equality_mod(self):
        assert generations_equal(0, 6)
        assert generations_equal(7, 1)
        assert not generations_equal(1, 2)

"""The trial-vectorized batch counts engine (``backend='batch'``).

Contracts gated here:

* a batch of one **is** the per-trial counts engine, bit for bit — clean,
  from an explicit start, and under fault injection — so the whole
  vectorized stack is anchored to the engine the equivalence suite
  already trusts;
* ``run_trials(backend="batch")`` routes through the registry's
  ``trial_runner`` hook and agrees with ``backend="counts"`` exactly at
  one trial;
* structural batch semantics: rows converged at step 0 retire with zero
  interactions and consume no randomness (so a batch's stragglers are
  bit-identical with or without already-converged neighbours), silent
  fault-free rows retire unconverged at the budget, fault bursts never
  land on retired rows, and per-row burst schedules are bit-identical to
  a per-trial :class:`~repro.sim.fault_engine.FaultEngine` under the
  same :class:`~repro.sim.fault_engine.FaultSpec`;
* validation: mixed population sizes are rejected, ``Replicated`` starts
  are batch-engine-only, protocols without a finite encoding fail
  loudly, and an engine drives exactly one workload.

Cross-engine *statistical* agreement at ``T > 1`` (same law, different
stream interleaving) is the E22 benchmark's job.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.baselines.nonss_leader import PairwiseElimination
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.scheduler.rng import derive_seed
from repro.sim.backends import make_simulation
from repro.sim.batch_backend import BatchCountsEngine, run_trial_batch
from repro.sim.counts_backend import (
    CountsBackendError,
    CountsSimulation,
    goal_counts_predicate,
)
from repro.sim.fault_engine import FaultSpec, make_fault_engine
from repro.sim.initial_state import Clean, CountVector, Replicated
from repro.sim.trials import run_trials
from repro.substrates.epidemics import EpidemicProtocol


def epidemic_pred(protocol):
    return goal_counts_predicate(protocol)


def seeded_counts(n: int, sources: int = 1) -> CountVector:
    return CountVector([n - sources, sources])


class TestSingleTrialAnchor:
    """T = 1 delegates to a CountsSimulation with the same seed."""

    def test_clean_run_bit_identical(self):
        protocol = EpidemicProtocol()
        pred = epidemic_pred(protocol)
        init = seeded_counts(48)
        engine = BatchCountsEngine(protocol, init=init, seed=11)
        [row] = engine.run_rows_until(pred, max_interactions=50_000, check_interval=16)
        sim = CountsSimulation(protocol, counts=init.to_counts(protocol), seed=11)
        result = sim.run_until(pred, 50_000, 16)
        assert row.converged == result.converged
        assert row.interactions == result.interactions
        assert np.array_equal(engine.counts[0], sim.counts)

    def test_fault_run_bit_identical(self):
        protocol = EpidemicProtocol()
        pred = epidemic_pred(protocol)
        spec = FaultSpec(model="scramble_burst", rate=2.0, burst_size=3, seed=5)
        engine = BatchCountsEngine(protocol, init=seeded_counts(32), seed=4)
        [row] = engine.run_rows_until(
            pred, max_interactions=2_000, check_interval=8, faults=[spec]
        )
        sim = CountsSimulation(
            protocol, counts=seeded_counts(32).to_counts(protocol), seed=4
        )
        fault_engine = spec.make_engine(protocol, n=32)
        result = fault_engine.run_until(
            sim, pred, max_interactions=2_000, check_interval=8
        )
        assert (row.converged, row.interactions) == (result.converged, result.interactions)
        assert np.array_equal(engine.counts[0], sim.counts)
        assert [e.interaction for e in engine.fault_events(0)] == \
            [e.interaction for e in fault_engine.events]

    def test_availability_report_bit_identical(self):
        protocol = EpidemicProtocol()
        pred = epidemic_pred(protocol)
        spec = FaultSpec(model="scramble_burst", rate=3.0, burst_size=2, seed=9)
        engine = BatchCountsEngine(protocol, init=seeded_counts(32), seed=4)
        [report] = engine.measure_rows_availability(
            pred, total_interactions=1_500, checkpoint_every=25, faults=[spec]
        )
        sim = CountsSimulation(
            protocol, counts=seeded_counts(32).to_counts(protocol), seed=4
        )
        twin = make_fault_engine(
            "scramble_burst", protocol, n=32, rate=3.0, burst_size=2, seed=9
        ).measure_availability(
            sim, pred, total_interactions=1_500, checkpoint_every=25
        )
        assert report == twin

    def test_run_trials_batch_matches_counts_at_one_trial(self):
        protocol = EpidemicProtocol()
        pred = epidemic_pred(protocol)
        kwargs = dict(
            n=40, trials=1, max_interactions=50_000, seed=3, check_interval=16,
            init=seeded_counts(40),
        )
        batch = run_trials(protocol, pred, backend="batch", **kwargs)
        counts = run_trials(protocol, pred, backend="counts", **kwargs)
        assert batch.converged == counts.converged
        assert batch.interactions == counts.interactions
        assert batch.parallel_times == counts.parallel_times


class TestBatchSemantics:
    def test_all_rows_converged_at_step_zero(self):
        protocol = EpidemicProtocol()
        engine = BatchCountsEngine(
            protocol, init=Replicated(CountVector([0, 24]), 3), seed=0
        )
        rows = engine.run_rows_until(
            epidemic_pred(protocol), max_interactions=1_000, check_interval=10
        )
        assert all(r.converged and r.interactions == 0 for r in rows)

    def test_step_zero_retirees_do_not_disturb_stragglers(self):
        # Already-converged rows never consume the shared stream, so a
        # batch's live rows are bit-identical with or without them.
        protocol = EpidemicProtocol()
        pred = epidemic_pred(protocol)
        goal = CountVector([0, 36])
        x, y = seeded_counts(36, 1), seeded_counts(36, 2)
        padded = BatchCountsEngine(
            protocol, init=Replicated((goal, x, goal, y), 4), seed=21
        )
        bare = BatchCountsEngine(protocol, init=Replicated((x, y), 2), seed=21)
        padded_rows = padded.run_rows_until(pred, max_interactions=50_000, check_interval=8)
        bare_rows = bare.run_rows_until(pred, max_interactions=50_000, check_interval=8)
        assert [(r.converged, r.interactions) for r in (padded_rows[1], padded_rows[3])] \
            == [(r.converged, r.interactions) for r in bare_rows]
        assert np.array_equal(padded.counts[[1, 3]], bare.counts)

    def test_silent_faultless_rows_retire_unconverged_at_budget(self):
        # No leaders at all: pairwise elimination is silent and the goal
        # (exactly one L) is unreachable — the per-trial engine would
        # skip-idle to the budget and report exactly this.
        protocol = PairwiseElimination(12)
        pred = goal_counts_predicate(protocol)
        dead = CountVector([12, 0])
        live = CountVector([9, 3])
        engine = BatchCountsEngine(protocol, init=Replicated((dead, live), 2), seed=2)
        rows = engine.run_rows_until(pred, max_interactions=5_000, check_interval=10)
        assert not rows[0].converged and rows[0].interactions == 5_000
        assert rows[1].converged

    def test_bursts_never_fire_on_retired_rows(self):
        protocol = EpidemicProtocol()
        pred = epidemic_pred(protocol)
        # Row 0 starts converged and carries an aggressive fault spec:
        # its per-trial twin stops at the passing step-0 check, so no
        # burst may ever fire there.  Row 1 keeps the batch running.
        faults = [FaultSpec(model="scramble_burst", rate=50.0, seed=7), None]
        engine = BatchCountsEngine(
            protocol,
            init=Replicated((CountVector([0, 20]), seeded_counts(20)), 2),
            seed=13,
        )
        rows = engine.run_rows_until(
            pred, max_interactions=2_000, check_interval=5, faults=faults
        )
        assert rows[0].converged and rows[0].interactions == 0
        assert engine.fault_events(0) == []

    def test_burst_schedule_bit_identical_to_fault_engine(self):
        protocol = EpidemicProtocol()
        pred = epidemic_pred(protocol)
        n = 32
        specs = [
            FaultSpec(model="scramble_burst", rate=4.0, burst_size=2, seed=derive_seed(1, i))
            for i in range(2)
        ]
        engine = BatchCountsEngine(
            protocol, init=Replicated(seeded_counts(n), 2), seed=6
        )
        reports = engine.measure_rows_availability(
            pred, total_interactions=1_000, checkpoint_every=20, faults=specs
        )
        for row, spec in enumerate(specs):
            sim = CountsSimulation(
                protocol, counts=seeded_counts(n).to_counts(protocol), seed=99 + row
            )
            twin = spec.make_engine(protocol, n=n)
            twin.measure_availability(
                sim, pred, total_interactions=1_000, checkpoint_every=20
            )
            # Burst positions are a pure function of the schedule stream
            # (never of the trajectory), hence identical across engines
            # even though the trajectories differ.
            assert [e.interaction for e in engine.fault_events(row)] == \
                [e.interaction for e in twin.events]
            assert reports[row].fault_bursts == len(twin.events)


class TestValidation:
    def test_mixed_population_sizes_rejected(self):
        protocol = EpidemicProtocol()
        with pytest.raises(ValueError, match="same population size"):
            BatchCountsEngine(
                protocol,
                init=Replicated((seeded_counts(8), seeded_counts(10)), 2),
            )

    def test_replicated_is_batch_only(self):
        protocol = EpidemicProtocol()
        with pytest.raises(ValueError, match="batch engines"):
            make_simulation(
                protocol, init=Replicated(seeded_counts(8), 2), backend="counts"
            )

    def test_elect_leader_rejected_loudly(self):
        elect = ElectLeader(ProtocolParams(n=16, r=2))
        with pytest.raises(CountsBackendError, match="batch backend"):
            BatchCountsEngine(elect, n=16)

    def test_engine_drives_exactly_one_workload(self):
        protocol = EpidemicProtocol()
        pred = epidemic_pred(protocol)
        engine = BatchCountsEngine(
            protocol, init=Replicated(seeded_counts(16), 2), seed=0
        )
        engine.run_rows_until(pred, max_interactions=100, check_interval=10)
        with pytest.raises(RuntimeError, match="already been driven"):
            engine.run_rows_until(pred, max_interactions=100, check_interval=10)

    def test_matrix_mode_has_no_single_trial_surface(self):
        protocol = EpidemicProtocol()
        engine = BatchCountsEngine(
            protocol, init=Replicated(seeded_counts(16), 2), seed=0
        )
        with pytest.raises(ValueError, match="no single-trial surface"):
            engine.run_batch(10)

    def test_faults_list_must_match_rows(self):
        protocol = EpidemicProtocol()
        engine = BatchCountsEngine(
            protocol, init=Replicated(seeded_counts(16), 3), seed=0
        )
        with pytest.raises(ValueError, match="per row"):
            engine.run_rows_until(
                epidemic_pred(protocol), max_interactions=100,
                faults=[None],
            )


class TestTrialRunnerHook:
    def test_specs_must_share_the_workload(self):
        from repro.sim.parallel import TrialSpec

        protocol = EpidemicProtocol()
        pred = epidemic_pred(protocol)
        specs = [
            TrialSpec(index=0, protocol=protocol, predicate=pred, seed=1,
                      max_interactions=100, check_interval=1, n=8),
            TrialSpec(index=1, protocol=protocol, predicate=pred, seed=2,
                      max_interactions=200, check_interval=1, n=8),
        ]
        with pytest.raises(ValueError, match="share"):
            run_trial_batch(specs)

    def test_clean_rows_fill_in_for_missing_inits(self):
        from repro.sim.parallel import TrialSpec

        protocol = PairwiseElimination(8)
        pred = goal_counts_predicate(protocol)
        specs = [
            TrialSpec(index=i, protocol=protocol, predicate=pred,
                      seed=derive_seed(0, i), max_interactions=10_000,
                      check_interval=10, n=8)
            for i in range(3)
        ]
        outcomes = run_trial_batch(specs)
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert all(o.converged for o in outcomes)

    def test_batch_backend_summary_matches_trials_statistically(self):
        # T > 1 shares one stream, so values differ from per-trial runs
        # bit-wise but the workload shape must hold: every epidemic
        # completes, with plausible interaction counts.
        protocol = EpidemicProtocol()
        pred = epidemic_pred(protocol)
        summary = run_trials(
            protocol, pred, n=64, trials=16, max_interactions=50_000,
            seed=0, check_interval=16, init=seeded_counts(64), backend="batch",
        )
        assert summary.trials == 16 and summary.converged == 16
        assert all(0 < t <= 50_000 for t in summary.interactions)


class TestStepInstrumentation:
    """The per-step wall-clock breakdown is opt-in and observation-only."""

    def _engine(self, seed: int = 7) -> BatchCountsEngine:
        protocol = EpidemicProtocol()
        return BatchCountsEngine(
            protocol, init=Replicated(seeded_counts(200), 8), seed=seed
        )

    def test_breakdown_covers_every_phase(self):
        engine = self._engine()
        timings = engine.instrument_steps()
        assert set(timings) == set(BatchCountsEngine.STEP_PHASES)
        engine.run_rows_until(
            epidemic_pred(engine.protocol), max_interactions=6_000, check_interval=200
        )
        assert sum(timings.values()) > 0.0
        assert all(seconds >= 0.0 for seconds in timings.values())
        assert engine.step_timings is timings

    def test_instrumented_run_is_bit_identical(self):
        # Timing wraps the existing sections; it must never change the
        # draws.  Same seed, with and without instrumentation, bit-equal.
        plain = self._engine()
        timed = self._engine()
        timed.instrument_steps()
        pred = epidemic_pred(plain.protocol)
        plain_outcomes = plain.run_rows_until(
            pred, max_interactions=6_000, check_interval=200
        )
        timed_outcomes = timed.run_rows_until(
            pred, max_interactions=6_000, check_interval=200
        )
        assert (plain.counts == timed.counts).all()
        assert plain_outcomes == timed_outcomes

"""Tests for the fabric's partition layer and merge validator.

The headline contract: for any grid and any shard count ``k``, the ``k``
shards are a disjoint, covering, order-stable partition of the expanded
trial stream, and merging the ``k`` shard checkpoints reproduces the
unsharded checkpoint byte for byte.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import (
    FabricError,
    format_shard,
    merge_checkpoints,
    parse_shard,
    shard_grid,
)
from repro.sim.sweep import (
    CLEAN,
    GridSpec,
    SweepError,
    expand_grid,
    load_grid_file,
    run_sweep,
    shard_of,
    shard_specs,
    validate_shard,
)


def tiny_grid(**overrides) -> GridSpec:
    """A sub-second grid for shard/merge round-trips."""
    values = dict(
        protocols=("elect_leader",),
        ns=(8, 10),
        rs=(2,),
        adversaries=(CLEAN,),
        fault_rates=(0.0,),
        trials=2,
        seed=7,
        max_interactions=500_000,
        check_interval=500,
    )
    values.update(overrides)
    return GridSpec(**values)


# Grids varied along the axes that change the expansion, not the runtime:
# the partition property never executes a trial.
grids = st.builds(
    tiny_grid,
    protocols=st.sampled_from(
        [("elect_leader",), ("pairwise_elimination",), ("elect_leader", "pairwise_elimination")]
    ),
    ns=st.lists(st.sampled_from([8, 10, 12, 16]), min_size=1, max_size=3, unique=True).map(tuple),
    trials=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31),
)


class TestShardPartition:
    @given(grid=grids, count=st.integers(min_value=1, max_value=7))
    @settings(max_examples=30, deadline=None)
    def test_shards_partition_the_expansion(self, grid, count):
        specs = expand_grid(grid)
        shards = [shard_specs(specs, (index, count)) for index in range(count)]
        # Each shard preserves expansion order...
        for owned in shards:
            indices = [spec.index for spec in owned]
            assert indices == sorted(indices)
        # ...and together they are disjoint and covering.
        flat = sorted(spec.index for owned in shards for spec in owned)
        assert flat == [spec.index for spec in specs]

    @given(grid=grids, count=st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_cell_granular_shards_keep_cells_intact(self, grid, count):
        from repro.sim.sweep import _iter_cells

        specs = expand_grid(grid)
        cell_of = {}
        for cell_id, cell in enumerate(_iter_cells(specs)):
            for spec in cell:
                cell_of[spec.index] = cell_id
        shards = [shard_specs(specs, (index, count), by_cell=True) for index in range(count)]
        flat = sorted(spec.index for owned in shards for spec in owned)
        assert flat == [spec.index for spec in specs]
        # No cell is split across shards.
        for owned in shards:
            for cell_id in {cell_of[spec.index] for spec in owned}:
                members = [index for index, cid in cell_of.items() if cid == cell_id]
                assert all(m in {spec.index for spec in owned} for m in members)

    def test_assignment_is_a_pure_function(self):
        # Same (index, count) -> same shard, regardless of grid or order.
        assert [shard_of(i, 3) for i in range(20)] == [shard_of(i, 3) for i in range(20)]
        assert all(0 <= shard_of(i, 5) < 5 for i in range(100))

    def test_shard_grid_matches_shard_specs(self):
        grid = tiny_grid()
        specs = expand_grid(grid)
        for index in range(3):
            assert shard_grid(grid, index, 3) == shard_specs(specs, (index, 3))

    def test_single_shard_is_the_whole_grid(self):
        grid = tiny_grid()
        assert shard_grid(grid, 0, 1) == expand_grid(grid)


class TestShardSyntax:
    def test_parse_format_round_trip(self):
        assert parse_shard("2/5") == (2, 5)
        assert format_shard((2, 5)) == "2/5"
        assert parse_shard(format_shard((0, 1))) == (0, 1)

    @pytest.mark.parametrize("text", ["", "3", "a/b", "1/", "/4", "1/0", "5/5", "-1/4"])
    def test_parse_rejects_bad_syntax(self, text):
        with pytest.raises(FabricError):
            parse_shard(text)

    def test_validate_shard(self):
        assert validate_shard((0, 1)) == (0, 1)
        for bad in [(1, 1), (-1, 2), (0, 0), "nope"]:
            with pytest.raises(SweepError):
                validate_shard(bad)


class TestShardCheckpoints:
    def test_sharded_meta_records_identity(self, tmp_path):
        path = tmp_path / "s1.jsonl"
        result = run_sweep(tiny_grid(), jsonl_path=path, shard=(1, 2))
        meta = json.loads(path.read_text().splitlines()[0])
        assert meta["shard"] == [1, 2]
        assert result.shard == (1, 2)
        assert {spec.index for spec in result.specs} == {
            spec.index for spec in shard_grid(tiny_grid(), 1, 2)
        }

    def test_unsharded_meta_has_no_shard_key(self, tmp_path):
        path = tmp_path / "full.jsonl"
        run_sweep(tiny_grid(), jsonl_path=path)
        meta = json.loads(path.read_text().splitlines()[0])
        assert "shard" not in meta

    def test_resume_rejects_shard_mismatch(self, tmp_path):
        path = tmp_path / "s0.jsonl"
        run_sweep(tiny_grid(), jsonl_path=path, shard=(0, 2))
        with pytest.raises(SweepError, match="shard 0/2 but this run is unsharded"):
            run_sweep(tiny_grid(), jsonl_path=path, resume=True)
        with pytest.raises(SweepError, match="shard 0/2 but this run is shard 1/2"):
            run_sweep(tiny_grid(), jsonl_path=path, resume=True, shard=(1, 2))
        # The matching shard resumes as a no-op.
        before = path.read_bytes()
        resumed = run_sweep(tiny_grid(), jsonl_path=path, resume=True, shard=(0, 2))
        assert resumed.resumed_trials == len(resumed.specs)
        assert path.read_bytes() == before

    def test_shard_records_are_the_unsharded_lines(self, tmp_path):
        """Each shard writes exactly the unsharded run's bytes for its trials."""
        grid = tiny_grid()
        full = tmp_path / "full.jsonl"
        run_sweep(grid, jsonl_path=full)
        full_records = full.read_text().splitlines()[1:]
        sharded_records = []
        for index in range(2):
            path = tmp_path / f"s{index}.jsonl"
            run_sweep(grid, jsonl_path=path, shard=(index, 2))
            sharded_records.extend(path.read_text().splitlines()[1:])
        assert sorted(sharded_records) == sorted(full_records)


class TestMerge:
    @pytest.fixture()
    def sharded(self, tmp_path):
        grid = tiny_grid()
        full = tmp_path / "full.jsonl"
        run_sweep(grid, jsonl_path=full)
        shards = []
        for index in range(2):
            path = tmp_path / f"s{index}.jsonl"
            run_sweep(grid, jsonl_path=path, shard=(index, 2))
            shards.append(path)
        return grid, full, shards

    def test_merge_is_byte_identical(self, sharded, tmp_path):
        grid, full, shards = sharded
        out = tmp_path / "merged.jsonl"
        report = merge_checkpoints(shards, out, grid=grid)
        assert out.read_bytes() == full.read_bytes()
        assert report.shards == 2
        assert report.trials == len(expand_grid(grid))
        # Shard order does not matter.
        merge_checkpoints(list(reversed(shards)), out)
        assert out.read_bytes() == full.read_bytes()

    def test_merge_rejects_duplicate_shard(self, sharded, tmp_path):
        _, _, shards = sharded
        with pytest.raises(FabricError, match="appears twice"):
            merge_checkpoints([shards[0], shards[0]], tmp_path / "out.jsonl")

    def test_merge_rejects_missing_shard(self, sharded, tmp_path):
        _, _, shards = sharded
        with pytest.raises(FabricError, match="needs all 2 shards"):
            merge_checkpoints([shards[0]], tmp_path / "out.jsonl")

    def test_merge_rejects_unsharded_input(self, sharded, tmp_path):
        _, full, shards = sharded
        with pytest.raises(FabricError, match="not a shard checkpoint"):
            merge_checkpoints([shards[0], full], tmp_path / "out.jsonl")

    def test_merge_rejects_incomplete_shard(self, sharded, tmp_path):
        _, _, shards = sharded
        lines = shards[1].read_text().splitlines(keepends=True)
        shards[1].write_text("".join(lines[:-1]))
        with pytest.raises(FabricError, match="incomplete"):
            merge_checkpoints(shards, tmp_path / "out.jsonl")

    def test_merge_rejects_grid_mismatch(self, sharded, tmp_path):
        grid, _, shards = sharded
        other = tmp_path / "other.jsonl"
        run_sweep(tiny_grid(seed=grid.seed + 1), jsonl_path=other, shard=(1, 2))
        with pytest.raises(FabricError, match="different sweeps cannot merge"):
            merge_checkpoints([shards[0], other], tmp_path / "out.jsonl")

    def test_merge_rejects_empty_input(self, tmp_path):
        with pytest.raises(FabricError, match="nothing to merge"):
            merge_checkpoints([], tmp_path / "out.jsonl")


class TestGridFile:
    def test_round_trip(self, tmp_path):
        grid = tiny_grid()
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(grid.to_dict()))
        loaded = load_grid_file(path)
        assert GridSpec.from_dict(loaded) == grid

    def test_partial_file_is_allowed(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text('{"ns": [8, 12], "trials": 3}')
        assert load_grid_file(path) == {"ns": [8, 12], "trials": 3}

    def test_unknown_key_rejected(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text('{"populations": [8]}')
        with pytest.raises(SweepError, match="unknown grid key 'populations'"):
            load_grid_file(path)

    @pytest.mark.parametrize(
        "payload",
        [
            '{"ns": 8}',  # axis must be a list
            '{"trials": [3]}',  # scalar must not be a list
            '{"ns": [true]}',  # bools are not ints here
            '{"protocols": [8]}',  # wrong element type
            "[]",  # not an object
            "not json",
        ],
    )
    def test_bad_shapes_rejected(self, tmp_path, payload):
        path = tmp_path / "grid.json"
        path.write_text(payload)
        with pytest.raises(SweepError):
            load_grid_file(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SweepError, match="cannot read grid file"):
            load_grid_file(tmp_path / "absent.json")

"""Smoke tests: the example scripts run end-to-end.

The slower showcase scripts (stabilization_spectrum, render_figures) are
exercised only through the library calls they share with the faster ones;
the three quick examples run here in-process so they stay correct as the
API evolves.
"""

from __future__ import annotations

import pathlib
import runpy
import sys


EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None) -> None:
    path = EXAMPLES / name
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "Stabilized after" in out
        assert "unique leader" in out

    def test_protocol_anatomy(self, capsys):
        run_example("protocol_anatomy.py")
        out = capsys.readouterr().out
        assert "fully dormant" in out
        assert "SAFE" in out
        assert "Leader: agent #" in out

    def test_self_healing_sensor_swarm(self, capsys):
        run_example("self_healing_sensor_swarm.py")
        out = capsys.readouterr().out
        assert "[deploy]" in out
        assert "[burst 4]" in out
        assert "1 coordinator" in out

    def test_tradeoff_explorer_tiny(self, capsys):
        run_example("tradeoff_explorer.py", argv=["12"])
        out = capsys.readouterr().out
        assert "state_bits" in out
        assert "space buys speed" in out

    def test_all_examples_exist_and_are_executable_scripts(self):
        names = {path.name for path in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "self_healing_sensor_swarm.py",
            "tradeoff_explorer.py",
            "protocol_anatomy.py",
            "stabilization_spectrum.py",
            "render_figures.py",
        } <= names
        for path in EXAMPLES.glob("*.py"):
            head = path.read_text().splitlines()[0]
            assert head.startswith("#!"), f"{path.name} missing shebang"

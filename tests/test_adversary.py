"""Tests for the adversary suite and self-stabilization recovery (Lemma 6.3)."""

from __future__ import annotations

import pytest

from repro.adversary.initializers import (
    ADVERSARIES,
    all_duplicate_rank,
    correct_verifier_configuration,
    corrupted_messages,
    duplicate_ranks,
    planted_top,
    scrambled_observations,
    validate_configuration,
)
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.core.roles import Role
from repro.core.state import TOP
from repro.scheduler.rng import derive_seed, make_rng
from repro.sim.simulation import Simulation


@pytest.fixture
def protocol() -> ElectLeader:
    return ElectLeader(ProtocolParams(n=16, r=4))


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(ADVERSARIES))
    def test_generates_well_formed_configurations(self, protocol, name):
        config = ADVERSARIES[name](protocol, make_rng(3))
        assert len(config) == protocol.n
        assert validate_configuration(config)

    def test_all_duplicate_rank_all_same(self, protocol):
        config = all_duplicate_rank(protocol, make_rng(1), rank=5)
        assert all(agent.rank == 5 for agent in config)

    def test_duplicate_ranks_counts(self, protocol):
        config = duplicate_ranks(protocol, make_rng(2), duplicates=3)
        ranks = [agent.rank for agent in config]
        assert len(set(ranks)) < protocol.n  # some rank was lost
        assert len(ranks) == protocol.n

    def test_duplicate_ranks_bounds(self, protocol):
        with pytest.raises(ValueError):
            duplicate_ranks(protocol, make_rng(0), duplicates=0)
        with pytest.raises(ValueError):
            duplicate_ranks(protocol, make_rng(0), duplicates=protocol.n)

    def test_corrupted_messages_keeps_ranking(self, protocol):
        config = corrupted_messages(protocol, make_rng(3))
        assert protocol.ranking_correct(config)
        assert not protocol.is_safe_configuration(config)

    def test_scrambled_observations_respects_restriction(self, protocol):
        """Held own messages must still match their observations."""
        config = scrambled_observations(protocol, make_rng(4), corruptions=8)
        for agent in config:
            assert agent.sv is not None and agent.sv.dc is not TOP
            dc = agent.sv.dc
            for msg_id, content in dc.msgs.get(agent.rank, {}).items():
                assert content == dc.observations[msg_id - 1]

    def test_planted_top_count(self, protocol):
        config = planted_top(protocol, make_rng(5), count=3)
        tops = sum(1 for a in config if a.sv is not None and a.sv.dc is TOP)
        assert tops == 3


class TestRecovery:
    """Lemma 6.3 + Theorem 1.1: recovery from every adversary class."""

    @pytest.mark.parametrize("name", sorted(ADVERSARIES))
    def test_recovers_to_safe_set(self, protocol, name):
        config = ADVERSARIES[name](protocol, make_rng(11))
        sim = Simulation(protocol, config=config, seed=derive_seed(77, hash(name) % 1000))
        result = sim.run_until(
            protocol.is_safe_configuration, max_interactions=5_000_000, check_interval=2000
        )
        assert result.converged, f"no recovery from adversary {name}"
        assert protocol.ranking_correct(result.config)
        assert protocol.leader_count(result.config) == 1

    def test_soft_reset_preserves_ranking(self):
        """The headline soft-reset property (Section 3.2): corrupted
        messages on a correct ranking are repaired WITHOUT changing ranks
        and WITHOUT any agent ever leaving the verifier role."""
        protocol = ElectLeader(ProtocolParams(n=16, r=4))
        rng = make_rng(6)
        config = corrupted_messages(protocol, rng, corruptions=3)
        # Let probation expire so the error will be attributed correctly.
        for agent in config:
            assert agent.sv is not None
            agent.sv.probation_timer = 0
        ranks_before = [agent.rank for agent in config]
        sim = Simulation(protocol, config=config, seed=8)
        roles_seen = set()

        def observer(simulation, i, j):
            roles_seen.update(simulation.config[i].role for _ in (1,))
            roles_seen.add(simulation.config[j].role)

        sim.observers.append(observer)
        result = sim.run_until(
            protocol.is_safe_configuration, max_interactions=5_000_000, check_interval=1000
        )
        assert result.converged
        assert [agent.rank for agent in result.config] == ranks_before
        assert Role.RESETTING not in roles_seen, "a hard reset destroyed the ranking"

    def test_duplicate_leader_population_hard_resets(self):
        """All-rank-1 (n leaders) must go through a hard reset to recover."""
        protocol = ElectLeader(ProtocolParams(n=16, r=4))
        config = all_duplicate_rank(protocol, make_rng(9), rank=1)
        sim = Simulation(protocol, config=config, seed=10)
        saw_reset = []

        def observer(simulation, i, j):
            if any(s.role is Role.RESETTING for s in (simulation.config[i], simulation.config[j])):
                saw_reset.append(True)

        sim.observers.append(observer)
        result = sim.run_until(
            protocol.is_safe_configuration, max_interactions=5_000_000, check_interval=2000
        )
        assert result.converged
        assert saw_reset, "recovery should have required a hard reset"

    def test_recovery_across_many_random_soups(self):
        """Stress: 8 independent random-soup starts all recover."""
        protocol = ElectLeader(ProtocolParams(n=12, r=3))
        for trial in range(8):
            rng = make_rng(derive_seed(500, trial))
            config = ADVERSARIES["random_soup"](protocol, rng)
            sim = Simulation(protocol, config=config, seed=derive_seed(501, trial))
            result = sim.run_until(
                protocol.is_safe_configuration,
                max_interactions=5_000_000,
                check_interval=2000,
            )
            assert result.converged, f"soup trial {trial} failed"


class TestCorrectConfiguration:
    def test_correct_configuration_is_safe(self, protocol):
        config = correct_verifier_configuration(protocol)
        assert protocol.is_safe_configuration(config)

"""Tests for the derandomized collision detection (Appendix B integration)."""

from __future__ import annotations

import pytest

from repro.core.derandomized import (
    CoinBackedSampler,
    DerandomizedDetectCollisionProtocol,
)
from repro.core.params import ProtocolParams
from repro.scheduler.rng import derive_seed, make_rng
from repro.sim.simulation import Simulation
from repro.substrates.synthetic_coin import SyntheticCoinState


class TestCoinBackedSampler:
    def test_reads_coin_array(self):
        sampler = CoinBackedSampler(SyntheticCoinState(coins=[1, 0, 1]))
        assert sampler.randrange(8) == 0b101

    def test_modular_fold(self):
        sampler = CoinBackedSampler(SyntheticCoinState(coins=[1, 1, 1]))
        assert sampler.randrange(5) == 7 % 5

    def test_start_stop_form(self):
        sampler = CoinBackedSampler(SyntheticCoinState(coins=[0, 1, 0]))
        assert sampler.randrange(1, 9) == 1 + 2

    def test_empty_range_rejected(self):
        sampler = CoinBackedSampler(SyntheticCoinState(coins=[0]))
        with pytest.raises(ValueError):
            sampler.randrange(3, 3)

    def test_values_always_in_range(self):
        coin = SyntheticCoinState(coins=[1, 1, 0, 1, 0, 1, 1])
        sampler = CoinBackedSampler(coin)
        for span in (2, 3, 7, 100):
            assert 0 <= sampler.randrange(span) < span


class TestProtocol:
    def make(self, n: int = 12, r: int = 3) -> DerandomizedDetectCollisionProtocol:
        return DerandomizedDetectCollisionProtocol(ProtocolParams(n=n, r=r))

    def test_transition_ignores_external_rng(self):
        """The defining property: δ is deterministic given the schedule."""
        protocol = self.make()
        config_a = protocol.clean_configuration(12)
        config_b = protocol.clean_configuration(12)
        rng_a, rng_b = make_rng(1), make_rng(999)  # wildly different streams
        schedule = [(0, 1), (2, 3), (1, 2), (0, 5), (4, 7), (6, 8)] * 50
        for i, j in schedule:
            protocol.transition(config_a[i], config_a[j], rng_a)
            protocol.transition(config_b[i], config_b[j], rng_b)
        for a, b in zip(config_a, config_b):
            assert a.dc == b.dc
            assert a.coin.coins == b.coin.coins

    def test_coins_update_on_interaction(self):
        protocol = self.make()
        config = protocol.clean_configuration(12)
        protocol.transition(config[0], config[1], make_rng(0))
        assert config[0].coin.coin == 1
        assert config[1].coin.coin == 1

    def test_soundness_long_run(self):
        """No false positives from q0 on a correct ranking — even with the
        coin-backed (initially fully correlated) signatures."""
        protocol = self.make()
        config = protocol.clean_configuration(12)
        sim = Simulation(protocol, config=config, seed=3)
        sim.run(30_000)
        assert not protocol.error_detected(sim.config)

    def test_completeness_duplicate_rank(self):
        """Duplicated ranks are still detected without external randomness."""
        protocol = self.make()
        detected = 0
        for trial in range(5):
            config = protocol.clean_configuration(12)
            config[0] = protocol.state_for_rank(2)
            sim = Simulation(protocol, config=config, seed=derive_seed(60, trial))
            result = sim.run_until(
                protocol.error_detected, max_interactions=1_000_000, check_interval=100
            )
            detected += bool(result.converged)
        assert detected == 5

    def test_non_uniform_population_check(self):
        protocol = self.make(n=12)
        with pytest.raises(ValueError):
            protocol.clean_configuration(10)

    def test_state_clone_independent(self):
        protocol = self.make()
        state = protocol.state_for_rank(3)
        copy = state.clone()
        copy.coin.coins[0] = 1
        assert state.coin.coins[0] == 0

"""Tests for the load-balancing substrate (Lemma E.6)."""

from __future__ import annotations

import math
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler.rng import derive_seed, make_rng
from repro.substrates.load_balancing import LoadBalancingProcess


class TestConstruction:
    def test_clumped(self):
        process = LoadBalancingProcess.clumped(8, 64)
        assert process.loads[0] == 64
        assert sum(process.loads[1:]) == 0
        assert process.total == 64

    def test_uniform(self):
        process = LoadBalancingProcess.uniform(5, 3)
        assert process.loads == [3, 3, 3, 3, 3]

    def test_clumped_requires_two_agents(self):
        with pytest.raises(ValueError):
            LoadBalancingProcess.clumped(1, 10)


class TestStep:
    def test_conservation(self):
        process = LoadBalancingProcess.clumped(6, 30)
        rng = make_rng(1)
        for _ in range(500):
            process.step(rng)
            assert process.total == 30

    def test_pair_split_within_one(self):
        """After any step, the interacting pair differs by at most 1 —
        checked globally by running to low discrepancy."""
        process = LoadBalancingProcess.clumped(4, 17)
        rng = make_rng(2)
        steps = process.run_until_balanced(rng, max_interactions=10_000, target_discrepancy=1)
        assert steps is not None
        assert process.discrepancy() <= 1

    @given(
        m=st.integers(min_value=2, max_value=12),
        loads=st.lists(st.integers(min_value=0, max_value=50), min_size=2, max_size=12),
    )
    @settings(max_examples=50, deadline=None)
    def test_step_preserves_total_property(self, m: int, loads: list[int]):
        if len(loads) < 2:
            loads = loads + [0, 0]
        process = LoadBalancingProcess(list(loads))
        total = process.total
        rng = make_rng(7)
        for _ in range(20):
            process.step(rng)
        assert process.total == total
        assert all(load >= 0 for load in process.loads)


class TestCoverage:
    def test_coverage_from_clumped_start(self):
        """Lemma E.6's event: no zeros, from maximal clumping, in O(m log m)."""
        m = 64
        process = LoadBalancingProcess.clumped(m, 4 * m)
        rng = make_rng(3)
        steps = process.run_until_covered(rng, max_interactions=200_000)
        assert steps is not None
        assert steps < 40 * m * math.log(m)

    def test_coverage_requires_enough_tokens(self):
        process = LoadBalancingProcess.clumped(8, 4)
        with pytest.raises(ValueError):
            process.run_until_covered(make_rng(0), max_interactions=10)

    def test_coverage_scaling_m_log_m(self):
        """Median coverage time across m should track m log m."""
        medians = []
        for m in (32, 128):
            times = []
            for trial in range(8):
                process = LoadBalancingProcess.clumped(m, 4 * m)
                rng = make_rng(derive_seed(13, trial))
                steps = process.run_until_covered(rng, max_interactions=500_000)
                assert steps is not None
                times.append(steps)
            medians.append(statistics.median(times))
        measured = medians[1] / medians[0]
        predicted = (128 * math.log(128)) / (32 * math.log(32))
        assert measured < 2.5 * predicted
        assert measured > 0.3 * predicted

    def test_balanced_start_already_covered(self):
        process = LoadBalancingProcess.uniform(10, 2)
        steps = process.run_until_covered(make_rng(0), max_interactions=10)
        assert steps == 0


class TestDiscrepancy:
    def test_discrepancy_decreases(self):
        process = LoadBalancingProcess.clumped(32, 320)
        initial = process.discrepancy()
        rng = make_rng(5)
        steps = process.run_until_balanced(rng, max_interactions=100_000)
        assert steps is not None
        assert process.discrepancy() <= 3 < initial

    def test_budget_exhaustion_returns_none(self):
        process = LoadBalancingProcess.clumped(32, 320)
        result = process.run_until_balanced(make_rng(0), max_interactions=1, target_discrepancy=0)
        assert result is None

"""The recovery hierarchy 𝒞₀ ⊃ 𝒞₁ ⊃ ... ⊃ 𝒞₅, transition by transition.

Lemma 6.3's proof descends a hierarchy of configuration sets; each of
Lemmas F.2–F.6 shows one descent step happens quickly (or a reset fires).
These tests start populations *exactly at* each hierarchy level and verify
the specific next milestone, rather than full recovery — pinpointing which
mechanism each lemma exercises.

Hierarchy (Section 6):
  𝒞₁: no resetters; 𝒞₂: all verifiers; 𝒞₃: + equal generations;
  𝒞₄: + all probation timers 0; 𝒞₅: + correct ranking (⊂ 𝒞_safe).
"""

from __future__ import annotations

import pytest

from repro.adversary.initializers import (
    correct_verifier_configuration,
    duplicate_ranks,
    mid_ranking,
    mid_reset,
    mixed_generations,
    probation_chaos,
)
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.core.roles import Role
from repro.scheduler.rng import derive_seed, make_rng
from repro.sim.simulation import Simulation


@pytest.fixture
def protocol() -> ElectLeader:
    return ElectLeader(ProtocolParams(n=16, r=4))


def reset_was_triggered(protocol: ElectLeader) -> bool:
    return protocol.events.get("hard_reset", 0) > 0


class TestLemmaF2:
    """𝒞₀ \\ 𝒞₁ → 𝒞₁: resetters disappear within O(n log n)-ish time."""

    def test_resetters_clear_or_full_cycle_completes(self, protocol):
        for trial in range(5):
            config = mid_reset(protocol, make_rng(derive_seed(1, trial)))
            sim = Simulation(protocol, config=config, seed=derive_seed(2, trial))
            result = sim.run_until(
                lambda cfg: all(s.role is not Role.RESETTING for s in cfg),
                max_interactions=300_000,
                check_interval=100,
            )
            assert result.converged, f"trial {trial}: resetters never cleared"


class TestLemmaF3:
    """𝒞₁ \\ 𝒞₂ → 𝒞₂: rankers all become verifiers (or a reset fires)."""

    def test_rankers_become_verifiers_or_reset(self, protocol):
        for trial in range(5):
            protocol.reset_events()
            config = mid_ranking(protocol, make_rng(derive_seed(3, trial)))
            sim = Simulation(protocol, config=config, seed=derive_seed(4, trial))
            result = sim.run_until(
                lambda cfg: all(s.role is Role.VERIFYING for s in cfg)
                or reset_was_triggered(protocol),
                max_interactions=2_000_000,
                check_interval=500,
            )
            assert result.converged


class TestLemmaF4:
    """𝒞₂ \\ 𝒞₃ → 𝒞₃: generations equalize (or a reset fires)."""

    def _generations_equal(self, protocol, cfg):
        generations = protocol.generation_profile(cfg)
        return generations is not None and len(generations) == 1

    def test_generations_equalize_or_reset(self, protocol):
        for trial in range(5):
            protocol.reset_events()
            config = mixed_generations(protocol, make_rng(derive_seed(5, trial)), spread=3)
            sim = Simulation(protocol, config=config, seed=derive_seed(6, trial))
            result = sim.run_until(
                lambda cfg: self._generations_equal(protocol, cfg)
                or reset_was_triggered(protocol),
                max_interactions=2_000_000,
                check_interval=200,
            )
            assert result.converged

    def test_adjacent_generations_equalize_without_reset(self, protocol):
        """With gap exactly 1 and behind agents off probation, the epidemic
        adoption path should usually resolve without any hard reset."""
        protocol.reset_events()
        config = correct_verifier_configuration(protocol)
        rng = make_rng(7)
        for agent in config:
            assert agent.sv is not None
            agent.sv.probation_timer = 0
            if rng.random() < 0.4:
                agent.sv.generation = 1
                # Freshly soft-reset agents carry a full probation timer.
                agent.sv.probation_timer = protocol.params.probation_max
        sim = Simulation(protocol, config=config, seed=8)
        result = sim.run_until(
            lambda cfg: self._generations_equal(protocol, cfg),
            max_interactions=2_000_000,
            check_interval=200,
        )
        assert result.converged
        assert not reset_was_triggered(protocol)
        assert protocol.ranking_correct(result.config)


class TestLemmaF5:
    """𝒞₃ \\ 𝒞₄ → 𝒞₄: probation timers drain to zero (or a reset fires)."""

    def test_probation_drains(self, protocol):
        for trial in range(5):
            protocol.reset_events()
            config = probation_chaos(protocol, make_rng(derive_seed(9, trial)))
            sim = Simulation(protocol, config=config, seed=derive_seed(10, trial))
            result = sim.run_until(
                lambda cfg: all(
                    s.sv is not None and s.sv.probation_timer == 0 for s in cfg
                )
                or reset_was_triggered(protocol),
                max_interactions=2_000_000,
                check_interval=200,
            )
            assert result.converged


class TestLemmaF6:
    """𝒞₄ \\ 𝒞₅: a genuine rank collision with drained probation MUST
    trigger a hard reset (soft resets cannot repair ranks)."""

    def test_duplicate_ranks_force_reset(self, protocol):
        for trial in range(5):
            protocol.reset_events()
            config = duplicate_ranks(protocol, make_rng(derive_seed(11, trial)), 2)
            for agent in config:
                assert agent.sv is not None
                agent.sv.probation_timer = 0
            sim = Simulation(protocol, config=config, seed=derive_seed(12, trial))
            result = sim.run_until(
                lambda cfg: reset_was_triggered(protocol),
                max_interactions=2_000_000,
                check_interval=200,
            )
            assert result.converged, f"trial {trial}: collision never forced a reset"

"""Tests for the loosely-stabilizing baseline (related-work comparator)."""

from __future__ import annotations

import pytest

from repro.baselines.loosely_stabilizing import (
    LooselyStabilizingLeaderElection,
    LooseState,
)
from repro.core.params import BaselineParams
from repro.scheduler.rng import derive_seed, make_rng
from repro.sim.simulation import Simulation


@pytest.fixture
def protocol() -> LooselyStabilizingLeaderElection:
    return LooselyStabilizingLeaderElection(BaselineParams(n=32), tau=4.0)


class TestMechanics:
    def test_two_leaders_eliminate(self, protocol, rng):
        u = LooseState(leader=True, timer=3)
        v = LooseState(leader=True, timer=3)
        protocol.transition(u, v, rng)
        assert u.leader and not v.leader
        assert u.timer == protocol.timer_max

    def test_leader_heartbeat_refreshes_timers(self, protocol, rng):
        u = LooseState(leader=True, timer=1)
        v = LooseState(leader=False, timer=1)
        protocol.transition(u, v, rng)
        assert u.timer == protocol.timer_max
        assert v.timer == protocol.timer_max

    def test_follower_timers_decay_by_max_merge(self, protocol, rng):
        u = LooseState(leader=False, timer=10)
        v = LooseState(leader=False, timer=4)
        protocol.transition(u, v, rng)
        assert u.timer == 9
        assert v.timer == 9

    def test_expiry_promotes_initiator(self, protocol, rng):
        u = LooseState(leader=False, timer=1)
        v = LooseState(leader=False, timer=0)
        protocol.transition(u, v, rng)
        assert u.leader
        assert u.timer == protocol.timer_max

    def test_state_count_is_tiny(self, protocol):
        # O(τ log n): a few hundred states, versus 2^thousands for SSLE.
        assert protocol.state_count() < 500


class TestConvergence:
    def test_converges_from_clean_start(self, protocol):
        sim = Simulation(protocol, n=32, seed=1)
        result = sim.run_until(
            protocol.is_goal_configuration, max_interactions=500_000, check_interval=50
        )
        assert result.converged

    def test_converges_from_zero_leader_configuration(self, protocol):
        """The crucial advantage over plain pairwise elimination."""
        config = protocol.zero_leader_configuration()
        sim = Simulation(protocol, config=config, seed=2)
        result = sim.run_until(
            protocol.is_goal_configuration, max_interactions=500_000, check_interval=50
        )
        assert result.converged

    def test_converges_from_adversarial_starts(self, protocol):
        for trial in range(5):
            config = protocol.adversarial_configuration(make_rng(derive_seed(3, trial)))
            sim = Simulation(protocol, config=config, seed=derive_seed(4, trial))
            result = sim.run_until(
                protocol.is_goal_configuration,
                max_interactions=500_000,
                check_interval=50,
            )
            assert result.converged


class TestHoldingTime:
    def test_requires_unique_leader(self, protocol):
        with pytest.raises(ValueError):
            protocol.holding_time(protocol.zero_leader_configuration(), make_rng(0), 100)

    def test_holding_grows_with_tau(self):
        """Larger τ (longer timers) must hold the leader longer."""
        params = BaselineParams(n=24)
        budget = 300_000
        medians = []
        for tau in (0.25, 4.0):
            protocol = LooselyStabilizingLeaderElection(params, tau=tau)
            times = []
            for trial in range(5):
                sim = Simulation(protocol, n=24, seed=derive_seed(10, trial))
                result = sim.run_until(
                    protocol.is_goal_configuration,
                    max_interactions=500_000,
                    check_interval=20,
                )
                assert result.converged
                times.append(
                    protocol.holding_time(
                        result.config, make_rng(derive_seed(11, trial)), budget
                    )
                )
            times.sort()
            medians.append(times[len(times) // 2])
        assert medians[1] > 2 * medians[0]

"""The array backend's equivalence gate.

Four contracts, each gated here for every protocol exposing a transition
table:

* **encoding** — ``encode_state``/``decode_state`` are inverse bijections
  over ``range(num_states())``, and everything reachable from supported
  start configurations stays inside the encoding;
* **table** — lookups agree with calling δ directly on decoded states
  (property-tested over random state pairs), and randomized or
  table-less protocols are rejected loudly;
* **exactness** — recorded-schedule replay through the conflict-safe
  block machinery is bit-identical to the object backend's sequential
  replay, and results are invariant to block size / check interval;
* **distribution** — random-scheduler runs on the two backends reach the
  same convergence verdicts with statistically indistinguishable
  stabilization-time distributions (the streams differ by construction:
  PCG64 vs Mersenne Twister over the same uniform pair law).
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.analysis.stats import bootstrap_ci  # noqa: E402
from repro.baselines.cai_izumi_wada import CaiIzumiWada  # noqa: E402
from repro.baselines.loosely_stabilizing import (  # noqa: E402
    LooselyStabilizingLeaderElection,
)
from repro.baselines.nonss_leader import PairwiseElimination  # noqa: E402
from repro.core.elect_leader import ElectLeader  # noqa: E402
from repro.core.params import BaselineParams, ProtocolParams  # noqa: E402
from repro.core.propagate_reset import ResetEpidemicProtocol  # noqa: E402
from repro.core.protocol import PopulationProtocol  # noqa: E402
from repro.scheduler.rng import make_rng  # noqa: E402
from repro.scheduler.scheduler import ArrayScheduler, RecordedSchedule  # noqa: E402
from repro.sim.array_backend import (  # noqa: E402
    ArrayBackendError,
    ArraySimulation,
    TransitionTable,
    apply_pair_block,
    build_transition_table,
    reachable_state_codes,
    replay_array,
    transition_table_for,
)
from repro.sim.replay import replay  # noqa: E402
from repro.sim.simulation import make_simulation, resolve_backend, run_until  # noqa: E402
from repro.sim.sweep import GridSpec, SweepError, run_sweep  # noqa: E402
from repro.sim.trials import run_trials  # noqa: E402
from repro.substrates.epidemics import (  # noqa: E402
    EpidemicProtocol,
    OneWayEpidemicProtocol,
)

N = 12


def _build_protocols() -> list[tuple[PopulationProtocol, object]]:
    """Every table protocol with a start-configuration builder."""
    ciw = CaiIzumiWada(BaselineParams(n=N))
    loose = LooselyStabilizingLeaderElection(BaselineParams(n=N), tau=1.0)
    pairwise = PairwiseElimination(N)
    reset = ResetEpidemicProtocol(ProtocolParams(n=N, r=2))
    epidemic = EpidemicProtocol()
    one_way = OneWayEpidemicProtocol()
    return [
        (ciw, lambda rng: ciw.adversarial_configuration(rng)),
        (loose, lambda rng: loose.adversarial_configuration(rng)),
        (pairwise, lambda rng: [pairwise.initial_state() for _ in range(N)]),
        (reset, lambda rng: reset.triggered_configuration(N, 1 + rng.randrange(3))),
        (epidemic, lambda rng: EpidemicProtocol.seeded_configuration(N, 2)),
        (one_way, lambda rng: EpidemicProtocol.seeded_configuration(N, 2)),
    ]


PROTOCOLS = _build_protocols()
IDS = [protocol.name for protocol, _ in PROTOCOLS]


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


class TestEncoding:
    @pytest.mark.parametrize("protocol,config_of", PROTOCOLS, ids=IDS)
    def test_round_trip_every_code(self, protocol, config_of):
        size = protocol.num_states()
        assert size is not None and size >= 2
        for code in range(size):
            assert protocol.encode_state(protocol.decode_state(code)) == code

    @pytest.mark.parametrize("protocol,config_of", PROTOCOLS, ids=IDS)
    def test_start_configurations_encode(self, protocol, config_of):
        size = protocol.num_states()
        for seed in range(3):
            for state in config_of(make_rng(seed)):
                assert 0 <= protocol.encode_state(state) < size

    @pytest.mark.parametrize("protocol,config_of", PROTOCOLS, ids=IDS)
    def test_reachable_closure_within_encoding(self, protocol, config_of):
        # δ-closure from the start states never escapes range(S): the
        # encoding really enumerates every reachable state.
        seeds = config_of(make_rng(0))
        codes = reachable_state_codes(protocol, seeds, limit=protocol.num_states())
        assert all(0 <= code < protocol.num_states() for code in codes)

    def test_elect_leader_has_no_encoding(self):
        protocol = ElectLeader(ProtocolParams(n=16, r=2))
        assert protocol.num_states() is None
        with pytest.raises(NotImplementedError):
            protocol.encode_state(protocol.initial_state())


# ---------------------------------------------------------------------------
# Table building
# ---------------------------------------------------------------------------


class _RandomizedToy(PopulationProtocol):
    """Two states, but the transition flips a coin — not tabulatable."""

    name = "randomized-toy"

    def initial_state(self):
        return [0]

    def transition(self, u, v, rng):
        u[0] = rng.randrange(2)

    def output(self, state):
        return state[0]

    def num_states(self):
        return 2

    def encode_state(self, state):
        return state[0]

    def decode_state(self, code):
        return [code]


class _HugeToy(_RandomizedToy):
    name = "huge-toy"

    def num_states(self):
        return 1 << 20


class TestTableBuilder:
    @settings(max_examples=120, deadline=None)
    @given(data=st.data())
    def test_lookup_agrees_with_delta(self, data):
        # The satellite property test: random (pair, states) lookups agree
        # with calling the transition function directly.
        protocol, _ = PROTOCOLS[data.draw(st.integers(0, len(PROTOCOLS) - 1))]
        size = protocol.num_states()
        a = data.draw(st.integers(0, size - 1))
        b = data.draw(st.integers(0, size - 1))
        table = transition_table_for(protocol)
        u = protocol.decode_state(a)
        v = protocol.decode_state(b)
        protocol.transition(u, v, make_rng(0))
        assert table.lookup(a, b) == (protocol.encode_state(u), protocol.encode_state(v))

    @pytest.mark.parametrize("protocol,config_of", PROTOCOLS, ids=IDS)
    def test_tables_are_cached_per_instance(self, protocol, config_of):
        assert transition_table_for(protocol) is transition_table_for(protocol)

    def test_randomized_transition_rejected(self):
        with pytest.raises(ArrayBackendError, match="randomness"):
            build_transition_table(_RandomizedToy())

    def test_oversized_table_rejected(self):
        with pytest.raises(ArrayBackendError, match="cap"):
            build_transition_table(_HugeToy())

    def test_elect_leader_rejected(self):
        protocol = ElectLeader(ProtocolParams(n=16, r=2))
        with pytest.raises(ArrayBackendError, match="no finite state encoding"):
            build_transition_table(protocol)
        with pytest.raises(ArrayBackendError):
            ArraySimulation(protocol, n=16, seed=0)

    def test_table_codes_validated(self):
        bad = np.full((2, 2), 7, dtype=np.int32)
        with pytest.raises(ArrayBackendError, match="outside range"):
            TransitionTable(num_states=2, u_out=bad, v_out=bad)


# ---------------------------------------------------------------------------
# The array scheduler
# ---------------------------------------------------------------------------


class TestArrayScheduler:
    def test_pairs_are_valid(self):
        scheduler = ArrayScheduler(7, seed=3)
        initiators, responders = scheduler.next_pairs(5_000)
        assert initiators.shape == responders.shape == (5_000,)
        assert ((0 <= initiators) & (initiators < 7)).all()
        assert ((0 <= responders) & (responders < 7)).all()
        assert (initiators != responders).all()

    def test_deterministic_per_seed(self):
        a_i, a_j = ArrayScheduler(9, seed=5).next_pairs(1_000)
        b_i, b_j = ArrayScheduler(9, seed=5).next_pairs(1_000)
        c_i, c_j = ArrayScheduler(9, seed=6).next_pairs(1_000)
        assert (a_i == b_i).all() and (a_j == b_j).all()
        assert not ((a_i == c_i).all() and (a_j == c_j).all())

    def test_slicing_invariance(self):
        # The pair sequence is a pure function of the seed, independent of
        # how draws are sliced — the property that makes array runs
        # independent of block size and check interval.
        whole_i, whole_j = ArrayScheduler(9, seed=5).next_pairs(10_000)
        sliced = ArrayScheduler(9, seed=5)
        parts = [sliced.next_pairs(k) for k in (1, 249, 750, 9_000)]
        sliced_i = np.concatenate([i for i, _ in parts])
        sliced_j = np.concatenate([j for _, j in parts])
        assert (whole_i == sliced_i).all() and (whole_j == sliced_j).all()

    def test_every_agent_participates(self):
        initiators, responders = ArrayScheduler(8, seed=0).next_pairs(4_000)
        assert set(initiators.tolist()) == set(range(8))
        assert set(responders.tolist()) == set(range(8))

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ArrayScheduler(1, seed=0)
        with pytest.raises(ValueError):
            ArrayScheduler(4, seed=0).next_pairs(-1)
        empty_i, empty_j = ArrayScheduler(4, seed=0).next_pairs(0)
        assert empty_i.size == empty_j.size == 0


# ---------------------------------------------------------------------------
# Exact replay through the conflict-safe block machinery
# ---------------------------------------------------------------------------


class TestExactReplay:
    @pytest.mark.parametrize("protocol,config_of", PROTOCOLS, ids=IDS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_recorded_schedule_replays_exactly(self, protocol, config_of, seed):
        config = config_of(make_rng(seed))
        schedule = RecordedSchedule.record(N, 1_200, make_rng(seed + 50))
        via_object = replay(protocol, [s.clone() for s in config], schedule)
        via_array = replay_array(protocol, [s.clone() for s in config], schedule)
        encode = protocol.encode_state
        assert [encode(s) for s in via_object] == [encode(s) for s in via_array]

    @pytest.mark.parametrize("protocol,config_of", PROTOCOLS, ids=IDS)
    def test_conflict_heavy_schedule(self, protocol, config_of):
        # Repeated hot pairs and chains force the scalar tail and multi-
        # round paths; the result must still match sequential replay.
        schedule = RecordedSchedule(
            [(0, 1)] * 40 + [(1, 2), (2, 3), (3, 4), (0, 1)] * 25 + [(4, 5), (5, 4)] * 30
        )
        config = config_of(make_rng(9))
        via_object = replay(protocol, [s.clone() for s in config], schedule)
        via_array = replay_array(protocol, [s.clone() for s in config], schedule)
        encode = protocol.encode_state
        assert [encode(s) for s in via_object] == [encode(s) for s in via_array]

    def test_block_size_does_not_change_results(self):
        protocol = CaiIzumiWada(BaselineParams(n=48))
        small = ArraySimulation(protocol, n=48, seed=7, block_size=1)
        large = ArraySimulation(protocol, n=48, seed=7, block_size=1 << 14)
        ragged = ArraySimulation(protocol, n=48, seed=7, block_size=977)
        small.run_batch(4_000)
        large.run_batch(4_000)
        for _ in range(40):
            ragged.run_batch(100)
        assert (small.codes == large.codes).all()
        assert (small.codes == ragged.codes).all()

    def test_apply_pair_block_matches_scalar_loop(self):
        protocol = LooselyStabilizingLeaderElection(BaselineParams(n=16), tau=1.0)
        table = transition_table_for(protocol)
        rng = make_rng(4)
        config = protocol.adversarial_configuration(rng)
        codes = np.array([protocol.encode_state(s) for s in config], dtype=np.int64)
        initiators, responders = ArrayScheduler(16, seed=8).next_pairs(600)
        expected = codes.copy()
        for i, j in zip(initiators.tolist(), responders.tolist()):
            a, b = int(expected[i]), int(expected[j])
            expected[i], expected[j] = table.lookup(a, b)
        apply_pair_block(codes, initiators, responders, table)
        assert (codes == expected).all()

    def test_schedule_validation(self):
        protocol = PairwiseElimination(6)
        sim = ArraySimulation(protocol, n=6, seed=0)
        with pytest.raises(ValueError, match="outside population"):
            sim.apply_schedule([(0, 9)])
        sim.apply_schedule([])  # empty schedule is a no-op
        assert sim.metrics.interactions == 0


# ---------------------------------------------------------------------------
# Simulation semantics and cross-backend equivalence
# ---------------------------------------------------------------------------


class TestArraySimulation:
    def test_mirrors_simulation_interface(self):
        protocol = PairwiseElimination(10)
        sim = ArraySimulation(protocol, n=10, seed=0)
        sim.run(25)
        assert sim.metrics.interactions == 25
        assert sim.metrics.parallel_time == 2.5
        assert len(sim.config) == 10
        with pytest.raises(ValueError):
            ArraySimulation(protocol)
        with pytest.raises(ValueError):
            ArraySimulation(protocol, config=[protocol.initial_state()])
        with pytest.raises(ValueError):
            sim.run_batch(-1)
        with pytest.raises(ValueError):
            sim.run_until(lambda config: False, 10, check_interval=0)

    def test_run_until_checks_initial_config(self):
        protocol = PairwiseElimination(10)
        config = [protocol.initial_state() for _ in range(10)]
        for state in config[1:]:
            state.leader = False
        result = ArraySimulation(protocol, config=config, seed=1).run_until(
            protocol.is_goal_configuration, max_interactions=100
        )
        assert result.converged and result.interactions == 0

    def test_counts_aware_predicates_take_the_bincount_fast_path(self):
        # Satellite of the fault-engine PR: run_until must answer
        # counts-aware predicates from one bincount per check, never by
        # decoding n state objects.
        from repro.sim.counts_backend import counts_aware

        protocol = PairwiseElimination(12)
        calls = {"config": 0, "counts": 0}

        def on_config(config):
            calls["config"] += 1
            return protocol.is_goal_configuration(config)

        def on_counts(counts):
            calls["counts"] += 1
            assert int(counts.sum()) == 12
            return protocol.goal_counts(counts)

        sim = ArraySimulation(protocol, n=12, seed=0)
        result = sim.run_until(
            counts_aware(on_config, on_counts),
            max_interactions=100_000,
            check_interval=32,
        )
        assert result.converged
        assert calls["counts"] > 0
        assert calls["config"] == 0
        assert protocol.is_goal_configuration(sim.config)

    def test_predicate_holds_agrees_with_config_form(self):
        from repro.sim.counts_backend import goal_counts_predicate

        protocol = CaiIzumiWada(BaselineParams(n=12))
        sim = ArraySimulation(protocol, n=12, seed=3)
        predicate = goal_counts_predicate(protocol)
        for _ in range(20):
            assert sim.predicate_holds(predicate) == bool(predicate(sim.config))
            sim.run_batch(50)

    def test_run_until_budget_and_quantization(self):
        protocol = PairwiseElimination(10)
        result = ArraySimulation(protocol, n=10, seed=1).run_until(
            lambda config: False, max_interactions=100
        )
        assert not result.converged and result.interactions == 100
        result = ArraySimulation(protocol, n=10, seed=1).run_until(
            protocol.is_goal_configuration, max_interactions=100_000, check_interval=64
        )
        assert result.converged and result.interactions % 64 == 0

    @pytest.mark.parametrize(
        "protocol,n,predicate_of",
        [
            (CaiIzumiWada(BaselineParams(n=N)), N, lambda p: p.is_silent_configuration),
            (
                LooselyStabilizingLeaderElection(BaselineParams(n=24), tau=2.0),
                24,
                lambda p: p.is_goal_configuration,
            ),
            (PairwiseElimination(24), 24, lambda p: p.is_goal_configuration),
            (
                ResetEpidemicProtocol(ProtocolParams(n=16, r=2)),
                16,
                lambda p: p.is_goal_configuration,
            ),
        ],
        ids=["ciw", "loose", "pairwise", "reset"],
    )
    def test_same_verdict_as_object_backend(self, protocol, n, predicate_of):
        predicate = predicate_of(protocol)
        for seed in (0, 1):
            outcomes = {
                backend: run_until(
                    protocol,
                    predicate,
                    n=n,
                    seed=seed,
                    max_interactions=3_000_000,
                    check_interval=128,
                    backend=backend,
                )
                for backend in ("object", "array")
            }
            assert outcomes["object"].converged == outcomes["array"].converged
            if outcomes["object"].converged:
                assert predicate(outcomes["array"].config)

    def test_stabilization_time_distributions_overlap(self):
        # Different RNG streams, same law: bootstrap CIs for the median
        # stabilization time must overlap across backends.
        protocol = LooselyStabilizingLeaderElection(BaselineParams(n=24), tau=2.0)
        summaries = {
            backend: run_trials(
                protocol,
                protocol.is_goal_configuration,
                n=24,
                trials=30,
                max_interactions=500_000,
                seed=17,
                check_interval=32,
                backend=backend,
            )
            for backend in ("object", "array")
        }
        assert summaries["object"].success_rate == summaries["array"].success_rate == 1.0
        ci_object = bootstrap_ci(summaries["object"].interactions, rng=make_rng(1))
        ci_array = bootstrap_ci(summaries["array"].interactions, rng=make_rng(2))
        assert ci_object.low <= ci_array.high and ci_array.low <= ci_object.high

    def test_explicit_start_configuration(self):
        protocol = CaiIzumiWada(BaselineParams(n=8))
        config = protocol.adversarial_configuration(make_rng(2))
        sim = ArraySimulation(protocol, config=[s.clone() for s in config], seed=0)
        assert [s.rank for s in sim.config] == [s.rank for s in config]


class TestBackendRouting:
    def test_resolve_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_BACKEND", raising=False)
        assert resolve_backend(None) == "object"
        assert resolve_backend("array") == "array"
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gpu")
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "array")
        assert resolve_backend(None) == "array"
        assert resolve_backend("object") == "object"  # explicit beats env

    def test_make_simulation_routes(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_BACKEND", raising=False)
        protocol = PairwiseElimination(8)
        from repro.sim.simulation import Simulation

        assert isinstance(make_simulation(protocol, n=8), Simulation)
        assert isinstance(make_simulation(protocol, n=8, backend="array"), ArraySimulation)
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "array")
        assert isinstance(make_simulation(protocol, n=8), ArraySimulation)

    def test_run_trials_backend_parity(self):
        protocol = PairwiseElimination(16)
        results = {
            backend: run_trials(
                protocol,
                protocol.is_goal_configuration,
                n=16,
                trials=10,
                max_interactions=100_000,
                seed=3,
                check_interval=16,
                backend=backend,
            )
            for backend in ("object", "array")
        }
        assert results["object"].success_rate == results["array"].success_rate == 1.0


class TestSweepBackend:
    def test_grid_rejects_unknown_backend(self):
        with pytest.raises(SweepError, match="unknown backend"):
            GridSpec(ns=(8,), backend="gpu")

    def test_grid_rejects_tableless_protocols_on_array(self):
        with pytest.raises(SweepError, match="array"):
            GridSpec(ns=(8,), protocols=("elect_leader",), backend="array")

    def test_grid_round_trips_backend(self):
        grid = GridSpec(ns=(8,), protocols=("cai_izumi_wada",), backend="array")
        assert GridSpec.from_dict(grid.to_dict()) == grid

    def test_array_sweep_runs_and_records_backend(self, tmp_path):
        grid = GridSpec(
            ns=(8, 12),
            protocols=("cai_izumi_wada", "pairwise_elimination"),
            trials=2,
            seed=5,
            max_interactions=200_000,
            check_interval=50,
            backend="array",
        )
        path = tmp_path / "array-sweep.jsonl"
        result = run_sweep(grid, jsonl_path=path)
        assert all(outcome.backend == "array" for outcome in result.outcomes)
        assert all(outcome.converged for outcome in result.outcomes)
        # The checkpoint resumes cleanly under the same backend.
        resumed = run_sweep(grid, jsonl_path=path, resume=True)
        assert resumed.resumed_trials == len(result.outcomes)

"""Unit and property tests for :mod:`repro.core.partition`."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import RankPartition, cached_partition


class TestConstruction:
    def test_group_count(self):
        assert RankPartition(10, 4).group_count == 3
        assert RankPartition(12, 4).group_count == 3
        assert RankPartition(12, 1).group_count == 12

    def test_sizes_sum_to_n(self):
        partition = RankPartition(10, 4)
        assert sum(partition.sizes()) == 10

    def test_sizes_nearly_equal(self):
        partition = RankPartition(10, 4)
        assert set(partition.sizes()) <= {3, 4}

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            RankPartition(10, 0)
        with pytest.raises(ValueError):
            RankPartition(10, 11)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            RankPartition(0, 1)

    def test_r_equals_n(self):
        partition = RankPartition(8, 8)
        assert partition.group_count == 1
        assert partition.group_size(0) == 8


class TestMembership:
    def test_groups_contiguous(self):
        partition = RankPartition(10, 4)
        for group in range(partition.group_count):
            ranks = list(partition.group_ranks(group))
            assert ranks == list(range(ranks[0], ranks[0] + len(ranks)))

    def test_group_of_matches_group_ranks(self):
        partition = RankPartition(13, 5)
        for group in range(partition.group_count):
            for rank in partition.group_ranks(group):
                assert partition.group_of(rank) == group

    def test_position_in_group_one_based(self):
        partition = RankPartition(10, 4)
        for group in range(partition.group_count):
            positions = [partition.position_in_group(r) for r in partition.group_ranks(group)]
            assert positions == list(range(1, partition.group_size(group) + 1))

    def test_same_group(self):
        partition = RankPartition(10, 4)
        assert partition.same_group(1, 2)
        assert not partition.same_group(1, 10)

    def test_rank_out_of_range(self):
        partition = RankPartition(10, 4)
        with pytest.raises(ValueError):
            partition.group_of(0)
        with pytest.raises(ValueError):
            partition.group_of(11)


class TestPaperRequirements:
    """Section 3.3: ⌈n/r⌉ groups with sizes in {⌈r/2⌉, ..., r}."""

    @given(
        n=st.integers(min_value=2, max_value=400),
        r_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_group_size_bounds(self, n: int, r_fraction: float):
        r = max(1, min(n, 1 + int(r_fraction * (n - 1))))
        partition = RankPartition(n, r)
        assert partition.group_count == math.ceil(n / r)
        for size in partition.sizes():
            assert size <= r
            # Sizes are ⌊n/g⌋ or ⌈n/g⌉ with g = ⌈n/r⌉, hence > r/2 - 1.
            assert size >= math.ceil(r / 2) - 1
        assert sum(partition.sizes()) == n

    @given(n=st.integers(min_value=2, max_value=300))
    @settings(max_examples=60, deadline=None)
    def test_every_rank_in_exactly_one_group(self, n: int):
        r = max(1, n // 3)
        partition = RankPartition(n, r)
        covered = []
        for group in range(partition.group_count):
            covered.extend(partition.group_ranks(group))
        assert sorted(covered) == list(range(1, n + 1))


class TestCache:
    def test_cached_partition_identity(self):
        assert cached_partition(20, 4) is cached_partition(20, 4)

    def test_cached_partition_distinct_keys(self):
        assert cached_partition(20, 4) is not cached_partition(20, 5)

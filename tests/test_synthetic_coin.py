"""Tests for the synthetic-coin substrate (Appendix B, Lemma B.1)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.scheduler.rng import make_rng
from repro.substrates.synthetic_coin import (
    SyntheticCoinPopulation,
    SyntheticCoinState,
    bits_needed,
)


class TestBitsNeeded:
    def test_powers_of_two(self):
        assert bits_needed(2) == 1
        assert bits_needed(16) == 4
        assert bits_needed(64) == 6

    def test_non_powers_round_up(self):
        assert bits_needed(3) == 2
        assert bits_needed(17) == 5

    def test_rejects_trivial_space(self):
        with pytest.raises(ValueError):
            bits_needed(1)


class TestMechanics:
    def test_interaction_flips_both_coins(self):
        population = SyntheticCoinPopulation(4, value_space=4, rng=make_rng(0))
        before = [s.coin for s in population.states]
        population.interact(0, 1)
        assert population.states[0].coin == 1 - before[0]
        assert population.states[1].coin == 1 - before[1]
        assert population.states[2].coin == before[2]

    def test_interaction_records_partner_coin(self):
        population = SyntheticCoinPopulation(4, value_space=4, rng=make_rng(0))
        population.states[1].coin = 1
        population.interact(0, 1)
        u = population.states[0]
        # The slot written this interaction holds the partner's pre-flip coin.
        assert u.coins[u.coin_count] == 1

    def test_counter_cycles(self):
        population = SyntheticCoinPopulation(2, value_space=16, rng=make_rng(0))
        k = population.k
        for _ in range(k):
            population.interact(0, 1)
        assert population.states[0].coin_count == 0  # wrapped around

    def test_requires_two_agents(self):
        with pytest.raises(ValueError):
            SyntheticCoinPopulation(1, value_space=4, rng=make_rng(0))

    def test_state_clone(self):
        state = SyntheticCoinState(coin=1, coins=[0, 1], coin_count=1)
        copy = state.clone()
        copy.coins[0] = 1
        assert state.coins[0] == 0


class TestDistribution:
    def test_coin_balance_converges_to_half(self):
        """Coins start maximally biased (all 0) and must approach 1/2."""
        population = SyntheticCoinPopulation(256, value_space=16, rng=make_rng(1))
        assert population.coin_balance() == 0.0
        population.run(20_000)
        assert abs(population.coin_balance() - 0.5) < 0.1

    def test_sample_envelope_almost_uniform(self):
        """Lemma B.1: P[x] ∈ [1/(2N), 2/N] for every value x ∈ [N].

        We pool samples across agents and reads after a warm-up and allow a
        small statistical margin beyond the envelope."""
        n, N = 128, 8
        population = SyntheticCoinPopulation(n, value_space=N, rng=make_rng(2))
        population.run(30_000)  # warm-up: O(n log N)
        samples = population.collect_samples(reads=30, spacing_interactions=n * 4)
        counts = Counter(samples)
        total = len(samples)
        assert set(counts) <= set(range(N))
        for value in range(N):
            frequency = counts.get(value, 0) / total
            assert frequency > 1 / (2 * N) * 0.5, f"value {value} too rare: {frequency}"
            assert frequency < 2 / N * 1.5, f"value {value} too common: {frequency}"

    def test_sample_value_encoding(self):
        population = SyntheticCoinPopulation(2, value_space=8, rng=make_rng(0))
        population.states[0].coins = [1, 0, 1]
        assert population.sample_value(0) == 0b101

"""Tests for the structured protocol tracer."""

from __future__ import annotations

import pytest

from repro.adversary.initializers import all_duplicate_rank, corrupted_messages
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.scheduler.rng import make_rng
from repro.sim.simulation import Simulation
from repro.sim.trace import ProtocolTracer


@pytest.fixture
def protocol() -> ElectLeader:
    return ElectLeader(ProtocolParams(n=12, r=3))


def traced_run(protocol: ElectLeader, config, seed: int, budget: int) -> ProtocolTracer:
    sim = Simulation(protocol, config=config, n=None if config else protocol.n, seed=seed)
    tracer = ProtocolTracer(protocol)
    sim.observers.append(tracer.observe)
    sim.run_until(protocol.is_safe_configuration, max_interactions=budget, check_interval=1_000)
    return tracer


class TestTracer:
    def test_clean_run_traces_role_changes_only(self, protocol):
        tracer = traced_run(protocol, None, seed=1, budget=5_000_000)
        summary = tracer.summary()
        assert summary.get("role_change", 0) >= protocol.n  # every ranker verified
        assert summary.get("hard_reset", 0) == 0
        assert summary.get("soft_reset", 0) == 0
        assert summary.get("generation_change", 0) == 0

    def test_duplicate_leaders_trace_top_and_resets(self, protocol):
        config = all_duplicate_rank(protocol, make_rng(2), rank=1)
        tracer = traced_run(protocol, config, seed=3, budget=5_000_000)
        summary = tracer.summary()
        assert summary.get("hard_reset", 0) >= 1
        # The hard reset shows up as verifier → resetter role changes.
        kinds = {event.detail for event in tracer.events if event.kind == "role_change"}
        assert any("resetting" in detail for detail in kinds)

    def test_soft_reset_traces_generation_changes(self, protocol):
        config = corrupted_messages(protocol, make_rng(4), corruptions=3)
        for agent in config:
            assert agent.sv is not None
            agent.sv.probation_timer = 0
        tracer = traced_run(protocol, config, seed=5, budget=5_000_000)
        summary = tracer.summary()
        assert summary.get("generation_change", 0) >= 1
        # Ranks must never change on the soft path.
        assert summary.get("rank_change", 0) == 0

    def test_timeline_rendering(self, protocol):
        tracer = traced_run(protocol, None, seed=6, budget=5_000_000)
        text = tracer.timeline(last=5)
        assert "role_change" in text
        lines = text.splitlines()
        assert len(lines) <= 5

    def test_empty_timeline(self, protocol):
        tracer = ProtocolTracer(protocol)
        assert tracer.timeline() == "(no events)"

    def test_ring_buffer_capacity(self, protocol):
        tracer = ProtocolTracer(protocol, capacity=3)
        config = all_duplicate_rank(protocol, make_rng(7), rank=1)
        sim = Simulation(protocol, config=config, seed=8)
        sim.observers.append(tracer.observe)
        sim.run(20_000)
        assert len(tracer.events) <= 3
        # Counts still accumulate beyond the buffer.
        assert sum(tracer.summary().values()) >= len(tracer.events)

"""Tests for ``repro.obs`` — tracing, metrics, and the ``repro trace`` CLI.

The load-bearing contract is the zero-overhead / zero-perturbation law:

* with no sink configured, :func:`get_tracer` returns one shared no-op
  object, so instrumented call sites pay a single attribute check;
* with a sink configured, tracing never touches an RNG stream — traced
  and untraced runs produce **byte-identical** sweep checkpoints on
  every registered backend, and an ``instrument_steps``-instrumented
  drive reaches the exact outcome of the plain one.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.fabric import run_pool
from repro.obs import (
    NULL_TRACER,
    STEP_PHASES,
    TRACE_ENV,
    MetricsRegistry,
    SpanBuffer,
    TraceError,
    Tracer,
    configure_tracing,
    get_tracer,
    load_trace,
    step_breakdown_rows,
    summarize_trace,
    to_chrome_trace,
)
from repro.sim.backends import backend_names, make_simulation
from repro.sim.initial_state import CountVector
from repro.sim.sweep import CLEAN, GridSpec, run_sweep
from repro.substrates.epidemics import EpidemicProtocol


@pytest.fixture(autouse=True)
def _tracing_off(monkeypatch):
    """Every test starts and ends with tracing disabled (the env var is
    process-global and the tracer is memoized on it)."""
    monkeypatch.delenv(TRACE_ENV, raising=False)
    yield
    configure_tracing(None)


def vector_grid(backend: str, **overrides) -> GridSpec:
    """A tiny grid a vectorized backend can run."""
    values = dict(
        protocols=("cai_izumi_wada",),
        ns=(16, 24),
        rs=(2,),
        adversaries=(CLEAN,),
        fault_rates=(0.0,),
        trials=3,
        seed=7,
        max_interactions=200_000,
        check_interval=100,
        backend=backend,
    )
    values.update(overrides)
    return GridSpec(**values)


def grid_for(backend: str) -> GridSpec:
    if backend == "object":
        return vector_grid(backend, protocols=("elect_leader",), ns=(8, 10))
    return vector_grid(backend)


class TestNullTracer:
    def test_disabled_tracer_is_the_shared_noop(self):
        tracer = get_tracer()
        assert tracer is NULL_TRACER
        assert tracer.enabled is False

    def test_null_span_is_one_preallocated_object(self):
        tracer = get_tracer()
        first = tracer.span("a", item=1)
        second = tracer.span("b")
        assert first is second  # no allocation per span when disabled
        with first as span:
            span.event("ignored")
            span.annotate(key="ignored")
        tracer.event("ignored")
        tracer.record_span("ignored", 0.0, 1.0)

    def test_memoized_on_env_value(self, monkeypatch, tmp_path):
        sink = tmp_path / "t.jsonl"
        monkeypatch.setenv(TRACE_ENV, str(sink))
        tracer = get_tracer()
        assert tracer.enabled and tracer is get_tracer()
        monkeypatch.delenv(TRACE_ENV)
        assert get_tracer() is NULL_TRACER


class TestTracer:
    def test_nested_spans_parent_links_and_order(self, tmp_path):
        sink = tmp_path / "t.jsonl"
        tracer = Tracer(str(sink))
        with tracer.span("outer", item=1) as outer:
            with tracer.span("inner"):
                pass
            outer.event("tick", k=2)
        tracer.close()
        records = load_trace(sink)
        # completion order: inner span, then the event line, then outer
        inner, event, outer_rec = records
        assert [r["name"] for r in records] == ["inner", "tick", "outer"]
        assert outer_rec["parent"] is None
        assert inner["parent"] == outer_rec["id"]
        assert event["kind"] == "event" and event["parent"] == outer_rec["id"]
        assert outer_rec["labels"] == {"item": 1}
        assert outer_rec["dur"] >= inner["dur"] >= 0.0

    def test_annotate_merges_labels(self, tmp_path):
        tracer = Tracer(str(tmp_path / "t.jsonl"))
        with tracer.span("s", a=1) as span:
            span.annotate(b=2)
        tracer.close()
        (record,) = load_trace(tmp_path / "t.jsonl")
        assert record["labels"] == {"a": 1, "b": 2}

    def test_record_span_uses_explicit_endpoints(self, tmp_path):
        tracer = Tracer(str(tmp_path / "t.jsonl"))
        tracer.record_span("cell", tracer.epoch + 1.5, 0.25, cell="x")
        tracer.close()
        (record,) = load_trace(tmp_path / "t.jsonl")
        assert record["ts"] == pytest.approx(1.5)
        assert record["dur"] == pytest.approx(0.25)
        assert record["labels"] == {"cell": "x"}

    def test_span_buffer_collects_in_memory(self):
        buffer = SpanBuffer()
        with buffer.span("work", worker=1):
            pass
        assert len(buffer.records) == 1
        assert buffer.records[0]["name"] == "work"
        # raw monotonic stamps: the parent rebases them at the yield point
        assert buffer.epoch == 0.0


class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("trials", backend="counts")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)
        # same (name, labels) key -> same instrument
        assert registry.counter("trials", backend="counts") is counter

    def test_gauge_and_histogram(self):
        registry = MetricsRegistry()
        registry.gauge("workers").set(4)
        histogram = registry.histogram("latency")
        for value in (0.5, 1.5, 1.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.min == 0.5 and histogram.max == 1.5
        assert histogram.mean == pytest.approx(1.0)

    def test_stopwatch_observes_into_histogram(self):
        registry = MetricsRegistry()
        with registry.stopwatch("phase", name_label="draw") as watch:
            pass
        assert watch.seconds >= 0.0
        assert registry.histogram("phase", name_label="draw").count == 1

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b", k=1).set(2)
        registry.histogram("c").observe(1.0)
        snapshot = registry.snapshot()
        assert {row["name"] for row in snapshot["counters"]} == {"a"}
        assert snapshot["gauges"] == [{"name": "b", "labels": {"k": 1}, "value": 2.0}]
        assert snapshot["histograms"][0]["count"] == 1
        registry.reset()
        assert registry.snapshot() == {"counters": [], "gauges": [], "histograms": []}

    def test_step_breakdown_rows_canonical_order_and_shares(self):
        rows = step_breakdown_rows({"apply": 3.0, "draw": 1.0, "extra": 0.0})
        assert [row["phase"] for row in rows] == ["draw", "apply", "extra"]
        assert rows[0]["share"] == "25%" and rows[1]["share"] == "75%"
        assert list(STEP_PHASES) == ["draw", "match", "apply", "retire"]


class TestBitIdentity:
    """Tracing (and the instrumented twin loops behind it) never changes
    results — the observability invariant, per backend."""

    @pytest.mark.parametrize("backend", sorted(backend_names()))
    def test_instrumented_run_matches_plain(self, backend, monkeypatch):
        monkeypatch.setenv("REPRO_JIT_PURE_PYTHON", "1")
        protocol = EpidemicProtocol()
        n = 64
        if protocol.num_states() is None and backend != "object":
            pytest.skip("vectorized backends need a finite-state protocol")
        if backend == "object":
            protocol = ElectLeader(ProtocolParams(n=n, r=2))
            predicate = protocol.is_safe_configuration
            build = lambda: make_simulation(protocol, n=n, seed=3, backend=backend)
        else:
            from repro.sim.counts_backend import goal_counts_predicate

            predicate = goal_counts_predicate(protocol)
            build = lambda: make_simulation(
                protocol, init=CountVector([n - 1, 1]), seed=3, backend=backend
            )
        plain = build().run_until(predicate, max_interactions=50_000, check_interval=64)
        instrumented_sim = build()
        timings = instrumented_sim.instrument_steps()
        traced = instrumented_sim.run_until(
            predicate, max_interactions=50_000, check_interval=64
        )
        assert traced.interactions == plain.interactions
        assert traced.converged == plain.converged
        assert set(timings) == set(STEP_PHASES)
        assert sum(timings.values()) > 0.0

    @pytest.mark.parametrize("backend", sorted(backend_names()))
    def test_traced_sweep_checkpoint_is_byte_identical(
        self, backend, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_JIT_PURE_PYTHON", "1")
        grid = grid_for(backend)
        plain_out = tmp_path / "plain.jsonl"
        run_sweep(grid, jsonl_path=plain_out)
        configure_tracing(str(tmp_path / "trace.jsonl"))
        traced_out = tmp_path / "traced.jsonl"
        run_sweep(grid, jsonl_path=traced_out)
        configure_tracing(None)
        assert traced_out.read_bytes() == plain_out.read_bytes()
        records = load_trace(tmp_path / "trace.jsonl")
        names = {record["name"] for record in records}
        assert "sweep.checkpoint_append" in names
        assert "sweep.cell" in names
        assert any(name.startswith("step.") for name in names)

    def test_traced_parallel_sweep_matches_serial(self, tmp_path):
        grid = grid_for("object")
        serial_out = tmp_path / "serial.jsonl"
        run_sweep(grid, jsonl_path=serial_out)
        configure_tracing(str(tmp_path / "trace.jsonl"))
        parallel_out = tmp_path / "parallel.jsonl"
        run_sweep(grid, jsonl_path=parallel_out, workers=2)
        configure_tracing(None)
        assert parallel_out.read_bytes() == serial_out.read_bytes()
        records = load_trace(tmp_path / "trace.jsonl")
        trials = [r for r in records if r["name"] == "sweep.trial"]
        assert len(trials) == len(grid.ns) * grid.trials
        # the reorder buffer writes worker spans in deterministic order
        assert [span["labels"]["item"] for span in trials] == sorted(
            span["labels"]["item"] for span in trials
        )


class TestPoolLeaseEvents:
    def test_pool_run_streams_lease_lifecycle(self, tmp_path):
        grid = GridSpec(
            protocols=("elect_leader",),
            ns=(8, 10),
            rs=(2,),
            adversaries=(CLEAN,),
            fault_rates=(0.0,),
            trials=2,
            seed=11,
            max_interactions=500_000,
            check_interval=500,
        )
        sink = tmp_path / "pool.trace.jsonl"
        configure_tracing(str(sink))
        run_pool(grid, out=tmp_path / "pool.jsonl", workers=2, backoff=0.0)
        configure_tracing(None)
        records = load_trace(sink)
        lease = [r for r in records if r["name"].startswith("pool.lease.")]
        kinds = {r["name"] for r in lease}
        assert "pool.lease.spawn" in kinds
        assert "pool.lease.complete" in kinds
        shards = {r["labels"]["shard"] for r in lease}
        assert shards == {0, 1}
        timelines = summarize_trace(records)["lease_timelines"]
        assert sorted(timelines) == ["0", "1"]
        for timeline in timelines.values():
            assert timeline[0]["state"] == "spawn"
            assert timeline[-1]["state"] == "complete"


class TestTraceIO:
    def test_load_trace_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="no such trace file"):
            load_trace(tmp_path / "absent.jsonl")

    def test_load_trace_corrupt_line(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind":"span","name":"a","ts":0,"dur":1}\n{oops\n')
        with pytest.raises(TraceError, match="not a JSON trace record"):
            load_trace(bad)

    def test_load_trace_rejects_non_records_and_empty(self, tmp_path):
        wrong = tmp_path / "wrong.jsonl"
        wrong.write_text('[1, 2, 3]\n')
        with pytest.raises(TraceError, match="not a trace record"):
            load_trace(wrong)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(TraceError, match="empty trace"):
            load_trace(empty)

    def test_summary_self_time_subtracts_children(self):
        records = [
            {"kind": "span", "name": "inner", "ts": 0.1, "dur": 0.6,
             "pid": 1, "id": "1:2", "parent": "1:1", "labels": {}},
            {"kind": "span", "name": "outer", "ts": 0.0, "dur": 1.0,
             "pid": 1, "id": "1:1", "parent": None, "labels": {}},
        ]
        summary = summarize_trace(records)
        by_name = {row["name"]: row for row in summary["top_spans"]}
        assert by_name["outer"]["total_s"] == pytest.approx(1.0)
        assert by_name["outer"]["self_s"] == pytest.approx(0.4)
        assert by_name["inner"]["self_s"] == pytest.approx(0.6)

    def test_chrome_export_shape(self):
        records = [
            {"kind": "span", "name": "s", "ts": 0.5, "dur": 0.25,
             "pid": 7, "id": "7:1", "parent": None, "labels": {"item": 3}},
            {"kind": "event", "name": "e", "ts": 0.75, "pid": 7,
             "parent": "7:1", "labels": {}},
        ]
        document = to_chrome_trace(records)
        span_event, instant = document["traceEvents"]
        assert span_event["ph"] == "X"
        assert span_event["ts"] == pytest.approx(0.5e6)
        assert span_event["dur"] == pytest.approx(0.25e6)
        assert span_event["pid"] == span_event["tid"] == 7
        assert span_event["args"] == {"item": 3}
        assert instant["ph"] == "i" and instant["s"] == "p"


class TestTraceCLI:
    def run_traced_sweep(self, tmp_path) -> str:
        sink = tmp_path / "sweep.trace.jsonl"
        code = main(
            [
                "sweep", "--protocols", "elect_leader", "--ns", "8",
                "--trials", "2", "--seed", "5", "--out",
                str(tmp_path / "sweep.jsonl"), "--no-progress",
                "--trace", str(sink),
            ]
        )
        assert code == 0
        return str(sink)

    def test_missing_file_exits_2(self, tmp_path, capsys):
        code = main(["trace", str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_corrupt_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        code = main(["trace", str(bad)])
        assert code == 2
        assert "not a JSON trace record" in capsys.readouterr().err

    def test_text_summary(self, tmp_path, capsys):
        sink = self.run_traced_sweep(tmp_path)
        capsys.readouterr()
        assert main(["trace", sink]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace: ")
        assert "sweep.trial" in out
        assert "draw" in out  # the step-phase table

    def test_json_summary(self, tmp_path, capsys):
        sink = self.run_traced_sweep(tmp_path)
        capsys.readouterr()
        assert main(["trace", sink, "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["records"] == summary["spans"] + summary["events"]
        assert summary["spans"] > 0
        assert {row["name"] for row in summary["top_spans"]} >= {
            "sweep.trial", "sweep.cell", "sweep.checkpoint_append",
        }

    def test_chrome_export_round_trips(self, tmp_path, capsys):
        sink = self.run_traced_sweep(tmp_path)
        chrome = tmp_path / "chrome.json"
        assert main(["trace", sink, "--chrome", str(chrome)]) == 0
        document = json.loads(chrome.read_text())
        records = load_trace(sink)
        assert len(document["traceEvents"]) == len(records)
        assert {e["name"] for e in document["traceEvents"]} == {
            r["name"] for r in records
        }

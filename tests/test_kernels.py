"""The compiled lockstep kernels (``backend='batch-jit'``).

Contracts gated here:

* **loud failure, explicit escape hatch** — without numba the backend
  raises :class:`~repro.sim.kernels.JitBackendError` with the
  ``[jit]``-extra install hint at construction; only the explicit
  ``REPRO_JIT_PURE_PYTHON=1`` opt-in runs the kernel source uncompiled
  (the ``pure_ok`` fixture below, so this whole suite passes on the
  numba-free CI matrix — slowly — and compiled on the ``jit`` job);
* **the counter-based stream** — per-row draws are a pure function of
  ``(key, counter)``, land in ``[0, 1)``, and distinct keys give
  distinct streams;
* **the scalar hypergeometric is law-exact** — support bounds are hard,
  the Monte-Carlo mean tracks the closed form over hypothesis-drawn
  parameters, a fixed-seed sample passes a two-sample KS test against
  ``numpy``'s sampler, and degenerate supports consume no randomness
  (the conditional-chain decomposition inherits the law);
* **engine equivalence** — ``batch-jit`` vs ``batch`` agrees in law
  (KS over completion interactions), ``T = 1`` is bit-for-bit the
  counts engine, the fused and phase-split (instrumented) steppers are
  bit-identical, silence verdicts match the numpy scan, and fault burst
  schedules are bit-identical to the per-trial
  :class:`~repro.sim.fault_engine.FaultEngine`;
* **row-vectorized predicates** — the batch engines answer convergence
  through ``on_counts_rows`` (never the scalar form when the vector
  form is present), and every protocol's ``goal_counts_rows`` override
  agrees with its per-row ``goal_counts``;
* **the poisoned-RNG gate holds** — ``repro lint`` over
  ``repro.sim.kernels`` is clean (no generator construction sneaks into
  the kernel module).
"""

from __future__ import annotations

import math
import statistics
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core.params import BaselineParams, ProtocolParams  # noqa: E402
from repro.core.protocol import PopulationProtocol  # noqa: E402
from repro.lint import run_lint  # noqa: E402
from repro.scheduler.rng import derive_seed, np_generator  # noqa: E402
from repro.sim import kernels  # noqa: E402
from repro.sim.backends import make_simulation  # noqa: E402
from repro.sim.batch_backend import BatchCountsEngine  # noqa: E402
from repro.sim.counts_backend import (  # noqa: E402
    CountsBackendError,
    counts_aware,
    goal_counts_predicate,
)
from repro.sim.fault_engine import FaultSpec  # noqa: E402
from repro.sim.initial_state import CountVector, Replicated  # noqa: E402
from repro.sim.kernels import (  # noqa: E402
    PURE_PYTHON_ENV,
    JitBackendError,
    JitBatchCountsEngine,
    jit_available,
    overflow_guard,
    require_numba,
)
from repro.sim.trials import run_trials  # noqa: E402
from repro.substrates.epidemics import EpidemicProtocol  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Law-equivalence cell — small enough for the uncompiled escape hatch.
TRIALS = 48
N = 256
KS_ALPHA = 1e-3


@pytest.fixture
def pure_ok(monkeypatch):
    """Allow the uncompiled escape hatch when numba is absent."""
    if not jit_available():
        monkeypatch.setenv(PURE_PYTHON_ENV, "1")


def _key(*parts: int):
    seed = 0
    for part in parts:
        seed = derive_seed(seed, part)
    return np.uint64(seed)


def _ks_statistic(xs, ys) -> float:
    """Two-sample KS statistic with ties handled (discrete data)."""
    xs = sorted(float(x) for x in xs)
    ys = sorted(float(y) for y in ys)
    nx, ny = len(xs), len(ys)
    ix = iy = 0
    stat = 0.0
    while ix < nx and iy < ny:
        value = min(xs[ix], ys[iy])
        while ix < nx and xs[ix] == value:
            ix += 1
        while iy < ny and ys[iy] == value:
            iy += 1
        stat = max(stat, abs(ix / nx - iy / ny))
    return stat


def _ks_threshold(nx: int, ny: int, alpha: float = KS_ALPHA) -> float:
    return math.sqrt(-math.log(alpha / 2.0) / 2.0) * math.sqrt((nx + ny) / (nx * ny))


def _epidemic_batch(trials: int, n: int, *, seed: int = 7, backend: str = "batch-jit"):
    return make_simulation(
        EpidemicProtocol(),
        init=Replicated(CountVector([n - 1, 1]), trials),
        seed=seed,
        backend=backend,
    )


class TestImportGuard:
    """Missing numba fails loudly; the escape hatch is an explicit opt-in."""

    def test_require_numba_raises_the_install_hint(self, monkeypatch):
        monkeypatch.setattr(kernels, "_numba", None)
        monkeypatch.delenv(PURE_PYTHON_ENV, raising=False)
        with pytest.raises(
            JitBackendError,
            match=r"pip install repro-podc25-leader-election\[jit\]",
        ):
            require_numba()

    def test_engine_construction_fails_loudly(self, monkeypatch):
        monkeypatch.setattr(kernels, "_numba", None)
        monkeypatch.delenv(PURE_PYTHON_ENV, raising=False)
        with pytest.raises(JitBackendError, match="batch-jit backend requires numba"):
            _epidemic_batch(4, 100)

    def test_escape_hatch_downgrades_to_uncompiled(self, monkeypatch):
        monkeypatch.setattr(kernels, "_numba", None)
        monkeypatch.setenv(PURE_PYTHON_ENV, "1")
        assert require_numba() is None
        engine = _epidemic_batch(4, 100)
        assert isinstance(engine, JitBatchCountsEngine)

    def test_error_hierarchy_reaches_runtime_error(self):
        # L002 constructs backends live and notes (ImportError, RuntimeError)
        # as capability gaps; JitBackendError must land on that path.
        assert issubclass(JitBackendError, CountsBackendError)
        assert issubclass(JitBackendError, RuntimeError)


class TestCounterStream:
    """splitmix64 draws are a pure function of ``(key, counter)``."""

    def test_draws_are_deterministic_and_advance_the_counter(self):
        key = _key(7, 3)
        with overflow_guard():
            u1, c1 = kernels._k_next(key, np.uint64(0))
            u2, c2 = kernels._k_next(key, np.uint64(0))
        assert float(u1) == float(u2)
        assert int(c1) == int(c2) == 1

    def test_draws_fill_the_unit_interval(self):
        key = _key(11, 5)
        ctr = np.uint64(0)
        draws = []
        with overflow_guard():
            for _ in range(512):
                u, ctr = kernels._k_next(key, ctr)
                draws.append(float(u))
        assert all(0.0 <= u < 1.0 for u in draws)
        assert len(set(draws)) == len(draws)
        assert 0.40 < statistics.fmean(draws) < 0.60

    def test_distinct_keys_give_distinct_streams(self):
        with overflow_guard():
            a, _ = kernels._k_next(_key(1, 0), np.uint64(0))
            b, _ = kernels._k_next(_key(1, 1), np.uint64(0))
        assert float(a) != float(b)

    def test_randint_covers_the_range(self):
        key = _key(13, 2)
        ctr = np.uint64(0)
        seen = set()
        with overflow_guard():
            for _ in range(256):
                x, ctr = kernels._k_randint(key, ctr, 5)
                seen.add(int(x))
        assert seen == {0, 1, 2, 3, 4}


def _draw_hyper(key, ngood: int, nbad: int, nsample: int, count: int) -> list[int]:
    ctr = np.uint64(0)
    out = []
    with overflow_guard():
        for _ in range(count):
            x, ctr = kernels._k_hypergeometric(key, ctr, ngood, nbad, nsample)
            out.append(int(x))
    return out


class TestHypergeometricKernel:
    """The mode-centered inversion samples the exact hypergeometric law."""

    @settings(max_examples=30, deadline=None)
    @given(
        ngood=st.integers(0, 60),
        nbad=st.integers(0, 60),
        frac=st.floats(0.0, 1.0),
    )
    def test_support_and_mean_match_the_law(self, ngood, nbad, frac):
        total = ngood + nbad
        nsample = min(total, int(frac * total))
        draws = _draw_hyper(_key(ngood, nbad, nsample), ngood, nbad, nsample, 256)
        lo = max(0, nsample - nbad)
        hi = min(ngood, nsample)
        assert all(lo <= x <= hi for x in draws)
        if total == 0 or nsample == 0:
            assert set(draws) == {0}
            return
        mean = nsample * ngood / total
        variance = 0.0
        if total > 1:
            variance = (
                nsample * (ngood / total) * (nbad / total) * (total - nsample) / (total - 1)
            )
        tolerance = max(6.0 * math.sqrt(variance / len(draws)), 1e-9)
        assert abs(statistics.fmean(draws) - mean) <= tolerance

    def test_degenerate_support_consumes_no_randomness(self):
        # ngood=4, nbad=0, nsample=3 pins the draw to 3; ctr must not move.
        with overflow_guard():
            x, ctr = kernels._k_hypergeometric(_key(1, 2), np.uint64(5), 4, 0, 3)
        assert int(x) == 3
        assert int(ctr) == 5

    def test_fixed_seed_ks_against_numpy(self):
        ngood, nbad, nsample = 40, 90, 35
        size = 1500
        draws = _draw_hyper(_key(ngood, nbad, nsample), ngood, nbad, nsample, size)
        reference = np_generator(derive_seed(24, 1)).hypergeometric(
            ngood, nbad, nsample, size=size
        )
        stat = _ks_statistic(draws, reference)
        assert stat <= _ks_threshold(size, size), stat


class TestSampleChainLaw:
    """The conditional chain matches numpy's multivariate hypergeometric."""

    def test_composition_is_a_valid_subsample(self):
        pool = np.asarray([50, 30, 15, 5], dtype=np.int64)
        nsample = 40
        key = _key(9, 1)
        ctr = np.uint64(0)
        out = np.empty(4, dtype=np.int64)
        with overflow_guard():
            for _ in range(64):
                ctr = kernels._k_sample_chain(key, ctr, pool, nsample, out)
                assert int(out.sum()) == nsample
                assert bool((out >= 0).all()) and bool((out <= pool).all())

    def test_marginals_match_numpy(self):
        pool = np.asarray([50, 30, 15, 5], dtype=np.int64)
        nsample = 40
        trials = 600
        key = _key(9, 2)
        ctr = np.uint64(0)
        out = np.empty(4, dtype=np.int64)
        sums = np.zeros(4)
        first = []
        with overflow_guard():
            for _ in range(trials):
                ctr = kernels._k_sample_chain(key, ctr, pool, nsample, out)
                sums += out
                first.append(int(out[0]))
        total = int(pool.sum())
        for code in range(4):
            mean = nsample * pool[code] / total
            variance = (
                nsample
                * (pool[code] / total)
                * (1 - pool[code] / total)
                * (total - nsample)
                / (total - 1)
            )
            tolerance = 6.0 * math.sqrt(variance / trials)
            assert abs(sums[code] / trials - mean) <= tolerance, code
        reference = np_generator(derive_seed(24, 2)).multivariate_hypergeometric(
            pool.tolist(), nsample, size=trials
        )
        stat = _ks_statistic(first, reference[:, 0])
        assert stat <= _ks_threshold(trials, trials), stat


class TestEngineEquivalence:
    """``batch-jit`` agrees with ``batch`` in law and with itself in bits."""

    def _cell(self, backend: str):
        protocol = EpidemicProtocol()
        return run_trials(
            protocol,
            goal_counts_predicate(protocol),
            n=N,
            trials=TRIALS,
            max_interactions=30 * N,
            seed=7,
            check_interval=N // 4,
            init=CountVector([N - 1, 1]),
            workers=1,
            backend=backend,
        )

    def test_law_equivalence_with_the_numpy_batch_engine(self, pure_ok):
        batch = self._cell("batch")
        jit = self._cell("batch-jit")
        assert batch.converged == TRIALS
        assert jit.converged == TRIALS
        stat = _ks_statistic(batch.interactions, jit.interactions)
        assert stat <= _ks_threshold(TRIALS, TRIALS), stat

    def test_single_trial_is_bit_for_bit_the_counts_engine(self, pure_ok):
        protocol = EpidemicProtocol()
        outcomes = {
            backend: run_trials(
                protocol,
                goal_counts_predicate(protocol),
                n=N,
                trials=1,
                max_interactions=30 * N,
                seed=7,
                check_interval=N // 4,
                init=CountVector([N - 1, 1]),
                workers=1,
                backend=backend,
            )
            for backend in ("counts", "batch-jit")
        }
        assert outcomes["batch-jit"].interactions == outcomes["counts"].interactions
        assert outcomes["batch-jit"].converged == outcomes["counts"].converged

    def test_instrumented_stepper_is_bit_identical_to_fused(self, pure_ok):
        predicate = goal_counts_predicate(EpidemicProtocol())
        fused = _epidemic_batch(12, 200)
        phased = _epidemic_batch(12, 200)
        timings = phased.instrument_steps()
        fused.run_rows_until(predicate, max_interactions=30 * 200, check_interval=50)
        phased.run_rows_until(predicate, max_interactions=30 * 200, check_interval=50)
        assert bool((fused.counts == phased.counts).all())
        assert bool((fused._counters == phased._counters).all())
        assert set(timings) == set(BatchCountsEngine.STEP_PHASES)
        assert sum(timings.values()) > 0.0

    def test_silence_verdicts_match_the_numpy_scan(self, pure_ok):
        engine = _epidemic_batch(4, 50, seed=3)
        engine._matrix[:] = np.asarray(
            [[50, 0], [0, 50], [25, 25], [49, 1]], dtype=np.int64
        )
        rows = [0, 1, 2, 3]
        jit_verdicts = [bool(v) for v in engine._silent_rows(rows)]
        base_verdicts = [bool(v) for v in BatchCountsEngine._silent_rows(engine, rows)]
        assert jit_verdicts == base_verdicts
        assert jit_verdicts == [True, True, False, False]

    def test_fault_schedules_match_the_per_trial_engine(self, pure_ok):
        n = 200
        protocol = EpidemicProtocol()
        predicate = goal_counts_predicate(protocol)
        spec = FaultSpec(model="scramble_burst", rate=2.0, burst_size=3, seed=22)
        engine = _epidemic_batch(2, n, seed=9)
        engine.measure_rows_availability(
            predicate,
            total_interactions=4 * n,
            checkpoint_every=n,
            faults=[spec, spec],
        )
        twin = spec.make_engine(protocol, n=n)
        twin_sim = make_simulation(
            protocol, init=CountVector([n - 1, 1]), backend="counts", seed=9
        )
        twin.measure_availability(
            twin_sim, predicate, total_interactions=4 * n, checkpoint_every=n
        )
        expected = [event.interaction for event in twin.events]
        for row in (0, 1):
            assert [event.interaction for event in engine.fault_events(row)] == expected


def _predicate_protocols():
    from repro.baselines.cai_izumi_wada import CaiIzumiWada
    from repro.baselines.loosely_stabilizing import LooselyStabilizingLeaderElection
    from repro.baselines.nonss_leader import PairwiseElimination
    from repro.core.propagate_reset import ResetEpidemicProtocol

    return [
        EpidemicProtocol(),
        PairwiseElimination(32),
        LooselyStabilizingLeaderElection(BaselineParams(n=32)),
        CaiIzumiWada(BaselineParams(n=8)),
        ResetEpidemicProtocol(ProtocolParams(n=32, r=2)),
    ]


class TestRowPredicates:
    """``on_counts_rows`` answers whole live sets in one array op."""

    def test_vectorized_form_is_preferred_over_the_scalar_form(self):
        protocol = EpidemicProtocol()
        calls = {"rows": 0, "scalar": 0}

        def on_counts(row):
            calls["scalar"] += 1
            return protocol.goal_counts(row)

        def on_counts_rows(sub):
            calls["rows"] += 1
            return protocol.goal_counts_rows(sub)

        predicate = counts_aware(
            protocol.is_goal_configuration, on_counts, on_counts_rows
        )
        engine = _epidemic_batch(6, 100, seed=5, backend="batch")
        engine.run_rows_until(predicate, max_interactions=3000, check_interval=100)
        assert calls["rows"] > 0
        assert calls["scalar"] == 0

    def test_goal_counts_predicate_carries_the_rows_form(self):
        protocol = EpidemicProtocol()
        predicate = goal_counts_predicate(protocol)
        assert predicate.on_counts_rows is not None
        rows = np.asarray([[0, 5], [3, 2]], dtype=np.int64)
        assert [bool(v) for v in predicate.on_counts_rows(rows)] == [True, False]

    def test_base_default_is_the_per_row_loop(self):
        protocol = EpidemicProtocol()
        rows = np.asarray([[0, 5], [3, 2]], dtype=np.int64)
        assert PopulationProtocol.goal_counts_rows(protocol, rows) == [True, False]

    @pytest.mark.parametrize(
        "protocol", _predicate_protocols(), ids=lambda p: type(p).__name__
    )
    def test_overrides_agree_with_the_scalar_form(self, protocol):
        size = protocol.num_states()
        rng = np_generator(derive_seed(17, size))
        blocks = [
            rng.integers(0, 5, size=(8, size)),
            rng.integers(0, 2, size=(8, size)),
            np.zeros((1, size), dtype=np.int64),
            np.eye(size, dtype=np.int64)[[0, size - 1]],
        ]
        rows = np.concatenate(blocks).astype(np.int64)
        vectorized = [bool(v) for v in np.asarray(protocol.goal_counts_rows(rows)).reshape(-1)]
        scalar = [bool(protocol.goal_counts(row)) for row in rows]
        assert vectorized == scalar


class TestPoisonedRngGate:
    def test_kernels_module_passes_repro_lint(self):
        target = REPO_ROOT / "src" / "repro" / "sim" / "kernels.py"
        report = run_lint([str(target)], base=REPO_ROOT)
        assert report.clean, report.findings

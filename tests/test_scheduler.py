"""Tests for the uniform random scheduler and recorded schedules."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.scheduler.rng import derive_seed, make_rng, spawn_rngs
from repro.scheduler.scheduler import RandomScheduler, RecordedSchedule


class TestRNG:
    def test_make_rng_deterministic(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_derive_seed_distinct(self):
        seeds = {derive_seed(0, i) for i in range(1000)}
        assert len(seeds) == 1000

    def test_derive_seed_deterministic(self):
        assert derive_seed(42, 3) == derive_seed(42, 3)

    def test_spawn_rngs_independent_streams(self):
        a, b = spawn_rngs(9, 2)
        # Streams from different child seeds should diverge immediately.
        assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]

    def test_spawn_rngs_reproducible(self):
        first = [rng.random() for rng in spawn_rngs(5, 4)]
        second = [rng.random() for rng in spawn_rngs(5, 4)]
        assert first == second


class TestRandomScheduler:
    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            RandomScheduler(1, make_rng(0))

    def test_pairs_are_distinct_agents(self):
        scheduler = RandomScheduler(5, make_rng(1))
        for i, j in scheduler.pairs(2000):
            assert i != j
            assert 0 <= i < 5
            assert 0 <= j < 5

    def test_ordered_pair_uniformity(self):
        """All n(n-1) ordered pairs appear with roughly equal frequency."""
        n = 4
        draws = 60_000
        scheduler = RandomScheduler(n, make_rng(2))
        counts = Counter(scheduler.pairs(draws))
        assert len(counts) == n * (n - 1)
        expected = draws / (n * (n - 1))
        for pair, count in counts.items():
            assert abs(count - expected) < 5 * expected**0.5, pair

    def test_determinism_from_seed(self):
        a = list(RandomScheduler(6, make_rng(3)).pairs(50))
        b = list(RandomScheduler(6, make_rng(3)).pairs(50))
        assert a == b


class TestRecordedSchedule:
    def test_record_and_replay(self):
        schedule = RecordedSchedule.record(5, 20, make_rng(4))
        assert len(schedule) == 20
        assert list(schedule) == list(schedule)  # stable on re-iteration

    def test_indexing(self):
        schedule = RecordedSchedule([(0, 1), (2, 3)])
        assert schedule[0] == (0, 1)
        assert schedule[1] == (2, 3)

    def test_rejects_self_interaction(self):
        with pytest.raises(ValueError):
            RecordedSchedule([(1, 1)])

"""Exhaustive small-population verification via the model checker.

These tests check, *for every configuration of a tiny population*, the
graph-theoretic forms of the paper's correctness notions: closure of the
absorbing sets and reachability of the goal set from everywhere
(probabilistic stabilization).  They complement the randomized suites with
exact statements at small n.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations_with_replacement

import pytest

from repro.baselines.cai_izumi_wada import CaiIzumiWada, CIWState
from repro.baselines.loosely_stabilizing import (
    LooselyStabilizingLeaderElection,
    LooseState,
)
from repro.baselines.nonss_leader import LeaderBitState, PairwiseElimination
from repro.core.params import BaselineParams, ProtocolParams
from repro.core.propagate_reset import propagate_reset, trigger_reset
from repro.core.roles import Role
from repro.core.state import AgentState, PRState
from repro.substrates.epidemics import EpidemicProtocol, MarkState
from repro.verify.model_check import (
    ForbiddenRNG,
    check_closure,
    check_goal_reachable_from_all,
    check_invariant,
    explore,
)


class TestForbiddenRNG:
    def test_refuses_all_sampling(self):
        rng = ForbiddenRNG()
        for method in ("randrange", "random", "randint", "choice"):
            with pytest.raises(RuntimeError):
                getattr(rng, method)(1)

    def test_catches_stochastic_protocols(self):
        """A protocol that samples must be rejected, not silently explored."""
        from repro.core.fast_leader_elect import FastLeaderElectProtocol

        protocol = FastLeaderElectProtocol(ProtocolParams(n=4, r=2))
        config = [protocol.initial_state() for _ in range(4)]
        with pytest.raises(RuntimeError):
            explore(
                protocol,
                [config],
                key=lambda s: (s.identifier is not None, s.identifier or 0),
                max_configs=10,
            )


class TestCaiIzumiWadaExhaustive:
    """The n-state baseline, verified exactly at n = 4.

    From EVERY one of the C(7,3) = 35 rank multisets, a permutation is
    reachable, and permutations are absorbing — i.e. the protocol is
    self-stabilizing, exactly.
    """

    N = 4

    def setup_method(self):
        self.protocol = CaiIzumiWada(BaselineParams(n=self.N))
        self.all_configs = [
            [CIWState(rank) for rank in ranks]
            for ranks in combinations_with_replacement(range(1, self.N + 1), self.N)
        ]

    def test_all_multisets_reach_permutation(self):
        result = explore(
            self.protocol, self.all_configs, key=lambda s: s.rank, max_configs=10_000
        )
        assert result.complete
        stuck = check_goal_reachable_from_all(
            result, self.protocol.is_silent_configuration
        )
        assert stuck == []

    def test_permutations_are_closed(self):
        permutation = [CIWState(rank) for rank in range(1, self.N + 1)]
        outside = check_closure(
            self.protocol,
            [permutation],
            key=lambda s: s.rank,
            member=self.protocol.is_silent_configuration,
        )
        assert outside == []

    def test_rank_range_invariant(self):
        result = explore(
            self.protocol, self.all_configs, key=lambda s: s.rank, max_configs=10_000
        )
        violations = check_invariant(
            result, lambda config: all(1 <= s.rank <= self.N for s in config)
        )
        assert violations == []


class TestLooseStabilizationExhaustive:
    """The timeout protocol at n = 3: a unique leader is reachable from
    every configuration, but the unique-leader set is NOT closed — the
    defining contrast between loose and self-stabilization."""

    def setup_method(self):
        params = BaselineParams(n=3, c_timer=1.0)
        self.protocol = LooselyStabilizingLeaderElection(params, tau=1.0)
        t = self.protocol.timer_max
        states = [
            LooseState(leader, timer)
            for leader in (False, True)
            for timer in range(t + 1)
        ]
        self.all_configs = [
            [s.clone() for s in combo]
            for combo in combinations_with_replacement(states, 3)
        ]

    @staticmethod
    def key(state: LooseState):
        return (state.leader, state.timer)

    def test_unique_leader_reachable_from_every_configuration(self):
        result = explore(self.protocol, self.all_configs, key=self.key, max_configs=50_000)
        assert result.complete
        stuck = check_goal_reachable_from_all(result, self.protocol.is_goal_configuration)
        assert stuck == []

    def test_unique_leader_set_not_closed(self):
        """Looseness, exactly: some schedule breaks a unique-leader config."""
        config = [
            LooseState(leader=True, timer=self.protocol.timer_max),
            LooseState(leader=False, timer=1),
            LooseState(leader=False, timer=1),
        ]
        outside = check_closure(
            self.protocol,
            [config],
            key=self.key,
            member=self.protocol.is_goal_configuration,
        )
        assert outside != []


class TestPairwiseEliminationExhaustive:
    """The 2-state protocol at n = 3: the zero-leader configuration cannot
    reach the goal — non-self-stabilization, exactly."""

    def test_zero_leader_configuration_is_stuck(self):
        protocol = PairwiseElimination(3)
        zero = [LeaderBitState(False) for _ in range(3)]
        all_leaders = [LeaderBitState(True) for _ in range(3)]
        result = explore(
            protocol, [zero, all_leaders], key=lambda s: s.leader, max_configs=100
        )
        assert result.complete
        stuck = check_goal_reachable_from_all(result, protocol.is_goal_configuration)
        assert len(stuck) == 1
        assert all(not s.leader for s in stuck[0])


class TestEpidemicExhaustive:
    def test_completion_reachable_and_marking_monotone(self):
        protocol = EpidemicProtocol()
        seeded = [MarkState(True), MarkState(False), MarkState(False), MarkState(False)]
        result = explore(protocol, [seeded], key=lambda s: s.marked, max_configs=100)
        assert result.complete
        stuck = check_goal_reachable_from_all(result, protocol.is_goal_configuration)
        assert stuck == []
        # Infection can never disappear.
        violations = check_invariant(
            result, lambda config: any(s.marked for s in config)
        )
        assert violations == []


class TestDerandomizedSoundnessBounded:
    """Bounded model checking of Lemma E.1(a) on the derandomized detector.

    The Appendix-B variant is fully deterministic, so its configuration
    graph is explorable.  The full reachable set at n=4 is too large to
    exhaust in a unit test, so this is *bounded* verification: within the
    first ~1000 configurations breadth-first from q0 on a correct ranking
    — i.e. all executions of the first several interaction rounds, over
    every schedule — no ⊤ is ever produced."""

    def test_no_top_within_bounded_exploration(self):
        from repro.core.derandomized import DerandomizedDetectCollisionProtocol
        from repro.core.state import TOP

        params = ProtocolParams(n=4, r=2, msg_factor=1, c_sig=1.0)
        protocol = DerandomizedDetectCollisionProtocol(params)

        def key(state):
            if state.dc is TOP:
                dc_key: object = "TOP"
            else:
                dc_key = (
                    state.dc.signature,
                    state.dc.counter,
                    tuple(
                        sorted(
                            (rank, msg_id, content)
                            for rank, ids in state.dc.msgs.items()
                            for msg_id, content in ids.items()
                        )
                    ),
                    tuple(state.dc.observations),
                )
            return (state.rank, dc_key, state.coin.coin, tuple(state.coin.coins),
                    state.coin.coin_count)

        config = protocol.clean_configuration(4)
        result = explore(protocol, [config], key=key, max_configs=1_000)
        assert result.explored >= 1_000  # the bound was actually exercised
        violations = check_invariant(
            result, lambda cfg: all(s.dc is not TOP for s in cfg)
        )
        assert violations == []


# ---------------------------------------------------------------------------
# PropagateReset harness
# ---------------------------------------------------------------------------


@dataclass
class _PRHarness:
    """Minimal deterministic wrapper: resetters run PropagateReset, restarted
    agents become inert 'computing' markers (role RANKING, no AR state)."""

    params: ProtocolParams
    name: str = "propagate-reset-harness"

    def restart(self, state: AgentState) -> None:
        state.role = Role.RANKING
        state.pr = None

    def transition(self, u: AgentState, v: AgentState, rng) -> None:
        if u.role is Role.RESETTING or v.role is Role.RESETTING:
            propagate_reset(u, v, self.params, self.restart)

    # Protocol-interface shims used by the checker.
    def initial_state(self) -> AgentState:  # pragma: no cover - unused
        return AgentState(role=Role.RANKING)

    def output(self, state: AgentState) -> bool:  # pragma: no cover - unused
        return False


class TestPropagateResetExhaustive:
    """Appendix C at n = 3 with R_max = D_max = 2, verified exactly."""

    def setup_method(self):
        self.params = ProtocolParams(n=3, r=1, c_reset=0.5, c_delay=0.5)
        self.protocol = _PRHarness(self.params)

    @staticmethod
    def key(state: AgentState):
        if state.role is Role.RESETTING:
            assert state.pr is not None
            return ("resetting", state.pr.reset_count, state.pr.delay_timer)
        return ("computing", 0, 0)

    def _all_configs(self):
        states = [AgentState(role=Role.RANKING)]
        for rc in range(self.params.reset_count_max + 1):
            for dt in range(self.params.delay_timer_max + 1):
                states.append(
                    AgentState(role=Role.RESETTING, pr=PRState(rc, dt))
                )
        return [
            [s.clone() for s in combo]
            for combo in combinations_with_replacement(states, 3)
        ]

    def test_everyone_computes_eventually_from_every_configuration(self):
        result = explore(self.protocol, self._all_configs(), key=self.key, max_configs=50_000)
        assert result.complete
        stuck = check_goal_reachable_from_all(
            result,
            lambda config: all(s.role is Role.RANKING for s in config),
        )
        assert stuck == []

    def test_all_computing_is_closed(self):
        computing = [AgentState(role=Role.RANKING) for _ in range(3)]
        outside = check_closure(
            self.protocol,
            [computing],
            key=self.key,
            member=lambda config: all(s.role is Role.RANKING for s in config),
        )
        assert outside == []

    def test_triggered_passes_through_dormancy(self):
        """From a fully triggered start, some reachable configuration is
        fully dormant (the Lemma C.1 waypoint exists in the graph)."""
        triggered = []
        for _ in range(3):
            agent = AgentState()
            trigger_reset(agent, self.params)
            triggered.append(agent)
        result = explore(self.protocol, [triggered], key=self.key, max_configs=50_000)
        assert result.complete
        dormant_seen = any(
            all(
                s.role is Role.RESETTING and s.pr is not None and s.pr.reset_count == 0
                for s in config
            )
            for config in result.configurations()
        )
        assert dormant_seen

"""Tests for the lease-based worker pool and the provider registry.

The pool's story is graceful degradation: workers are killed, stalled,
and crashed here via chaos providers (the ``provider=`` parameter takes
an instance precisely for this), and the run must still converge to a
validated merged checkpoint — or fail loudly with a post-mortem report.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Optional, Sequence

import pytest

from repro.fabric import (
    BudgetCaps,
    FabricError,
    LocalWorkerProvider,
    ProviderSpec,
    WorkerHandle,
    get_provider,
    provider_names,
    register_provider,
    run_pool,
    worker_argv,
)
from repro.sim.sweep import CLEAN, GridSpec, run_sweep


def pool_grid(**overrides) -> GridSpec:
    values = dict(
        protocols=("elect_leader",),
        ns=(8, 10),
        rs=(2,),
        adversaries=(CLEAN,),
        fault_rates=(0.0,),
        trials=2,
        seed=11,
        max_interactions=500_000,
        check_interval=500,
    )
    values.update(overrides)
    return GridSpec(**values)


class KillFirstProvider(LocalWorkerProvider):
    """SIGKILLs the first worker right after spawning it."""

    name = "chaos-kill-first"

    def __init__(self) -> None:
        self.spawned = 0

    def spawn(
        self,
        worker_id: str,
        argv: Sequence[str],
        *,
        log_path: Optional[Path] = None,
    ) -> WorkerHandle:
        handle = super().spawn(worker_id, argv, log_path=log_path)
        self.spawned += 1
        if self.spawned == 1:
            handle.process.kill()
        return handle


class StallFirstProvider(LocalWorkerProvider):
    """Replaces the first worker with a sleeper that never writes."""

    name = "chaos-stall-first"

    def __init__(self) -> None:
        self.spawned = 0

    def spawn(
        self,
        worker_id: str,
        argv: Sequence[str],
        *,
        log_path: Optional[Path] = None,
    ) -> WorkerHandle:
        self.spawned += 1
        if self.spawned == 1:
            argv = [sys.executable, "-c", "import time; time.sleep(600)"]
        return super().spawn(worker_id, argv, log_path=log_path)


class AlwaysKillProvider(KillFirstProvider):
    """Every worker dies immediately — no pool can make progress."""

    name = "chaos-kill-all"

    def spawn(
        self,
        worker_id: str,
        argv: Sequence[str],
        *,
        log_path: Optional[Path] = None,
    ) -> WorkerHandle:
        handle = LocalWorkerProvider.spawn(self, worker_id, argv, log_path=log_path)
        handle.process.kill()
        return handle


class TestPool:
    def test_pool_matches_serial_sweep(self, tmp_path):
        grid = pool_grid()
        reference = tmp_path / "reference.jsonl"
        run_sweep(grid, jsonl_path=reference)
        out = tmp_path / "pool.jsonl"
        result = run_pool(grid, out=out, workers=2, backoff=0.0)
        assert result.ok
        assert out.read_bytes() == reference.read_bytes()
        report = json.loads(result.report_path.read_text())
        assert report == result.report
        assert report["kind"] == "pool-report"
        assert report["shards"] == 2 and report["provider"] == "local"
        assert all(shard["completed"] for shard in report["shard_reports"])

    def test_killed_worker_is_re_leased(self, tmp_path):
        grid = pool_grid()
        reference = tmp_path / "reference.jsonl"
        run_sweep(grid, jsonl_path=reference)
        out = tmp_path / "pool.jsonl"
        provider = KillFirstProvider()
        result = run_pool(grid, out=out, workers=2, backoff=0.0, provider=provider)
        assert result.ok
        assert out.read_bytes() == reference.read_bytes()
        # One shard needed a second attempt, and the report says why.
        attempts = [shard["attempts"] for shard in result.report["shard_reports"]]
        assert sorted(attempts) == [1, 2]
        events = [e for shard in result.report["shard_reports"] for e in shard["events"]]
        assert any("exited with code" in event for event in events)
        assert provider.spawned == 3

    def test_stalled_lease_times_out_and_recovers(self, tmp_path):
        grid = pool_grid(ns=(8,))
        out = tmp_path / "pool.jsonl"
        result = run_pool(
            grid,
            out=out,
            workers=1,
            backoff=0.0,
            lease_timeout=2.0,
            poll_interval=0.02,
            provider=StallFirstProvider(),
        )
        assert result.ok
        events = [e for shard in result.report["shard_reports"] for e in shard["events"]]
        assert any("lease timed out" in event for event in events)

    def test_retry_cap_fails_loudly_with_report(self, tmp_path):
        grid = pool_grid(ns=(8,))
        out = tmp_path / "pool.jsonl"
        with pytest.raises(FabricError, match="retry cap"):
            run_pool(
                grid,
                out=out,
                workers=1,
                backoff=0.0,
                max_retries=1,
                provider=AlwaysKillProvider(),
            )
        report = json.loads(out.with_suffix(".report.json").read_text())
        assert report["ok"] is False
        assert "retry cap" in report["error"]
        assert not out.exists()

    def test_max_trials_budget_refuses_before_spawning(self, tmp_path):
        grid = pool_grid()  # expands to 4 trials
        provider = KillFirstProvider()
        with pytest.raises(FabricError, match="max_trials"):
            run_pool(
                grid,
                out=tmp_path / "pool.jsonl",
                budget=BudgetCaps(max_trials=3),
                provider=provider,
            )
        assert provider.spawned == 0

    def test_max_seconds_budget_kills_the_fleet(self, tmp_path):
        grid = pool_grid(ns=(8,))
        out = tmp_path / "pool.jsonl"

        class StallAllProvider(StallFirstProvider):
            def spawn(self, worker_id, argv, *, log_path=None):
                argv = [sys.executable, "-c", "import time; time.sleep(600)"]
                return LocalWorkerProvider.spawn(self, worker_id, argv, log_path=log_path)

        with pytest.raises(FabricError, match="max_seconds"):
            run_pool(
                grid,
                out=out,
                workers=1,
                lease_timeout=600.0,
                poll_interval=0.02,
                budget=BudgetCaps(max_seconds=0.3),
                provider=StallAllProvider(),
            )
        report = json.loads(out.with_suffix(".report.json").read_text())
        assert report["ok"] is False and "max_seconds" in report["error"]

    def test_progress_reports_monotonic_completion(self, tmp_path):
        grid = pool_grid(ns=(8,))
        seen: list[tuple[int, int]] = []
        result = run_pool(
            grid,
            out=tmp_path / "pool.jsonl",
            workers=1,
            backoff=0.0,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert result.ok
        assert seen[-1] == (len(grid.ns) * grid.trials, len(grid.ns) * grid.trials)
        dones = [done for done, _ in seen]
        assert dones == sorted(dones)

    def test_bad_parameters_rejected(self, tmp_path):
        grid = pool_grid()
        out = tmp_path / "pool.jsonl"
        for kwargs in [
            {"workers": 0},
            {"shards": 0},
            {"lease_timeout": 0},
            {"max_retries": -1},
            {"backoff": -1.0},
        ]:
            with pytest.raises(FabricError):
                run_pool(grid, out=out, **kwargs)


class TestWorkerArgv:
    def test_worker_is_a_stateless_resumable_sweep(self, tmp_path):
        argv = worker_argv(tmp_path / "grid.json", 1, 4, tmp_path / "s1.jsonl")
        assert argv[0] == sys.executable
        assert argv[1:3] == ["-m", "repro"]
        assert "--shard" in argv and argv[argv.index("--shard") + 1] == "1/4"
        assert "--resume" in argv and "--no-progress" in argv


class TestProviders:
    def test_registry_lists_builtins(self):
        names = provider_names()
        assert names[0] == "local" and "ssh" in names

    def test_unknown_provider_is_pointed(self):
        with pytest.raises(FabricError, match="unknown provider 'bogus'"):
            get_provider("bogus")

    def test_duplicate_registration_rejected(self):
        from repro.fabric.providers import _REGISTRY

        spec = ProviderSpec(name="chaos_temp", factory=LocalWorkerProvider)
        register_provider(spec)
        try:
            with pytest.raises(FabricError, match="already registered"):
                register_provider(spec)
            # replace=True is the explicit override path.
            assert register_provider(spec, replace=True) is spec
        finally:
            _REGISTRY.pop("chaos_temp", None)

    def test_bad_provider_name_rejected(self):
        with pytest.raises(FabricError, match="simple identifier"):
            register_provider(ProviderSpec(name="not a name", factory=LocalWorkerProvider))

    def test_ssh_stub_documents_the_shape_but_refuses(self):
        provider = get_provider("ssh", host="node7", python="python3.11")
        remote = provider.remote_argv(worker_argv(Path("grid.json"), 0, 2, Path("s0.jsonl")))
        assert remote[:2] == ["ssh", "node7"]
        assert "python3.11 -m repro sweep" in remote[2]
        with pytest.raises(FabricError, match="stub"):
            provider.spawn("w0", ["python", "-m", "repro"])
        with pytest.raises(FabricError, match="needs a host"):
            get_provider("ssh").remote_argv(["python", "-m", "repro"])

    def test_budget_caps_validate(self):
        assert BudgetCaps().to_dict() == {"max_seconds": None, "max_trials": None}
        with pytest.raises(FabricError):
            BudgetCaps(max_seconds=0)
        with pytest.raises(FabricError):
            BudgetCaps(max_trials=0)

"""Finite-n faces of the paper's w.h.p. claims.

A "within T w.h.p." bound manifests at finite n as a light (near-
exponential) upper tail on the measured time distribution: failed phases
restart, so the excess beyond the typical time is memoryless-ish.  These
tests collect real stabilization/detection samples and verify the tail
statistics using :mod:`repro.analysis.stats`.
"""

from __future__ import annotations

from repro.analysis.stats import (
    bootstrap_ci,
    geometric_tail_fit,
    success_rate_ci,
    tail_probability,
)
from repro.core.detect_collision import DetectCollisionProtocol
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.scheduler.rng import derive_seed, make_rng
from repro.sim.simulation import Simulation


def detection_samples(trials: int = 40) -> list[float]:
    params = ProtocolParams(n=16, r=4)
    protocol = DetectCollisionProtocol(params)
    samples = []
    for trial in range(trials):
        config = [protocol.state_for_rank(rank) for rank in range(1, 17)]
        config[0] = protocol.state_for_rank(2)  # one duplicate
        sim = Simulation(protocol, config=config, seed=derive_seed(42, trial))
        result = sim.run_until(
            protocol.error_detected, max_interactions=500_000, check_interval=10
        )
        assert result.converged
        samples.append(float(result.interactions))
    return samples


class TestDetectionTail:
    def test_tail_is_light(self):
        """p95 within a small multiple of the median — concentration."""
        samples = detection_samples()
        ordered = sorted(samples)
        median = ordered[len(ordered) // 2]
        p95 = ordered[int(0.95 * (len(ordered) - 1))]
        assert p95 < 8 * median, (median, p95)

    def test_geometric_tail_parameters(self):
        """The excess beyond the median is on the median's scale, not
        orders of magnitude above (restart-style tail)."""
        samples = detection_samples()
        t0, tau = geometric_tail_fit(samples, quantile=0.5)
        assert tau < 5 * t0, (t0, tau)

    def test_exceedance_of_envelope_rare(self):
        """P[T > 10·median] is consistent with the w.h.p. claim."""
        samples = detection_samples()
        median = sorted(samples)[len(samples) // 2]
        assert tail_probability(samples, 10 * median) <= 3 / len(samples) + 0.05


class TestStabilizationCI:
    def test_bootstrap_ci_tight_and_reproducible(self):
        protocol = ElectLeader(ProtocolParams(n=12, r=3))
        samples = []
        for trial in range(15):
            sim = Simulation(protocol, n=12, seed=derive_seed(77, trial))
            result = sim.run_until(
                protocol.is_safe_configuration,
                max_interactions=3_000_000,
                check_interval=500,
            )
            assert result.converged
            samples.append(float(result.interactions))
        ci = bootstrap_ci(samples, rng=make_rng(5))
        assert ci.low <= ci.point <= ci.high
        # Concentration: the CI width is within the median itself.
        assert ci.width <= ci.point

    def test_success_rate_interval_for_perfect_runs(self):
        ci = success_rate_ci(15, 15)
        # 15/15 successes: the 95% lower bound still allows ~20% failure —
        # exactly why the benches run many trials before claiming "w.h.p.".
        assert ci.low > 0.75

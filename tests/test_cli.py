"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.n == 32 and args.r == 4 and args.seed == 0

    def test_recover_requires_known_adversary(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recover", "unknown-adversary"])

    def test_statespace_sizes(self):
        args = build_parser().parse_args(["statespace", "--sizes", "8", "16"])
        assert args.sizes == [8, 16]

    def test_sweep_defaults(self):
        # Grid flags parse to None (a --grid file may fill them); the
        # effective defaults live in _grid_from_args, asserted below.
        args = build_parser().parse_args(["sweep"])
        assert args.protocols is None and args.ns is None and args.rs is None
        assert args.grid is None and args.shard is None
        assert args.out == "sweep.jsonl" and not args.resume and not args.force

    def test_sweep_effective_grid_defaults(self):
        from repro.cli import _grid_from_args

        grid = _grid_from_args(build_parser().parse_args(["sweep"]))
        assert grid.protocols == ("elect_leader",)
        assert grid.ns == (16, 32) and grid.rs == (4,)
        assert grid.adversaries == ("clean",) and grid.fault_rates == (0.0,)

    def test_sweep_shard_flag(self):
        args = build_parser().parse_args(["sweep", "--shard", "1/4"])
        assert args.shard == (1, 4)
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--shard", "4/4"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--shard", "nonsense"])


class TestInputValidation:
    """`-n`/`-r` are rejected at argparse level (clean usage error, exit 2)
    instead of crashing deep inside the protocol with a traceback."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["run", "-n", "-3"],
            ["run", "-n", "1"],
            ["run", "-r", "0"],
            ["run", "-r", "-2"],
            ["recover", "all_duplicate_rank", "-n", "0"],
            ["recover", "all_duplicate_rank", "-r", "-1"],
            ["tradeoff", "-n", "1"],
            ["tradeoff", "--trials", "0"],
            ["sweep", "--ns", "1"],
            ["sweep", "--ns", "16", "-3"],
            ["sweep", "--rs", "0"],
            ["sweep", "--fault-rates", "-0.5"],
            ["sweep", "--trials", "0"],
        ],
    )
    def test_bad_values_exit_with_usage_error(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "error" in capsys.readouterr().err

    def test_r_exceeding_half_n_is_one_clean_line(self, capsys):
        code = main(["run", "-n", "8", "-r", "7"])
        assert code == 2
        err = capsys.readouterr().err
        assert "1 <= r <= n/2" in err
        assert "Traceback" not in err


class TestCommands:
    def test_run_stabilizes(self, capsys):
        code = main(["run", "-n", "12", "-r", "3", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stabilized after" in out
        assert "leaders: 1" in out

    def test_recover_from_adversary(self, capsys):
        code = main(
            ["recover", "all_duplicate_rank", "-n", "12", "-r", "3", "--seed", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stabilized after" in out
        assert "ranking_correct: True" in out

    def test_recover_failure_exit_code(self, capsys):
        code = main(
            [
                "recover", "all_duplicate_rank", "-n", "12", "-r", "3",
                "--seed", "2", "--max-interactions", "10",
            ]
        )
        assert code == 1

    def test_statespace_table(self, capsys):
        code = main(["statespace", "--sizes", "16", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ciw_bits" in out and "ours_rmax_bits" in out

    def test_tradeoff_table(self, capsys):
        code = main(["tradeoff", "-n", "12", "--trials", "2", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "state_bits" in out
        assert "r=" not in out  # labels are numeric rows, not prefixed


class TestSweepCommand:
    SWEEP_ARGS = [
        "sweep", "--protocols", "elect_leader", "--ns", "8", "--rs", "2",
        "--adversaries", "clean", "random_soup", "--trials", "2", "--seed", "3",
        "--max-interactions", "2000000", "--batch", "500", "--no-progress",
    ]

    def test_sweep_runs_and_writes_jsonl(self, capsys, tmp_path):
        out = tmp_path / "sweep.jsonl"
        code = main([*self.SWEEP_ARGS, "--out", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "Scenario sweep: 4 trials over 2 cells" in stdout
        assert "random_soup" in stdout
        lines = out.read_text().splitlines()
        assert len(lines) == 5  # meta + 4 trials

    def test_sweep_refuses_overwrite_then_resumes(self, capsys, tmp_path):
        out = tmp_path / "sweep.jsonl"
        assert main([*self.SWEEP_ARGS, "--out", str(out)]) == 0
        first = capsys.readouterr().out
        assert main([*self.SWEEP_ARGS, "--out", str(out)]) == 2
        assert "already exists" in capsys.readouterr().err
        assert main([*self.SWEEP_ARGS, "--out", str(out), "--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "4 resumed from checkpoint" in resumed
        # The aggregate table is unchanged by the resume.
        assert first.splitlines()[-3] == resumed.splitlines()[-3]

    def test_sweep_workers_invariance_via_cli(self, capsys, tmp_path):
        tables = []
        for workers in ("1", "4"):
            out = tmp_path / f"w{workers}.jsonl"
            code = main([*self.SWEEP_ARGS, "--out", str(out), "--workers", workers])
            assert code == 0
            tables.append(capsys.readouterr().out)
        # Identical apart from the per-run output path line.
        def strip(text):
            return [line for line in text.splitlines() if "results in" not in line]

        assert strip(tables[0]) == strip(tables[1])

    def test_sweep_fault_model_axis(self, capsys, tmp_path):
        pytest.importorskip("numpy")
        out = tmp_path / "faults.jsonl"
        args = [
            "sweep", "--protocols", "loosely_stabilizing", "--ns", "16",
            "--adversaries", "clean", "--fault-rates", "0", "0.5",
            "--fault-model", "scramble_burst", "kill_leaders",
            "--trials", "2", "--seed", "3", "--backend", "counts",
            "--max-interactions", "40000", "--batch", "500", "--no-progress",
            "--out", str(out),
        ]
        code = main(args)
        assert code == 0
        stdout = capsys.readouterr().out
        assert "availability" in stdout
        assert "kill_leaders" in stdout
        blob = out.read_text()
        assert '"fault_model":"scramble_burst"' in blob
        assert '"availability":' in blob
        # Resume of the finished sweep is a no-op with identical bytes.
        assert main([*args, "--resume"]) == 0
        assert out.read_text() == blob

    def test_sweep_rejects_unknown_fault_model(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "sweep", "--protocols", "loosely_stabilizing", "--ns", "16",
                "--fault-model", "bogus", "--no-progress",
                "--out", str(tmp_path / "x.jsonl"),
            ])

    def test_sweep_array_backend(self, capsys, tmp_path):
        pytest.importorskip("numpy")
        out = tmp_path / "array.jsonl"
        code = main([
            "sweep", "--protocols", "cai_izumi_wada", "pairwise_elimination",
            "--ns", "8", "--trials", "2", "--seed", "3", "--backend", "array",
            "--max-interactions", "200000", "--batch", "100", "--no-progress",
            "--out", str(out),
        ])
        assert code == 0
        assert '"backend":"array"' in out.read_text()

    def test_sweep_array_backend_rejects_elect_leader(self, capsys, tmp_path):
        code = main([
            "sweep", "--protocols", "elect_leader", "--ns", "8", "--rs", "2",
            "--backend", "array", "--no-progress",
            "--out", str(tmp_path / "x.jsonl"),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "array" in err

    def test_sweep_backend_env_default(self, capsys, tmp_path, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "array")
        out = tmp_path / "env.jsonl"
        code = main([
            "sweep", "--protocols", "pairwise_elimination", "--ns", "8",
            "--trials", "1", "--max-interactions", "100000", "--batch", "100",
            "--no-progress", "--out", str(out),
        ])
        assert code == 0
        assert '"backend":"array"' in out.read_text()
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "bogus")
        code = main([
            "sweep", "--protocols", "pairwise_elimination", "--ns", "8",
            "--trials", "1", "--no-progress", "--out", str(tmp_path / "y.jsonl"),
        ])
        assert code == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_sweep_counts_backend(self, capsys, tmp_path):
        pytest.importorskip("numpy")
        out = tmp_path / "counts.jsonl"
        code = main([
            "sweep", "--protocols", "cai_izumi_wada", "loosely_stabilizing",
            "--ns", "10", "--adversaries", "clean", "scramble",
            "--trials", "2", "--seed", "3", "--backend", "counts",
            "--max-interactions", "2000000", "--batch", "250", "--no-progress",
            "--out", str(out),
        ])
        assert code == 0
        text = out.read_text()
        assert '"backend":"counts"' in text
        assert '"adversary":"scramble"' in text
        assert "success_rate" in capsys.readouterr().out

    def test_sweep_counts_backend_rejects_elect_leader(self, capsys, tmp_path):
        code = main([
            "sweep", "--protocols", "elect_leader", "--ns", "8", "--rs", "2",
            "--backend", "counts", "--no-progress",
            "--out", str(tmp_path / "x.jsonl"),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "counts" in err

    def test_backend_choices_come_from_registry(self, capsys):
        from repro.sim.backends import backend_names

        parser = build_parser()
        # Every registered engine parses as a valid --backend choice...
        for name in backend_names():
            args = parser.parse_args(["sweep", "--backend", name])
            assert args.backend == name
        # ...and an unregistered one is rejected by argparse itself.
        with pytest.raises(SystemExit):
            parser.parse_args(["sweep", "--backend", "not_a_backend"])
        capsys.readouterr()  # swallow argparse's usage message

"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.n == 32 and args.r == 4 and args.seed == 0

    def test_recover_requires_known_adversary(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recover", "unknown-adversary"])

    def test_statespace_sizes(self):
        args = build_parser().parse_args(["statespace", "--sizes", "8", "16"])
        assert args.sizes == [8, 16]


class TestCommands:
    def test_run_stabilizes(self, capsys):
        code = main(["run", "-n", "12", "-r", "3", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stabilized after" in out
        assert "leaders: 1" in out

    def test_recover_from_adversary(self, capsys):
        code = main(
            ["recover", "all_duplicate_rank", "-n", "12", "-r", "3", "--seed", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stabilized after" in out
        assert "ranking_correct: True" in out

    def test_recover_failure_exit_code(self, capsys):
        code = main(
            [
                "recover", "all_duplicate_rank", "-n", "12", "-r", "3",
                "--seed", "2", "--max-interactions", "10",
            ]
        )
        assert code == 1

    def test_statespace_table(self, capsys):
        code = main(["statespace", "--sizes", "16", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ciw_bits" in out and "ours_rmax_bits" in out

    def test_tradeoff_table(self, capsys):
        code = main(["tradeoff", "-n", "12", "--trials", "2", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "state_bits" in out
        assert "r=" not in out  # labels are numeric rows, not prefixed

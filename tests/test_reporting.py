"""Tests for ASCII charts and result serialization."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import (
    ascii_chart,
    dump_rows,
    load_rows,
    series_from_rows,
)


class TestSeriesExtraction:
    def test_extracts_floats(self):
        rows = [{"n": 16, "time": "2.5"}, {"n": 32, "time": 7}]
        assert series_from_rows(rows, "n", "time") == [(16.0, 2.5), (32.0, 7.0)]


class TestAsciiChart:
    def test_renders_points_within_frame(self):
        chart = ascii_chart(
            {"a": [(1, 1), (2, 4), (3, 9)]}, width=20, height=6, title="squares"
        )
        lines = chart.splitlines()
        assert lines[0] == "squares"
        assert lines[2].startswith("+") and lines[2].endswith("+")
        body = lines[3:-3]
        assert len(body) == 6
        assert sum(line.count("•") for line in body) == 3

    def test_multiple_series_distinct_markers(self):
        chart = ascii_chart({"a": [(1, 1)], "b": [(2, 2)]}, width=10, height=4)
        assert "•" in chart and "x" in chart
        assert "legend: • a  x b" in chart

    def test_log_axes(self):
        chart = ascii_chart(
            {"a": [(10, 100), (100, 10_000)]}, log_x=True, log_y=True, width=12, height=4
        )
        assert "[log-log]" in chart
        assert "1e+04" in chart or "1e+4" in chart or "10000" in chart or "1e+04" in chart

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": [(0, 1)]}, log_x=True)

    def test_empty_series(self):
        assert "(no data)" in ascii_chart({"a": []}, title="t")

    def test_constant_series_no_crash(self):
        chart = ascii_chart({"a": [(1, 5), (2, 5)]}, width=8, height=3)
        body = [line for line in chart.splitlines() if line.startswith("|")]
        assert sum(line.count("•") for line in body) == 2


class TestSerialization:
    def test_round_trip(self, tmp_path):
        rows = [{"n": 16, "time": 2.5}, {"n": 32, "time": 7.0}]
        path = tmp_path / "rows.json"
        dump_rows(rows, path, title="t")
        loaded = load_rows(path)
        assert loaded == [{"n": 16, "time": 2.5}, {"n": 32, "time": 7.0}]

"""Property-based tests (hypothesis) on the core protocol invariants.

These complement the targeted unit tests by searching the input space for
violations of the paper's structural invariants:

* ``BalanceLoad`` conserves messages and balances per-(rank, content)
  holdings (Section 3.1's "the mechanism maintains this invariant");
* ``DetectCollision`` never invents or destroys circulating messages;
* randomly scheduled executions of ``ElectLeader_r`` keep every agent's
  state well-formed (role ↔ sub-state consistency);
* the safe set is closed under arbitrary interaction sequences
  (Lemma 6.1, tested on random schedules).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.initializers import correct_verifier_configuration
from repro.core.detect_collision import balance_load, detect_collision, initial_dc_state
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.core.partition import RankPartition
from repro.core.state import TOP, DCState
from repro.scheduler.rng import make_rng


def message_multiset(dcs: list[DCState]) -> dict[tuple[int, int], list[int]]:
    """All circulating (rank, id) → contents across the given DC states."""
    seen: dict[tuple[int, int], list[int]] = {}
    for dc in dcs:
        for rank, ids in dc.msgs.items():
            for msg_id, content in ids.items():
                seen.setdefault((rank, msg_id), []).append(content)
    return seen


@st.composite
def dc_pair(draw):
    """Two same-group DC states with arbitrary (disjoint) holdings."""
    n, r = 12, 4
    params = ProtocolParams(n=n, r=r)
    partition = RankPartition(n, r)
    group_ranks = list(partition.group_ranks(0))
    total = params.messages_per_rank(partition.group_size(0))
    sig = params.signature_space(partition.group_size(0))
    u = DCState(observations=[1] * total)
    v = DCState(observations=[1] * total)
    for rank in group_ranks:
        ids = draw(
            st.lists(st.integers(1, total), unique=True, max_size=total)
        )
        owner_bits = draw(st.lists(st.booleans(), min_size=len(ids), max_size=len(ids)))
        for msg_id, to_u in zip(ids, owner_bits):
            content = draw(st.integers(1, min(sig, 50)))
            target = u if to_u else v
            target.msgs.setdefault(rank, {})[msg_id] = content
    return params, partition, u, v


class TestBalanceLoadProperties:
    @given(data=dc_pair())
    @settings(max_examples=80, deadline=None)
    def test_conservation_and_balance(self, data):
        params, partition, u, v = data
        before = message_multiset([u, v])
        balance_load(u, v, list(partition.group_ranks(0)))
        after = message_multiset([u, v])
        # Conservation: exactly the same multiset of (rank, id) → content.
        assert before == after
        # No duplication.
        assert all(len(contents) == 1 for contents in after.values())
        # Per-(rank, content) holdings differ by at most one.
        for rank in partition.group_ranks(0):
            counts_u: dict[int, int] = {}
            counts_v: dict[int, int] = {}
            for msg_id, content in u.msgs.get(rank, {}).items():
                counts_u[content] = counts_u.get(content, 0) + 1
            for msg_id, content in v.msgs.get(rank, {}).items():
                counts_v[content] = counts_v.get(content, 0) + 1
            for content in set(counts_u) | set(counts_v):
                assert abs(counts_u.get(content, 0) - counts_v.get(content, 0)) <= 1

    @given(data=dc_pair(), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_detect_collision_conserves_messages(self, data, seed):
        """Unless ⊤ is raised, DetectCollision permutes message holdings
        and restamps contents but never creates or destroys message IDs."""
        params, partition, u, v = data
        rank_u, rank_v = 1, 2
        before_ids = set(message_multiset([u, v]).keys())
        new_u, new_v = detect_collision(
            rank_u, u, rank_v, v, params, partition, make_rng(seed)
        )
        if new_u is TOP:
            return  # error path: states are replaced wholesale
        after_ids = set(message_multiset([new_u, new_v]).keys())
        assert before_ids == after_ids


class TestExecutionWellFormedness:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_random_runs_keep_states_consistent(self, seed):
        """Every reachable state populates exactly its role's sub-state."""
        protocol = ElectLeader(ProtocolParams(n=8, r=2))
        config = [protocol.initial_state() for _ in range(8)]
        rng = make_rng(seed)
        schedule_rng = make_rng(seed ^ 0xABCDEF)
        for _ in range(400):
            i = schedule_rng.randrange(8)
            j = schedule_rng.randrange(7)
            if j >= i:
                j += 1
            protocol.transition(config[i], config[j], rng)
            assert all(agent.consistent() for agent in config)

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_safe_set_closed_under_random_schedules(self, seed):
        """Lemma 6.1 as a property: random schedules never leave 𝒞_safe."""
        protocol = ElectLeader(ProtocolParams(n=8, r=2))
        config = correct_verifier_configuration(protocol)
        rng = make_rng(seed)
        schedule_rng = make_rng(seed ^ 0x123456)
        for _ in range(300):
            i = schedule_rng.randrange(8)
            j = schedule_rng.randrange(7)
            if j >= i:
                j += 1
            protocol.transition(config[i], config[j], rng)
        assert protocol.is_safe_configuration(config)

    @given(seed=st.integers(0, 2**32 - 1), rank=st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_verifier_ranks_immutable_without_reset(self, seed, rank):
        """DetectCollision never changes the rank field (Observation 1 of
        Section E.1), here via the full wrapper on a correct ranking."""
        protocol = ElectLeader(ProtocolParams(n=8, r=2))
        config = correct_verifier_configuration(protocol)
        target = config[rank - 1]
        rng = make_rng(seed)
        schedule_rng = make_rng(seed + 1)
        for _ in range(200):
            i = schedule_rng.randrange(8)
            j = schedule_rng.randrange(7)
            if j >= i:
                j += 1
            protocol.transition(config[i], config[j], rng)
        assert target.rank == rank


class TestInitialStateProperties:
    @given(
        n=st.integers(4, 40),
        r_fraction=st.floats(0.0, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_q0_message_allocation_partitions_ids(self, n, r_fraction):
        """q_{0,DC} across a full group: every governed ID appears exactly
        once, blocks are disjoint, and contents are all 1."""
        r = max(1, min(n // 2, 1 + int(r_fraction * (n // 2 - 1)))) if n >= 4 else 1
        params = ProtocolParams(n=n, r=r)
        partition = RankPartition(n, r)
        group_ranks = list(partition.group_ranks(0))
        dcs = [initial_dc_state(rank, params, partition) for rank in group_ranks]
        seen = message_multiset(dcs)
        total = params.messages_per_rank(partition.group_size(0))
        expected = {(rank, msg_id) for rank in group_ranks for msg_id in range(1, total + 1)}
        assert set(seen.keys()) == expected
        assert all(contents == [1] for contents in seen.values())

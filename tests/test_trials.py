"""Tests for the multi-trial runner and table formatting."""

from __future__ import annotations

import math

import pytest

from repro.baselines.nonss_leader import PairwiseElimination
from repro.sim.initial_state import CodeArray, CountVector, ObjectConfig
from repro.sim.trials import TrialSummary, format_table, run_trials


class TestRunTrials:
    def test_aggregates_converged_trials(self):
        protocol = PairwiseElimination(12)
        summary = run_trials(
            protocol,
            protocol.is_goal_configuration,
            n=12,
            trials=6,
            max_interactions=200_000,
            seed=3,
        )
        assert summary.trials == 6
        assert summary.converged == 6
        assert summary.success_rate == 1.0
        assert len(summary.parallel_times) == 6
        assert summary.median_time > 0

    def test_reports_failures(self):
        protocol = PairwiseElimination(12)
        summary = run_trials(
            protocol,
            lambda config: False,
            n=12,
            trials=3,
            max_interactions=50,
            seed=3,
        )
        assert summary.converged == 0
        assert summary.success_rate == 0.0
        assert math.isnan(summary.median_time)
        assert math.isnan(summary.p95_time)

    def test_config_factory_used(self):
        protocol = PairwiseElimination(6)

        def factory(index: int):
            config = [protocol.initial_state() for _ in range(6)]
            for state in config[1:]:
                state.leader = False
            return ObjectConfig(config)  # already converged

        summary = run_trials(
            protocol,
            protocol.is_goal_configuration,
            n=6,
            trials=4,
            max_interactions=10,
            init=factory,
        )
        assert summary.converged == 4
        assert all(t == 0 for t in summary.parallel_times)

    def test_deterministic_given_seed(self):
        protocol = PairwiseElimination(10)
        a = run_trials(
            protocol, protocol.is_goal_configuration, n=10, trials=4,
            max_interactions=100_000, seed=9,
        )
        b = run_trials(
            protocol, protocol.is_goal_configuration, n=10, trials=4,
            max_interactions=100_000, seed=9,
        )
        assert a.interactions == b.interactions

    def test_label_defaults_to_protocol_name(self):
        protocol = PairwiseElimination(6)
        summary = run_trials(
            protocol, protocol.is_goal_configuration, n=6, trials=1,
            max_interactions=100_000,
        )
        assert summary.label == protocol.name


class TestSummaryStatistics:
    def test_percentiles(self):
        summary = TrialSummary(
            label="x",
            n=4,
            trials=5,
            converged=5,
            interactions=[10, 20, 30, 40, 50],
            parallel_times=[1.0, 2.0, 3.0, 4.0, 5.0],
        )
        assert summary.median_time == 3.0
        assert summary.p95_time == 5.0
        assert summary.mean_time == 3.0
        assert summary.median_interactions == 30

    def test_p95_is_nearest_rank_not_maximum(self):
        # Regression: int(0.95 * 20) == 19 indexed the maximum (p100);
        # nearest-rank p95 of 20 samples is the 19th order statistic.
        summary = TrialSummary(
            label="x", n=4, trials=20, converged=20,
            interactions=list(range(20)),
            parallel_times=[float(value) for value in range(1, 21)],
        )
        assert summary.p95_time == 19.0

    def test_p95_known_lists(self):
        def p95(values):
            return TrialSummary(
                label="x", n=4, trials=len(values), converged=len(values),
                interactions=list(values), parallel_times=list(values),
            ).p95_time

        assert p95([float(v) for v in range(1, 101)]) == 95.0  # ceil(95) = 95
        assert p95([float(v) for v in range(1, 41)]) == 38.0  # ceil(38) = 38
        assert p95([5.0, 1.0, 3.0]) == 5.0  # ceil(2.85) = 3 → maximum
        assert p95([7.0]) == 7.0
        # Order must not matter.
        assert p95([20.0] + [float(v) for v in range(1, 20)]) == 19.0

    def test_as_row_keys(self):
        summary = TrialSummary("x", 4, 1, 1, [10], [1.0])
        row = summary.as_row()
        assert set(row) == {
            "label", "n", "trials", "success_rate",
            "median_interactions", "median_time", "p95_time",
        }


class TestFormatTable:
    def test_renders_columns(self):
        rows = [{"a": 1, "bb": "xy"}, {"a": 222, "bb": "z"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "222" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="T")


class TestBackendSelection:
    def test_counts_factory_builds_o_of_s_specs(self):
        import pytest

        pytest.importorskip("numpy")
        from repro.sim.counts_backend import goal_counts_predicate

        protocol = PairwiseElimination(64)
        built: list[int] = []

        def counts_factory(index: int):
            built.append(index)
            return CountVector([32, 32])  # half leaders, half followers

        summary = run_trials(
            protocol,
            goal_counts_predicate(protocol),
            n=64,
            trials=3,
            max_interactions=500_000,
            seed=4,
            check_interval=64,
            init=counts_factory,
            backend="counts",
        )
        assert built == [0, 1, 2]
        assert summary.converged == 3

    def test_removed_factory_kwargs_raise(self):
        protocol = PairwiseElimination(8)
        with pytest.raises(TypeError, match=r"init="):
            run_trials(
                protocol,
                protocol.is_goal_configuration,
                n=8,
                trials=1,
                max_interactions=100,
                counts_factory=lambda index: [8, 0],
            )

    def test_counts_backend_summary(self):
        import pytest

        pytest.importorskip("numpy")
        protocol = PairwiseElimination(16)
        from repro.sim.counts_backend import goal_counts_predicate

        summary = run_trials(
            protocol,
            goal_counts_predicate(protocol),
            n=16,
            trials=4,
            max_interactions=200_000,
            seed=9,
            check_interval=16,
            backend="counts",
        )
        assert summary.converged == 4
        assert all(t > 0 for t in summary.parallel_times)

    def test_explicit_backend_immune_to_bogus_env(self, monkeypatch):
        # Resolution happens once at the entry point; an explicit name is
        # a pure registry lookup and never consults the environment.
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "bogus")
        protocol = PairwiseElimination(12)
        summary = run_trials(
            protocol,
            protocol.is_goal_configuration,
            n=12,
            trials=2,
            max_interactions=100_000,
            seed=1,
            backend="object",
        )
        assert summary.converged == 2

    def test_codes_factory_builds_encoded_starts(self):
        import pytest

        np = pytest.importorskip("numpy")
        from repro.substrates.epidemics import EpidemicProtocol
        from repro.sim.counts_backend import goal_counts_predicate

        protocol = EpidemicProtocol()

        def seeded(index):
            codes = np.zeros(48, dtype=np.int64)
            codes[0] = 1
            return CodeArray(codes)

        summaries = [
            run_trials(
                protocol,
                goal_counts_predicate(protocol),
                n=48,
                trials=3,
                max_interactions=100_000,
                seed=4,
                check_interval=48,
                init=seeded,
                backend=backend,
            )
            for backend in ("object", "counts")
        ]
        assert all(s.converged == 3 for s in summaries)
        with pytest.raises(TypeError, match=r"init="):
            run_trials(
                protocol,
                protocol.is_goal_configuration,
                n=48,
                trials=1,
                max_interactions=10,
                codes_factory=seeded,
            )

"""Tests of the group-isolation structure (Section 3.3).

The trade-off construction treats each rank group as an independent
sub-population: collision detection is a no-op across groups, so a
correct group can never be perturbed by another group's chaos, and
collisions are always detected *within* the colliding rank's group.
"""

from __future__ import annotations

import pytest

from repro.adversary.initializers import correct_verifier_configuration
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.core.partition import RankPartition
from repro.core.stable_verify import stable_verify
from repro.core.state import TOP
from repro.scheduler.rng import make_rng


@pytest.fixture
def protocol() -> ElectLeader:
    return ElectLeader(ProtocolParams(n=12, r=3))


class TestCrossGroupIsolation:
    def test_cross_group_verify_only_ticks_probation(self, protocol):
        """A cross-group StableVerify interaction must not touch DC state."""
        config = correct_verifier_configuration(protocol)
        u = config[0]  # rank 1 (group 0)
        v = config[11]  # rank 12 (last group)
        assert not protocol.partition.same_group(u.rank, v.rank)
        assert u.sv is not None and v.sv is not None
        u_dc_before = u.sv.dc.clone()
        v_dc_before = v.sv.dc.clone()
        u_probation = u.sv.probation_timer = 5
        stable_verify(u, v, protocol.params, protocol.partition, make_rng(0), protocol.trigger)
        assert u.sv.dc == u_dc_before
        assert v.sv.dc == v_dc_before
        assert u.sv.probation_timer == u_probation - 1

    def test_duplicate_in_one_group_never_tops_other_groups(self, protocol):
        """Run with a duplicated rank in group 0; agents of other groups
        must never reach ⊤ (their message systems are untouched)."""
        from repro.sim.simulation import Simulation

        config = correct_verifier_configuration(protocol)
        # Duplicate rank 2 by overwriting the rank-1 agent.
        from repro.adversary.initializers import _verifier

        config[0] = _verifier(protocol, 2)
        for agent in config:
            assert agent.sv is not None
            agent.sv.probation_timer = 0
        colliding_group = protocol.partition.group_of(2)
        sim = Simulation(protocol, config=config, seed=3)
        for _ in range(50):
            sim.run(200)
            for agent in sim.config:
                if agent.sv is None or agent.sv.dc is not TOP:
                    continue
                assert protocol.partition.group_of(agent.rank) == colliding_group

    def test_group_sizes_match_detect_collision_instances(self, protocol):
        """Every verifier's observation array is sized for its own group."""
        config = correct_verifier_configuration(protocol)
        for agent in config:
            assert agent.sv is not None and agent.sv.dc is not TOP
            group = protocol.partition.group_of(agent.rank)
            expected = protocol.params.messages_per_rank(
                protocol.partition.group_size(group)
            )
            assert len(agent.sv.dc.observations) == expected


class TestPartitionEncodesGroups:
    def test_groups_cover_all_pairs_of_duplicates(self):
        """Any two equal ranks necessarily share a group (the premise that
        makes per-group detection complete)."""
        for n, r in [(10, 3), (17, 4), (32, 8)]:
            partition = RankPartition(n, r)
            for rank in range(1, n + 1):
                assert partition.same_group(rank, rank)

    def test_interactions_between_groups_equal_ranks_impossible(self):
        """Sanity: distinct groups never contain the same rank value."""
        partition = RankPartition(20, 4)
        seen: dict[int, int] = {}
        for group in range(partition.group_count):
            for rank in partition.group_ranks(group):
                assert rank not in seen
                seen[rank] = group


class TestChurnStress:
    def test_repeated_fault_bursts_always_return_to_safe(self):
        """Five consecutive corruption bursts, each followed by full
        recovery — the long-haul self-stabilization story."""
        from repro.adversary.initializers import random_agent
        from repro.sim.simulation import Simulation

        protocol = ElectLeader(ProtocolParams(n=12, r=3))
        rng = make_rng(9)
        config = None
        for burst in range(5):
            sim = Simulation(protocol, config=config, n=12, seed=100 + burst)
            result = sim.run_until(
                protocol.is_safe_configuration,
                max_interactions=5_000_000,
                check_interval=1_000,
            )
            assert result.converged, f"burst {burst} did not recover"
            config = result.config
            # Scramble three agents completely.
            for _ in range(3):
                victim = rng.randrange(12)
                config[victim] = random_agent(protocol, rng)

"""Tests for ``DetectCollision_r`` (Section 5.1, Lemma E.1)."""

from __future__ import annotations

from repro.core.detect_collision import (
    DetectCollisionProtocol,
    balance_load,
    check_message_consistency,
    detect_collision,
    has_duplicate_message,
    initial_dc_state,
    message_block,
    message_system_consistent,
    update_messages,
)
from repro.core.params import ProtocolParams
from repro.core.partition import RankPartition
from repro.core.state import TOP, DCState
from repro.scheduler.rng import derive_seed, make_rng
from repro.sim.simulation import Simulation


def setup(n: int = 12, r: int = 3) -> tuple[ProtocolParams, RankPartition]:
    params = ProtocolParams(n=n, r=r)
    return params, RankPartition(n, r)


class TestMessageBlock:
    def test_blocks_partition_ids(self):
        for group_size, total in [(1, 8), (3, 18), (4, 32), (5, 17)]:
            covered = []
            for position in range(1, group_size + 1):
                covered.extend(message_block(position, group_size, total))
            assert sorted(covered) == list(range(1, total + 1))

    def test_blocks_nearly_equal(self):
        sizes = [len(message_block(p, 5, 17)) for p in range(1, 6)]
        assert max(sizes) - min(sizes) <= 1


class TestInitialState:
    def test_initial_contents_all_one(self):
        params, partition = setup()
        dc = initial_dc_state(1, params, partition)
        assert dc.signature == 1
        assert dc.counter == 1
        assert all(v == 1 for v in dc.observations)
        assert all(c == 1 for ids in dc.msgs.values() for c in ids.values())

    def test_initial_state_holds_block_for_every_group_rank(self):
        params, partition = setup()
        dc = initial_dc_state(2, params, partition)
        group = partition.group_of(2)
        assert set(dc.msgs.keys()) == set(partition.group_ranks(group))

    def test_clean_group_is_globally_consistent(self):
        params, partition = setup()
        pairs = [(rank, initial_dc_state(rank, params, partition)) for rank in range(1, 13)]
        assert message_system_consistent(pairs, params, partition)

    def test_own_held_messages_match_observations(self):
        """The paper's state-space restriction holds at q0."""
        params, partition = setup()
        for rank in range(1, 13):
            dc = initial_dc_state(rank, params, partition)
            for msg_id, content in dc.msgs.get(rank, {}).items():
                assert content == dc.observations[msg_id - 1]


class TestObviousCollisions:
    def test_same_rank_raises_top(self, rng):
        params, partition = setup()
        a = initial_dc_state(1, params, partition)
        b = initial_dc_state(1, params, partition)
        new_a, new_b = detect_collision(1, a, 1, b, params, partition, rng)
        assert new_a is TOP and new_b is TOP

    def test_duplicate_message_raises_top(self, rng):
        params, partition = setup()
        a = initial_dc_state(1, params, partition)
        b = initial_dc_state(2, params, partition)
        # Plant a copy of one of a's held messages into b.
        msg_id = next(iter(a.msgs[1]))
        b.msgs.setdefault(1, {})[msg_id] = a.msgs[1][msg_id]
        new_a, new_b = detect_collision(1, a, 2, b, params, partition, rng)
        assert new_a is TOP and new_b is TOP

    def test_has_duplicate_message_helper(self):
        a = DCState(msgs={1: {1: 5}})
        b = DCState(msgs={1: {1: 9}})
        c = DCState(msgs={1: {2: 9}})
        assert has_duplicate_message(a, b)
        assert not has_duplicate_message(a, c)

    def test_cross_group_interaction_is_noop(self, rng):
        params, partition = setup()
        a = initial_dc_state(1, params, partition)
        b = initial_dc_state(12, params, partition)
        assert not partition.same_group(1, 12)
        snapshot = (a.clone(), b.clone())
        new_a, new_b = detect_collision(1, a, 12, b, params, partition, rng)
        assert new_a is a and new_b is b
        assert a == snapshot[0] and b == snapshot[1]

    def test_top_inputs_absorbing(self, rng):
        params, partition = setup()
        b = initial_dc_state(2, params, partition)
        new_a, new_b = detect_collision(1, TOP, 2, b, params, partition, rng)
        assert new_a is TOP
        assert new_b is b


class TestConsistencyCheck:
    def test_conflicting_content_detected(self, rng):
        params, partition = setup()
        a = initial_dc_state(1, params, partition)
        b = initial_dc_state(2, params, partition)
        # b carries a message governed by rank 1 whose content disagrees
        # with rank-1's observation.
        msg_id = next(iter(b.msgs[1]))
        b.msgs[1][msg_id] = 999
        new_a, new_b = detect_collision(1, a, 2, b, params, partition, rng)
        assert new_a is TOP and new_b is TOP

    def test_check_helper_direct(self):
        owner = DCState(observations=[5, 5])
        other = DCState(msgs={3: {1: 5, 2: 7}})
        assert check_message_consistency(3, owner, other)
        other_ok = DCState(msgs={3: {1: 5, 2: 5}})
        assert not check_message_consistency(3, owner, other_ok)

    def test_check_ignores_messages_of_other_ranks(self):
        owner = DCState(observations=[5])
        other = DCState(msgs={4: {1: 999}})
        assert not check_message_consistency(3, owner, other)


class TestUpdateMessages:
    def test_restamps_partner_messages(self, rng):
        params, partition = setup()
        a = initial_dc_state(1, params, partition)
        b = initial_dc_state(2, params, partition)
        a.signature = 77
        update_messages(1, a, b, partition.group_size(0), params, rng)
        for msg_id, content in b.msgs[1].items():
            assert content == 77
            assert a.observations[msg_id - 1] == 77

    def test_signature_refresh_on_schedule(self, rng):
        params, partition = setup()
        a = initial_dc_state(1, params, partition)
        b = initial_dc_state(2, params, partition)
        group_size = partition.group_size(0)
        period = params.signature_period(group_size)
        a.counter = period - 1
        update_messages(1, a, b, group_size, params, rng)
        assert a.counter == 1  # refreshed and reset
        # Own held messages and their observations now match the signature.
        for msg_id, content in a.msgs[1].items():
            assert content == a.signature
            assert a.observations[msg_id - 1] == a.signature

    def test_counter_increments_between_refreshes(self, rng):
        params, partition = setup()
        a = initial_dc_state(1, params, partition)
        b = initial_dc_state(2, params, partition)
        a.counter = 1
        update_messages(1, a, b, partition.group_size(0), params, rng)
        assert a.counter == 2


class TestBalanceLoad:
    def test_conserves_messages(self):
        params, partition = setup()
        a = initial_dc_state(1, params, partition)
        b = initial_dc_state(2, params, partition)
        before = {}
        for dc in (a, b):
            for rank, ids in dc.msgs.items():
                for msg_id, content in ids.items():
                    before[(rank, msg_id)] = content
        balance_load(a, b, list(partition.group_ranks(0)))
        after = {}
        for dc in (a, b):
            for rank, ids in dc.msgs.items():
                for msg_id, content in ids.items():
                    assert (rank, msg_id) not in after, "message duplicated"
                    after[(rank, msg_id)] = content
        assert before == after

    def test_per_content_holdings_within_one(self):
        params, partition = setup()
        a = initial_dc_state(1, params, partition)
        b = initial_dc_state(2, params, partition)
        balance_load(a, b, list(partition.group_ranks(0)))
        for rank in partition.group_ranks(0):
            by_content_a: dict[int, int] = {}
            by_content_b: dict[int, int] = {}
            for msg_id, content in a.msgs.get(rank, {}).items():
                by_content_a[content] = by_content_a.get(content, 0) + 1
            for msg_id, content in b.msgs.get(rank, {}).items():
                by_content_b[content] = by_content_b.get(content, 0) + 1
            for content in set(by_content_a) | set(by_content_b):
                diff = abs(by_content_a.get(content, 0) - by_content_b.get(content, 0))
                assert diff <= 1

    def test_balances_clumped_holdings(self):
        params, partition = setup()
        a = initial_dc_state(1, params, partition)
        b = initial_dc_state(2, params, partition)
        # Give a everything b holds (disjoint blocks, so no duplicates).
        for rank, ids in b.msgs.items():
            a.msgs.setdefault(rank, {}).update(ids)
        b.msgs = {}
        total = a.held_count()
        balance_load(a, b, list(partition.group_ranks(0)))
        assert abs(a.held_count() - b.held_count()) <= a.held_count() + b.held_count()
        assert a.held_count() + b.held_count() == total
        # Both sides end with roughly half.
        group_size = len(list(partition.group_ranks(0)))
        assert min(a.held_count(), b.held_count()) >= total // 2 - group_size


class TestSoundness:
    def test_no_false_positive_long_run(self):
        """Lemma E.1(a) empirically: from q0 on a correct ranking, no ⊤
        over a long random execution (several seeds)."""
        params = ProtocolParams(n=12, r=3)
        protocol = DetectCollisionProtocol(params)
        for seed in range(3):
            config = [protocol.state_for_rank(rank) for rank in range(1, 13)]
            sim = Simulation(protocol, config=config, seed=seed)
            sim.run(30_000)
            assert not protocol.error_detected(sim.config)

    def test_consistency_invariant_preserved(self):
        """The global message-system invariant survives random execution."""
        params = ProtocolParams(n=12, r=4)
        protocol = DetectCollisionProtocol(params)
        config = [protocol.state_for_rank(rank) for rank in range(1, 13)]
        sim = Simulation(protocol, config=config, seed=77)
        for _ in range(20):
            sim.run(1_000)
            pairs = [(s.rank, s.dc) for s in sim.config]
            assert message_system_consistent(pairs, params, protocol.partition)


class TestCompleteness:
    def test_duplicate_rank_detected(self):
        """Lemma E.1(b): a duplicated rank yields ⊤, from clean DC states."""
        params = ProtocolParams(n=12, r=3)
        protocol = DetectCollisionProtocol(params)
        config = [protocol.state_for_rank(rank) for rank in range(1, 13)]
        config[0] = protocol.state_for_rank(2)  # ranks: two 2s, no 1
        sim = Simulation(protocol, config=config, seed=13)
        result = sim.run_until(
            protocol.error_detected, max_interactions=500_000, check_interval=50
        )
        assert result.converged

    def test_duplicate_rank_detected_with_scrambled_states(self):
        """Robust completeness: detection works from adversarial DC states."""
        params = ProtocolParams(n=12, r=3)
        protocol = DetectCollisionProtocol(params)
        rng = make_rng(4)
        config = [protocol.state_for_rank(rank) for rank in range(1, 13)]
        config[5] = protocol.state_for_rank(3)
        # Scramble signatures and observations arbitrarily.
        for agent in config:
            assert agent.dc is not TOP
            agent.dc.signature = rng.randrange(1, 100)
            agent.dc.counter = rng.randrange(1, 5)
        sim = Simulation(protocol, config=config, seed=29)
        result = sim.run_until(
            protocol.error_detected, max_interactions=500_000, check_interval=50
        )
        assert result.converged

    def test_detection_across_seeds(self):
        """All of 10 seeded duplicate-rank runs must detect (w.h.p. claim)."""
        params = ProtocolParams(n=12, r=4)
        protocol = DetectCollisionProtocol(params)
        detected = 0
        for trial in range(10):
            config = [protocol.state_for_rank(rank) for rank in range(1, 13)]
            config[3] = protocol.state_for_rank(5)
            sim = Simulation(protocol, config=config, seed=derive_seed(31, trial))
            result = sim.run_until(
                protocol.error_detected, max_interactions=500_000, check_interval=100
            )
            detected += bool(result.converged)
        assert detected == 10

"""Tests for ``AssignRanks_r`` (Appendix D, Lemma D.1)."""

from __future__ import annotations

from repro.core.assign_ranks import (
    AssignRanksProtocol,
    initial_ar_state,
    rank_from_label,
)
from repro.core.params import ProtocolParams
from repro.core.state import ARPhase, ARState
from repro.scheduler.rng import derive_seed, make_rng
from repro.sim.simulation import Simulation


def make_sheriff(params: ProtocolParams) -> ARState:
    state = initial_ar_state()
    state.phase = ARPhase.SHERIFF
    state.low_badge = 1
    state.high_badge = params.r
    state.channel = (0,) * params.r
    return state


def make_recipient(params: ProtocolParams) -> ARState:
    state = initial_ar_state()
    state.phase = ARPhase.RECIPIENT
    state.channel = (0,) * params.r
    return state


class TestRankFromLabel:
    def test_first_deputy_first_label_is_leader(self):
        assert rank_from_label((1, 1), (3, 3, 3), 9) == 1

    def test_lexicographic_positions(self):
        channel = (3, 2, 4)  # deputies issued 3, 2, 4 labels
        ranks = [
            rank_from_label((deputy, index), channel, 9)
            for deputy, counts in ((1, 3), (2, 2), (3, 4))
            for index in range(1, counts + 1)
        ]
        assert ranks == list(range(1, 10))

    def test_none_label_defaults_to_one(self):
        assert rank_from_label(None, (1, 2), 8) == 1

    def test_garbage_clamped_into_range(self):
        assert rank_from_label((3, 999), (500, 500, 500), 10) == 10
        assert rank_from_label((1, 1), (), 10) == 1


class TestDeputize:
    def test_badge_split_halves_range(self, rng):
        params = ProtocolParams(n=16, r=4)
        protocol = AssignRanksProtocol(params)
        sheriff = make_sheriff(params)
        recipient = make_recipient(params)
        protocol.transition(sheriff, recipient, rng)
        # r=4: sheriff keeps {1,2}, recipient takes {3,4}.
        assert (sheriff.low_badge, sheriff.high_badge) == (1, 2)
        assert (recipient.low_badge, recipient.high_badge) == (3, 4)
        assert sheriff.phase is ARPhase.SHERIFF
        assert recipient.phase is ARPhase.SHERIFF

    def test_single_badge_becomes_deputy(self, rng):
        params = ProtocolParams(n=16, r=2)
        protocol = AssignRanksProtocol(params)
        sheriff = make_sheriff(params)
        recipient = make_recipient(params)
        protocol.transition(sheriff, recipient, rng)
        assert sheriff.phase is ARPhase.DEPUTY
        assert recipient.phase is ARPhase.DEPUTY
        assert {sheriff.deputy_id, recipient.deputy_id} == {1, 2}
        assert sheriff.counter == 1
        assert sheriff.channel[sheriff.deputy_id - 1] == 1

    def test_badge_intervals_partition_r(self, rng):
        """Repeated deputization creates exactly the deputies 1..r."""
        params = ProtocolParams(n=32, r=8)
        protocol = AssignRanksProtocol(params)
        agents = [make_sheriff(params)] + [make_recipient(params) for _ in range(15)]
        scheduler_rng = make_rng(5)
        for _ in range(5000):
            i = scheduler_rng.randrange(len(agents))
            j = scheduler_rng.randrange(len(agents) - 1)
            if j >= i:
                j += 1
            protocol.transition(agents[i], agents[j], rng)
            if sum(1 for a in agents if a.phase is ARPhase.DEPUTY) == params.r:
                break
        deputies = [a for a in agents if a.phase is ARPhase.DEPUTY]
        assert sorted(d.deputy_id for d in deputies) == list(range(1, params.r + 1))


class TestLabeling:
    def test_labeling_gated_on_all_deputies(self, rng):
        params = ProtocolParams(n=16, r=4)
        protocol = AssignRanksProtocol(params)
        deputy = initial_ar_state()
        deputy.phase = ARPhase.DEPUTY
        deputy.deputy_id = 1
        deputy.counter = 1
        deputy.channel = (1, 0, 0, 0)  # sum < r: labeling must not fire
        recipient = make_recipient(params)
        protocol.transition(deputy, recipient, rng)
        assert recipient.label is None
        assert deputy.counter == 1

    def test_labeling_issues_sequential_labels(self, rng):
        params = ProtocolParams(n=16, r=4)
        protocol = AssignRanksProtocol(params)
        deputy = initial_ar_state()
        deputy.phase = ARPhase.DEPUTY
        deputy.deputy_id = 2
        deputy.counter = 1
        deputy.channel = (1, 1, 1, 1)
        first = make_recipient(params)
        second = make_recipient(params)
        protocol.transition(deputy, first, rng)
        protocol.transition(deputy, second, rng)
        assert first.label == (2, 2)
        assert second.label == (2, 3)
        assert deputy.counter == 3
        assert deputy.channel[1] == 3

    def test_pool_exhaustion_stops_labeling(self, rng):
        params = ProtocolParams(n=16, r=4)
        protocol = AssignRanksProtocol(params)
        deputy = initial_ar_state()
        deputy.phase = ARPhase.DEPUTY
        deputy.deputy_id = 1
        deputy.counter = params.labels_per_deputy
        deputy.channel = (params.labels_per_deputy, 1, 1, 1)
        recipient = make_recipient(params)
        protocol.transition(deputy, recipient, rng)
        assert recipient.label is None
        assert deputy.counter == params.labels_per_deputy

    def test_labeled_recipient_not_relabeled(self, rng):
        params = ProtocolParams(n=16, r=4)
        protocol = AssignRanksProtocol(params)
        deputy = initial_ar_state()
        deputy.phase = ARPhase.DEPUTY
        deputy.deputy_id = 1
        deputy.counter = 2
        deputy.channel = (2, 1, 1, 1)
        recipient = make_recipient(params)
        recipient.label = (3, 1)
        protocol.transition(deputy, recipient, rng)
        assert recipient.label == (3, 1)
        assert deputy.counter == 2


class TestChannelBroadcast:
    def test_channels_max_merge(self, rng):
        params = ProtocolParams(n=16, r=4)
        protocol = AssignRanksProtocol(params)
        a = make_recipient(params)
        b = make_recipient(params)
        a.channel = (3, 0, 2, 0)
        b.channel = (1, 4, 0, 0)
        protocol.transition(a, b, rng)
        assert a.channel == (3, 4, 2, 0)
        assert b.channel == (3, 4, 2, 0)

    def test_complete_channel_triggers_sleep(self, rng):
        params = ProtocolParams(n=16, r=4)
        protocol = AssignRanksProtocol(params)
        a = make_recipient(params)
        b = make_recipient(params)
        a.label = (1, 2)
        a.channel = (8, 8, 0, 0)  # sums to n = 16
        b.channel = (0, 0, 0, 0)
        protocol.transition(a, b, rng)
        assert a.phase is ARPhase.SLEEPER
        assert b.phase is ARPhase.SLEEPER  # merge gave b the full channel too
        assert a.label == (1, 2)

    def test_deputy_sleeps_with_own_label(self, rng):
        params = ProtocolParams(n=16, r=4)
        protocol = AssignRanksProtocol(params)
        deputy = initial_ar_state()
        deputy.phase = ARPhase.DEPUTY
        deputy.deputy_id = 3
        deputy.counter = 4
        deputy.channel = (4, 4, 4, 4)
        other = make_recipient(params)
        protocol.transition(deputy, other, rng)
        assert deputy.phase is ARPhase.SLEEPER
        assert deputy.label == (3, 1)


class TestSleep:
    def test_sleeper_meeting_ranked_becomes_ranked(self, rng):
        params = ProtocolParams(n=16, r=4)
        protocol = AssignRanksProtocol(params)
        sleeper = initial_ar_state()
        sleeper.phase = ARPhase.SLEEPER
        sleeper.label = (1, 2)
        sleeper.channel = (4, 4, 4, 4)
        sleeper.sleep_timer = 1
        ranked = initial_ar_state()
        ranked.phase = ARPhase.RANKED
        ranked.rank = 7
        protocol.transition(sleeper, ranked, rng)
        assert sleeper.phase is ARPhase.RANKED
        assert sleeper.rank == 2

    def test_sleep_timer_expiry_ranks_both(self, rng):
        params = ProtocolParams(n=16, r=4)
        protocol = AssignRanksProtocol(params)
        sleeper = initial_ar_state()
        sleeper.phase = ARPhase.SLEEPER
        sleeper.label = (1, 1)
        sleeper.channel = (4, 4, 4, 4)
        sleeper.sleep_timer = params.sleep_timer_max - 1
        other = initial_ar_state()
        other.phase = ARPhase.SLEEPER
        other.label = (2, 1)
        other.channel = (4, 4, 4, 4)
        other.sleep_timer = 1
        protocol.transition(sleeper, other, rng)
        assert sleeper.phase is ARPhase.RANKED
        assert other.phase is ARPhase.RANKED
        assert sleeper.rank == 1
        assert other.rank == 5

    def test_sleep_spreads_to_awake_partner(self, rng):
        params = ProtocolParams(n=16, r=4)
        protocol = AssignRanksProtocol(params)
        sleeper = initial_ar_state()
        sleeper.phase = ARPhase.SLEEPER
        sleeper.label = (1, 1)
        sleeper.channel = (4, 4, 4, 4)
        sleeper.sleep_timer = 1
        recipient = make_recipient(params)
        recipient.label = (2, 3)
        protocol.transition(sleeper, recipient, rng)
        assert recipient.phase is ARPhase.SLEEPER
        assert recipient.label == (2, 3)


class TestFullRuns:
    def test_produces_correct_silent_ranking(self):
        """Lemma D.1 end-to-end for several (n, r)."""
        for n, r, seed in [(12, 1, 0), (12, 3, 1), (24, 4, 2), (32, 8, 3)]:
            params = ProtocolParams(n=n, r=r)
            protocol = AssignRanksProtocol(params)
            sim = Simulation(protocol, n=n, seed=seed)
            result = sim.run_until(
                protocol.is_goal_configuration,
                max_interactions=2_000_000,
                check_interval=200,
            )
            assert result.converged, (n, r)
            ranks = sorted(s.rank for s in result.config)
            assert ranks == list(range(1, n + 1))

    def test_silence_once_ranked(self):
        """Once all agents are ranked, no interaction changes any AR state."""
        params = ProtocolParams(n=16, r=4)
        protocol = AssignRanksProtocol(params)
        sim = Simulation(protocol, n=16, seed=9)
        result = sim.run_until(
            protocol.is_goal_configuration, max_interactions=2_000_000, check_interval=200
        )
        assert result.converged
        snapshot = [s.clone() for s in result.config]
        sim.run(5_000)
        assert [s.rank for s in sim.config] == [s.rank for s in snapshot]
        assert all(s.phase is ARPhase.RANKED for s in sim.config)

    def test_success_across_seeds(self):
        """The w.h.p. claim: all of 20 seeded runs rank correctly."""
        params = ProtocolParams(n=20, r=4)
        protocol = AssignRanksProtocol(params)
        successes = 0
        for trial in range(20):
            sim = Simulation(protocol, n=20, seed=derive_seed(55, trial))
            result = sim.run_until(
                protocol.is_goal_configuration,
                max_interactions=2_000_000,
                check_interval=500,
            )
            successes += bool(result.converged)
        assert successes >= 19

"""Tests for the simulation engine and metrics."""

from __future__ import annotations

import pytest

from repro.baselines.nonss_leader import PairwiseElimination
from repro.sim.metrics import Metrics
from repro.sim.simulation import Simulation, run_until


@pytest.fixture
def protocol() -> PairwiseElimination:
    return PairwiseElimination(10)


class TestSimulation:
    def test_requires_config_or_n(self, protocol):
        with pytest.raises(ValueError):
            Simulation(protocol)

    def test_rejects_tiny_population(self, protocol):
        with pytest.raises(ValueError):
            Simulation(protocol, config=[protocol.initial_state()])

    def test_step_counts_interactions(self, protocol):
        sim = Simulation(protocol, n=10, seed=0)
        sim.run(25)
        assert sim.metrics.interactions == 25
        assert sim.metrics.parallel_time == 2.5

    def test_determinism_same_seed(self, protocol):
        a = Simulation(protocol, n=10, seed=4)
        b = Simulation(protocol, n=10, seed=4)
        a.run(500)
        b.run(500)
        assert [s.leader for s in a.config] == [s.leader for s in b.config]

    def test_different_seeds_diverge(self, protocol):
        a = Simulation(protocol, n=10, seed=4)
        b = Simulation(protocol, n=10, seed=5)
        a.run(200)
        b.run(200)
        # Leader patterns almost surely differ after 200 interactions.
        assert [s.leader for s in a.config] != [s.leader for s in b.config]

    def test_run_until_converges(self, protocol):
        sim = Simulation(protocol, n=10, seed=1)
        result = sim.run_until(protocol.is_goal_configuration, max_interactions=100_000)
        assert result.converged
        assert protocol.leader_count(result.config) == 1
        assert bool(result)

    def test_run_until_budget_exhaustion(self, protocol):
        sim = Simulation(protocol, n=10, seed=1)
        result = sim.run_until(lambda config: False, max_interactions=100)
        assert not result.converged
        assert result.interactions == 100

    def test_run_until_checks_initial_config(self, protocol):
        config = [protocol.initial_state() for _ in range(10)]
        for state in config[1:]:
            state.leader = False
        sim = Simulation(protocol, config=config, seed=1)
        result = sim.run_until(protocol.is_goal_configuration, max_interactions=100)
        assert result.converged
        assert result.interactions == 0

    def test_check_interval_quantizes(self, protocol):
        sim = Simulation(protocol, n=10, seed=1)
        result = sim.run_until(
            protocol.is_goal_configuration, max_interactions=100_000, check_interval=64
        )
        assert result.converged
        assert result.interactions % 64 == 0

    def test_invalid_check_interval(self, protocol):
        sim = Simulation(protocol, n=10, seed=1)
        with pytest.raises(ValueError):
            sim.run_until(protocol.is_goal_configuration, max_interactions=10, check_interval=0)

    def test_observers_invoked(self, protocol):
        sim = Simulation(protocol, n=10, seed=2)
        seen: list[tuple[int, int]] = []
        sim.observers.append(lambda s, i, j: seen.append((i, j)))
        sim.run(10)
        assert len(seen) == 10
        assert all(i != j for i, j in seen)

    def test_run_until_convenience_wrapper(self, protocol):
        result = run_until(
            protocol,
            protocol.is_goal_configuration,
            n=10,
            seed=3,
            max_interactions=100_000,
        )
        assert result.converged


class TestMetrics:
    def test_event_counting(self):
        metrics = Metrics(n=10)
        metrics.interactions = 42
        metrics.record_event("hard_reset")
        metrics.record_event("hard_reset", 2)
        assert metrics.events["hard_reset"] == 3
        assert metrics.first_occurrence["hard_reset"] == 42

    def test_zero_count_ignored(self):
        metrics = Metrics(n=10)
        metrics.record_event("x", 0)
        assert "x" not in metrics.events
        assert "x" not in metrics.first_occurrence

    def test_as_dict(self):
        metrics = Metrics(n=4)
        metrics.interactions = 8
        payload = metrics.as_dict()
        assert payload["parallel_time"] == 2.0
        assert payload["n"] == 4

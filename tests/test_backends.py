"""The execution-backend registry: one source of truth for engine dispatch.

Contracts gated here:

* the registry knows the three built-in engines (object first), rejects
  unknown names with the known list, and supports one-file extension via
  :func:`register_backend`;
* resolution (``None`` → ``$REPRO_BENCH_BACKEND`` → default) happens only
  in :func:`resolve_backend`; :func:`get_backend` and
  ``make_simulation(backend=<resolved name>)`` are pure lookups that never
  consult the environment;
* capability checks: the object engine runs everything, the vectorized
  engines reject protocols without a finite encoding, with a reason;
* ``make_simulation`` routes to the right engine class and materializes
  one ``init=`` :class:`~repro.sim.initial_state.InitialState` into each
  engine's native form;
* the deprecated ``config=``/``codes=``/``counts=`` kwargs go through
  the one-release shim — a ``DeprecationWarning`` and a start identical
  to the ``init=`` path;
* the dispatch sites themselves (``simulation``/``trials``/``sweep``/
  ``cli``) contain no hardcoded backend-name conditionals.
"""

from __future__ import annotations

import inspect
import re

import pytest

from repro.baselines.nonss_leader import PairwiseElimination
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.sim import backends
from repro.sim.backends import (
    NATIVE_CODES,
    NATIVE_CONFIG,
    NATIVE_COUNTS,
    Backend,
    backend_names,
    get_backend,
    make_simulation,
    register_backend,
    resolve_backend,
    supports_backend,
)
from repro.sim.initial_state import CodeArray, CountVector
from repro.sim.simulation import Simulation
from repro.sim.trials import run_trials


class TestRegistry:
    def test_builtins_registered_default_first(self):
        names = backend_names()
        assert names[0] == "object"
        assert set(names) >= {"object", "array", "counts", "batch"}

    def test_get_backend_unknown_lists_known(self):
        with pytest.raises(ValueError, match="unknown backend 'gpu'.*object"):
            get_backend("gpu")

    def test_unknown_backend_error_lists_names_sorted(self):
        # The error message is part of the CLI surface: registered names
        # come back in deterministic sorted order, not insertion order.
        with pytest.raises(ValueError) as excinfo:
            get_backend("gpu")
        expected = ", ".join(sorted(backend_names()))
        assert f"(known: {expected})" in str(excinfo.value)

    def test_register_rejects_duplicates_and_bad_names(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(get_backend("object"))
        with pytest.raises(ValueError, match="simple identifier"):
            register_backend(
                Backend(name="not a name", factory=lambda *a, **k: None,
                        supports=lambda p: None)
            )

    def test_fifth_backend_is_one_registration(self):
        """The extension contract: register → every entry point sees it."""
        calls = {}

        def factory(protocol, *, init=None, n=None, seed=0):
            calls["built"] = True
            config = init.to_config(protocol) if init is not None else None
            return Simulation(protocol, config=config, n=n, seed=seed)

        register_backend(
            Backend(name="dummy", factory=factory, supports=lambda p: None)
        )
        try:
            assert "dummy" in backend_names()
            assert resolve_backend("dummy") == "dummy"
            sim = make_simulation(PairwiseElimination(8), n=8, backend="dummy")
            assert calls["built"] and isinstance(sim, Simulation)
        finally:
            del backends._REGISTRY["dummy"]

    def test_replace_requires_flag(self):
        original = get_backend("object")
        register_backend(original, replace=True)  # no-op re-registration
        assert get_backend("object") is original

    def test_native_forms(self):
        # Each engine declares which InitialState materialization it asks
        # for — the registry-level fact that replaced the old
        # counts_native boolean.
        assert get_backend("counts").native_form == NATIVE_COUNTS
        assert get_backend("batch").native_form == NATIVE_COUNTS
        assert get_backend("object").native_form == NATIVE_CONFIG
        assert get_backend("array").native_form == NATIVE_CODES

    def test_batch_entry_hooks(self):
        # The batch engines are the only ones with whole-batch execution
        # hooks: a trial_runner for run_trials and cell-grouped sweeps.
        for name in ("batch", "batch-jit"):
            entry = get_backend(name)
            assert entry.trial_runner is not None and entry.batch_cells
        for name in ("object", "array", "counts"):
            entry = get_backend(name)
            assert entry.trial_runner is None and not entry.batch_cells

    def test_batch_jit_registered_as_sixth_backend(self):
        # A dashed name is a legal registry entry, and the jit leg routes
        # counts-native like the engine it compiles.
        assert "batch-jit" in backend_names()
        entry = get_backend("batch-jit")
        assert entry.native_form == NATIVE_COUNTS
        assert "numba" in entry.description


class TestResolution:
    def test_explicit_name_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "counts")
        assert resolve_backend("object") == "object"
        assert resolve_backend(None) == "counts"

    def test_none_defaults_to_object(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_BACKEND", raising=False)
        assert resolve_backend(None) == "object"

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "bogus")
        with pytest.raises(ValueError, match="unknown backend 'bogus'"):
            resolve_backend(None)

    def test_resolved_names_never_consult_env(self, monkeypatch):
        # The resolve-once contract: a worker holding a resolved name must
        # be immune to its own (possibly bogus) environment.
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "bogus")
        assert isinstance(make_simulation(PairwiseElimination(8), n=8, backend="object"),
                          Simulation)


class TestCapabilities:
    def test_object_runs_everything(self):
        elect = ElectLeader(ProtocolParams(n=16, r=2))
        assert supports_backend(elect, "object") is None

    @pytest.mark.parametrize("name", ["array", "counts", "batch"])
    def test_vectorized_engines_reject_elect_leader(self, name):
        elect = ElectLeader(ProtocolParams(n=16, r=2))
        reason = supports_backend(elect, name)
        assert reason is not None and "finite state encoding" in reason

    @pytest.mark.parametrize("name", ["array", "counts", "batch"])
    def test_vectorized_engines_accept_finite_state(self, name):
        assert supports_backend(PairwiseElimination(8), name) is None

    def test_require_raises_with_protocol_and_backend(self):
        elect = ElectLeader(ProtocolParams(n=16, r=2))
        with pytest.raises(ValueError, match="'elect-leader'.*'counts'"):
            get_backend("counts").require(elect)


class TestMakeSimulation:
    def test_routes_to_engine_classes(self):
        pytest.importorskip("numpy")
        from repro.sim.array_backend import ArraySimulation
        from repro.sim.batch_backend import BatchCountsEngine
        from repro.sim.counts_backend import CountsSimulation

        protocol = PairwiseElimination(8)
        assert isinstance(make_simulation(protocol, n=8), Simulation)
        assert isinstance(
            make_simulation(protocol, n=8, backend="array"), ArraySimulation
        )
        assert isinstance(
            make_simulation(protocol, n=8, backend="counts"), CountsSimulation
        )
        assert isinstance(
            make_simulation(protocol, n=8, backend="batch"), BatchCountsEngine
        )

    def test_init_reaches_every_engine_natively(self):
        np = pytest.importorskip("numpy")
        protocol = PairwiseElimination(8)
        codes = [1, 0, 1, 0, 0, 0, 1, 0]
        init = CodeArray(codes)
        object_sim = make_simulation(protocol, init=init, backend="object")
        array_sim = make_simulation(protocol, init=init, backend="array")
        counts_sim = make_simulation(protocol, init=init, backend="counts")
        assert [protocol.encode_state(s) for s in object_sim.config] == codes
        assert array_sim.codes.tolist() == codes
        assert counts_sim.counts.tolist() == np.bincount(codes, minlength=2).tolist()

    def test_count_vector_reaches_every_engine_identically(self):
        np = pytest.importorskip("numpy")
        from repro.sim.counts_backend import CountsSimulation

        protocol = PairwiseElimination(8)
        init = CountVector([5, 3])
        object_sim = make_simulation(protocol, init=init, backend="object")
        array_sim = make_simulation(protocol, init=init, backend="array")
        counts_sim = make_simulation(protocol, init=init, backend="counts")
        assert isinstance(counts_sim, CountsSimulation)
        assert sorted(protocol.encode_state(s) for s in object_sim.config) == \
            [0] * 5 + [1] * 3
        assert np.sort(array_sim.codes).tolist() == [0] * 5 + [1] * 3
        assert counts_sim.counts.tolist() == [5, 3]

    def test_counts_expand_to_fresh_objects_on_the_object_engine(self):
        # The object engine mutates states in place, so the expansion must
        # never alias two agents to one decoded object (the counts
        # backend's shared-object expansion is read-only-safe only).
        protocol = PairwiseElimination(6)
        sim = make_simulation(protocol, init=CountVector([0, 6]), backend="object")
        assert len({id(state) for state in sim.config}) == 6

    def test_counts_length_is_validated(self):
        pytest.importorskip("numpy")
        protocol = PairwiseElimination(8)
        for backend in ("object", "array", "counts"):
            with pytest.raises((ValueError, RuntimeError)):
                make_simulation(protocol, init=CountVector([1, 2, 3]), backend=backend)

    def test_init_rejects_non_initial_state(self):
        protocol = PairwiseElimination(8)
        with pytest.raises(TypeError, match="InitialState"):
            make_simulation(protocol, init=[0] * 8)


class TestLegacyKwargsRemoved:
    """``config=``/``codes=``/``counts=`` are gone; each points at ``init=``."""

    def test_removed_kwargs_point_at_init(self):
        protocol = PairwiseElimination(8)
        with pytest.raises(TypeError, match=r"init= with CodeArray"):
            make_simulation(protocol, codes=[0] * 8, backend="object")
        with pytest.raises(TypeError, match=r"init= with CountVector"):
            make_simulation(protocol, counts=[5, 3], backend="object")
        with pytest.raises(TypeError, match=r"init= with ObjectConfig"):
            make_simulation(protocol, config=protocol.clean_configuration(8))

    def test_removed_factory_kwargs_point_at_init(self):
        protocol = PairwiseElimination(8)
        with pytest.raises(TypeError, match=r"init="):
            run_trials(
                protocol,
                protocol.is_goal_configuration,
                n=8,
                trials=1,
                max_interactions=10,
                codes_factory=lambda index: [0] * 8,
            )

    def test_unknown_kwargs_are_plain_unexpected(self):
        protocol = PairwiseElimination(8)
        with pytest.raises(TypeError, match="unexpected keyword"):
            make_simulation(protocol, bogus=1)


class TestNoHardcodedDispatch:
    def test_dispatch_sites_use_registry_lookups_only(self):
        """No ``backend == "array"``-style conditionals outside the registry."""
        from repro import cli
        from repro.sim import simulation, sweep, trials

        pattern = re.compile(r"""backend\s*(?:==|!=|\bin\b)\s*[("']""")
        for module in (simulation, trials, sweep, cli):
            source = inspect.getsource(module)
            assert not pattern.search(source), (
                f"{module.__name__} compares backend names directly; "
                "use the registry instead"
            )

"""Tests for the batched fast path and the parallel trial engine.

The two contracts under test:

* batching never changes semantics — ``run_batch(k)`` (and the
  ``next_pairs`` draw under it) consumes the RNG streams exactly like
  ``k`` calls of ``step()``, so batched and stepwise runs of one seed are
  bit-identical;
* worker count never changes results — ``run_trials`` aggregates the
  same ``TrialSummary`` for any ``workers`` value, because every trial is
  fully determined by its derived seed and outcomes merge in trial order.
"""

from __future__ import annotations

import pytest

from repro.baselines.nonss_leader import PairwiseElimination
from repro.scheduler.rng import derive_seed, make_rng
from repro.scheduler.scheduler import RandomScheduler
from repro.sim.initial_state import ObjectConfig
from repro.sim.parallel import (
    TrialSpec,
    resolve_workers,
    run_trial,
    run_trial_specs,
    run_trial_specs_streaming,
    stream_ordered,
)
from repro.sim.simulation import Simulation
from repro.sim.trials import run_trials


@pytest.fixture
def protocol() -> PairwiseElimination:
    return PairwiseElimination(10)


class TestNextPairs:
    def test_matches_stepwise_draws(self):
        batched = RandomScheduler(9, make_rng(7))
        stepwise = RandomScheduler(9, make_rng(7))
        assert batched.next_pairs(250) == [stepwise.next_pair() for _ in range(250)]

    def test_leaves_rng_in_same_state(self):
        batched = RandomScheduler(9, make_rng(7))
        stepwise = RandomScheduler(9, make_rng(7))
        batched.next_pairs(50)
        for _ in range(50):
            stepwise.next_pair()
        assert batched.next_pair() == stepwise.next_pair()

    def test_empty_batch(self):
        scheduler = RandomScheduler(5, make_rng(0))
        assert scheduler.next_pairs(0) == []

    def test_rejects_negative_count(self):
        scheduler = RandomScheduler(5, make_rng(0))
        with pytest.raises(ValueError):
            scheduler.next_pairs(-1)

    def test_pairs_stream_matches_materialized_draw(self):
        # The lazy iterator is the batch loop's fast path: same RNG
        # consumption, same pairs, no list of `count` tuples held alive.
        streamed = RandomScheduler(9, make_rng(7))
        materialized = RandomScheduler(9, make_rng(7))
        assert list(streamed.pairs(250)) == materialized.next_pairs(250)
        # Both leave the stream in the same place.
        assert streamed.next_pair() == materialized.next_pair()

    def test_pairs_stream_is_lazy(self):
        scheduler = RandomScheduler(9, make_rng(7))
        reference = RandomScheduler(9, make_rng(7))
        stream = scheduler.pairs(100)
        # Nothing consumed until iteration starts.
        assert scheduler.next_pair() == reference.next_pair()
        first = next(stream)
        assert first == reference.next_pair()


class TestRunBatch:
    def test_bit_identical_to_stepwise(self, protocol):
        stepped = Simulation(protocol, n=10, seed=11)
        batched = Simulation(protocol, n=10, seed=11)
        for _ in range(300):
            stepped.step()
        batched.run_batch(300)
        assert [s.leader for s in stepped.config] == [s.leader for s in batched.config]
        assert stepped.metrics.interactions == batched.metrics.interactions == 300
        # Both RNG streams were consumed identically: continuations agree.
        stepped.run_batch(100)
        for _ in range(100):
            batched.step()
        assert [s.leader for s in stepped.config] == [s.leader for s in batched.config]

    def test_observers_force_per_step_path(self, protocol):
        sim = Simulation(protocol, n=10, seed=3)
        counts: list[int] = []
        sim.observers.append(lambda s, i, j: counts.append(s.metrics.interactions))
        sim.run_batch(25)
        # Observers see every interaction, with the counter already bumped.
        assert counts == list(range(1, 26))

    def test_rejects_negative_count(self, protocol):
        sim = Simulation(protocol, n=10, seed=3)
        with pytest.raises(ValueError):
            sim.run_batch(-5)

    def test_split_batches_match_one_large_batch(self, protocol):
        # The lazy pair stream makes batch memory O(1) in the batch size;
        # splitting a batch never changes the RNG streams or the results.
        split = Simulation(protocol, n=10, seed=21)
        for _ in range(5):
            split.run_batch(60)
        whole = Simulation(protocol, n=10, seed=21)
        whole.run_batch(300)
        assert [s.leader for s in split.config] == [s.leader for s in whole.config]
        assert split.metrics.interactions == whole.metrics.interactions == 300

    def test_run_until_unchanged_by_batching(self, protocol):
        # run_until now routes bursts through run_batch; the convergence
        # point must be exactly where the per-step loop found it.
        fast = Simulation(protocol, n=10, seed=1)
        result = fast.run_until(protocol.is_goal_configuration, 100_000, check_interval=64)
        slow = Simulation(protocol, n=10, seed=1)
        slow.observers.append(lambda s, i, j: None)  # forces the per-step path
        reference = slow.run_until(protocol.is_goal_configuration, 100_000, check_interval=64)
        assert result.converged and reference.converged
        assert result.interactions == reference.interactions


class TestResolveWorkers:
    def test_auto_modes_use_cpu_count(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) == resolve_workers(None)

    def test_explicit_count_passthrough(self):
        assert resolve_workers(3) == 3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestTrialSpecs:
    def _specs(self, protocol, count):
        return [
            TrialSpec(
                index=index,
                protocol=protocol,
                predicate=protocol.is_goal_configuration,
                seed=derive_seed(17, index),
                max_interactions=100_000,
                check_interval=8,
                n=10,
            )
            for index in range(count)
        ]

    def test_run_trial_preserves_index(self, protocol):
        outcome = run_trial(self._specs(protocol, 3)[2])
        assert outcome.index == 2
        assert outcome.converged
        assert outcome.parallel_time == outcome.interactions / 10

    def test_pool_returns_spec_order(self, protocol):
        specs = self._specs(protocol, 6)
        sequential = run_trial_specs(specs, workers=1)
        pooled = run_trial_specs(specs, workers=2)
        assert [o.index for o in pooled] == list(range(6))
        assert pooled == sequential


class TestStreaming:
    def _specs(self, protocol, count):
        return [
            TrialSpec(
                index=index,
                protocol=protocol,
                predicate=protocol.is_goal_configuration,
                seed=derive_seed(23, index),
                max_interactions=100_000,
                check_interval=8,
                n=10,
            )
            for index in range(count)
        ]

    def test_streamed_equals_blocking_for_every_worker_count(self, protocol):
        specs = self._specs(protocol, 8)
        blocking = run_trial_specs(specs, workers=1)
        for workers in (1, 2, 4, None):
            streamed = list(run_trial_specs_streaming(specs, workers=workers))
            assert streamed == blocking, f"workers={workers}"

    def test_yields_in_spec_order(self, protocol):
        specs = self._specs(protocol, 8)
        streamed = run_trial_specs_streaming(specs, workers=4)
        assert [outcome.index for outcome in streamed] == list(range(8))

    def test_consumes_specs_lazily(self, protocol):
        # The window bounds how far ahead of the consumer the engine reads,
        # so endless spec generators stream in O(window) memory.
        import itertools

        def endless():
            index = 0
            while True:
                yield self._specs(protocol, index + 1)[index]
                index += 1

        outcomes = list(itertools.islice(
            run_trial_specs_streaming(endless(), workers=2, window=3), 5
        ))
        assert [outcome.index for outcome in outcomes] == list(range(5))

    def test_unpicklable_spec_degrades_in_place(self, protocol):
        class Unpicklable:
            leader = True

            def __reduce__(self):
                raise TypeError("cannot pickle")

        specs = self._specs(protocol, 5)
        poisoned = list(specs)
        poisoned[2] = TrialSpec(
            index=2,
            protocol=protocol,
            predicate=protocol.is_goal_configuration,
            seed=specs[2].seed,
            max_interactions=100_000,
            check_interval=8,
            init=ObjectConfig([Unpicklable() for _ in range(10)]),
        )
        with pytest.warns(RuntimeWarning, match="not picklable"):
            outcomes = list(run_trial_specs_streaming(poisoned, workers=2))
        assert [outcome.index for outcome in outcomes] == list(range(5))
        # The picklable neighbours still match the fully-picklable run.
        reference = run_trial_specs(specs, workers=1)
        assert [outcomes[i] for i in (0, 1, 3, 4)] == [reference[i] for i in (0, 1, 3, 4)]

    def test_stream_ordered_rejects_bad_window(self):
        with pytest.raises(ValueError):
            list(stream_ordered([1, 2], _double, workers=2, window=0))

    def test_stream_ordered_generic_function(self):
        assert list(stream_ordered(range(10), _double, workers=2)) == [
            value * 2 for value in range(10)
        ]

    def test_abandoned_stream_shuts_down_cleanly(self, protocol):
        specs = self._specs(protocol, 8)
        stream = run_trial_specs_streaming(specs, workers=2)
        first = next(stream)
        assert first.index == 0
        stream.close()  # must not hang or leak worker processes


def _double(value: int) -> int:
    return value * 2


class TestRunTrialsWorkers:
    def _summary(self, protocol, workers):
        return run_trials(
            protocol,
            protocol.is_goal_configuration,
            n=10,
            trials=6,
            max_interactions=100_000,
            seed=9,
            check_interval=8,
            workers=workers,
        )

    def test_worker_count_invariance(self, protocol):
        baseline = self._summary(protocol, 1)
        for workers in (2, 4, None):
            summary = self._summary(protocol, workers)
            assert summary.converged == baseline.converged
            assert summary.interactions == baseline.interactions
            assert summary.parallel_times == baseline.parallel_times

    def test_unpicklable_later_config_falls_back(self, protocol):
        # The pickle probe must cover every spec, not just the first:
        # a per-trial init factory may return a poisoned configuration
        # mid-sweep.
        class Unpicklable:
            leader = True

            def __reduce__(self):
                raise TypeError("cannot pickle")

        def factory(index):
            if index == 2:
                return ObjectConfig([Unpicklable() for _ in range(10)])
            return None

        with pytest.warns(RuntimeWarning, match="not picklable"):
            summary = run_trials(
                protocol,
                protocol.is_goal_configuration,
                n=10,
                trials=4,
                max_interactions=100_000,
                seed=9,
                init=factory,
                workers=2,
            )
        assert summary.trials == 4

    def test_unpicklable_predicate_falls_back(self, protocol):
        with pytest.warns(RuntimeWarning, match="not picklable"):
            summary = run_trials(
                protocol,
                lambda config: protocol.is_goal_configuration(config),
                n=10,
                trials=3,
                max_interactions=100_000,
                seed=9,
                workers=2,
            )
        assert summary.converged == 3

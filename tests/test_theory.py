"""Tests for the prediction/fitting helpers."""

from __future__ import annotations

import math

import pytest

from repro.analysis.theory import (
    assign_ranks_interactions,
    burman_style_interactions,
    ciw_interactions,
    collision_detection_interactions,
    elect_leader_interactions,
    epidemic_interactions,
    fast_leader_elect_interactions,
    fit_power_law,
    load_balancing_interactions,
    normalized_ratio,
    ratio_spread,
)


class TestPredictions:
    def test_elect_leader_inverse_in_r(self):
        assert elect_leader_interactions(64, 8) == pytest.approx(
            elect_leader_interactions(64, 1) / 8
        )

    def test_elect_leader_quadratic_in_n(self):
        ratio = elect_leader_interactions(128, 4) / elect_leader_interactions(64, 4)
        assert ratio == pytest.approx(4 * math.log(128) / math.log(64))

    def test_all_predictions_positive(self):
        for fn in (
            epidemic_interactions,
            load_balancing_interactions,
            fast_leader_elect_interactions,
            ciw_interactions,
            burman_style_interactions,
        ):
            assert fn(64) > 0

    def test_component_predictions_match_theorem(self):
        assert assign_ranks_interactions(64, 4) == elect_leader_interactions(64, 4)
        assert collision_detection_interactions(64, 4) == elect_leader_interactions(64, 4)


class TestPowerLawFit:
    def test_exact_power_law_recovered(self):
        xs = [2.0, 4.0, 8.0, 16.0]
        ys = [3 * x**2.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.5, abs=1e-9)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power_law([1.0, 2.0, 4.0], [2.0, 4.0, 8.0])
        assert fit.predict(8.0) == pytest.approx(16.0, rel=1e-6)

    def test_noisy_data_r_squared_below_one(self):
        xs = [2.0, 4.0, 8.0, 16.0, 32.0]
        ys = [x**2 * (1.3 if i % 2 else 0.7) for i, x in enumerate(xs)]
        fit = fit_power_law(xs, ys)
        assert fit.r_squared < 1.0
        assert fit.exponent == pytest.approx(2.0, abs=0.3)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])


class TestRatios:
    def test_normalized_ratio(self):
        assert normalized_ratio([2.0, 4.0], [1.0, 2.0]) == [2.0, 2.0]

    def test_ratio_spread_flat(self):
        assert ratio_spread([2.0, 4.0, 8.0], [1.0, 2.0, 4.0]) == pytest.approx(1.0)

    def test_ratio_spread_detects_shape_mismatch(self):
        # measured ~ x², predicted ~ x: spread grows with range.
        measured = [1.0, 4.0, 16.0]
        predicted = [1.0, 2.0, 4.0]
        assert ratio_spread(measured, predicted) == pytest.approx(4.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            normalized_ratio([1.0], [1.0, 2.0])

"""Tests for ``StableVerify_r`` (Section 5, Protocol 2)."""

from __future__ import annotations

import pytest

from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.core.roles import Role
from repro.core.stable_verify import initial_sv_state, soft_reset, stable_verify
from repro.core.state import TOP, AgentState
from repro.scheduler.rng import make_rng


@pytest.fixture
def protocol() -> ElectLeader:
    return ElectLeader(ProtocolParams(n=12, r=3))


def verifier(
    protocol: ElectLeader, rank: int, generation: int = 0, probation: int = 0
) -> AgentState:
    agent = AgentState(
        role=Role.VERIFYING,
        rank=rank,
        sv=initial_sv_state(rank, protocol.params, protocol.partition),
    )
    assert agent.sv is not None
    agent.sv.generation = generation
    agent.sv.probation_timer = probation
    return agent


def run_sv(protocol: ElectLeader, u: AgentState, v: AgentState, seed: int = 1) -> None:
    stable_verify(u, v, protocol.params, protocol.partition, make_rng(seed), protocol.trigger)


class TestProbationTicking:
    def test_timers_decrement(self, protocol):
        u = verifier(protocol, 1, probation=5)
        v = verifier(protocol, 7, probation=3)  # different group: DC is a no-op
        run_sv(protocol, u, v)
        assert u.sv.probation_timer == 4
        assert v.sv.probation_timer == 2

    def test_timer_floor_at_zero(self, protocol):
        u = verifier(protocol, 1, probation=0)
        v = verifier(protocol, 7, probation=0)
        run_sv(protocol, u, v)
        assert u.sv.probation_timer == 0
        assert v.sv.probation_timer == 0

    def test_requires_verifiers(self, protocol):
        u = protocol.initial_state()
        v = verifier(protocol, 1)
        with pytest.raises(ValueError):
            run_sv(protocol, u, v)


class TestErrorHandling:
    def test_top_off_probation_soft_resets(self, protocol):
        """⊤ with probation 0 → generation +1, fresh DC, probation re-armed."""
        u = verifier(protocol, 1, probation=1)  # decrements to 0 this round
        v = verifier(protocol, 1, probation=1)  # same rank → collision → ⊤
        run_sv(protocol, u, v)
        assert u.role is Role.VERIFYING and v.role is Role.VERIFYING
        assert u.sv.generation == 1 and v.sv.generation == 1
        assert u.sv.dc is not TOP
        assert u.sv.probation_timer == protocol.params.probation_max

    def test_top_on_probation_hard_resets(self, protocol):
        u = verifier(protocol, 1, probation=100)
        v = verifier(protocol, 1, probation=100)
        run_sv(protocol, u, v)
        assert u.role is Role.RESETTING
        assert v.role is Role.RESETTING

    def test_mixed_probation_splits_soft_and_hard(self, protocol):
        u = verifier(protocol, 1, probation=1)  # → 0: soft
        v = verifier(protocol, 1, probation=100)  # on probation: hard
        run_sv(protocol, u, v)
        assert u.role is Role.VERIFYING
        assert u.sv.generation == 1
        assert v.role is Role.RESETTING

    def test_planted_top_handled_even_across_generations(self, protocol):
        """A pre-existing ⊤ is resolved even if generations differ."""
        u = verifier(protocol, 1, generation=0, probation=0)
        v = verifier(protocol, 2, generation=3, probation=0)
        u.sv.dc = TOP
        run_sv(protocol, u, v)
        assert u.role is Role.VERIFYING
        assert u.sv.generation == 1
        assert u.sv.dc is not TOP

    def test_ranking_untouched_by_soft_reset(self, protocol):
        u = verifier(protocol, 5, probation=1)
        u.sv.dc = TOP
        v = verifier(protocol, 6, probation=1)
        run_sv(protocol, u, v)
        assert u.rank == 5
        assert v.rank == 6


class TestGenerationEpidemic:
    def test_behind_agent_adopts_successor_generation(self, protocol):
        u = verifier(protocol, 1, generation=2, probation=1)  # → 0 after tick
        v = verifier(protocol, 2, generation=3, probation=5)
        run_sv(protocol, u, v)
        assert u.sv.generation == 3
        assert u.sv.probation_timer == protocol.params.probation_max
        assert v.sv.generation == 3
        assert v.role is Role.VERIFYING

    def test_adoption_wraps_mod_six(self, protocol):
        u = verifier(protocol, 1, generation=5, probation=1)
        v = verifier(protocol, 2, generation=0, probation=5)
        run_sv(protocol, u, v)
        assert u.sv.generation == 0

    def test_behind_agent_on_probation_hard_resets(self, protocol):
        """An on-probation agent one generation behind cannot soft-adopt."""
        u = verifier(protocol, 1, generation=2, probation=100)
        v = verifier(protocol, 2, generation=3, probation=100)
        run_sv(protocol, u, v)
        assert u.role is Role.RESETTING or v.role is Role.RESETTING

    def test_generation_gap_two_hard_resets(self, protocol):
        u = verifier(protocol, 1, generation=0, probation=0)
        v = verifier(protocol, 2, generation=2, probation=0)
        run_sv(protocol, u, v)
        assert u.role is Role.RESETTING

    def test_adoption_refreshes_dc_state(self, protocol):
        u = verifier(protocol, 1, generation=2, probation=1)
        v = verifier(protocol, 2, generation=3, probation=5)
        u.sv.dc.signature = 999  # will be wiped by the adoption reset
        run_sv(protocol, u, v)
        assert u.sv.dc.signature == 1


class TestSameGenerationPath:
    def test_same_generation_no_error_changes_nothing_structural(self, protocol):
        u = verifier(protocol, 1, generation=4, probation=3)
        v = verifier(protocol, 2, generation=4, probation=3)
        run_sv(protocol, u, v)
        assert u.role is Role.VERIFYING and v.role is Role.VERIFYING
        assert u.sv.generation == 4 and v.sv.generation == 4

    def test_collision_detection_runs_only_same_generation(self, protocol):
        """Same rank in *different* generations: DC skipped, but the
        generation mismatch triggers a reset (gap handling)."""
        u = verifier(protocol, 1, generation=0, probation=0)
        v = verifier(protocol, 1, generation=3, probation=0)
        run_sv(protocol, u, v)
        # No ⊤ was produced (DC never ran) — the hard reset is from line 13.
        assert u.role is Role.RESETTING


class TestSoftResetHelper:
    def test_soft_reset_advances_generation(self, protocol):
        agent = verifier(protocol, 4, generation=5)
        soft_reset(agent, protocol.params, protocol.partition)
        assert agent.sv.generation == 0
        assert agent.sv.probation_timer == protocol.params.probation_max
        assert agent.sv.dc is not TOP

"""Tests for the stable ``repro.api`` surface and its calling conventions.

Two contracts:

* ``repro.api`` exposes exactly its curated ``__all__`` — no internal
  module is reachable through it, checked both statically (an AST walk
  over the source: nothing but ``from X import name``) and at runtime
  (no attribute is a module object);
* configuration arguments across the surface are keyword-only, and a
  stray positional gets the pointed :class:`TypeError` telling the
  caller which keyword to use — not a silent mis-bind.
"""

from __future__ import annotations

import ast
import inspect
import types

import pytest

import repro.api as api
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams


class TestSurface:
    def test_source_contains_only_from_imports(self):
        tree = ast.parse(inspect.getsource(api))
        for node in ast.walk(tree):
            assert not isinstance(node, ast.Import), (
                f"plain 'import {node.names[0].name}' would bind a module "
                "object on repro.api; use 'from ... import name'"
            )
            if isinstance(node, ast.ImportFrom):
                assert node.names[0].name != "*", "star imports hide the surface"

    def test_no_module_objects_leak(self):
        leaked = [
            name
            for name in dir(api)
            if not name.startswith("__")
            and isinstance(getattr(api, name), types.ModuleType)
        ]
        assert leaked == [], f"internal modules reachable via repro.api: {leaked}"

    def test_all_is_exact_and_sorted_within_groups(self):
        public = {name for name in dir(api) if not name.startswith("_")}
        assert public == set(api.__all__)

    def test_internal_modules_are_attribute_errors(self):
        for name in ("sweep", "simulation", "backends", "pool", "cli"):
            with pytest.raises(AttributeError):
                getattr(api, name)

    def test_top_level_package_re_exports_fabric_entry_points(self):
        import repro

        for name in ("FabricError", "shard_grid", "merge_checkpoints", "run_pool"):
            assert getattr(repro, name) is getattr(api, name)


def make_protocol():
    return ElectLeader(ProtocolParams(n=8, r=2))


class TestKeywordOnlySurface:
    """``f(x, 8)`` used to silently bind 8 to whatever came next; now the
    configuration arguments are keyword-only and the stray positional
    raises a TypeError that names the keyword to use."""

    def test_simulation_rejects_positional_config(self):
        protocol = make_protocol()
        with pytest.raises(TypeError, match=r"pass config=\.\.\. by name"):
            api.Simulation(protocol, [protocol.initial_state() for _ in range(8)])
        with pytest.raises(TypeError, match="keyword-only"):
            api.Simulation(protocol, None, 8)

    def test_make_simulation_rejects_positional_init(self):
        with pytest.raises(TypeError, match=r"pass init=\.\.\. by name"):
            api.make_simulation(make_protocol(), None)

    def test_resolve_backend_rejects_positional_extras(self):
        with pytest.raises(TypeError, match="resolve_backend"):
            api.resolve_backend("object", "array")

    def test_run_until_rejects_positional_budget(self):
        with pytest.raises(TypeError, match="run_until"):
            api.run_until(make_protocol(), lambda config: True, 100)

    def test_run_trials_rejects_positional_counts(self):
        # The required counts are keyword-only already (Python enforces
        # that); a stray positional alongside them gets the pointed error.
        with pytest.raises(TypeError, match=r"pass n=\.\.\. by name"):
            api.run_trials(
                make_protocol(), lambda config: True, 8,
                n=8, trials=1, max_interactions=10,
            )

    def test_run_trial_specs_rejects_positional_workers(self):
        with pytest.raises(TypeError, match=r"pass workers=\.\.\. by name"):
            api.run_trial_specs([], 4)

    def test_stream_ordered_rejects_positional_workers_eagerly(self):
        # The check fires at call time, not at first next() — stream_ordered
        # validates in a plain wrapper before handing off to the generator.
        with pytest.raises(TypeError, match="stream_ordered"):
            api.stream_ordered([], str, 4)
        with pytest.raises(TypeError, match=r"pass workers=\.\.\., window=\.\.\. by name"):
            api.stream_ordered([], str, 4, 16)

    def test_run_trial_specs_streaming_rejects_positional_workers(self):
        with pytest.raises(TypeError, match="run_trial_specs_streaming"):
            api.run_trial_specs_streaming([], 4)

    def test_error_message_counts_strays(self):
        with pytest.raises(TypeError, match="got 2 positional values"):
            api.run_trial_specs([], 4, 16)

    def test_keyword_calls_still_work(self):
        protocol = make_protocol()
        sim = api.Simulation(protocol, n=8, seed=1)
        result = sim.run_until(
            protocol.is_safe_configuration, max_interactions=500_000, check_interval=500
        )
        assert result.converged
        assert api.run_trial_specs([], workers=1) == []

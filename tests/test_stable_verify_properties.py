"""Property-based tests for ``StableVerify_r``'s state machine.

Random verifier pairs (arbitrary generations, probation timers, rank
combinations, planted ⊤) are pushed through ``stable_verify``; the
invariants that must survive *any* such interaction:

* generations stay in Z₆ and move only to a neighbour or via reset;
* probation timers stay in ``[0, P_max]``;
* ⊤ never survives an interaction (it is resolved to a soft or hard reset
  within the same call);
* a verifier's rank is never modified by StableVerify itself;
* the only way out of the verifier role is a hard reset.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.core.roles import Role
from repro.core.stable_verify import initial_sv_state, stable_verify
from repro.core.state import TOP, AgentState
from repro.scheduler.rng import make_rng

PARAMS = ProtocolParams(n=12, r=3)
PROTOCOL = ElectLeader(PARAMS)


@st.composite
def verifier_state(draw) -> AgentState:
    rank = draw(st.integers(1, PARAMS.n))
    agent = AgentState(
        role=Role.VERIFYING,
        rank=rank,
        sv=initial_sv_state(rank, PARAMS, PROTOCOL.partition),
    )
    assert agent.sv is not None
    agent.sv.generation = draw(st.integers(0, PARAMS.generations - 1))
    agent.sv.probation_timer = draw(
        st.one_of(st.just(0), st.integers(0, PARAMS.probation_max))
    )
    if draw(st.booleans()):
        agent.sv.dc = TOP
    return agent


class TestStableVerifyInvariants:
    @given(u=verifier_state(), v=verifier_state(), seed=st.integers(0, 2**31))
    @settings(max_examples=150, deadline=None)
    def test_single_interaction_invariants(self, u: AgentState, v: AgentState, seed: int):
        ranks_before = (u.rank, v.rank)
        stable_verify(u, v, PARAMS, PROTOCOL.partition, make_rng(seed), PROTOCOL.trigger)
        for agent, rank_before in zip((u, v), ranks_before):
            assert agent.consistent()
            if agent.role is Role.VERIFYING:
                assert agent.sv is not None
                # ⊤ is always resolved within the interaction.
                assert agent.sv.dc is not TOP
                assert 0 <= agent.sv.generation < PARAMS.generations
                assert 0 <= agent.sv.probation_timer <= PARAMS.probation_max
                # StableVerify never rewrites a verifier's rank.
                assert agent.rank == rank_before
            else:
                # The only exit from verifying is a hard reset.
                assert agent.role is Role.RESETTING

    @given(u=verifier_state(), v=verifier_state(), seed=st.integers(0, 2**31))
    @settings(max_examples=100, deadline=None)
    def test_generation_moves_are_local(self, u: AgentState, v: AgentState, seed: int):
        """A surviving verifier's generation either stays, or advances by
        one (soft reset), or jumps to the partner's generation (adoption,
        which is itself the partner's value = own+1)."""
        assert u.sv is not None and v.sv is not None
        before = {id(u): u.sv.generation, id(v): v.sv.generation}
        partner = {id(u): v.sv.generation, id(v): u.sv.generation}
        stable_verify(u, v, PARAMS, PROTOCOL.partition, make_rng(seed), PROTOCOL.trigger)
        for agent in (u, v):
            if agent.role is not Role.VERIFYING:
                continue
            assert agent.sv is not None
            now = agent.sv.generation
            old = before[id(agent)]
            allowed = {
                old,
                (old + 1) % PARAMS.generations,
                partner[id(agent)] % PARAMS.generations,
            }
            assert now in allowed, (old, now, partner[id(agent)])

    @given(
        u=verifier_state(),
        v=verifier_state(),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=100, deadline=None)
    def test_probation_rearm_only_with_dc_refresh(self, u, v, seed):
        """If an agent's probation timer *increased*, its DC state must be
        a fresh q0 (soft reset / adoption re-initializes both together)."""
        from repro.core.detect_collision import initial_dc_state

        assert u.sv is not None and v.sv is not None
        before = {id(u): u.sv.probation_timer, id(v): v.sv.probation_timer}
        stable_verify(u, v, PARAMS, PROTOCOL.partition, make_rng(seed), PROTOCOL.trigger)
        for agent in (u, v):
            if agent.role is not Role.VERIFYING:
                continue
            assert agent.sv is not None
            if agent.sv.probation_timer > before[id(agent)]:
                fresh = initial_dc_state(agent.rank, PARAMS, PROTOCOL.partition)
                assert agent.sv.dc == fresh

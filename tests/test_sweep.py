"""Tests for the scenario-grid sweep engine (grid → stream → JSONL → resume).

The two headline contracts:

* worker count never changes anything — outcomes, aggregate rows, and the
  JSONL bytes are identical for any ``workers`` value;
* a sweep interrupted mid-run (truncated JSONL, partial final line) and
  resumed produces byte-identical results to the uninterrupted sweep.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.sim.sweep import (
    CLEAN,
    NO_FAULTS,
    NO_R,
    GridSpec,
    SweepError,
    aggregate_rows,
    expand_grid,
    load_checkpoint,
    run_scenario,
    run_sweep,
)
from repro.sim.trials import format_table


def small_grid(**overrides) -> GridSpec:
    """A seconds-scale grid mixing the paper protocol and a baseline."""
    settings = dict(
        protocols=("elect_leader", "pairwise_elimination"),
        ns=(8, 10),
        rs=(2,),
        adversaries=(CLEAN, "random_soup"),
        fault_rates=(0.0,),
        trials=2,
        seed=42,
        max_interactions=2_000_000,
        check_interval=500,
    )
    settings.update(overrides)
    return GridSpec(**settings)


class TestGridSpec:
    def test_rejects_unknown_protocol(self):
        with pytest.raises(SweepError, match="unknown protocol"):
            small_grid(protocols=("elect_leader", "nope"))

    def test_rejects_unknown_adversary(self):
        with pytest.raises(SweepError, match="unknown adversary"):
            small_grid(adversaries=("nope",))

    def test_rejects_bad_axis_values(self):
        with pytest.raises(SweepError):
            small_grid(ns=(1,))
        with pytest.raises(SweepError):
            small_grid(rs=(0,))
        with pytest.raises(SweepError):
            small_grid(fault_rates=(-0.1,))
        with pytest.raises(SweepError):
            small_grid(trials=0)
        with pytest.raises(SweepError):
            small_grid(ns=())

    def test_dict_round_trip(self):
        grid = small_grid()
        assert GridSpec.from_dict(grid.to_dict()) == grid


class TestExpandGrid:
    def test_full_product_for_elect_leader(self):
        grid = small_grid(protocols=("elect_leader",), rs=(2, 3))
        specs = expand_grid(grid)
        # 2 ns × 2 rs × 2 adversaries × 1 fault rate × 2 trials
        assert len(specs) == 16
        assert [spec.index for spec in specs] == list(range(16))

    def test_r_beyond_half_n_is_skipped(self):
        grid = small_grid(protocols=("elect_leader",), ns=(8,), rs=(2, 5))
        specs = expand_grid(grid)
        assert {spec.r for spec in specs} == {2}

    def test_baselines_collapse_unsupported_axes(self):
        grid = small_grid(
            protocols=("pairwise_elimination",),
            ns=(8,),
            rs=(1, 2, 4),
            adversaries=(CLEAN, "random_soup"),
            fault_rates=(0.0,),
        )
        specs = expand_grid(grid)
        # One collapsed cell (r and adversary axes both pinned; the
        # object-layout adversary suite doesn't speak this protocol).
        assert len(specs) == grid.trials
        assert all(spec.r == NO_R for spec in specs)
        assert all(spec.adversary == CLEAN for spec in specs)
        assert all(spec.fault_rate == 0.0 for spec in specs)
        assert all(spec.fault_model == NO_FAULTS for spec in specs)

    def test_finite_state_protocols_keep_the_fault_axis(self):
        # Since the backend-generic fault engine, finite-state protocols
        # run the code-space fault models: the fault axis no longer
        # collapses for them (it used to pin rate 0).
        grid = small_grid(
            protocols=("pairwise_elimination",),
            ns=(8,),
            rs=(1,),
            adversaries=(CLEAN,),
            fault_rates=(0.0, 0.5),
            fault_models=("scramble_burst", "crash_reset"),
        )
        specs = expand_grid(grid)
        cells = {(spec.fault_rate, spec.fault_model) for spec in specs}
        assert cells == {
            (0.0, NO_FAULTS),
            (0.5, "scramble_burst"),
            (0.5, "crash_reset"),
        }

    def test_unsupported_fault_model_cells_are_skipped(self):
        # kill_leaders needs a finite encoding; elect_leader has none, so
        # its fault cells survive only under models with an object-layout
        # leg (scramble_burst wraps the classic scrambler).
        grid = small_grid(
            protocols=("elect_leader",),
            ns=(8,),
            adversaries=(CLEAN,),
            fault_rates=(0.0, 0.5),
            fault_models=("scramble_burst", "kill_leaders"),
            max_interactions=20_000,
        )
        specs = expand_grid(grid)
        cells = {(spec.fault_rate, spec.fault_model) for spec in specs}
        assert cells == {(0.0, NO_FAULTS), (0.5, "scramble_burst")}

    def test_unknown_fault_model_is_rejected(self):
        with pytest.raises(SweepError, match="unknown fault model"):
            small_grid(fault_models=("nope",))

    def test_empty_expansion_raises(self):
        with pytest.raises(SweepError, match="no runnable scenarios"):
            expand_grid(small_grid(protocols=("elect_leader",), ns=(4,), rs=(3,)))

    def test_expansion_is_deterministic(self):
        grid = small_grid()
        assert expand_grid(grid) == expand_grid(grid)

    def test_seeds_are_distinct_per_trial(self):
        specs = expand_grid(small_grid())
        seeds = [spec.seed for spec in specs]
        assert len(set(seeds)) == len(seeds)


class TestRunScenario:
    def test_deterministic(self):
        spec = expand_grid(small_grid())[3]
        assert run_scenario(spec) == run_scenario(spec)

    def test_outcome_mirrors_spec(self):
        spec = expand_grid(small_grid())[5]
        outcome = run_scenario(spec)
        assert outcome.index == spec.index
        assert outcome.seed == spec.seed
        assert (outcome.protocol, outcome.n, outcome.r) == (spec.protocol, spec.n, spec.r)
        assert outcome.converged
        assert outcome.parallel_time == outcome.interactions / spec.n

    def test_fault_injection_records_bursts(self):
        grid = small_grid(
            protocols=("elect_leader",),
            ns=(8,),
            adversaries=("random_soup",),
            fault_rates=(0.5,),
            trials=1,
            max_interactions=50_000,
        )
        outcome = run_scenario(expand_grid(grid)[0])
        assert outcome.fault_rate == 0.5
        assert outcome.fault_bursts > 0


class TestWorkerInvariance:
    def test_rows_outcomes_and_jsonl_identical(self, tmp_path):
        grid = small_grid()
        results = {}
        blobs = {}
        for workers in (1, 2, 4):
            path = tmp_path / f"w{workers}.jsonl"
            results[workers] = run_sweep(grid, workers=workers, jsonl_path=path)
            blobs[workers] = path.read_bytes()
        assert results[1].outcomes == results[2].outcomes == results[4].outcomes
        tables = {w: format_table(r.rows) for w, r in results.items()}
        assert tables[1] == tables[2] == tables[4]
        assert blobs[1] == blobs[2] == blobs[4]

    def test_jsonl_schema(self, tmp_path):
        grid = small_grid(protocols=("pairwise_elimination",), ns=(8,), trials=3)
        path = tmp_path / "out.jsonl"
        result = run_sweep(grid, workers=2, jsonl_path=path)
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        assert meta["kind"] == "sweep-meta"
        assert meta["grid"] == grid.to_dict()
        trials = [json.loads(line) for line in lines[1:]]
        assert [t["index"] for t in trials] == list(range(len(result.specs)))
        assert all(t["kind"] == "trial" for t in trials)
        assert {"protocol", "n", "r", "adversary", "fault_rate", "seed",
                "converged", "interactions", "parallel_time"} <= set(trials[0])

    def test_sweep_without_jsonl(self):
        grid = small_grid(protocols=("pairwise_elimination",), ns=(8,), trials=2)
        result = run_sweep(grid, workers=2)
        assert len(result.outcomes) == 2
        assert result.rows[0]["success_rate"] == 1.0


class TestResume:
    @pytest.fixture
    def finished(self, tmp_path) -> tuple[GridSpec, Path, bytes, str]:
        grid = small_grid()
        path = tmp_path / "full.jsonl"
        result = run_sweep(grid, workers=2, jsonl_path=path)
        return grid, path, path.read_bytes(), format_table(result.rows)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_truncated_checkpoint_resumes_byte_identically(
        self, finished, tmp_path, workers
    ):
        # The acceptance gate: interrupt mid-run (simulated by truncating
        # the JSONL to a few complete lines plus a partial one, exactly
        # what a killed writer leaves), resume, and compare bytes.
        grid, _, full_bytes, full_table = finished
        lines = full_bytes.split(b"\n")
        truncated = b"\n".join(lines[:5]) + b"\n" + lines[5][:12]
        path = tmp_path / "resumed.jsonl"
        path.write_bytes(truncated)
        result = run_sweep(grid, workers=workers, jsonl_path=path, resume=True)
        assert result.resumed_trials == 4  # meta + 4 complete trial lines
        assert path.read_bytes() == full_bytes
        assert format_table(result.rows) == full_table

    def test_resume_of_complete_sweep_runs_nothing(self, finished):
        grid, path, full_bytes, full_table = finished
        result = run_sweep(grid, workers=1, jsonl_path=path, resume=True)
        assert result.resumed_trials == len(result.specs)
        assert path.read_bytes() == full_bytes
        assert format_table(result.rows) == full_table

    def test_resume_missing_file_starts_fresh(self, finished, tmp_path):
        grid, _, full_bytes, _ = finished
        path = tmp_path / "fresh.jsonl"
        result = run_sweep(grid, workers=2, jsonl_path=path, resume=True)
        assert result.resumed_trials == 0
        assert path.read_bytes() == full_bytes

    def test_existing_file_without_resume_or_force_raises(self, finished):
        grid, path, _, _ = finished
        with pytest.raises(SweepError, match="already exists"):
            run_sweep(grid, workers=1, jsonl_path=path)

    def test_force_overwrites(self, finished):
        grid, path, full_bytes, _ = finished
        result = run_sweep(grid, workers=2, jsonl_path=path, force=True)
        assert result.resumed_trials == 0
        assert path.read_bytes() == full_bytes

    def test_grid_mismatch_is_rejected(self, finished):
        _, path, _, _ = finished
        other = small_grid(seed=43)
        with pytest.raises(SweepError, match="different grid"):
            run_sweep(other, workers=1, jsonl_path=path, resume=True)

    def test_pre_backend_checkpoint_still_resumes(self, finished, tmp_path):
        # Checkpoints written before the backend knob existed carry
        # neither a grid "backend" key nor per-trial "backend" fields;
        # they are object-backend files and must keep resuming.
        grid, _, full_bytes, full_table = finished
        lines = full_bytes.decode().splitlines()
        legacy = []
        for line in lines:
            record = json.loads(line)
            if record["kind"] == "sweep-meta":
                record["grid"].pop("backend")
            else:
                record.pop("backend")
            legacy.append(json.dumps(record, separators=(",", ":")))
        path = tmp_path / "legacy.jsonl"
        path.write_text("\n".join(legacy[:3]) + "\n")
        result = run_sweep(grid, workers=1, jsonl_path=path, resume=True)
        assert result.resumed_trials == 2  # legacy meta + 2 legacy trials
        assert format_table(result.rows) == full_table

    def test_corrupt_interior_line_is_rejected(self, finished, tmp_path):
        grid, _, full_bytes, _ = finished
        lines = full_bytes.split(b"\n")
        lines[2] = b"{garbage"
        path = tmp_path / "corrupt.jsonl"
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(SweepError, match="corrupt"):
            run_sweep(grid, workers=1, jsonl_path=path, resume=True)

    def test_partial_meta_line_restarts(self, finished, tmp_path):
        grid, _, full_bytes, _ = finished
        path = tmp_path / "stub.jsonl"
        path.write_bytes(full_bytes.split(b"\n")[0][:7])
        result = run_sweep(grid, workers=2, jsonl_path=path, resume=True)
        assert result.resumed_trials == 0
        assert path.read_bytes() == full_bytes

    def test_load_checkpoint_reports_valid_prefix(self, finished):
        grid, path, full_bytes, _ = finished
        specs = expand_grid(grid)
        outcomes, valid_end = load_checkpoint(path, grid, specs)
        assert len(outcomes) == len(specs)
        assert valid_end == len(full_bytes)


class TestAggregateRows:
    def test_rows_follow_grid_order_and_handle_failures(self):
        grid = small_grid(
            protocols=("pairwise_elimination",), ns=(8,), trials=2,
            max_interactions=5,  # guaranteed not to converge
            check_interval=5,
        )
        specs = expand_grid(grid)
        outcomes = [run_scenario(spec) for spec in specs]
        rows = aggregate_rows(specs, outcomes)
        assert len(rows) == 1
        assert rows[0]["success_rate"] == 0.0
        assert str(rows[0]["median_interactions"]) == "nan"


class TestBackendValidation:
    """GridSpec asks the backend registry, not hardcoded name lists."""

    @pytest.mark.parametrize("backend", ["array", "counts"])
    def test_vectorized_backends_reject_elect_leader(self, backend):
        with pytest.raises(SweepError, match=f"cannot run on the '{backend}'"):
            small_grid(protocols=("elect_leader",), backend=backend)

    def test_unknown_backend_lists_known(self):
        with pytest.raises(SweepError, match="unknown backend 'gpu'"):
            small_grid(protocols=("pairwise_elimination",), backend="gpu")

    @pytest.mark.parametrize("backend", ["array", "counts"])
    def test_finite_state_protocols_accepted(self, backend):
        pytest.importorskip("numpy")
        grid = small_grid(
            protocols=("pairwise_elimination", "cai_izumi_wada"), backend=backend
        )
        assert grid.backend == backend


class TestCodeAdversaries:
    """The vectorized (code-space) adversary axis across backends."""

    def test_collapse_rules(self):
        grid = small_grid(
            protocols=("elect_leader", "pairwise_elimination"),
            ns=(8,),
            adversaries=(CLEAN, "scramble", "random_soup"),
        )
        specs = expand_grid(grid)
        by_protocol = {}
        for spec in specs:
            by_protocol.setdefault(spec.protocol, set()).add(spec.adversary)
        # elect_leader speaks the object-layout suite, the finite-state
        # baseline the code-space suite — each collapses the other to clean.
        assert by_protocol["elect_leader"] == {CLEAN, "random_soup"}
        assert by_protocol["pairwise_elimination"] == {CLEAN, "scramble"}

    @pytest.mark.parametrize("backend", ["object", "array", "counts"])
    def test_scramble_scenario_runs_on_every_backend(self, backend):
        pytest.importorskip("numpy")
        grid = small_grid(
            protocols=("cai_izumi_wada",),
            ns=(10,),
            adversaries=("scramble",),
            trials=1,
            backend=backend,
        )
        outcome = run_scenario(expand_grid(grid)[0])
        assert outcome.converged
        assert outcome.backend == backend

    def test_same_seed_same_start_across_backends(self):
        pytest.importorskip("numpy")
        from repro.adversary.initializers import CODE_ADVERSARIES, code_rng
        from repro.sim.sweep import _ADVERSARY_STREAM
        from repro.scheduler.rng import derive_seed

        grids = {
            backend: small_grid(
                protocols=("cai_izumi_wada",), ns=(10,), adversaries=("scramble",),
                trials=1, backend=backend,
            )
            for backend in ("object", "array", "counts")
        }
        specs = {backend: expand_grid(grid)[0] for backend, grid in grids.items()}
        seeds = {spec.seed for spec in specs.values()}
        assert len(seeds) == 1  # same grid seed/index → same child seed
        seed = seeds.pop()
        draw = CODE_ADVERSARIES["scramble"]
        from repro.baselines.cai_izumi_wada import CaiIzumiWada
        from repro.core.params import BaselineParams

        reference = draw(
            CaiIzumiWada(BaselineParams(n=10)),
            code_rng(derive_seed(seed, _ADVERSARY_STREAM)),
            10,
        ).tolist()
        again = draw(
            CaiIzumiWada(BaselineParams(n=10)),
            code_rng(derive_seed(seed, _ADVERSARY_STREAM)),
            10,
        ).tolist()
        assert reference == again


class TestFaultCells:
    """Fault cells run the availability workload on any backend."""

    def fault_grid(self, **overrides):
        settings = dict(
            protocols=("loosely_stabilizing",),
            ns=(16,),
            adversaries=(CLEAN,),
            fault_rates=(0.0, 0.5),
            fault_models=("scramble_burst", "kill_leaders"),
            trials=2,
            seed=3,
            max_interactions=40_000,
            check_interval=500,
        )
        settings.update(overrides)
        return small_grid(**settings)

    def test_availability_fields_are_first_class(self):
        pytest.importorskip("numpy")
        from repro.sim.sweep import ScenarioOutcome

        specs = expand_grid(self.fault_grid())
        fault_spec = next(spec for spec in specs if spec.fault_rate > 0)
        outcome = run_scenario(fault_spec)
        assert outcome.fault_model == fault_spec.fault_model
        assert outcome.fault_bursts > 0
        assert outcome.availability is not None
        assert 0.0 <= outcome.availability <= 1.0
        # Fault cells run the full budget; convergence means "correct at
        # the final checkpoint".
        assert outcome.interactions == fault_spec.max_interactions
        record = outcome.to_record()
        assert {"fault_model", "availability", "median_repair"} <= set(record)
        assert ScenarioOutcome.from_record(record) == outcome

    def test_fault_free_cells_leave_availability_unset(self):
        specs = expand_grid(self.fault_grid(fault_rates=(0.0,)))
        outcome = run_scenario(specs[0])
        assert outcome.availability is None
        assert outcome.median_repair is None
        assert outcome.fault_model == NO_FAULTS

    @pytest.mark.parametrize("backend", ["object", "array", "counts"])
    def test_fault_cells_run_on_every_backend(self, backend):
        pytest.importorskip("numpy")
        grid = self.fault_grid(
            fault_rates=(0.5,), fault_models=("crash_reset",), trials=1,
            backend=backend,
        )
        outcome = run_scenario(expand_grid(grid)[0])
        assert outcome.backend == backend
        assert outcome.fault_bursts > 0
        assert outcome.availability is not None

    def test_elect_leader_fault_cells_still_run(self):
        pytest.importorskip("numpy")
        grid = self.fault_grid(
            protocols=("elect_leader",), ns=(8,), rs=(2,),
            fault_rates=(0.5,), fault_models=("scramble_burst",), trials=1,
            max_interactions=20_000,
        )
        outcome = run_scenario(expand_grid(grid)[0])
        assert outcome.fault_bursts > 0
        assert outcome.availability is not None

    def test_fault_axis_resume_byte_identical(self, tmp_path):
        pytest.importorskip("numpy")
        grid = self.fault_grid(backend="counts")
        full = tmp_path / "full.jsonl"
        result = run_sweep(grid, workers=1, jsonl_path=full)
        full_bytes = full.read_bytes()
        assert b'"fault_model":"kill_leaders"' in full_bytes
        resumed = tmp_path / "resumed.jsonl"
        resumed.write_bytes(full_bytes[: len(full_bytes) // 3])
        again = run_sweep(grid, workers=2, jsonl_path=resumed, resume=True)
        assert resumed.read_bytes() == full_bytes
        assert again.resumed_trials > 0
        fault_rows = [row for row in result.rows if row["fault_model"] != "-"]
        assert fault_rows
        assert all(row["availability"] != "-" for row in fault_rows)


class TestCountsNativeAdversaries:
    """Counts-native backends draw the O(S) adversary twin (satellite leg)."""

    def scramble_grid(self, backend):
        return small_grid(
            protocols=("cai_izumi_wada",), ns=(10,), adversaries=("scramble",),
            trials=1, backend=backend,
        )

    def test_counts_backend_draws_the_counts_twin(self, monkeypatch):
        pytest.importorskip("numpy")
        from repro.adversary.initializers import COUNTS_ADVERSARIES, scrambled_counts

        calls: list[int] = []

        def recording(protocol, generator, n):
            calls.append(n)
            return scrambled_counts(protocol, generator, n)

        monkeypatch.setitem(COUNTS_ADVERSARIES, "scramble", recording)
        outcome = run_scenario(expand_grid(self.scramble_grid("counts"))[0])
        assert calls == [10]
        assert outcome.converged

    def test_legacy_counts_scramble_checkpoint_refuses_resume(self, tmp_path):
        # A pre-fault-engine checkpoint (no "fault_models" grid key) for a
        # counts-backend grid with code-space adversaries drew the codes
        # form; this version draws the counts twin, so resuming would mix
        # two start laws in one file — refuse rather than blend.
        pytest.importorskip("numpy")
        grid = self.scramble_grid("counts")
        path = tmp_path / "legacy.jsonl"
        run_sweep(grid, workers=1, jsonl_path=path)
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        meta["grid"].pop("fault_models")
        legacy_trials = []
        for line in lines[1:]:
            record = json.loads(line)
            for key in ("fault_model", "availability", "median_repair"):
                record.pop(key)
            legacy_trials.append(json.dumps(record, separators=(",", ":")))
        path.write_text(
            "\n".join([json.dumps(meta, separators=(",", ":")), *legacy_trials[:0]])
            + "\n"
        )
        with pytest.raises(SweepError, match="codes-form start law"):
            run_sweep(grid, workers=1, jsonl_path=path, resume=True)

    def test_other_backends_draw_the_codes_form(self, monkeypatch):
        pytest.importorskip("numpy")
        from repro.adversary.initializers import COUNTS_ADVERSARIES

        def explode(protocol, generator, n):  # pragma: no cover - guard
            raise AssertionError("codes-native backend drew the counts twin")

        monkeypatch.setitem(COUNTS_ADVERSARIES, "scramble", explode)
        for backend in ("object", "array"):
            outcome = run_scenario(expand_grid(self.scramble_grid(backend))[0])
            assert outcome.converged


class TestCountsBackendSweep:
    def counts_grid(self, **overrides):
        settings = dict(
            protocols=("cai_izumi_wada", "loosely_stabilizing"),
            ns=(10, 16),
            adversaries=(CLEAN, "scramble"),
            trials=2,
            seed=11,
            max_interactions=2_000_000,
            check_interval=250,
            backend="counts",
        )
        settings.update(overrides)
        return small_grid(**settings)

    def test_end_to_end_with_resume_byte_identical(self, tmp_path):
        pytest.importorskip("numpy")
        grid = self.counts_grid()
        full = tmp_path / "full.jsonl"
        result = run_sweep(grid, workers=1, jsonl_path=full)
        assert all(outcome.converged for outcome in result.outcomes)
        assert all(outcome.backend == "counts" for outcome in result.outcomes)
        full_bytes = full.read_bytes()
        assert b'"backend":"counts"' in full_bytes
        # Kill mid-stream (partial final line) and resume.
        resumed = tmp_path / "resumed.jsonl"
        resumed.write_bytes(full_bytes[: len(full_bytes) * 2 // 5])
        result2 = run_sweep(grid, workers=2, jsonl_path=resumed, resume=True)
        assert resumed.read_bytes() == full_bytes
        assert result2.resumed_trials > 0
        assert [o for o in result2.outcomes] == [o for o in result.outcomes]

    def test_worker_invariance(self, tmp_path):
        pytest.importorskip("numpy")
        grid = self.counts_grid(ns=(10,), adversaries=(CLEAN,))
        tables = []
        for workers in (1, 3):
            result = run_sweep(grid, workers=workers)
            tables.append(format_table(result.rows))
        assert tables[0] == tables[1]


class TestBurstSizeAxis:
    """Burst size is a first-class grid axis (fault cells only)."""

    def burst_grid(self, **overrides):
        settings = dict(
            protocols=("loosely_stabilizing",),
            ns=(16,),
            adversaries=(CLEAN,),
            fault_rates=(0.0, 0.5),
            fault_models=("scramble_burst",),
            burst_sizes=(1, 4),
            trials=1,
            seed=3,
            max_interactions=20_000,
            check_interval=500,
        )
        settings.update(overrides)
        return small_grid(**settings)

    def test_expansion_and_zero_rate_collapse(self):
        specs = expand_grid(self.burst_grid())
        cells = {(spec.fault_rate, spec.burst_size) for spec in specs}
        # Zero-rate cells collapse the burst axis to 1; fault cells sweep it.
        assert cells == {(0.0, 1), (0.5, 1), (0.5, 4)}

    def test_burst_axis_is_last_so_default_grids_expand_unchanged(self):
        base = small_grid()
        with_axis = small_grid(burst_sizes=(1,))
        stripped = [
            {k: v for k, v in spec.__dict__.items() if k != "burst_size"}
            for spec in expand_grid(with_axis)
        ]
        assert stripped == [
            {k: v for k, v in spec.__dict__.items() if k != "burst_size"}
            for spec in expand_grid(base)
        ]

    def test_rejects_bad_burst_sizes(self):
        with pytest.raises(SweepError, match="burst size"):
            small_grid(burst_sizes=(0,))
        with pytest.raises(SweepError, match="burst_sizes"):
            small_grid(burst_sizes=())

    def test_burst_size_reaches_the_fault_engine(self):
        pytest.importorskip("numpy")
        from repro.sim.fault_engine import FaultEngine

        seen: list[int] = []
        original = FaultEngine.__init__

        def recording(self, model, protocol, *, n, rate, burst_size, seed):
            seen.append(burst_size)
            original(self, model, protocol, n=n, rate=rate,
                     burst_size=burst_size, seed=seed)

        specs = [s for s in expand_grid(self.burst_grid()) if s.fault_rate > 0]
        try:
            FaultEngine.__init__ = recording
            for spec in specs:
                run_scenario(spec)
        finally:
            FaultEngine.__init__ = original
        assert sorted(seen) == [1, 4]

    def test_burst_size_in_records_and_rows(self):
        pytest.importorskip("numpy")
        from repro.sim.sweep import ScenarioOutcome

        specs = expand_grid(self.burst_grid())
        spec = next(s for s in specs if s.burst_size == 4)
        outcome = run_scenario(spec)
        record = outcome.to_record()
        assert record["burst_size"] == 4
        assert ScenarioOutcome.from_record(record) == outcome
        # Pre-axis records default to 1.
        del record["burst_size"]
        assert ScenarioOutcome.from_record(record).burst_size == 1
        rows = aggregate_rows(specs, [run_scenario(s) for s in specs])
        by_burst = {row["burst_size"] for row in rows}
        assert by_burst == {"-", 1, 4}

    def test_pre_burst_axis_checkpoint_still_resumes(self, tmp_path):
        # A checkpoint written before the burst axis existed carries no
        # "burst_sizes" grid key: defaulting it keeps the file resumable.
        pytest.importorskip("numpy")
        grid = self.burst_grid(fault_rates=(0.0,), burst_sizes=(1,))
        path = tmp_path / "legacy.jsonl"
        run_sweep(grid, workers=1, jsonl_path=path)
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        meta["grid"].pop("burst_sizes")
        trials = []
        for line in lines[1:]:
            record = json.loads(line)
            record.pop("burst_size")
            trials.append(json.dumps(record, separators=(",", ":")))
        path.write_text("\n".join([json.dumps(meta, separators=(",", ":")), *trials]) + "\n")
        specs = expand_grid(grid)
        outcomes, _ = load_checkpoint(path, grid, specs)
        assert len(outcomes) == len(specs)


class TestBatchBackendSweep:
    """--backend batch runs whole cells as one lockstep engine."""

    def batch_grid(self, **overrides):
        settings = dict(
            protocols=("cai_izumi_wada", "loosely_stabilizing"),
            ns=(10, 16),
            adversaries=(CLEAN, "scramble"),
            trials=3,
            seed=11,
            max_interactions=2_000_000,
            check_interval=250,
            backend="batch",
        )
        settings.update(overrides)
        return small_grid(**settings)

    def test_single_trial_cells_match_counts_backend_exactly(self):
        # One-trial cells delegate to a CountsSimulation with the same
        # seed, so everything but the backend label is bit-identical to
        # the per-trial counts sweep.
        pytest.importorskip("numpy")
        batch = run_sweep(self.batch_grid(trials=1))
        counts = run_sweep(self.batch_grid(trials=1, backend="counts"))
        for b, c in zip(batch.outcomes, counts.outcomes):
            assert b.backend == "batch" and c.backend == "counts"
            assert (b.converged, b.interactions, b.parallel_time) == \
                (c.converged, c.interactions, c.parallel_time)

    def test_end_to_end_with_resume_byte_identical(self, tmp_path):
        pytest.importorskip("numpy")
        grid = self.batch_grid()
        full = tmp_path / "full.jsonl"
        result = run_sweep(grid, workers=1, jsonl_path=full)
        assert all(outcome.converged for outcome in result.outcomes)
        full_bytes = full.read_bytes()
        assert b'"backend":"batch"' in full_bytes
        # Kill mid-stream (partial final line, mid-cell) and resume: the
        # interrupted cell re-runs deterministically and only its missing
        # rows are appended.
        resumed = tmp_path / "resumed.jsonl"
        resumed.write_bytes(full_bytes[: len(full_bytes) * 2 // 5])
        result2 = run_sweep(grid, jsonl_path=resumed, resume=True)
        assert resumed.read_bytes() == full_bytes
        assert result2.resumed_trials > 0
        assert result2.outcomes == result.outcomes

    def test_sweep_is_deterministic_across_runs(self):
        pytest.importorskip("numpy")
        grid = self.batch_grid(ns=(10,), adversaries=(CLEAN,))
        first = run_sweep(grid)
        second = run_sweep(grid)
        assert first.outcomes == second.outcomes

    def test_fault_cells_run_batched(self):
        pytest.importorskip("numpy")
        grid = self.batch_grid(
            protocols=("loosely_stabilizing",), ns=(16,),
            adversaries=(CLEAN,), fault_rates=(0.5,),
            fault_models=("scramble_burst",), burst_sizes=(1, 2),
            trials=2, max_interactions=20_000, check_interval=500,
        )
        result = run_sweep(grid)
        fault_outcomes = [o for o in result.outcomes if o.fault_rate > 0]
        assert fault_outcomes
        assert all(o.fault_bursts > 0 for o in fault_outcomes)
        assert all(o.availability is not None for o in fault_outcomes)
        assert {o.burst_size for o in fault_outcomes} == {1, 2}

    def test_fault_cell_burst_schedules_match_per_trial_engines(self):
        # The per-row burst schedule is a pure function of the spec seed,
        # so the batched sweep and the per-trial counts sweep agree on
        # every row's burst count.
        pytest.importorskip("numpy")
        settings = dict(
            protocols=("loosely_stabilizing",), ns=(16,),
            adversaries=(CLEAN,), fault_rates=(0.5,),
            fault_models=("scramble_burst",),
            trials=2, max_interactions=20_000, check_interval=500,
        )
        batch = run_sweep(self.batch_grid(**settings))
        counts = run_sweep(self.batch_grid(backend="counts", **settings))
        assert [o.fault_bursts for o in batch.outcomes] == \
            [o.fault_bursts for o in counts.outcomes]

    def test_elect_leader_grid_is_rejected_loudly(self):
        with pytest.raises(SweepError, match="batch"):
            small_grid(protocols=("elect_leader",), backend="batch")

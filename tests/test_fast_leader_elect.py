"""Tests for ``FastLeaderElect`` (Appendix D.2, Lemma D.10)."""

from __future__ import annotations

import math

from repro.core.fast_leader_elect import (
    FastLeaderElectProtocol,
    LEState,
    activate,
    leader_election_step,
)
from repro.core.params import ProtocolParams
from repro.core.state import ARState
from repro.scheduler.rng import derive_seed
from repro.sim.simulation import Simulation


class TestActivation:
    def test_activation_draws_identifier(self, small_params, rng):
        state = ARState()
        activate(state, small_params, rng)
        assert state.identifier is not None
        assert 1 <= state.identifier <= small_params.identifier_space
        assert state.min_identifier == state.identifier
        assert state.le_count == small_params.le_count_max

    def test_activation_idempotent(self, small_params, rng):
        state = ARState()
        activate(state, small_params, rng)
        identifier = state.identifier
        activate(state, small_params, rng)
        assert state.identifier == identifier


class TestStep:
    def test_min_epidemic_merges(self, small_params, rng):
        u, v = ARState(), ARState()
        activate(u, small_params, rng)
        activate(v, small_params, rng)
        u.min_identifier = 10
        v.min_identifier = 3
        leader_election_step(u, v, small_params, rng)
        assert u.min_identifier == 3
        assert v.min_identifier == 3

    def test_countdown_decrements(self, small_params, rng):
        u, v = ARState(), ARState()
        leader_election_step(u, v, small_params, rng)
        assert u.le_count == small_params.le_count_max - 1
        assert v.le_count == small_params.le_count_max - 1

    def test_decision_on_expiry(self, small_params, rng):
        u, v = ARState(), ARState()
        activate(u, small_params, rng)
        activate(v, small_params, rng)
        u.identifier = u.min_identifier = 1
        v.identifier = 2
        v.min_identifier = 1
        u.le_count = v.le_count = 1
        leader_election_step(u, v, small_params, rng)
        assert u.leader_done and v.leader_done
        assert u.leader_bit  # holds the minimum
        assert not v.leader_bit

    def test_done_agent_frozen(self, small_params, rng):
        u, v = ARState(), ARState()
        activate(u, small_params, rng)
        activate(v, small_params, rng)
        u.leader_done = True
        u.le_count = 0
        u.leader_bit = True
        leader_election_step(u, v, small_params, rng)
        assert u.leader_bit
        assert u.le_count == 0


class TestStandaloneProtocol:
    def test_elects_unique_leader(self):
        params = ProtocolParams(n=64, r=4)
        protocol = FastLeaderElectProtocol(params)
        sim = Simulation(protocol, n=64, seed=11)
        result = sim.run_until(
            protocol.is_goal_configuration, max_interactions=200_000, check_interval=50
        )
        assert result.converged
        assert protocol.leader_count(result.config) == 1

    def test_unique_leader_across_trials(self):
        """Lemma D.10: w.h.p. exactly one leader.  All of 30 seeded trials
        at n=48 should succeed (failure probability O(1/n) per trial would
        allow rare misses; the identifier space n³ makes ties ~1e-3)."""
        params = ProtocolParams(n=48, r=4)
        protocol = FastLeaderElectProtocol(params)
        successes = 0
        for trial in range(30):
            sim = Simulation(protocol, n=48, seed=derive_seed(100, trial))
            result = sim.run_until(
                protocol.is_goal_configuration, max_interactions=100_000, check_interval=50
            )
            successes += bool(result.converged)
        assert successes >= 28

    def test_time_is_logarithmic_shape(self):
        """Median decision time stays within a constant times n·log n."""
        medians = []
        for n in (32, 128):
            params = ProtocolParams(n=n, r=4)
            protocol = FastLeaderElectProtocol(params)
            times = []
            for trial in range(5):
                sim = Simulation(protocol, n=n, seed=derive_seed(7, trial))
                result = sim.run_until(
                    protocol.is_goal_configuration,
                    max_interactions=500_000,
                    check_interval=50,
                )
                assert result.converged
                times.append(result.interactions)
            times.sort()
            medians.append(times[len(times) // 2])
        ratio = medians[1] / medians[0]
        predicted = (128 * math.log(128)) / (32 * math.log(32))
        # Growth should be near n log n (ratio ≈ 5.6), certainly below n².
        assert ratio < 3 * predicted

    def test_clone(self):
        state = LEState(identifier=5, min_identifier=3, le_count=2)
        copy = state.clone()
        copy.min_identifier = 1
        assert state.min_identifier == 3

    def test_output(self):
        params = ProtocolParams(n=8, r=2)
        protocol = FastLeaderElectProtocol(params)
        assert protocol.output(LEState(leader_bit=True))
        assert not protocol.output(LEState(leader_bit=False))

"""Integration tests for ``ElectLeader_r`` (Protocol 1, Theorem 1.1)."""

from __future__ import annotations

import pytest

from repro.adversary.initializers import correct_verifier_configuration
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.core.roles import Role
from repro.scheduler.rng import derive_seed, make_rng
from repro.scheduler.scheduler import RandomScheduler
from repro.sim.simulation import Simulation


class TestRoleMachinery:
    def test_initial_state_is_fresh_ranker(self, small_protocol, small_params):
        agent = small_protocol.initial_state()
        assert agent.role is Role.RANKING
        assert agent.countdown == small_params.countdown_max
        assert agent.consistent()

    def test_countdown_decrements_for_ranker_pairs(self, small_protocol, rng):
        u = small_protocol.initial_state()
        v = small_protocol.initial_state()
        before = u.countdown
        small_protocol.transition(u, v, rng)
        assert u.countdown == before - 1
        assert v.countdown == before - 1

    def test_countdown_expiry_forces_verifier(self, small_protocol, rng):
        u = small_protocol.initial_state()
        v = small_protocol.initial_state()
        # Distinct presumed ranks in different groups, so the immediate
        # StableVerify between the two fresh verifiers finds no collision.
        assert u.ar is not None and v.ar is not None
        u.ar.rank = 2
        v.ar.rank = 9
        u.countdown = 1
        small_protocol.transition(u, v, rng)
        assert u.role is Role.VERIFYING
        assert u.sv is not None and u.ar is None
        # v converts too, by epidemic, in the same interaction (lines 6-8).
        assert v.role is Role.VERIFYING

    def test_unranked_agents_forced_to_verify_collide_and_reset(self, small_protocol, rng):
        """Two unranked rankers timing out share the default rank 1: the
        collision is genuine and must trigger a hard reset immediately."""
        u = small_protocol.initial_state()
        v = small_protocol.initial_state()
        u.countdown = 1
        small_protocol.transition(u, v, rng)
        assert Role.RESETTING in (u.role, v.role)

    def test_verifier_contact_converts_ranker(self, small_protocol, rng):
        u = small_protocol.initial_state()
        assert u.ar is not None
        u.ar.rank = 7
        small_protocol.become_verifier(u)
        w = small_protocol.initial_state()
        assert w.ar is not None
        w.ar.rank = 2
        small_protocol.transition(w, u, rng)  # epidemic conversion
        assert w.role is Role.VERIFYING
        assert w.rank == 2

    def test_become_verifier_copies_ar_rank(self, small_protocol):
        agent = small_protocol.initial_state()
        assert agent.ar is not None
        agent.ar.rank = 7
        small_protocol.become_verifier(agent)
        assert agent.rank == 7
        assert agent.consistent()

    def test_rank_accessor_total(self, small_protocol):
        ranker = small_protocol.initial_state()
        assert small_protocol.rank(ranker) == 1
        resetter = small_protocol.triggered_state()
        assert small_protocol.rank(resetter) == 1
        verifier = small_protocol.initial_state()
        small_protocol.become_verifier(verifier)
        assert small_protocol.rank(verifier) == verifier.rank


class TestStabilization:
    @pytest.mark.parametrize("n,r,seed", [(8, 1, 0), (12, 2, 1), (12, 3, 2), (16, 4, 3)])
    def test_clean_start_stabilizes(self, n, r, seed):
        protocol = ElectLeader(ProtocolParams(n=n, r=r))
        sim = Simulation(protocol, n=n, seed=seed)
        result = sim.run_until(
            protocol.is_safe_configuration, max_interactions=3_000_000, check_interval=1000
        )
        assert result.converged
        assert protocol.ranking_correct(result.config)
        assert protocol.leader_count(result.config) == 1

    def test_safe_configuration_reports_one_leader(self, medium_protocol):
        config = correct_verifier_configuration(medium_protocol)
        assert medium_protocol.is_safe_configuration(config)
        assert medium_protocol.leader_count(config) == 1
        assert medium_protocol.is_goal_configuration(config)

    def test_stabilization_across_seeds(self):
        protocol = ElectLeader(ProtocolParams(n=16, r=4))
        for trial in range(10):
            sim = Simulation(protocol, n=16, seed=derive_seed(900, trial))
            result = sim.run_until(
                protocol.is_safe_configuration,
                max_interactions=3_000_000,
                check_interval=1000,
            )
            assert result.converged, f"trial {trial} did not stabilize"


class TestSafeSetClosure:
    """Lemma 6.1: the safe set is closed under the transition function."""

    def test_closure_under_random_schedules(self, medium_protocol):
        config = correct_verifier_configuration(medium_protocol)
        rng = make_rng(17)
        scheduler = RandomScheduler(len(config), make_rng(18))
        for step in range(3_000):
            i, j = scheduler.next_pair()
            medium_protocol.transition(config[i], config[j], rng)
            if step % 500 == 0:
                assert medium_protocol.is_safe_configuration(config), f"left safe set at {step}"
        assert medium_protocol.is_safe_configuration(config)

    def test_ranks_never_change_in_safe_set(self, medium_protocol):
        config = correct_verifier_configuration(medium_protocol)
        before = [agent.rank for agent in config]
        rng = make_rng(21)
        scheduler = RandomScheduler(len(config), make_rng(22))
        for _ in range(3_000):
            i, j = scheduler.next_pair()
            medium_protocol.transition(config[i], config[j], rng)
        assert [agent.rank for agent in config] == before

    def test_no_top_ever_in_safe_set(self, medium_protocol):
        from repro.core.state import TOP

        config = correct_verifier_configuration(medium_protocol)
        rng = make_rng(23)
        scheduler = RandomScheduler(len(config), make_rng(24))
        for _ in range(3_000):
            i, j = scheduler.next_pair()
            medium_protocol.transition(config[i], config[j], rng)
            for agent in config:
                assert agent.sv is None or agent.sv.dc is not TOP


class TestPredicates:
    def test_describe_configuration_fields(self, medium_protocol):
        config = correct_verifier_configuration(medium_protocol)
        summary = medium_protocol.describe_configuration(config)
        assert summary["ranking_correct"] is True
        assert summary["leaders"] == 1
        assert summary["safe"] is True
        assert summary["roles"]["verifying"] == medium_protocol.n

    def test_safe_rejects_wrong_ranking(self, medium_protocol):
        config = correct_verifier_configuration(medium_protocol)
        config[0].rank = config[1].rank
        assert not medium_protocol.is_safe_configuration(config)

    def test_safe_rejects_mixed_generations(self, medium_protocol):
        config = correct_verifier_configuration(medium_protocol)
        assert config[0].sv is not None
        config[0].sv.generation = 1
        assert not medium_protocol.is_safe_configuration(config)

    def test_safe_rejects_rankers(self, medium_protocol):
        config = correct_verifier_configuration(medium_protocol)
        config[0] = medium_protocol.initial_state()
        assert not medium_protocol.is_safe_configuration(config)

    def test_safe_rejects_planted_top(self, medium_protocol):
        from repro.core.state import TOP

        config = correct_verifier_configuration(medium_protocol)
        assert config[0].sv is not None
        config[0].sv.dc = TOP
        assert not medium_protocol.is_safe_configuration(config)

"""Tests for ``PropagateReset`` (Appendix C)."""

from __future__ import annotations

import pytest

from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.core.propagate_reset import (
    fully_dormant,
    is_dormant,
    partially_computing,
    propagate_reset,
    trigger_reset,
)
from repro.core.roles import Role
from repro.core.state import AgentState
from repro.scheduler.rng import make_rng
from repro.scheduler.scheduler import RandomScheduler
from repro.sim.simulation import Simulation


def make_protocol(n: int = 12, r: int = 3) -> ElectLeader:
    return ElectLeader(ProtocolParams(n=n, r=r))


class TestTrigger:
    def test_trigger_sets_counters(self, small_params):
        agent = AgentState()
        trigger_reset(agent, small_params)
        assert agent.role is Role.RESETTING
        assert agent.pr is not None
        assert agent.pr.reset_count == small_params.reset_count_max
        assert agent.pr.delay_timer == small_params.delay_timer_max

    def test_trigger_deletes_inactive_fields(self, small_protocol):
        agent = small_protocol.initial_state()
        assert agent.ar is not None
        small_protocol.trigger(agent)
        assert agent.ar is None
        assert agent.sv is None
        assert agent.consistent()


class TestInfection:
    def test_active_resetter_infects_computing_agent(self, small_protocol, small_params):
        resetter = small_protocol.triggered_state()
        computing = small_protocol.initial_state()
        propagate_reset(resetter, computing, small_params, small_protocol.reset_agent)
        assert computing.role is Role.RESETTING

    def test_infected_agent_inherits_decremented_count(self, small_protocol, small_params):
        resetter = small_protocol.triggered_state()
        computing = small_protocol.initial_state()
        propagate_reset(resetter, computing, small_params, small_protocol.reset_agent)
        # Lines 3-4: both end at max(u-1, v-1, 0) = R_max - 1.
        assert computing.pr is not None and resetter.pr is not None
        assert computing.pr.reset_count == small_params.reset_count_max - 1
        assert resetter.pr.reset_count == small_params.reset_count_max - 1

    def test_infection_symmetric_in_argument_order(self, small_protocol, small_params):
        resetter = small_protocol.triggered_state()
        computing = small_protocol.initial_state()
        propagate_reset(computing, resetter, small_params, small_protocol.reset_agent)
        assert computing.role is Role.RESETTING

    def test_dormant_resetter_does_not_infect(self, small_protocol, small_params):
        resetter = small_protocol.triggered_state()
        assert resetter.pr is not None
        resetter.pr.reset_count = 0  # dormant
        computing = small_protocol.initial_state()
        propagate_reset(resetter, computing, small_params, small_protocol.reset_agent)
        # Instead the computing agent wakes the dormant one (line 10).
        assert computing.role is Role.RANKING
        assert resetter.role is Role.RANKING

    def test_requires_a_resetter(self, small_protocol, small_params):
        a = small_protocol.initial_state()
        b = small_protocol.initial_state()
        with pytest.raises(ValueError):
            propagate_reset(a, b, small_params, small_protocol.reset_agent)


class TestDormancy:
    def test_two_resetters_synchronize_down(self, small_protocol, small_params):
        a = small_protocol.triggered_state()
        b = small_protocol.triggered_state()
        assert a.pr is not None and b.pr is not None
        a.pr.reset_count = 5
        b.pr.reset_count = 3
        propagate_reset(a, b, small_params, small_protocol.reset_agent)
        assert a.pr.reset_count == 4
        assert b.pr.reset_count == 4

    def test_count_floor_at_zero(self, small_protocol, small_params):
        a = small_protocol.triggered_state()
        b = small_protocol.triggered_state()
        assert a.pr is not None and b.pr is not None
        a.pr.reset_count = 0
        b.pr.reset_count = 0
        # Both dormant; each decrements its delay timer.
        before = a.pr.delay_timer
        propagate_reset(a, b, small_params, small_protocol.reset_agent)
        assert a.pr.reset_count == 0
        assert a.pr.delay_timer == before - 1

    def test_delay_initialized_when_count_hits_zero(self, small_protocol, small_params):
        a = small_protocol.triggered_state()
        b = small_protocol.triggered_state()
        assert a.pr is not None and b.pr is not None
        a.pr.reset_count = 1
        b.pr.reset_count = 1
        a.pr.delay_timer = 1
        propagate_reset(a, b, small_params, small_protocol.reset_agent)
        # Count just became 0 → delay re-armed to D_max, not decremented.
        assert a.pr.reset_count == 0
        assert a.pr.delay_timer == small_params.delay_timer_max

    def test_delay_expiry_restarts_agent(self, small_protocol, small_params):
        a = small_protocol.triggered_state()
        b = small_protocol.triggered_state()
        assert a.pr is not None and b.pr is not None
        a.pr.reset_count = 0
        a.pr.delay_timer = 1
        b.pr.reset_count = 0
        b.pr.delay_timer = 10
        propagate_reset(a, b, small_params, small_protocol.reset_agent)
        assert a.role is Role.RANKING
        assert a.countdown == small_params.countdown_max

    def test_computing_partner_wakes_dormant(self, small_protocol, small_params):
        dormant = small_protocol.triggered_state()
        assert dormant.pr is not None
        dormant.pr.reset_count = 0
        dormant.pr.delay_timer = 10
        awake = small_protocol.initial_state()
        propagate_reset(dormant, awake, small_params, small_protocol.reset_agent)
        assert dormant.role is Role.RANKING


class TestPredicates:
    def test_is_dormant(self, small_protocol):
        agent = small_protocol.triggered_state()
        assert not is_dormant(agent)
        assert agent.pr is not None
        agent.pr.reset_count = 0
        assert is_dormant(agent)

    def test_fully_dormant_and_partially_computing(self, small_protocol):
        config = [small_protocol.triggered_state() for _ in range(4)]
        for agent in config:
            assert agent.pr is not None
            agent.pr.reset_count = 0
        assert fully_dormant(config)
        assert not partially_computing(config)
        small_protocol.reset_agent(config[0])
        assert not fully_dormant(config)
        assert partially_computing(config)


class TestClosedFormTable:
    def test_closed_form_matches_generic_builder(self):
        """The vectorized transition table is entry-for-entry the generic
        S² enumeration of δ (the cap-lifting satellite's exactness gate)."""
        numpy = pytest.importorskip("numpy")
        from repro.core.propagate_reset import ResetEpidemicProtocol
        from repro.sim.array_backend import build_transition_table

        for n in (8, 64, 512):
            protocol = ResetEpidemicProtocol(ProtocolParams(n=n, r=1))
            closed = protocol.transition_table()
            generic = build_transition_table(protocol)
            assert numpy.array_equal(closed.u_out, generic.u_out), n
            assert numpy.array_equal(closed.v_out, generic.v_out), n

    def test_closed_form_builds_at_the_frontier(self):
        pytest.importorskip("numpy")
        from repro.core.propagate_reset import ResetEpidemicProtocol

        # The generic builder needs S² ≈ 2.7M Python δ calls here; the
        # closed form must stay cheap enough to build per trial.
        protocol = ResetEpidemicProtocol(ProtocolParams(n=1_000_000, r=1))
        table = protocol.transition_table()
        assert table.num_states == protocol.num_states()
        # Spot-check the awakening epidemic entry: dormant meets awake.
        dormant = protocol.encode_state(protocol.decode_state(1))  # r(0, 0)
        assert table.lookup(dormant, 0) == (0, 0)


class TestFullResetCycle:
    def test_triggered_population_passes_through_dormancy_and_restarts(self):
        """Corollary C.3 end-to-end: triggered → fully dormant → computing."""
        protocol = make_protocol(n=16, r=4)
        config = [protocol.triggered_state() for _ in range(16)]
        scheduler = RandomScheduler(16, make_rng(3))
        rng = make_rng(4)
        saw_fully_dormant = False
        for _ in range(40_000):
            i, j = scheduler.next_pair()
            protocol.transition(config[i], config[j], rng)
            if fully_dormant(config):
                saw_fully_dormant = True
            if saw_fully_dormant and all(s.role is Role.RANKING for s in config):
                break
        assert saw_fully_dormant, "population never became fully dormant"
        assert all(s.role is Role.RANKING for s in config)

    def test_reset_leads_to_safe_configuration(self):
        """Lemma 6.2: from a triggered configuration, 𝒞_safe is reached."""
        protocol = make_protocol(n=16, r=4)
        config = [protocol.triggered_state() for _ in range(16)]
        sim = Simulation(protocol, config=config, seed=5)
        result = sim.run_until(
            protocol.is_safe_configuration, max_interactions=2_000_000, check_interval=1000
        )
        assert result.converged

"""The ``repro.lint`` static-analysis gate.

Three contracts, in order of importance:

* **every rule fires** — each rule L001-L007 flags its fixture in
  ``tests/lint_fixtures/`` (and a fixture flags *only* its own rule, so
  the fixtures double as precision probes);
* **the shipped tree is clean** — ``repro lint`` over the real
  ``src``/``benchmarks``/``examples`` roots reports zero findings (this
  is the same invocation CI gates on);
* **waivers round-trip** — a ``# repro-lint: disable=LXXX`` comment on
  the flagged line suppresses exactly that finding and is counted.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    registered_rules,
    render_json,
    render_text,
    run_lint,
)
from repro.lint.engine import (
    DEFAULT_LINT_ROOTS,
    LintUsageError,
    waived_rules_by_line,
)
from repro.lint.registry import RuleSelection, rule_ids

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

#: rule id -> the fixture that violates it (and nothing else).
FIXTURE_BY_RULE = {
    "L001": "rng_violation.py",
    "L002": "engine_violation.py",
    "L003": "backend_conditional_violation.py",
    "L004": "transition_violation.py",
    "L005": "deprecated_kwargs_violation.py",
    "L006": "counts_violation.py",
    "L007": "obs_violation.py",
}


class TestEveryRuleFires:
    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_BY_RULE))
    def test_rule_fires_on_its_fixture(self, rule_id):
        fixture = FIXTURES / FIXTURE_BY_RULE[rule_id]
        report = run_lint([str(fixture)], base=REPO_ROOT)
        assert not report.clean
        assert any(f.rule == rule_id for f in report.findings), report.findings

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_BY_RULE))
    def test_fixture_trips_only_its_own_rule(self, rule_id):
        fixture = FIXTURES / FIXTURE_BY_RULE[rule_id]
        report = run_lint([str(fixture)], base=REPO_ROOT)
        assert {f.rule for f in report.findings} == {rule_id}, report.findings

    def test_every_registered_rule_has_a_fixture(self):
        assert set(FIXTURE_BY_RULE) == set(rule_ids())

    def test_findings_carry_location_and_hint(self):
        fixture = FIXTURES / FIXTURE_BY_RULE["L003"]
        report = run_lint([str(fixture)], base=REPO_ROOT)
        (finding,) = report.findings
        assert finding.path.endswith("backend_conditional_violation.py")
        assert finding.line > 0
        assert finding.hint  # rules ship a remediation pointer


class TestShippedTreeClean:
    def test_default_roots_are_clean(self):
        report = run_lint(base=REPO_ROOT)
        assert report.clean, render_text(report)
        assert report.checked_files > 0
        # The fixtures live under tests/ precisely so the default roots
        # never see them.
        assert all(root != "tests" for root in DEFAULT_LINT_ROOTS)

    def test_cli_exits_nonzero_on_a_fixture_and_zero_when_clean(self):
        fixture = FIXTURES / FIXTURE_BY_RULE["L001"]
        env_path = str(REPO_ROOT / "src")
        violating = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(fixture)],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
        )
        assert violating.returncode == 1, violating.stdout + violating.stderr
        assert "L001" in violating.stdout
        listing = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--list-rules"],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
        )
        assert listing.returncode == 0
        assert all(rule_id in listing.stdout for rule_id in rule_ids())


class TestWaivers:
    def _waive(self, tmp_path: Path, fixture_name: str, rule_id: str) -> Path:
        """Copy a fixture with a waiver comment on each flagged line."""
        fixture = FIXTURES / fixture_name
        report = run_lint([str(fixture)], base=REPO_ROOT)
        flagged = {f.line for f in report.findings if f.rule == rule_id}
        assert flagged
        lines = fixture.read_text().splitlines()
        for number in flagged:
            lines[number - 1] += f"  # repro-lint: disable={rule_id}"
        waived = tmp_path / fixture_name
        waived.write_text("\n".join(lines) + "\n")
        return waived

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_BY_RULE))
    def test_waiver_suppresses_each_rule(self, tmp_path, rule_id):
        waived = self._waive(tmp_path, FIXTURE_BY_RULE[rule_id], rule_id)
        report = run_lint([str(waived)], base=REPO_ROOT)
        assert report.clean, report.findings
        assert report.waived > 0

    def test_disable_all_waives_everything(self, tmp_path):
        fixture = FIXTURES / FIXTURE_BY_RULE["L003"]
        lines = fixture.read_text().splitlines()
        report = run_lint([str(fixture)], base=REPO_ROOT)
        for finding in report.findings:
            lines[finding.line - 1] += "  # repro-lint: disable=all"
        waived = tmp_path / "all_waived.py"
        waived.write_text("\n".join(lines) + "\n")
        again = run_lint([str(waived)], base=REPO_ROOT)
        assert again.clean and again.waived == len(report.findings)

    def test_waiver_on_the_wrong_line_does_not_suppress(self, tmp_path):
        fixture = FIXTURES / FIXTURE_BY_RULE["L003"]
        text = "# repro-lint: disable=L003\n" + fixture.read_text()
        shifted = tmp_path / "shifted.py"
        shifted.write_text(text)
        report = run_lint([str(shifted)], base=REPO_ROOT)
        assert not report.clean  # waivers are per-line, not per-file

    def test_waiver_parsing(self):
        text = "x = 1  # repro-lint: disable=L001, L003\ny = 2\n"
        assert waived_rules_by_line(text) == {1: {"L001", "L003"}}


class TestReporting:
    def test_json_is_versioned_and_machine_readable(self):
        fixture = FIXTURES / FIXTURE_BY_RULE["L005"]
        report = run_lint([str(fixture)], base=REPO_ROOT)
        payload = json.loads(render_json(report))
        assert payload["version"] == 1
        assert payload["clean"] is False
        assert set(payload["rules"]) == set(rule_ids())
        (finding,) = payload["findings"]
        assert finding["rule"] == "L005"
        assert finding["path"].endswith("deprecated_kwargs_violation.py")

    def test_text_report_names_rule_and_location(self):
        fixture = FIXTURES / FIXTURE_BY_RULE["L006"]
        report = run_lint([str(fixture)], base=REPO_ROOT)
        text = render_text(report)
        assert "L006" in text and "counts_violation.py" in text

    def test_clean_report_says_so(self):
        report = run_lint(["src/repro/core"], base=REPO_ROOT)
        assert "clean" in render_text(report)


class TestEngineValidation:
    def test_unknown_rule_filter_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            RuleSelection.parse("L999")

    def test_missing_path_fails_loudly(self):
        with pytest.raises(LintUsageError, match="does not exist"):
            run_lint(["no/such/dir"], base=REPO_ROOT)

    def test_rules_filter_restricts_the_run(self):
        fixture = FIXTURES / FIXTURE_BY_RULE["L001"]
        report = run_lint([str(fixture)], base=REPO_ROOT, rules_filter="L006")
        assert report.clean  # L001 violations invisible to an L006-only run

    def test_rule_registry_is_complete(self):
        rules = registered_rules()
        assert [rule.rule_id for rule in rules] == sorted(rule.rule_id for rule in rules)
        assert all(rule.summary and rule.hint for rule in rules)

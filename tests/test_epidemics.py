"""Tests for the epidemic substrates (Lemma A.2)."""

from __future__ import annotations

import math
import statistics

from repro.scheduler.rng import derive_seed
from repro.sim.simulation import Simulation
from repro.substrates.epidemics import (
    EpidemicProtocol,
    MinEpidemicProtocol,
    OneWayEpidemicProtocol,
)


class TestTwoWayEpidemic:
    def test_infection_spreads_on_contact(self, rng):
        protocol = EpidemicProtocol()
        u = protocol.initial_state()
        v = protocol.initial_state()
        u.marked = True
        protocol.transition(u, v, rng)
        assert v.marked

    def test_no_spontaneous_infection(self, rng):
        protocol = EpidemicProtocol()
        u = protocol.initial_state()
        v = protocol.initial_state()
        protocol.transition(u, v, rng)
        assert not u.marked and not v.marked

    def test_seeded_configuration(self):
        config = EpidemicProtocol.seeded_configuration(10, sources=3)
        assert sum(s.marked for s in config) == 3

    def test_seeded_configuration_bounds(self):
        import pytest

        with pytest.raises(ValueError):
            EpidemicProtocol.seeded_configuration(5, sources=0)
        with pytest.raises(ValueError):
            EpidemicProtocol.seeded_configuration(5, sources=6)

    def test_completes(self):
        protocol = EpidemicProtocol()
        config = EpidemicProtocol.seeded_configuration(64, sources=1)
        sim = Simulation(protocol, config=config, seed=2)
        result = sim.run_until(
            protocol.is_goal_configuration, max_interactions=100_000, check_interval=32
        )
        assert result.converged

    def test_completion_within_lemma_bound(self):
        """Lemma A.2: completion within c_epi · n log n with c_epi < 7.

        We check the median over trials sits well under 7·n·ln n and the
        max under a generous envelope."""
        protocol = EpidemicProtocol()
        n = 128
        bound = 7 * n * math.log(n)
        times = []
        for trial in range(10):
            config = EpidemicProtocol.seeded_configuration(n, sources=1)
            sim = Simulation(protocol, config=config, seed=derive_seed(3, trial))
            result = sim.run_until(
                protocol.is_goal_configuration, max_interactions=200_000, check_interval=16
            )
            assert result.converged
            times.append(result.interactions)
        assert statistics.median(times) < bound
        assert max(times) < 2 * bound

    def test_scaling_is_n_log_n(self):
        """Ratio of completion times across n should track n log n."""
        protocol = EpidemicProtocol()
        medians = []
        for n in (64, 256):
            times = []
            for trial in range(8):
                config = EpidemicProtocol.seeded_configuration(n, sources=1)
                sim = Simulation(protocol, config=config, seed=derive_seed(11, trial))
                result = sim.run_until(
                    protocol.is_goal_configuration,
                    max_interactions=500_000,
                    check_interval=16,
                )
                assert result.converged
                times.append(result.interactions)
            medians.append(statistics.median(times))
        measured_ratio = medians[1] / medians[0]
        predicted_ratio = (256 * math.log(256)) / (64 * math.log(64))
        assert measured_ratio < 2.0 * predicted_ratio
        assert measured_ratio > 0.4 * predicted_ratio


class TestOneWayEpidemic:
    def test_only_initiator_infects(self, rng):
        protocol = OneWayEpidemicProtocol()
        u = protocol.initial_state()
        v = protocol.initial_state()
        v.marked = True
        protocol.transition(u, v, rng)
        assert not u.marked  # responder cannot infect the initiator
        protocol.transition(v, u, rng)
        assert u.marked

    def test_slower_than_two_way(self):
        """One-way epidemics complete, just more slowly on average."""
        n = 64
        one_way_times = []
        two_way_times = []
        for trial in range(6):
            for protocol, sink in (
                (OneWayEpidemicProtocol(), one_way_times),
                (EpidemicProtocol(), two_way_times),
            ):
                config = protocol.seeded_configuration(n, sources=1)
                sim = Simulation(protocol, config=config, seed=derive_seed(21, trial))
                result = sim.run_until(
                    protocol.is_goal_configuration,
                    max_interactions=300_000,
                    check_interval=16,
                )
                assert result.converged
                sink.append(result.interactions)
        assert statistics.median(one_way_times) > statistics.median(two_way_times)


class TestMinEpidemic:
    def test_merges_to_minimum(self, rng):
        protocol = MinEpidemicProtocol()
        config = MinEpidemicProtocol.valued_configuration([5, 3, 9])
        protocol.transition(config[0], config[2], rng)
        assert config[0].value == 5 and config[2].value == 5
        protocol.transition(config[0], config[1], rng)
        assert config[0].value == 3 and config[1].value == 3

    def test_converges_to_global_minimum(self):
        protocol = MinEpidemicProtocol()
        values = list(range(100, 0, -1))
        config = MinEpidemicProtocol.valued_configuration(values)
        sim = Simulation(protocol, config=config, seed=5)
        result = sim.run_until(
            protocol.is_goal_configuration, max_interactions=200_000, check_interval=50
        )
        assert result.converged
        assert all(s.value == 1 for s in result.config)

"""Tests for convergence predicates, silence detection and replay."""

from __future__ import annotations

import pytest

from repro.baselines.cai_izumi_wada import CaiIzumiWada, CIWState
from repro.baselines.nonss_leader import PairwiseElimination
from repro.core.params import BaselineParams
from repro.scheduler.rng import make_rng
from repro.sim.convergence import (
    SilenceDetector,
    all_of,
    any_of,
    correct_ranking,
    run_to_silence,
    unique_leader,
)
from repro.sim.replay import reachable_via, record_and_replay_matches, replay
from repro.sim.simulation import Simulation


class TestPredicates:
    def test_unique_leader(self):
        protocol = PairwiseElimination(4)
        config = [protocol.initial_state() for _ in range(4)]
        assert not unique_leader(protocol)(config)
        for state in config[1:]:
            state.leader = False
        assert unique_leader(protocol)(config)

    def test_correct_ranking(self):
        protocol = CaiIzumiWada(BaselineParams(n=4))
        good = [CIWState(r) for r in (2, 4, 1, 3)]
        bad = [CIWState(r) for r in (1, 1, 2, 3)]
        assert correct_ranking(protocol)(good)
        assert not correct_ranking(protocol)(bad)

    def test_all_of_and_any_of(self):
        def always(config):
            return True

        def never(config):
            return False

        assert all_of(always, always)([])
        assert not all_of(always, never)([])
        assert any_of(never, always)([])
        assert not any_of(never, never)([])


class TestSilence:
    def test_detector_tracks_changes(self):
        protocol = CaiIzumiWada(BaselineParams(n=4))
        config = [CIWState(1) for _ in range(4)]  # maximally colliding
        sim = Simulation(protocol, config=config, seed=1)
        detector = SilenceDetector()
        sim.observers.append(detector.observe)
        sim.run(5)
        # Early on, collisions keep changing states: quiet window is short.
        assert detector.quiet_interactions(sim) <= 5

    def test_run_to_silence_on_ciw(self):
        protocol = CaiIzumiWada(BaselineParams(n=8))
        sim, silent = run_to_silence(
            protocol, n=8, seed=2, window=2_000, max_interactions=2_000_000
        )
        assert silent
        # Silence for CIW means the ranking is a permutation.
        assert protocol.is_silent_configuration(sim.config)

    def test_run_to_silence_budget(self):
        protocol = CaiIzumiWada(BaselineParams(n=8))
        config = [CIWState(1) for _ in range(8)]
        sim, silent = run_to_silence(
            protocol, config=config, seed=3, window=1_000, max_interactions=50
        )
        assert not silent


class TestReplay:
    def test_replay_applies_schedule(self):
        protocol = PairwiseElimination(3)
        config = [protocol.initial_state() for _ in range(3)]
        replay(protocol, config, [(0, 1), (0, 2)])
        assert [s.leader for s in config] == [True, False, False]

    def test_replay_validates_indices(self):
        protocol = PairwiseElimination(3)
        config = [protocol.initial_state() for _ in range(3)]
        with pytest.raises(ValueError):
            replay(protocol, config, [(0, 5)])

    def test_replay_on_step_callback(self):
        protocol = PairwiseElimination(3)
        config = [protocol.initial_state() for _ in range(3)]
        steps = []
        replay(protocol, config, [(0, 1), (1, 2)], on_step=lambda s, i, j: steps.append((s, i, j)))
        assert steps == [(0, 0, 1), (1, 1, 2)]

    def test_reachability_along_schedule(self):
        protocol = PairwiseElimination(3)
        start = [protocol.initial_state() for _ in range(3)]
        schedule = [(0, 1), (0, 2)]
        assert reachable_via(
            protocol, start, schedule, lambda cfg: protocol.leader_count(cfg) == 1
        )

    def test_record_and_replay_determinism_elect_leader(self, small_protocol):
        """The full protocol is deterministic given (config, schedule, seed)."""
        assert record_and_replay_matches(
            small_protocol,
            make_config=lambda: [small_protocol.initial_state() for _ in range(8)],
            n=8,
            steps=300,
            seed=5,
        )


class TestEventCounters:
    def test_hard_and_soft_resets_counted(self, small_protocol):
        from repro.adversary.initializers import all_duplicate_rank, corrupted_messages

        small_protocol.reset_events()
        # Duplicate-leader population ⇒ at least one hard reset on the way.
        config = all_duplicate_rank(small_protocol, make_rng(1), rank=1)
        sim = Simulation(small_protocol, config=config, seed=2)
        sim.run_until(
            small_protocol.is_safe_configuration,
            max_interactions=5_000_000,
            check_interval=2_000,
        )
        assert small_protocol.events["hard_reset"] >= 1

        # Corrupted messages with expired probation ⇒ soft resets.
        small_protocol.reset_events()
        config = corrupted_messages(small_protocol, make_rng(3), corruptions=3)
        for agent in config:
            agent.sv.probation_timer = 0
        sim = Simulation(small_protocol, config=config, seed=4)
        result = sim.run_until(
            small_protocol.is_safe_configuration,
            max_interactions=5_000_000,
            check_interval=2_000,
        )
        assert result.converged
        assert small_protocol.events["soft_reset"] >= 1
        assert small_protocol.events["hard_reset"] == 0

    def test_reset_events_clears(self, small_protocol):
        small_protocol.events["hard_reset"] = 5
        small_protocol.reset_events()
        assert small_protocol.events["hard_reset"] == 0

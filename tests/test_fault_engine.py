"""Tests for the backend-generic fault engine (models, schedule, drivers).

The headline contracts:

* the burst *schedule* (interaction indices and count) is bit-identical
  across the object/array/counts backends for a fixed seed — only the
  corruption realization is representation-shaped;
* the three appliers of each model are law-matched: the config and codes
  appliers consume identical draws (bit-identical bursts), and the counts
  applier's mass moves match the per-agent corruption marginals;
* the availability workload produces statistically indistinguishable
  results on every backend (overlapping bootstrap CIs).
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.analysis.stats import bootstrap_ci  # noqa: E402
from repro.baselines.cai_izumi_wada import CaiIzumiWada  # noqa: E402
from repro.baselines.loosely_stabilizing import (  # noqa: E402
    LooselyStabilizingLeaderElection,
)
from repro.core.elect_leader import ElectLeader  # noqa: E402
from repro.core.params import BaselineParams, ProtocolParams  # noqa: E402
from repro.sim.backends import make_simulation  # noqa: E402
from repro.sim.counts_backend import goal_counts_predicate  # noqa: E402
from repro.sim.fault_engine import (  # noqa: E402
    DEFAULT_FAULT_MODEL,
    FAULT_MODELS,
    FaultEngine,
    FaultEngineError,
    FaultModel,
    fault_model_names,
    get_fault_model,
    initial_state_code,
    leader_code_mask,
    make_fault_engine,
    register_fault_model,
)
from repro.sim.initial_state import CodeArray  # noqa: E402
from repro.substrates.epidemics import EpidemicProtocol  # noqa: E402

BACKENDS = ("object", "array", "counts")


def fresh_generator(seed: int):
    return np.random.Generator(np.random.PCG64(seed))


def infected_codes(n: int):
    return np.ones(n, dtype=np.int64)


@pytest.fixture
def epidemic() -> EpidemicProtocol:
    return EpidemicProtocol()


@pytest.fixture
def ciw() -> CaiIzumiWada:
    return CaiIzumiWada(BaselineParams(n=8))


class TestRegistry:
    def test_builtin_models_registered_default_first(self):
        names = fault_model_names()
        assert names[0] == DEFAULT_FAULT_MODEL
        assert set(names) >= {
            "scramble_burst", "kill_leaders", "plant_minority", "crash_reset",
        }

    def test_unknown_model_lists_known(self):
        with pytest.raises(ValueError, match="unknown fault model 'emp'.*scramble_burst"):
            get_fault_model("emp")

    def test_register_rejects_duplicates_and_bad_names(self):
        with pytest.raises(ValueError, match="already registered"):
            register_fault_model(get_fault_model("crash_reset"))
        bad = FaultModel()
        bad.name = "not a name"
        with pytest.raises(ValueError, match="simple identifier"):
            register_fault_model(bad)

    def test_new_model_is_one_registration(self):
        model = type("CrashTwice", (FaultModel,), {"name": "crash_twice"})()
        register_fault_model(model)
        try:
            assert get_fault_model("crash_twice") is model
        finally:
            del FAULT_MODELS["crash_twice"]


class TestSupports:
    def test_code_models_reject_elect_leader(self):
        elect = ElectLeader(ProtocolParams(n=16, r=2))
        for name in ("kill_leaders", "plant_minority"):
            assert get_fault_model(name).supports(elect) is not None

    def test_scramble_and_crash_accept_elect_leader(self):
        elect = ElectLeader(ProtocolParams(n=16, r=2))
        assert get_fault_model("scramble_burst").supports(elect) is None
        assert get_fault_model("crash_reset").supports(elect) is None

    def test_all_models_accept_finite_state(self, ciw):
        for name in fault_model_names():
            assert get_fault_model(name).supports(ciw) is None

    def test_engine_requires_support(self):
        elect = ElectLeader(ProtocolParams(n=16, r=2))
        with pytest.raises(FaultEngineError, match="kill_leaders"):
            make_fault_engine("kill_leaders", elect, n=16, rate=1.0)

    def test_engine_rejects_bad_parameters(self, epidemic):
        with pytest.raises(ValueError, match="rate"):
            FaultEngine(get_fault_model("crash_reset"), epidemic, n=8, rate=0.0)
        with pytest.raises(ValueError, match="burst size"):
            FaultEngine(get_fault_model("crash_reset"), epidemic, n=8, rate=1.0,
                        burst_size=0)


class TestLeaderMask:
    def test_mask_matches_output(self, ciw):
        mask = leader_code_mask(ciw)
        expected = [bool(ciw.output(ciw.decode_state(code))) for code in range(ciw.n)]
        assert mask.tolist() == expected
        assert int(mask.sum()) == 1  # exactly the rank-1 code

    def test_initial_state_code_round_trips(self, epidemic):
        assert initial_state_code(epidemic) == 0


class TestBurstSchedule:
    def test_bit_identical_across_backends(self, epidemic):
        predicate = goal_counts_predicate(epidemic)
        schedules = {}
        for backend in BACKENDS:
            sim = make_simulation(
                epidemic, init=CodeArray(infected_codes(256)), seed=11, backend=backend
            )
            engine = make_fault_engine(
                "crash_reset", epidemic, n=256, rate=2.0, burst_size=2, seed=77
            )
            engine.measure_availability(
                sim, predicate, total_interactions=10_000, checkpoint_every=250
            )
            schedules[backend] = [event.interaction for event in engine.events]
        assert schedules["object"] == schedules["array"] == schedules["counts"]
        assert len(schedules["object"]) > 5

    def test_schedule_is_a_pure_function_of_the_seed(self, epidemic):
        runs = []
        for _ in range(2):
            sim = make_simulation(epidemic, init=CodeArray(infected_codes(128)), seed=3,
                                  backend="counts")
            engine = make_fault_engine("scramble_burst", epidemic, n=128, rate=1.0,
                                       seed=5)
            engine.measure_availability(
                sim, goal_counts_predicate(epidemic),
                total_interactions=5_000, checkpoint_every=100,
            )
            runs.append([event.interaction for event in engine.events])
        assert runs[0] == runs[1]

    def test_rate_scales_burst_count(self, epidemic):
        counts = {}
        for rate in (0.5, 4.0):
            sim = make_simulation(epidemic, init=CodeArray(infected_codes(128)), seed=3,
                                  backend="counts")
            engine = make_fault_engine("crash_reset", epidemic, n=128, rate=rate, seed=9)
            engine.measure_availability(
                sim, goal_counts_predicate(epidemic),
                total_interactions=40_000, checkpoint_every=1_000,
            )
            counts[rate] = engine.fault_bursts
        # 8x the rate: expect roughly 8x the bursts (wide tolerance).
        assert 3 * counts[0.5] < counts[4.0] < 20 * max(1, counts[0.5])


class TestApplierEquivalence:
    """Object/array bursts are bit-identical; counts matches in law."""

    @pytest.mark.parametrize("name", ["scramble_burst", "kill_leaders",
                                      "plant_minority", "crash_reset"])
    def test_config_and_codes_appliers_consume_identical_draws(self, ciw, name):
        model = get_fault_model(name)
        start = np.arange(8, dtype=np.int64)  # a permutation: one leader
        codes = start.copy()
        config = [ciw.decode_state(int(code)) for code in start]
        model.apply_codes(ciw, codes, 3, fresh_generator(42))
        model.apply_config(ciw, config, 3, fresh_generator(42))
        assert [ciw.encode_state(state) for state in config] == codes.tolist()

    @pytest.mark.parametrize("name", ["scramble_burst", "kill_leaders",
                                      "plant_minority", "crash_reset"])
    def test_counts_marginals_match_per_agent_corruption(self, ciw, name):
        """Monte-Carlo: mean post-burst counts agree between the codes
        applier (per-agent corruption on a concrete arrangement) and the
        counts applier (hypergeometric mass moves)."""
        model = get_fault_model(name)
        start = np.arange(8, dtype=np.int64)
        rounds = 600
        mean_codes = np.zeros(8)
        mean_counts = np.zeros(8)
        for seed in range(rounds):
            codes = start.copy()
            model.apply_codes(ciw, codes, 3, fresh_generator(seed))
            mean_codes += np.bincount(codes, minlength=8)
            counts = np.bincount(start, minlength=8).astype(np.int64)
            model.apply_counts(ciw, counts, 3, fresh_generator(10_000 + seed))
            assert int(counts.sum()) == 8
            assert int(counts.min()) >= 0
            mean_counts += counts
        mean_codes /= rounds
        mean_counts /= rounds
        assert np.abs(mean_codes - mean_counts).max() < 0.15, (
            name, mean_codes, mean_counts,
        )

    def test_kill_leaders_demotes_the_leader(self, ciw):
        codes = np.arange(8, dtype=np.int64)
        get_fault_model("kill_leaders").apply_codes(ciw, codes, 1, fresh_generator(0))
        assert int((codes == 0).sum()) == 0  # rank-1 code vacated
        assert int((codes == 1).sum()) == 2  # demoted to the first non-leader

        counts = np.bincount(np.arange(8), minlength=8).astype(np.int64)
        get_fault_model("kill_leaders").apply_counts(ciw, counts, 1, fresh_generator(0))
        assert counts.tolist() == [0, 2, 1, 1, 1, 1, 1, 1]

    def test_kill_leaders_with_no_leaders_is_a_noop(self):
        loose = LooselyStabilizingLeaderElection(BaselineParams(n=8))
        codes = np.zeros(8, dtype=np.int64)  # all followers
        before = codes.copy()
        get_fault_model("kill_leaders").apply_codes(loose, codes, 2, fresh_generator(1))
        assert np.array_equal(codes, before)

    def test_crash_reset_moves_mass_to_the_initial_code(self, epidemic):
        counts = np.array([0, 64], dtype=np.int64)  # everyone infected
        get_fault_model("crash_reset").apply_counts(
            epidemic, counts, 5, fresh_generator(2)
        )
        assert counts.tolist() == [5, 59]

    def test_plant_minority_is_coordinated(self, ciw):
        codes = np.arange(8, dtype=np.int64)
        get_fault_model("plant_minority").apply_codes(ciw, codes, 4, fresh_generator(3))
        values, tallies = np.unique(codes, return_counts=True)
        assert int(tallies.max()) >= 4  # all four victims agree

    def test_scramble_burst_wraps_object_scrambler_for_elect_leader(self):
        protocol = ElectLeader(ProtocolParams(n=12, r=2))
        config = protocol.clean_configuration(12)
        get_fault_model("scramble_burst").apply_config(
            protocol, config, 3, fresh_generator(4)
        )
        assert all(agent.consistent() for agent in config)


class TestCountsMassProperties:
    @given(
        counts=st.lists(st.integers(min_value=0, max_value=40), min_size=2,
                        max_size=8),
        burst=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
        name=st.sampled_from(["scramble_burst", "plant_minority", "crash_reset",
                              "kill_leaders"]),
    )
    @settings(max_examples=120, deadline=None)
    def test_mass_is_conserved_and_non_negative(self, counts, burst, seed, name):
        total = sum(counts)
        if total < 2:
            return
        protocol = CaiIzumiWada(BaselineParams(n=len(counts)))
        vector = np.array(counts, dtype=np.int64)
        get_fault_model(name).apply_counts(protocol, vector, burst,
                                           fresh_generator(seed))
        assert int(vector.sum()) == total
        assert int(vector.min()) >= 0


class TestDrivers:
    def test_run_until_converges_under_mild_faults(self, epidemic):
        for backend in BACKENDS:
            sim = make_simulation(epidemic, init=CodeArray(infected_codes(128)), seed=1,
                                  backend=backend)
            # One uninfected plant: run_until must re-converge despite rare
            # crash_reset bursts.
            sim.apply_fault(get_fault_model("crash_reset"), 4, fresh_generator(0))
            engine = make_fault_engine("crash_reset", epidemic, n=128, rate=0.01,
                                       seed=2)
            result = engine.run_until(
                sim, goal_counts_predicate(epidemic),
                max_interactions=200_000, check_interval=64,
            )
            assert result.converged, backend

    def test_run_until_already_converged_short_circuits(self, epidemic):
        sim = make_simulation(epidemic, init=CodeArray(infected_codes(64)), seed=1,
                              backend="counts")
        engine = make_fault_engine("crash_reset", epidemic, n=64, rate=1.0, seed=3)
        result = engine.run_until(
            sim, goal_counts_predicate(epidemic),
            max_interactions=10_000, check_interval=100,
        )
        assert result.converged and result.interactions == 0
        assert engine.fault_bursts == 0

    def test_availability_report_shape(self, epidemic):
        sim = make_simulation(epidemic, init=CodeArray(infected_codes(128)), seed=4,
                              backend="array")
        engine = make_fault_engine("crash_reset", epidemic, n=128, rate=1.0,
                                   burst_size=2, seed=5)
        report = engine.measure_availability(
            sim, goal_counts_predicate(epidemic),
            total_interactions=10_000, checkpoint_every=300,
        )
        assert report.checkpoints == -(-10_000 // 300)
        assert 0 <= report.available_checkpoints <= report.checkpoints
        assert report.fault_bursts == engine.fault_bursts
        assert all(repair >= 0 for repair in report.repair_times)

    def test_availability_cis_overlap_across_backends(self, epidemic):
        """The availability distribution is backend-independent: bootstrap
        CIs of mean availability over independent seeds overlap pairwise."""
        predicate = goal_counts_predicate(epidemic)
        intervals = {}
        for backend in BACKENDS:
            samples = []
            for seed in range(10):
                sim = make_simulation(
                    epidemic, init=CodeArray(infected_codes(256)), seed=100 + seed,
                    backend=backend,
                )
                engine = make_fault_engine(
                    "crash_reset", epidemic, n=256, rate=1.0, burst_size=4,
                    seed=200 + seed,
                )
                report = engine.measure_availability(
                    sim, predicate, total_interactions=20_000,
                    checkpoint_every=256,
                )
                samples.append(report.availability)
            intervals[backend] = bootstrap_ci(
                samples, statistic=lambda values: sum(values) / len(values)
            )
        for first in BACKENDS:
            for second in BACKENDS:
                low = max(intervals[first].low, intervals[second].low)
                high = min(intervals[first].high, intervals[second].high)
                assert low <= high, (first, second, intervals)

"""The counts backend's equivalence gate.

Contracts gated here, mirroring the array backend's suite one level up
the abstraction ladder (counts instead of per-agent codes):

* **codecs** — configurations, code arrays and count vectors round-trip,
  and expansion shares one decoded object per occupied code;
* **application exactness** — the vectorized aggregate delta
  (:func:`apply_pair_counts`) matches a pair-at-a-time loop *exactly* for
  any feasible interaction multiset (hypothesis property: count updates
  are additive deltas, so batching must commute);
* **sampler law** — collision-run lengths stay in ``[1, n//2]`` with a
  monotone survival curve; conservation and protocol invariants
  (epidemic monotonicity, pairwise-elimination leader floors) hold along
  batched runs; the batched sampler and the pair-at-a-time oracle agree
  on verdicts, and degenerate populations (``n = 2``, every interaction
  a collision) agree exactly across all engines;
* **three-way distribution equivalence** — object, array and counts
  backends reach the same convergence verdicts with overlapping
  bootstrap CIs for median stabilization interactions;
* **vectorized adversaries** — the code/count initializer twins share one
  law, and one seed gives every backend the same adversarial start.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.adversary.initializers import (  # noqa: E402
    code_rng,
    planted_codes,
    planted_counts,
    scrambled_codes,
    scrambled_counts,
)
from repro.analysis.stats import bootstrap_ci  # noqa: E402
from repro.baselines.cai_izumi_wada import CaiIzumiWada  # noqa: E402
from repro.baselines.loosely_stabilizing import (  # noqa: E402
    LooselyStabilizingLeaderElection,
)
from repro.baselines.nonss_leader import PairwiseElimination  # noqa: E402
from repro.core.elect_leader import ElectLeader  # noqa: E402
from repro.core.params import BaselineParams, ProtocolParams  # noqa: E402
from repro.core.propagate_reset import ResetEpidemicProtocol  # noqa: E402
from repro.scheduler.rng import make_rng  # noqa: E402
from repro.scheduler.scheduler import CollisionRunSampler  # noqa: E402
from repro.sim.array_backend import (  # noqa: E402
    ArrayBackendError,
    transition_table_for,
)
from repro.sim.backends import make_simulation  # noqa: E402
from repro.sim.counts_backend import (  # noqa: E402
    CountsBackendError,
    CountsSimulation,
    apply_pair_counts,
    apply_pairs_sequential,
    configuration_from_counts,
    counts_aware,
    counts_from_codes,
    counts_from_configuration,
    goal_counts_predicate,
)
from repro.sim.initial_state import CodeArray, ObjectConfig  # noqa: E402
from repro.sim.trials import run_trials  # noqa: E402
from repro.substrates.epidemics import EpidemicProtocol  # noqa: E402

N = 12


def _epidemic_codes(n: int, sources: int) -> list[int]:
    return [1] * sources + [0] * (n - sources)


# ---------------------------------------------------------------------------
# Codecs
# ---------------------------------------------------------------------------


class TestCodecs:
    def test_configuration_round_trip(self):
        protocol = CaiIzumiWada(BaselineParams(n=N))
        config = protocol.adversarial_configuration(make_rng(3))
        counts = counts_from_configuration(protocol, config)
        assert int(counts.sum()) == N
        expanded = configuration_from_counts(protocol, counts)
        assert sorted(protocol.encode_state(s) for s in expanded) == sorted(
            protocol.encode_state(s) for s in config
        )

    def test_codes_round_trip_and_validation(self):
        protocol = PairwiseElimination(6)
        assert counts_from_codes(protocol, [1, 0, 1, 1, 0, 0]).tolist() == [3, 3]
        with pytest.raises(CountsBackendError, match="outside range"):
            counts_from_codes(protocol, [0, 2])

    def test_expansion_shares_objects_per_code(self):
        protocol = PairwiseElimination(6)
        expanded = configuration_from_counts(protocol, np.array([4, 2]))
        followers = [s for s in expanded if not s.leader]
        assert len(followers) == 4
        assert all(s is followers[0] for s in followers)  # read-only sharing


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------


class TestConstruction:
    def test_clean_start_is_n_copies_of_initial(self):
        protocol = PairwiseElimination(10)
        sim = CountsSimulation(protocol, n=10)
        assert sim.counts.tolist() == [0, 10]  # everyone a potential leader
        assert sim.n == 10

    def test_config_codes_counts_agree(self):
        protocol = EpidemicProtocol()
        codes = _epidemic_codes(8, 3)
        by_codes = CountsSimulation(protocol, codes=codes)
        by_config = CountsSimulation(
            protocol, config=[protocol.decode_state(c) for c in codes]
        )
        by_counts = CountsSimulation(protocol, counts=[5, 3])
        assert (
            by_codes.counts.tolist()
            == by_config.counts.tolist()
            == by_counts.counts.tolist()
            == [5, 3]
        )

    def test_input_validation(self):
        protocol = EpidemicProtocol()
        with pytest.raises(ValueError, match="at most one"):
            CountsSimulation(protocol, codes=[0, 1], counts=[1, 1])
        with pytest.raises(ValueError, match="population size n"):
            CountsSimulation(protocol)
        with pytest.raises(ValueError, match="at least two"):
            CountsSimulation(protocol, n=1)
        with pytest.raises(CountsBackendError, match="shape"):
            CountsSimulation(protocol, counts=[1, 1, 1])
        with pytest.raises(CountsBackendError, match="non-negative"):
            CountsSimulation(protocol, counts=[-1, 3])
        with pytest.raises(ValueError, match="batching mode"):
            CountsSimulation(protocol, n=8, batching="magic")

    def test_elect_leader_rejected_loudly(self):
        protocol = ElectLeader(ProtocolParams(n=16, r=2))
        with pytest.raises(CountsBackendError, match="no finite state encoding"):
            CountsSimulation(protocol, n=16)
        # The established "no finite encoding" signal catches it too.
        with pytest.raises(ArrayBackendError):
            CountsSimulation(protocol, n=16)


# ---------------------------------------------------------------------------
# Batched delta application == pair-at-a-time (the exactness property)
# ---------------------------------------------------------------------------


def _property_protocols():
    loose = LooselyStabilizingLeaderElection(BaselineParams(n=N), tau=1.0)
    reset = ResetEpidemicProtocol(ProtocolParams(n=N, r=2))
    return [
        ("epidemic", EpidemicProtocol()),
        ("loose", loose),
        ("reset", reset),
    ]


PROPERTY_PROTOCOLS = _property_protocols()


class TestApplyPairCounts:
    @pytest.mark.parametrize(
        "protocol", [p for _, p in PROPERTY_PROTOCOLS],
        ids=[name for name, _ in PROPERTY_PROTOCOLS],
    )
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_batched_matches_pair_at_a_time_exactly(self, protocol, data):
        table = transition_table_for(protocol)
        size = table.num_states
        pair_count = data.draw(st.integers(min_value=0, max_value=24), label="pairs")
        pairs = data.draw(
            st.lists(
                st.tuples(
                    st.integers(0, size - 1), st.integers(0, size - 1)
                ),
                min_size=pair_count,
                max_size=pair_count,
            ),
            label="state pairs",
        )
        # Feasible by construction: give every state enough agents that
        # any drawn multiset could have come from distinct agents.
        counts = np.full(size, 2 * max(1, pair_count), dtype=np.int64)
        initiators = np.array([a for a, _ in pairs], dtype=np.int64)
        responders = np.array([b for _, b in pairs], dtype=np.int64)
        batched = counts.copy()
        sequential = counts.copy()
        apply_pair_counts(batched, initiators, responders, table)
        apply_pairs_sequential(sequential, initiators, responders, table)
        assert batched.tolist() == sequential.tolist()
        assert int(batched.sum()) == int(counts.sum())  # conservation

    def test_length_mismatch_rejected(self):
        protocol = EpidemicProtocol()
        table = transition_table_for(protocol)
        counts = np.array([3, 3], dtype=np.int64)
        with pytest.raises(ValueError, match="equal length"):
            apply_pair_counts(
                counts, np.array([0, 1]), np.array([0]), table
            )


# ---------------------------------------------------------------------------
# Collision-run sampler
# ---------------------------------------------------------------------------


class TestCollisionRunSampler:
    def test_survival_curve_monotone_from_one(self):
        sampler = CollisionRunSampler(64, np.random.Generator(np.random.PCG64(0)))
        survival = sampler.survival
        assert survival[0] == pytest.approx(1.0)  # one interaction never collides
        assert all(a >= b for a, b in zip(survival, survival[1:]))

    @pytest.mark.parametrize("n", [2, 3, 16, 10_000])
    def test_lengths_in_range(self, n):
        sampler = CollisionRunSampler(n, np.random.Generator(np.random.PCG64(7)))
        lengths = [sampler.next_run_length() for _ in range(200)]
        assert all(1 <= length <= n // 2 for length in lengths)
        if n == 2:
            assert set(lengths) == {1}  # both agents used after one pair

    def test_birthday_scale(self):
        # E[run] is Θ(√n): at n=10⁴ the mean sits near √(πn/8) ≈ 63.
        sampler = CollisionRunSampler(10_000, np.random.Generator(np.random.PCG64(1)))
        mean = sum(sampler.next_run_length() for _ in range(500)) / 500
        assert 30 < mean < 130

    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError, match="at least two"):
            CollisionRunSampler(1, np.random.Generator(np.random.PCG64(0)))


# ---------------------------------------------------------------------------
# Engine behaviour
# ---------------------------------------------------------------------------


class TestCountsSimulation:
    @pytest.mark.parametrize("batching", ["run", "pair"])
    def test_conservation_and_accounting(self, batching):
        protocol = LooselyStabilizingLeaderElection(BaselineParams(n=32), tau=1.0)
        sim = CountsSimulation(protocol, n=32, seed=9, batching=batching)
        for burst in (1, 7, 250, 1000):
            sim.run_batch(burst)
            assert int(sim.counts.sum()) == 32
            assert int(sim.counts.min()) >= 0
        assert sim.metrics.interactions == 1258
        assert sim.metrics.parallel_time == pytest.approx(1258 / 32)

    def test_deterministic_given_seed(self):
        protocol = EpidemicProtocol()
        runs = []
        for _ in range(2):
            sim = CountsSimulation(protocol, codes=_epidemic_codes(64, 1), seed=11)
            sim.run_batch(120)  # mid-epidemic: infection still spreading
            runs.append(sim.counts.tolist())
        assert runs[0] == runs[1]
        other = CountsSimulation(protocol, codes=_epidemic_codes(64, 1), seed=12)
        other.run_batch(120)
        # Not a hard law, but astronomically unlikely to coincide exactly
        # mid-epidemic; catches an ignored seed.
        assert other.counts.tolist() != runs[0]

    def test_epidemic_monotone_under_batching(self):
        protocol = EpidemicProtocol()
        sim = CountsSimulation(protocol, codes=_epidemic_codes(100, 1), seed=3)
        marked = 1
        while int(sim.counts[1]) < 100:
            sim.run_batch(50)
            now = int(sim.counts[1])
            assert now >= marked  # infection never recedes
            marked = now

    def test_pairwise_leader_floor(self):
        protocol = PairwiseElimination(64)
        sim = CountsSimulation(protocol, n=64, seed=5)
        for _ in range(40):
            sim.run_batch(100)
            assert int(sim.counts[1]) >= 1  # elimination keeps one leader

    def test_run_until_checks_on_counts(self):
        protocol = EpidemicProtocol()
        sim = CountsSimulation(protocol, codes=_epidemic_codes(32, 1), seed=2)
        seen = []

        def on_counts(counts):
            seen.append(int(counts[1]))
            return int(counts[0]) == 0

        predicate = counts_aware(protocol.is_goal_configuration, on_counts)
        result = sim.run_until(predicate, max_interactions=100_000, check_interval=64)
        assert result.converged
        assert seen and seen[-1] == 32
        assert result.interactions % 64 == 0  # check-interval discipline

    def test_run_until_plain_predicate_falls_back(self):
        protocol = EpidemicProtocol()
        sim = CountsSimulation(protocol, codes=_epidemic_codes(16, 1), seed=2)
        result = sim.run_until(
            protocol.is_goal_configuration, max_interactions=50_000, check_interval=32
        )
        assert result.converged
        assert protocol.is_goal_configuration(result.config)

    def test_converged_start_returns_before_stepping(self):
        protocol = EpidemicProtocol()
        sim = CountsSimulation(protocol, counts=[0, 8], seed=0)
        result = sim.run_until(
            goal_counts_predicate(protocol), max_interactions=1_000, check_interval=10
        )
        assert result.converged and result.interactions == 0

    def test_budget_exhaustion_reports_failure(self):
        protocol = PairwiseElimination(32)
        sim = CountsSimulation(protocol, n=32, seed=0)
        result = sim.run_until(
            counts_aware(lambda config: False, lambda counts: False),
            max_interactions=500,
            check_interval=100,
        )
        assert not result.converged and result.interactions == 500

    def test_goal_counts_default_expands(self):
        # The base-class fallback evaluates the config predicate on the
        # shared-object expansion — correct for any symmetric predicate.
        protocol = EpidemicProtocol()
        assert protocol.goal_counts(np.array([0, 5]))
        assert not protocol.goal_counts(np.array([1, 4]))


class TestSilenceDetection:
    """Counts-level silence: provably-no-op batches are skipped in O(S²)."""

    def test_saturated_epidemic_is_silent(self):
        protocol = EpidemicProtocol()
        sim = CountsSimulation(protocol, counts=[0, 64], seed=0)
        assert sim.configuration_is_silent()
        sim2 = CountsSimulation(protocol, counts=[1, 63], seed=0)
        assert not sim2.configuration_is_silent()

    def test_single_occupancy_diagonal_is_exempt(self):
        # One leader + followers: the only non-inert pair (L, L) needs two
        # leaders, so the configuration is silent — exactly the converged
        # state of pairwise elimination.
        protocol = PairwiseElimination(16)
        assert CountsSimulation(protocol, counts=[15, 1], seed=0).configuration_is_silent()
        assert not CountsSimulation(protocol, counts=[14, 2], seed=0).configuration_is_silent()

    def test_ciw_permutation_is_silent_below_the_cap(self):
        protocol = CaiIzumiWada(BaselineParams(n=32))
        permutation = np.ones(32, dtype=np.int64)
        assert CountsSimulation(protocol, counts=permutation, seed=0).configuration_is_silent()
        duplicated = permutation.copy()
        duplicated[0], duplicated[1] = 2, 0
        assert not CountsSimulation(
            protocol, counts=duplicated, seed=0
        ).configuration_is_silent()

    def test_cap_returns_the_safe_answer(self):
        from repro.sim.counts_backend import MAX_SILENCE_STATES

        n = MAX_SILENCE_STATES + 8
        protocol = CaiIzumiWada(BaselineParams(n=n))
        sim = CountsSimulation(protocol, counts=np.ones(n, dtype=np.int64), seed=0)
        # Genuinely silent, but above the occupied-state cap the check
        # declines (False is always safe — the sampler just runs).
        assert not sim.configuration_is_silent()

    def test_silent_batches_skip_but_count(self):
        protocol = EpidemicProtocol()
        sim = CountsSimulation(protocol, counts=[0, 128], seed=7)
        state_before = sim._generator.bit_generator.state
        sim.run_batch(100_000)
        assert sim.metrics.interactions == 100_000
        assert sim.counts.tolist() == [0, 128]
        # The skip consumes no randomness — the batch was proven a no-op.
        assert sim._generator.bit_generator.state == state_before

    def test_pair_oracle_never_skips(self):
        protocol = EpidemicProtocol()
        sim = CountsSimulation(protocol, counts=[0, 16], seed=7, batching="pair")
        state_before = sim._generator.bit_generator.state
        sim.run_batch(10)
        assert sim._generator.bit_generator.state != state_before
        assert sim.counts.tolist() == [0, 16]


class TestModesAgree:
    def test_n2_forced_collisions_exact(self):
        # With two agents every run is one interaction and every second
        # interaction is a collision: both modes and both other engines
        # must land on the absorbing (L, F) configuration immediately.
        protocol = PairwiseElimination(2)
        for batching in ("run", "pair"):
            sim = CountsSimulation(protocol, n=2, seed=4, batching=batching)
            sim.run_batch(25)
            assert sim.counts.tolist() == [1, 1]
        for backend in ("object", "array"):
            sim = make_simulation(protocol, n=2, seed=4, backend=backend)
            sim.run_batch(25)
            assert counts_from_configuration(protocol, sim.config).tolist() == [1, 1]

    def test_verdicts_match_across_modes(self):
        protocol = EpidemicProtocol()
        for seed in range(4):
            outcomes = []
            for batching in ("run", "pair"):
                sim = CountsSimulation(
                    protocol, codes=_epidemic_codes(40, 2), seed=seed, batching=batching
                )
                result = sim.run_until(
                    goal_counts_predicate(protocol),
                    max_interactions=20_000,
                    check_interval=40,
                )
                outcomes.append(result.converged)
            assert outcomes[0] == outcomes[1] is True


# ---------------------------------------------------------------------------
# Three-way cross-backend equivalence
# ---------------------------------------------------------------------------


def _equivalence_cases():
    ciw = CaiIzumiWada(BaselineParams(n=10))
    loose = LooselyStabilizingLeaderElection(BaselineParams(n=20), tau=2.0)
    pairwise = PairwiseElimination(20)
    reset = ResetEpidemicProtocol(ProtocolParams(n=12, r=2))
    epidemic = EpidemicProtocol()
    return [
        (
            "cai_izumi_wada", ciw, 10,
            counts_aware(ciw.is_silent_configuration, ciw.goal_counts),
            lambda rng: ciw.adversarial_configuration(rng), 1_000_000,
        ),
        (
            "loosely_stabilizing", loose, 20, goal_counts_predicate(loose),
            lambda rng: loose.adversarial_configuration(rng), 400_000,
        ),
        (
            "pairwise_elimination", pairwise, 20, goal_counts_predicate(pairwise),
            lambda rng: None, 400_000,
        ),
        (
            "reset_epidemic", reset, 12, goal_counts_predicate(reset),
            lambda rng: reset.triggered_configuration(12, 2), 400_000,
        ),
        (
            "epidemic", epidemic, 16, goal_counts_predicate(epidemic),
            lambda rng: EpidemicProtocol.seeded_configuration(16, 2), 200_000,
        ),
    ]


class TestThreeWayEquivalence:
    @pytest.mark.parametrize(
        "name,protocol,n,predicate,config_of,budget",
        _equivalence_cases(),
        ids=[case[0] for case in _equivalence_cases()],
    )
    def test_same_verdicts_overlapping_cis(
        self, name, protocol, n, predicate, config_of, budget
    ):
        trials = 10
        summaries = {}
        for backend in ("object", "array", "counts"):
            summaries[backend] = run_trials(
                protocol,
                predicate,
                n=n,
                trials=trials,
                max_interactions=budget,
                seed=77,
                check_interval=32,
                init=(
                    (lambda index: ObjectConfig(config_of(make_rng(5000 + index))))
                    if config_of(make_rng(0)) is not None
                    else None
                ),
                label=f"{name}/{backend}",
                backend=backend,
            )
        assert all(s.success_rate == 1.0 for s in summaries.values()), summaries
        cis = {
            backend: bootstrap_ci(summary.interactions, rng=make_rng(1))
            for backend, summary in summaries.items()
        }
        for backend in ("array", "counts"):
            assert cis["object"].low <= cis[backend].high, (name, cis)
            assert cis[backend].low <= cis["object"].high, (name, cis)


# ---------------------------------------------------------------------------
# Vectorized adversarial initializers
# ---------------------------------------------------------------------------


class TestVectorizedAdversaries:
    def test_scramble_codes_shape_range_determinism(self):
        protocol = LooselyStabilizingLeaderElection(BaselineParams(n=50), tau=1.0)
        size = protocol.num_states()
        first = scrambled_codes(protocol, code_rng(3), 50)
        again = scrambled_codes(protocol, code_rng(3), 50)
        assert first.shape == (50,)
        assert first.min() >= 0 and first.max() < size
        assert first.tolist() == again.tolist()

    def test_scramble_counts_matches_codes_law(self):
        protocol = PairwiseElimination(400)
        total_codes = np.zeros(2, dtype=np.int64)
        total_counts = np.zeros(2, dtype=np.int64)
        for seed in range(30):
            total_codes += np.bincount(
                scrambled_codes(protocol, code_rng(seed), 400), minlength=2
            )
            counts = scrambled_counts(protocol, code_rng(1_000 + seed), 400)
            assert int(counts.sum()) == 400
            total_counts += counts
        # Same mean occupancy (n/S) for both emitters, within ~5σ.
        for total in (total_codes, total_counts):
            assert abs(int(total[0]) - 6000) < 400

    def test_planted_twins(self):
        protocol = LooselyStabilizingLeaderElection(BaselineParams(n=64), tau=1.0)
        base = protocol.encode_state(protocol.initial_state())
        codes = planted_codes(protocol, code_rng(5), 64)
        assert codes.shape == (64,)
        assert int((codes != base).sum()) <= 8  # ⌈64/8⌉ corruption budget
        counts = planted_counts(protocol, code_rng(5), 64)
        assert int(counts.sum()) == 64
        assert int(counts[base]) >= 64 - 8
        with pytest.raises(ValueError, match="planted"):
            planted_codes(protocol, code_rng(0), 8, planted=9)

    def test_one_seed_same_start_on_every_backend(self):
        protocol = CaiIzumiWada(BaselineParams(n=16))
        codes = scrambled_codes(protocol, code_rng(21), 16)
        object_sim = make_simulation(protocol, init=CodeArray(codes), backend="object")
        array_sim = make_simulation(protocol, init=CodeArray(codes), backend="array")
        counts_sim = make_simulation(protocol, init=CodeArray(codes), backend="counts")
        reference = codes.tolist()
        assert [protocol.encode_state(s) for s in object_sim.config] == reference
        assert array_sim.codes.tolist() == reference
        assert counts_sim.counts.tolist() == np.bincount(codes, minlength=16).tolist()

"""Lint fixture: an impure transition function (L004)."""


def transition(initiator, responder, rng) -> None:
    print(initiator, responder, rng)

"""Lint fixture: clock reads outside repro.obs, tracing inside δ (L007)."""

import time
from time import perf_counter

from repro.obs import get_tracer


def measure() -> float:
    start = time.perf_counter()
    time.time()
    return perf_counter() - start


def transition(state_a, state_b):
    with get_tracer().span("delta"):
        return state_b, state_a

"""Lint fixture: constructs randomness outside repro.scheduler.rng (L001)."""

import random


def draw() -> float:
    return random.random()

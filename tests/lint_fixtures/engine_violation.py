"""Lint fixture: an engine-shaped class missing the canonical surface (L002)."""


class HalfEngine:
    """Defines run_batch and predicate_holds but not the rest."""

    def run_batch(self, count: int) -> None:
        self.steps = count

    def predicate_holds(self, predicate) -> bool:
        return bool(predicate([]))

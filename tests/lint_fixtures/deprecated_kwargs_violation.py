"""Lint fixture: the removed legacy keyword shim (L005)."""

from repro.sim.backends import make_simulation


def build(protocol):
    return make_simulation(protocol, codes=[0, 1, 0, 1])

"""Lint fixture: string comparison against a backend name (L003)."""


def is_aggregate(backend: str) -> bool:
    return backend == "counts"

"""Lint fixture: int32 accumulator in a counts hot path (L006)."""

import numpy as np


def allocate(size: int) -> np.ndarray:
    return np.zeros(size, dtype=np.int32)

"""Tests for the baseline protocols (Section 2 comparators)."""

from __future__ import annotations

import statistics

from repro.baselines.cai_izumi_wada import CaiIzumiWada, CIWState
from repro.baselines.nonss_leader import PairwiseElimination
from repro.baselines.silent_ssr import BurmanStyleSSR
from repro.core.params import BaselineParams
from repro.scheduler.rng import derive_seed, make_rng
from repro.sim.simulation import Simulation


class TestCaiIzumiWada:
    def test_bump_rule(self, baseline_params, rng):
        protocol = CaiIzumiWada(baseline_params)
        u, v = CIWState(3), CIWState(3)
        protocol.transition(u, v, rng)
        assert (u.rank, v.rank) == (3, 4)

    def test_bump_wraps(self, baseline_params, rng):
        protocol = CaiIzumiWada(baseline_params)
        u, v = CIWState(16), CIWState(16)
        protocol.transition(u, v, rng)
        assert v.rank == 1

    def test_distinct_ranks_silent(self, baseline_params, rng):
        protocol = CaiIzumiWada(baseline_params)
        u, v = CIWState(3), CIWState(7)
        protocol.transition(u, v, rng)
        assert (u.rank, v.rank) == (3, 7)

    def test_stabilizes_from_clean_start(self, baseline_params):
        protocol = CaiIzumiWada(baseline_params)
        sim = Simulation(protocol, n=16, seed=1)
        result = sim.run_until(
            protocol.is_silent_configuration, max_interactions=5_000_000, check_interval=100
        )
        assert result.converged
        assert protocol.ranking_correct(result.config)
        assert protocol.leader_count(result.config) == 1

    def test_stabilizes_from_adversarial_start(self, baseline_params):
        protocol = CaiIzumiWada(baseline_params)
        for trial in range(5):
            config = protocol.adversarial_configuration(make_rng(derive_seed(1, trial)))
            sim = Simulation(protocol, config=config, seed=derive_seed(2, trial))
            result = sim.run_until(
                protocol.is_silent_configuration,
                max_interactions=5_000_000,
                check_interval=100,
            )
            assert result.converged

    def test_silence_is_absorbing(self, baseline_params):
        protocol = CaiIzumiWada(baseline_params)
        config = [CIWState(rank) for rank in range(1, 17)]
        sim = Simulation(protocol, config=config, seed=3)
        sim.run(5_000)
        assert sorted(s.rank for s in sim.config) == list(range(1, 17))


class TestBurmanStyleSSR:
    def test_clean_start_ranks_correctly(self):
        params = BaselineParams(n=24)
        protocol = BurmanStyleSSR(params)
        sim = Simulation(protocol, n=24, seed=4)
        result = sim.run_until(
            protocol.ranked_and_correct, max_interactions=2_000_000, check_interval=100
        )
        assert result.converged
        assert protocol.leader_count(result.config) == 1

    def test_time_is_n_log_n_shape(self):
        """Clean-start stabilization should scale near n log n."""
        import math

        medians = []
        for n in (32, 128):
            params = BaselineParams(n=n)
            protocol = BurmanStyleSSR(params)
            times = []
            for trial in range(5):
                sim = Simulation(protocol, n=n, seed=derive_seed(40, trial))
                result = sim.run_until(
                    protocol.ranked_and_correct,
                    max_interactions=5_000_000,
                    check_interval=100,
                )
                assert result.converged
                times.append(result.interactions)
            medians.append(statistics.median(times))
        ratio = medians[1] / medians[0]
        predicted = (128 * math.log(128)) / (32 * math.log(32))
        assert ratio < 3 * predicted

    def test_recovers_from_adversarial_start(self):
        params = BaselineParams(n=16)
        protocol = BurmanStyleSSR(params)
        for trial in range(5):
            config = protocol.adversarial_configuration(make_rng(derive_seed(5, trial)))
            sim = Simulation(protocol, config=config, seed=derive_seed(6, trial))
            result = sim.run_until(
                protocol.ranked_and_correct,
                max_interactions=10_000_000,
                check_interval=500,
            )
            assert result.converged, f"trial {trial}"

    def test_duplicate_names_trigger_reset(self, rng):
        params = BaselineParams(n=8)
        protocol = BurmanStyleSSR(params)
        u = protocol.initial_state()
        v = protocol.initial_state()
        u.name = v.name = 42
        u.seen = v.seen = {42}
        protocol.transition(u, v, rng)
        assert u.resetting

    def test_oversized_seen_set_triggers_reset(self, rng):
        params = BaselineParams(n=4)
        protocol = BurmanStyleSSR(params)
        u = protocol.initial_state()
        v = protocol.initial_state()
        u.name, v.name = 1, 2
        u.seen = {1, 10, 11, 12}
        v.seen = {2, 20, 21, 22}
        protocol.transition(u, v, rng)
        assert u.resetting

    def test_ranks_assigned_lexicographically(self, rng):
        params = BaselineParams(n=2)
        protocol = BurmanStyleSSR(params)
        u = protocol.initial_state()
        v = protocol.initial_state()
        u.name, v.name = 5, 3
        u.seen, v.seen = {5}, {3}
        protocol.transition(u, v, rng)
        assert v.rank == 1 and u.rank == 2


class TestPairwiseElimination:
    def test_elimination_rule(self, rng):
        protocol = PairwiseElimination(4)
        u = protocol.initial_state()
        v = protocol.initial_state()
        protocol.transition(u, v, rng)
        assert u.leader and not v.leader

    def test_no_resurrection(self, rng):
        protocol = PairwiseElimination(4)
        u = protocol.initial_state()
        v = protocol.initial_state()
        v.leader = False
        protocol.transition(u, v, rng)
        protocol.transition(v, u, rng)
        assert u.leader and not v.leader

    def test_not_self_stabilizing_from_zero_leaders(self):
        """The documented failure mode: no leaders → stuck forever."""
        protocol = PairwiseElimination(8)
        config = [protocol.initial_state() for _ in range(8)]
        for state in config:
            state.leader = False
        sim = Simulation(protocol, config=config, seed=7)
        result = sim.run_until(protocol.is_goal_configuration, max_interactions=20_000)
        assert not result.converged

    def test_converges_from_all_leaders(self):
        protocol = PairwiseElimination(32)
        sim = Simulation(protocol, n=32, seed=8)
        result = sim.run_until(protocol.is_goal_configuration, max_interactions=500_000)
        assert result.converged

"""Integration test of the space-time trade-off (Theorem 1.1's shape).

Small-scale version of experiments E2/E3: at fixed ``n`` the stabilization
time should *decrease* as ``r`` grows, and at fixed ``r`` it should grow
roughly like ``(n²/r)·log n``.
"""

from __future__ import annotations

import statistics

from repro.analysis.statespace import elect_leader_bits
from repro.analysis.theory import predicted_stabilization_interactions
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.scheduler.rng import derive_seed
from repro.sim.simulation import Simulation


def median_stabilization_interactions(n: int, r: int, trials: int = 3, seed: int = 0) -> float:
    protocol = ElectLeader(ProtocolParams(n=n, r=r))
    times = []
    for trial in range(trials):
        sim = Simulation(protocol, n=n, seed=derive_seed(seed, trial))
        result = sim.run_until(
            protocol.is_safe_configuration, max_interactions=10_000_000, check_interval=500
        )
        assert result.converged, (n, r, trial)
        times.append(result.interactions)
    return statistics.median(times)


class TestTradeoff:
    def test_time_decreases_with_r(self):
        """E3 in miniature: larger r → fewer interactions until the
        Θ(n log n) floor (the time-optimal regime) is reached."""
        n = 64
        slow = median_stabilization_interactions(n, 1, seed=10)
        mid = median_stabilization_interactions(n, 4, seed=11)
        fast = median_stabilization_interactions(n, 16, seed=12)
        assert slow > mid
        # Beyond the floor, larger r cannot be much slower.
        assert fast <= mid * 1.5
        # The full r-spread buys a large speedup.
        assert slow / fast > 3

    def test_space_increases_with_r(self):
        """The other side of the trade-off: state bits grow with r."""
        n = 32
        assert elect_leader_bits(n, 1) < elect_leader_bits(n, 4) < elect_leader_bits(n, 8)

    def test_time_scales_with_n(self):
        """E2 in miniature: measured growth from n=16 to n=48 tracks the
        concrete countdown-based prediction within loose bounds."""
        r = 4
        small = median_stabilization_interactions(16, r, seed=20)
        large = median_stabilization_interactions(48, r, seed=21)
        predicted = predicted_stabilization_interactions(
            ProtocolParams(n=48, r=r)
        ) / predicted_stabilization_interactions(ProtocolParams(n=16, r=r))
        measured = large / small
        assert measured < 2.5 * predicted
        assert measured > predicted / 2.5

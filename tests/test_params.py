"""Unit tests for :mod:`repro.core.params`."""

from __future__ import annotations

import math

import pytest

from repro.core.params import BaselineParams, ProtocolParams


class TestValidation:
    def test_minimum_population(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=1)

    def test_r_lower_bound(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=10, r=0)

    def test_r_upper_bound(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=10, r=6)

    def test_r_at_half_n_allowed(self):
        params = ProtocolParams(n=10, r=5)
        assert params.r == 5

    def test_r_one_always_allowed(self):
        assert ProtocolParams(n=2, r=1).r == 1

    def test_generations_minimum(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=10, r=2, generations=2)

    def test_label_slack_required(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=10, r=2, c_labels=1.0)


class TestDerivedQuantities:
    def test_log_n_clamped(self):
        assert ProtocolParams(n=2).log_n == 1.0

    def test_log_n_natural(self):
        params = ProtocolParams(n=100, r=5)
        assert params.log_n == pytest.approx(math.log(100))

    def test_countdown_scales_inversely_with_r(self):
        """In the formula-dominated range, C_max halves as r doubles."""
        slow = ProtocolParams(n=64, r=1)
        fast = ProtocolParams(n=64, r=2)
        assert slow.countdown_max > fast.countdown_max
        assert slow.countdown_max == pytest.approx(2 * fast.countdown_max, rel=0.05)

    def test_countdown_floor_at_large_r(self):
        """At r = Θ(n) the Θ(log n) floor takes over (see docstring)."""
        params = ProtocolParams(n=64, r=32)
        import math

        floor = params.c_countdown_floor * math.log(64)
        assert params.countdown_max == pytest.approx(floor, abs=2)
        # Floor is within a constant factor of the bare formula.
        formula = params.c_countdown * 2 * math.log(64)
        assert params.countdown_max < 10 * formula

    def test_probation_scales_inversely_with_r(self):
        slow = ProtocolParams(n=64, r=1)
        fast = ProtocolParams(n=64, r=2)
        assert slow.probation_max == pytest.approx(2 * fast.probation_max, rel=0.05)

    def test_probation_floor_at_large_r(self):
        import math

        params = ProtocolParams(n=64, r=32)
        floor = params.c_prob_floor * math.log(64)
        assert params.probation_max == pytest.approx(floor, abs=2)

    def test_labels_per_deputy_exceeds_share(self):
        """c > 1 ⇒ total labels r·⌈cn/r⌉ strictly exceed n (Appendix D)."""
        for n, r in [(10, 1), (16, 4), (64, 8), (63, 5)]:
            params = ProtocolParams(n=n, r=r)
            assert params.labels_per_deputy * r > n

    def test_identifier_space_is_n_cubed(self):
        params = ProtocolParams(n=7, r=2)
        assert params.identifier_space == 343

    def test_messages_per_rank_quadratic_in_group(self):
        params = ProtocolParams(n=64, r=8)
        assert params.messages_per_rank(8) == 2 * 64
        assert params.messages_per_rank(4) == 2 * 16

    def test_messages_per_rank_clamped_for_tiny_groups(self):
        params = ProtocolParams(n=64, r=1)
        assert params.messages_per_rank(1) == params.messages_per_rank(2)
        assert params.messages_per_rank(1) >= 2

    def test_signature_space_quintic(self):
        params = ProtocolParams(n=64, r=8)
        assert params.signature_space(8) == 8**5

    def test_signature_space_floor(self):
        params = ProtocolParams(n=64, r=1)
        assert params.signature_space(1) >= 16

    def test_signature_period_logarithmic(self):
        params = ProtocolParams(n=64, r=8)
        assert params.signature_period(8) == math.ceil(params.c_sig * math.log(8))

    def test_timers_positive(self):
        params = ProtocolParams(n=2, r=1)
        assert params.reset_count_max >= 2
        assert params.delay_timer_max >= 2
        assert params.countdown_max >= 4
        assert params.probation_max >= 4
        assert params.sleep_timer_max >= 2
        assert params.le_count_max >= 2


class TestWithUpdates:
    def test_with_updates_replaces_field(self):
        params = ProtocolParams(n=16, r=2)
        bigger = params.with_updates(c_prob=12.0)
        assert bigger.c_prob == 12.0
        assert bigger.n == 16
        assert params.c_prob == 6.0  # original untouched

    def test_with_updates_validates(self):
        params = ProtocolParams(n=16, r=2)
        with pytest.raises(ValueError):
            params.with_updates(r=100)

    def test_frozen(self):
        params = ProtocolParams(n=16, r=2)
        with pytest.raises(AttributeError):
            params.n = 32  # type: ignore[misc]


class TestBaselineParams:
    def test_minimum_population(self):
        with pytest.raises(ValueError):
            BaselineParams(n=1)

    def test_name_space(self):
        assert BaselineParams(n=5).name_space == 125

    def test_timer_positive(self):
        assert BaselineParams(n=2).timer_max >= 2

#!/usr/bin/env python3
"""Render the paper-shaped "figures" as ASCII charts in the terminal.

The reproduction's figures are the growth-law series behind Theorem 1.1;
this script runs quick laptop-sized sweeps and renders them with the
plot-free charting in :mod:`repro.analysis.reporting`:

1. stabilization interactions vs n (log-log: the quadratic-ish law, E2);
2. stabilization interactions vs r (log-log: the 1/r trade-off with its
   time-optimal floor, E3);
3. the analytic bit-complexity frontier (E1): ours vs the quoted
   Sublinear-Time-SSR at n = 1024.

Run:  python examples/render_figures.py
"""

from __future__ import annotations

from repro import ElectLeader, ProtocolParams, run_trials
from repro.analysis.reporting import ascii_chart
from repro.analysis.statespace import tradeoff_frontier


def measure(n: int, r: int, trials: int = 4, seed: int = 0) -> float:
    protocol = ElectLeader(ProtocolParams(n=n, r=r))
    summary = run_trials(
        protocol,
        protocol.is_safe_configuration,
        n=n,
        trials=trials,
        max_interactions=30_000_000,
        seed=seed,
        check_interval=1_000,
        label=f"n={n},r={r}",
    )
    return summary.median_interactions


def main() -> None:
    print("Figure 1: stabilization vs n at r=4 (E2)\n")
    vs_n = [(n, measure(n, 4, seed=100 + n)) for n in (16, 24, 32, 48, 64)]
    print(
        ascii_chart(
            {"measured": vs_n},
            log_x=True,
            log_y=True,
            width=56,
            height=14,
            title="interactions to stabilize vs n  (slope ≈ 2 on log-log)",
            x_label="n",
            y_label="interactions",
        )
    )

    print("\nFigure 2: stabilization vs r at n=48 (E3)\n")
    vs_r = [(r, measure(48, r, seed=200 + r)) for r in (1, 2, 4, 8, 16, 24)]
    print(
        ascii_chart(
            {"measured": vs_r},
            log_x=True,
            log_y=True,
            width=56,
            height=14,
            title="interactions vs r  (≈ -1 slope, then the Θ(n log n) floor)",
            x_label="r",
            y_label="interactions",
        )
    )

    print("\nFigure 3: the space-time frontier at n=1024 (E1, analytic)\n")
    rows = tradeoff_frontier(1024)
    ours = [(float(row["ours_parallel_time"]), float(row["ours_bits"])) for row in rows]
    theirs = [
        (float(row["their_parallel_time"]), float(row["their_bits_quoted"]))
        for row in rows
    ]
    print(
        ascii_chart(
            {"ours (ElectLeader_r)": ours, "quoted Sublinear-Time-SSR": theirs},
            log_x=True,
            log_y=True,
            width=56,
            height=16,
            title="state bits vs parallel time — lower-left is better",
            x_label="parallel time",
            y_label="bits",
        )
    )
    print(
        "\nAt the fast (left) end, ours needs ~14 orders of magnitude fewer"
        "\nbits — the paper's headline improvement (Theorem 1.1)."
    )


if __name__ == "__main__":
    main()

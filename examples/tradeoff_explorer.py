#!/usr/bin/env python3
"""Explore the space-time trade-off of Theorem 1.1 interactively.

Sweeps the trade-off parameter r at a fixed population size and prints,
for each r: the measured stabilization time (median over trials), the
paper-predicted (n²/r)·ln n shape, and the analytic state-space cost in
bits.  This is a laptop-sized rendition of experiments E3 + E1.

Run:  python examples/tradeoff_explorer.py [n]
"""

from __future__ import annotations

import sys

from repro import ElectLeader, ProtocolParams, format_table, run_trials
from repro.analysis.statespace import elect_leader_bits
from repro.analysis.theory import elect_leader_interactions


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 36
    rs = sorted({1, 2, 3, 4, 6, 9, n // 4, n // 2} - {0})
    trials = 5

    print(f"Space-time trade-off at n={n} ({trials} trials per r)\n")
    rows = []
    for r in rs:
        if not 1 <= r <= n // 2:
            continue
        protocol = ElectLeader(ProtocolParams(n=n, r=r))
        summary = run_trials(
            protocol,
            protocol.is_safe_configuration,
            n=n,
            trials=trials,
            max_interactions=30_000_000,
            seed=500 + r,
            check_interval=1_000,
            label=f"r={r}",
        )
        rows.append(
            {
                "r": r,
                "median_interactions": summary.median_interactions,
                "parallel_time": round(summary.median_time, 1),
                "predicted_shape": round(elect_leader_interactions(n, r)),
                "state_bits": round(elect_leader_bits(n, r), 1),
                "success": summary.success_rate,
            }
        )

    print(format_table(rows, title=f"ElectLeader_r trade-off, n={n}"))
    print()
    print("Reading: time falls ~1/r (Theorem 1.1's O((n²/r) log n)) while")
    print("the state space grows ~r²·log n bits — space buys speed.")


if __name__ == "__main__":
    main()

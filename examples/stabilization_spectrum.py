#!/usr/bin/env python3
"""The stabilization spectrum: non-SS vs loose vs self-stabilizing.

Section 2 of the paper lays out a landscape of guarantees.  This example
makes it concrete by subjecting three protocols to the same ordeal —
"all leader marks wiped" (for ranking protocols: all ranks set equal) —
and watching who recovers:

* pairwise elimination (2 states): stuck forever, by design;
* the loosely-stabilizing timeout protocol (O(τ log n) states): recovers
  fast, but its leader is only leased, not permanent;
* ElectLeader_r (2^{O(r² log n)} states): recovers AND the leader is
  permanent once the safe set is reached (Lemma 6.1).

Run:  python examples/stabilization_spectrum.py
"""

from __future__ import annotations

from repro import ElectLeader, ProtocolParams, Simulation
from repro.adversary.initializers import all_duplicate_rank
from repro.baselines.loosely_stabilizing import LooselyStabilizingLeaderElection
from repro.baselines.nonss_leader import PairwiseElimination
from repro.core.params import BaselineParams
from repro.scheduler.rng import make_rng

N = 24
BUDGET = 5_000_000


def main() -> None:
    print(f"Ordeal: wipe all leader information in a population of n={N}.\n")

    # --- Pairwise elimination: zero leaders is absorbing. -----------------
    pe = PairwiseElimination(N)
    config = [pe.initial_state() for _ in range(N)]
    for state in config:
        state.leader = False
    result = Simulation(pe, config=config, seed=1).run_until(
        pe.is_goal_configuration, max_interactions=200_000
    )
    print(
        f"pairwise-elimination (2 states):        "
        f"{'recovered' if result.converged else 'STUCK FOREVER'} "
        f"(not self-stabilizing — zero leaders is absorbing)"
    )

    # --- Loosely-stabilizing: recovers, but the leader is leased. ---------
    loose = LooselyStabilizingLeaderElection(BaselineParams(n=N), tau=6.0)
    config = loose.zero_leader_configuration()
    result = Simulation(loose, config=config, seed=2).run_until(
        loose.is_goal_configuration, max_interactions=BUDGET, check_interval=20
    )
    assert result.converged
    # Let the heartbeat saturate before timing the lease.
    warmup = Simulation(loose, config=result.config, seed=7)
    warmup.run(5_000)
    holding = loose.holding_time(warmup.config, make_rng(3), budget=BUDGET)
    held = "never broke within the budget" if holding == BUDGET else f"broke after {holding}"
    print(
        f"loosely-stabilizing ({loose.state_count()} states):       "
        f"recovered in {result.interactions} interactions; "
        f"leader lease {held}"
    )

    # --- ElectLeader_r: recovers and the leader is permanent. --------------
    protocol = ElectLeader(ProtocolParams(n=N, r=4))
    config = all_duplicate_rank(protocol, make_rng(4), rank=1)  # n duplicate leaders
    result = Simulation(protocol, config=config, seed=5).run_until(
        protocol.is_safe_configuration, max_interactions=BUDGET, check_interval=1_000
    )
    assert result.converged
    # Run far past stabilization: the leader can never change (Lemma 6.1).
    sim = Simulation(protocol, config=result.config, seed=6)
    leader_before = next(i for i, s in enumerate(sim.config) if protocol.rank(s) == 1)
    sim.run(200_000)
    leader_after = next(i for i, s in enumerate(sim.config) if protocol.rank(s) == 1)
    print(
        f"ElectLeader_r (2^(r² log n) states):    "
        f"recovered in {result.interactions} interactions; "
        f"leader permanent (agent #{leader_before} == #{leader_after} "
        f"after 200k more interactions)"
    )

    print(
        "\nThe paper's contribution sits at the right end of this spectrum:"
        "\npermanent guarantees from any configuration, with the state cost"
        "\ndialled by r (see examples/tradeoff_explorer.py)."
    )


if __name__ == "__main__":
    main()

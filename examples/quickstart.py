#!/usr/bin/env python3
"""Quickstart: elect a leader with ``ElectLeader_r`` and watch it stabilize.

Builds the paper's protocol for a population of 32 agents with trade-off
parameter r = 4, runs it from a clean (awakening) configuration under the
uniform random scheduler, and reports progress until the population enters
the safe set (all verifiers, correct ranking, consistent message system —
Lemma 6.1), after which exactly one agent, the one ranked 1, is the leader
forever.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ElectLeader, ProtocolParams, Simulation


def main() -> None:
    params = ProtocolParams(n=32, r=4)
    protocol = ElectLeader(params)

    print(f"ElectLeader_r with n={params.n}, r={params.r}")
    print(f"  countdown C_max       = {params.countdown_max}")
    print(f"  probation P_max       = {params.probation_max}")
    print(f"  rank groups           = {protocol.partition.sizes()}")
    print()

    sim = Simulation(protocol, n=params.n, seed=42)

    check_every = 2_000
    while True:
        result = sim.run_until(
            protocol.is_safe_configuration,
            max_interactions=check_every,
            check_interval=check_every,
        )
        summary = protocol.describe_configuration(sim.config)
        print(
            f"t = {sim.metrics.interactions:>7d} interactions "
            f"({sim.metrics.parallel_time:7.1f} parallel): "
            f"roles={summary['roles']} leaders={summary['leaders']} "
            f"safe={summary['safe']}"
        )
        if result.converged:
            break
        if sim.metrics.interactions > 5_000_000:
            raise RuntimeError("did not stabilize within the budget")

    leader_index = next(
        i for i, state in enumerate(sim.config) if protocol.rank(state) == 1
    )
    print()
    print(
        f"Stabilized after {sim.metrics.interactions} interactions "
        f"({sim.metrics.parallel_time:.1f} parallel time): "
        f"agent #{leader_index} is the unique leader (rank 1)."
    )
    print("By Lemma 6.1 the configuration is safe: the leader never changes again.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Anatomy of a run: trace every phase of ``ElectLeader_r`` live.

Instruments a single execution with an observer that logs each phase
transition the paper's analysis walks through (Lemma 6.2's "correct
execution"):

    triggered reset → fully dormant → awakening → sheriff elected →
    deputies complete → all labelled → all asleep → ranked → verifying →
    safe

Starting from a *triggered* configuration (a hard reset just fired), so
the full pipeline is visible.

Run:  python examples/protocol_anatomy.py
"""

from __future__ import annotations

from repro import ElectLeader, ProtocolParams, Simulation
from repro.core.propagate_reset import fully_dormant
from repro.core.roles import Role
from repro.core.state import ARPhase


def main() -> None:
    params = ProtocolParams(n=24, r=4)
    protocol = ElectLeader(params)
    config = [protocol.triggered_state() for _ in range(params.n)]
    sim = Simulation(protocol, config=config, seed=11)

    milestones: dict[str, int] = {}

    def milestone(name: str) -> None:
        if name not in milestones:
            milestones[name] = sim.metrics.interactions
            print(f"  t = {sim.metrics.interactions:>7d}: {name}")

    def observe(simulation: Simulation, i: int, j: int) -> None:
        cfg = simulation.config
        if fully_dormant(cfg):
            milestone("fully dormant (reset wave complete)")
        if "fully dormant (reset wave complete)" in milestones and any(
            s.role is not Role.RESETTING for s in cfg
        ):
            milestone("awakening (first agent computing)")
        rankers = [s.ar for s in cfg if s.role is Role.RANKING and s.ar is not None]
        if any(ar.phase is ARPhase.SHERIFF or ar.phase is ARPhase.DEPUTY for ar in rankers):
            milestone("sheriff elected (badges issued)")
        deputies = sum(1 for ar in rankers if ar.phase is ARPhase.DEPUTY)
        if deputies == params.r:
            milestone(f"all {params.r} deputies exist (population quorate)")
        if rankers and all(
            ar.phase in (ARPhase.SLEEPER, ARPhase.RANKED) for ar in rankers
        ):
            milestone("all rankers asleep or ranked (labels complete)")
        if any(ar.phase is ARPhase.RANKED for ar in rankers):
            milestone("first agent ranked")
        if any(s.role is Role.VERIFYING for s in cfg):
            milestone("first verifier (collision detection begins)")
        if all(s.role is Role.VERIFYING for s in cfg):
            milestone("all agents verifying")

    sim.observers.append(observe)
    print(f"Tracing ElectLeader_r (n={params.n}, r={params.r}) from a triggered reset:\n")
    result = sim.run_until(
        protocol.is_safe_configuration, max_interactions=10_000_000, check_interval=500
    )
    assert result.converged
    print(f"  t = {result.interactions:>7d}: SAFE (unique leader forever — Lemma 6.1)")

    print("\nFinal ranking (agent index → rank):")
    ranks = [(i, protocol.rank(s)) for i, s in enumerate(result.config)]
    line = ", ".join(f"{i}→{r}" for i, r in ranks)
    print(f"  {line}")
    leader = next(i for i, r in ranks if r == 1)
    print(f"\nLeader: agent #{leader}")


if __name__ == "__main__":
    main()

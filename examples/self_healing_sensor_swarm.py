#!/usr/bin/env python3
"""Self-healing coordination in an anonymous sensor swarm.

The paper's motivation (Section 1): in large distributed systems built
from anonymous, resource-limited agents — sensor networks, chemical
reaction networks, programmable matter — memory corruption is the rule,
not the exception, and the system must *self-stabilize*: re-elect a
unique coordinator from ANY state the failure left behind.

This example simulates a swarm of 24 sensors that repeatedly suffers
corruption bursts (a radiation event scrambling a subset of agents'
memories, modelled by the adversary suite).  After each burst, the swarm
runs ``ElectLeader_r`` until it has healed, and we report the recovery
cost and whether the cheap *soft reset* path (which preserves the
existing ranking) sufficed.

Run:  python examples/self_healing_sensor_swarm.py
"""

from __future__ import annotations

from repro import ElectLeader, ProtocolParams, Simulation
from repro.adversary.initializers import (
    corrupted_messages,
    duplicate_ranks,
    mixed_generations,
    planted_top,
)
from repro.core.roles import Role
from repro.scheduler.rng import make_rng

BURSTS = [
    ("cosmic-ray bit flips in the message store", corrupted_messages),
    ("two sensors cloned the same identity", lambda p, rng: duplicate_ranks(p, rng, 2)),
    ("firmware update desynchronized generations", mixed_generations),
    ("watchdog raised spurious error flags", lambda p, rng: planted_top(p, rng, 3)),
]


def main() -> None:
    params = ProtocolParams(n=24, r=4)
    protocol = ElectLeader(params)
    rng = make_rng(2024)

    print(f"Sensor swarm: n={params.n} anonymous agents, ElectLeader_r with r={params.r}")
    print()

    # Initial deployment: clean start.
    sim = Simulation(protocol, n=params.n, seed=7)
    result = sim.run_until(
        protocol.is_safe_configuration, max_interactions=5_000_000, check_interval=1_000
    )
    assert result.converged
    print(
        f"[deploy] coordinator elected after {result.interactions} interactions "
        f"({result.parallel_time:.0f} parallel time)"
    )

    config = sim.config
    for burst_no, (description, corrupt) in enumerate(BURSTS, start=1):
        # The failure event: replace the configuration by a corrupted one
        # derived from the current ranking where the adversary allows it.
        config = corrupt(protocol, rng)
        ranks_before = sorted(agent.rank for agent in config)

        sim = Simulation(protocol, config=config, seed=100 + burst_no)
        hard_resets: list[bool] = []
        sim.observers.append(
            lambda s, i, j: hard_resets.append(True)
            if s.config[i].role is Role.RESETTING or s.config[j].role is Role.RESETTING
            else None
        )
        result = sim.run_until(
            protocol.is_safe_configuration,
            max_interactions=10_000_000,
            check_interval=1_000,
        )
        assert result.converged, f"burst {burst_no} did not heal"
        config = result.config

        ranks_after = sorted(agent.rank for agent in config)
        path = "HARD reset (full re-ranking)" if hard_resets else "soft reset (ranking preserved)"
        print(
            f"[burst {burst_no}] {description}:\n"
            f"          healed in {result.interactions} interactions "
            f"({result.parallel_time:.0f} parallel) via {path}; "
            f"ranking intact: {ranks_before == ranks_after and not hard_resets}"
        )

    leaders = sum(1 for agent in config if protocol.rank(agent) == 1)
    print()
    print(f"Final state: {leaders} coordinator, population safe = "
          f"{protocol.is_safe_configuration(config)}")


if __name__ == "__main__":
    main()

"""``repro.lint`` — the static contract checker.

The repository's headline guarantees (law-equivalent backends,
bit-identical fault schedules, byte-identical sweep resume) rest on
invariants the type system cannot see: every random draw flows through
the seeded streams of :mod:`repro.scheduler.rng`, every registered
engine implements the full backend surface, transition functions
compiled into dense tables are pure.  This package enforces those
invariants statically — an AST/``importlib``-hybrid analyzer with a rule
registry mirroring the backend-registry idiom, run as ``repro lint`` and
gated in CI.

See :mod:`repro.lint.rules` for the shipped rules (L001–L006),
:mod:`repro.lint.engine` for file discovery / waivers / rule driving,
and :mod:`repro.lint.reporting` for the text and JSON renderers.
"""

from repro.lint.engine import DEFAULT_LINT_ROOTS, LintReport, run_lint
from repro.lint.registry import (
    Finding,
    LintRule,
    get_rule,
    register_rule,
    rule_ids,
    registered_rules,
)
from repro.lint.reporting import render_json, render_text

# Importing the rules module registers the built-in rules (exactly as
# importing repro.sim.backends registers the built-in engines).
import repro.lint.rules  # noqa: E402,F401  (import-for-effect)

__all__ = [
    "DEFAULT_LINT_ROOTS",
    "Finding",
    "LintReport",
    "LintRule",
    "get_rule",
    "register_rule",
    "render_json",
    "render_text",
    "rule_ids",
    "registered_rules",
    "run_lint",
]

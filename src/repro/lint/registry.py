"""The lint-rule registry — one place that knows every rule.

Mirrors the backend registry (:mod:`repro.sim.backends`): a rule is a
small frozen record registered under a stable id, every consumer (the
engine, the CLI's ``--rules`` filter and ``--list-rules``, the JSON
report's rule table) derives from the registry, and adding a rule is one
:func:`register_rule` call — no dispatch site names a rule id in an
``if``/``elif`` chain.

A rule may have a *file* checker (pure AST, run once per scanned
source file), a *project* checker (run once per lint invocation with the
whole file set — this is where the ``importlib`` half of the hybrid
analyzer lives: constructing registered backends, building transition
tables), or both.  Findings from either checker carry the same shape.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence


@dataclass(frozen=True)
class Finding:
    """One rule violation at a file:line, with a fix hint."""

    rule: str
    path: str
    line: int
    message: str
    hint: str = ""

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass(frozen=True)
class SourceFile:
    """One parsed source file handed to file-scope checkers."""

    path: Path
    #: Path relative to the lint root, POSIX-style (stable across hosts).
    relpath: str
    text: str
    tree: ast.Module

    @property
    def basename(self) -> str:
        return self.path.name


@dataclass(frozen=True)
class ProjectContext:
    """The whole scanned file set handed to project-scope checkers."""

    root: Path
    files: Sequence[SourceFile]

    def relpath(self, path: Path) -> str:
        """``path`` relative to the lint root (falls back to absolute)."""
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()


#: File-scope checker: findings for one parsed source file.
FileCheck = Callable[[SourceFile], Iterable[Finding]]

#: Project-scope checker: findings for the whole invocation.
ProjectCheck = Callable[[ProjectContext], Iterable[Finding]]


@dataclass(frozen=True)
class LintRule:
    """One registered rule (see the module docstring).

    ``rule_id`` is the stable ``LXXX`` id used in findings, waiver
    comments (``# repro-lint: disable=LXXX``) and the CLI ``--rules``
    filter; ``name`` is the short kebab-case label; ``summary`` one line
    for ``--list-rules`` and the JSON rule table; ``hint`` the default
    fix hint attached to findings that do not carry their own.
    """

    rule_id: str
    name: str
    summary: str
    hint: str = ""
    check_file: Optional[FileCheck] = None
    check_project: Optional[ProjectCheck] = None

    def __post_init__(self) -> None:
        if self.check_file is None and self.check_project is None:
            raise ValueError(
                f"rule {self.rule_id} must define a file or project checker"
            )

    def finding(self, path: str, line: int, message: str, hint: str = "") -> Finding:
        """Build a finding for this rule (default hint applied)."""
        return Finding(
            rule=self.rule_id,
            path=path,
            line=line,
            message=message,
            hint=hint or self.hint,
        )


#: Rule id → LintRule, in registration order (report order follows it).
_REGISTRY: dict[str, LintRule] = {}


def register_rule(rule: LintRule, *, replace: bool = False) -> LintRule:
    """Add a rule to the registry (the one-call extension point).

    Registering an id twice is an error unless ``replace=True`` —
    accidental shadowing of a shipped rule should be loud.
    """
    rule_id = rule.rule_id
    if not (
        len(rule_id) == 4 and rule_id[0] == "L" and rule_id[1:].isdigit()
    ):
        raise ValueError(f"rule id must look like 'L001', got {rule_id!r}")
    if rule_id in _REGISTRY and not replace:
        raise ValueError(f"rule '{rule_id}' is already registered")
    _REGISTRY[rule_id] = rule
    return rule


def rule_ids() -> tuple[str, ...]:
    """All registered rule ids, in registration order."""
    return tuple(_REGISTRY)


def registered_rules() -> tuple[LintRule, ...]:
    """All registered rules, in registration order."""
    return tuple(_REGISTRY.values())


def get_rule(rule_id: str) -> LintRule:
    """Pure registry lookup; unknown ids fail with the known set."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(rule_ids())
        raise ValueError(f"unknown lint rule '{rule_id}' (known: {known})") from None


@dataclass
class RuleSelection:
    """A validated ``--rules`` filter (all rules when empty)."""

    selected: tuple[str, ...] = field(default_factory=tuple)

    @classmethod
    def parse(cls, spec: Optional[str]) -> "RuleSelection":
        if not spec:
            return cls()
        ids = tuple(part.strip() for part in spec.split(",") if part.strip())
        for rule_id in ids:
            get_rule(rule_id)  # unknown ids fail loudly here
        return cls(selected=ids)

    def active_rules(self) -> tuple[LintRule, ...]:
        if not self.selected:
            return registered_rules()
        return tuple(get_rule(rule_id) for rule_id in self.selected)

"""The lint engine: discover files, parse, drive rules, apply waivers.

The engine is deliberately dumb: it walks the requested roots for
``.py`` files, parses each once, hands the parsed set to every active
rule (file-scope checkers per file, project-scope checkers once), and
filters the combined findings through per-line waiver comments.  All
repository knowledge lives in the rules (:mod:`repro.lint.rules`).

**Waivers.**  A finding is suppressed when the physical line it points
at carries a ``# repro-lint: disable=LXXX`` comment naming its rule
(comma-separated ids waive several rules on one line, ``disable=all``
waives every rule).  Waivers are per-line on purpose: a file-wide
escape hatch would make "the tree is clean" unfalsifiable.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.lint.registry import (
    Finding,
    LintRule,
    ProjectContext,
    RuleSelection,
    SourceFile,
)

#: The roots ``repro lint`` scans when none are named: the shipped
#: package plus the benchmark and example trees (ISSUE: tests are
#: exercised by pytest and may legitimately poke engine internals).
DEFAULT_LINT_ROOTS: tuple[str, ...] = ("src", "benchmarks", "examples")

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", "results", ".pytest_cache"}

#: The waiver comment: ``# repro-lint: disable=L001`` / ``=L001,L003`` /
#: ``=all``.  Matched anywhere in the physical line, so it can trail code.
_WAIVER_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9,\s]+)")


class LintUsageError(ValueError):
    """A lint invocation that cannot run (bad path, bad rule id)."""


@dataclass
class LintReport:
    """The outcome of one lint invocation."""

    findings: list[Finding]
    checked_files: int
    waived: int = 0
    #: Notes about checks that could not run (e.g. numpy missing for the
    #: importlib half) — surfaced in reports, never silently dropped.
    notes: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


def _iter_python_files(root: Path) -> Iterable[Path]:
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    for path in sorted(root.rglob("*.py")):
        if not any(part in _SKIP_DIRS for part in path.parts):
            yield path


def discover_files(paths: Sequence[Path], *, base: Path) -> list[SourceFile]:
    """Parse every ``.py`` file under ``paths`` (syntax errors are loud:
    a tree the linter cannot parse cannot be certified clean)."""
    files: list[SourceFile] = []
    seen: set[Path] = set()
    for root in paths:
        if not root.exists():
            raise LintUsageError(f"lint path does not exist: {root}")
        for path in _iter_python_files(root):
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            text = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(text, filename=str(path))
            except SyntaxError as error:
                raise LintUsageError(
                    f"cannot parse {path}: {error.msg} (line {error.lineno})"
                ) from error
            try:
                relpath = resolved.relative_to(base.resolve()).as_posix()
            except ValueError:
                relpath = path.as_posix()
            files.append(
                SourceFile(path=path, relpath=relpath, text=text, tree=tree)
            )
    return files


def waived_rules_by_line(text: str) -> dict[int, set[str]]:
    """Map 1-indexed line numbers to the rule ids waived on that line."""
    waivers: dict[int, set[str]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        match = _WAIVER_RE.search(line)
        if match is None:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        waivers[number] = ids
    return waivers


def _is_waived(finding: Finding, waivers: dict[str, dict[int, set[str]]]) -> bool:
    by_line = waivers.get(finding.path)
    if not by_line:
        return False
    ids = by_line.get(finding.line, set())
    return finding.rule in ids or "all" in ids


def run_lint(
    paths: Optional[Sequence[str]] = None,
    *,
    base: Optional[Path] = None,
    rules_filter: Optional[str] = None,
) -> LintReport:
    """Run the active rules over ``paths`` (default: the shipped roots).

    ``base`` anchors relative finding paths (default: the current
    working directory); ``rules_filter`` is the comma-separated ``--rules``
    selection.  Findings come back sorted by (path, line, rule) with
    waived lines removed and the waiver count reported.
    """
    base = (base or Path.cwd()).resolve()
    if paths:
        roots = [Path(p) if Path(p).is_absolute() else base / p for p in paths]
    else:
        roots = [base / name for name in DEFAULT_LINT_ROOTS if (base / name).exists()]
        if not roots:
            raise LintUsageError(
                f"none of the default lint roots {DEFAULT_LINT_ROOTS} exist "
                f"under {base}; name paths explicitly"
            )
    try:
        selection = RuleSelection.parse(rules_filter)
    except ValueError as error:
        # Registry lookups raise plain ValueError; the CLI renders only
        # LintUsageError as a clean usage line.
        raise LintUsageError(str(error)) from None
    active: tuple[LintRule, ...] = selection.active_rules()

    files = discover_files(roots, base=base)
    context = ProjectContext(root=base, files=files)

    findings: list[Finding] = []
    notes: list[str] = []
    for rule in active:
        if rule.check_file is not None:
            for source in files:
                findings.extend(rule.check_file(source))
        if rule.check_project is not None:
            collected = rule.check_project(context)
            for item in collected:
                # Project checkers may smuggle capability notes back as
                # pseudo-findings on rule id "note"; keep real findings
                # and notes separate in the report.
                if item.rule == "note":
                    notes.append(item.message)
                else:
                    findings.append(item)

    waivers = {
        source.relpath: waived_rules_by_line(source.text) for source in files
    }
    kept = [f for f in findings if not _is_waived(f, waivers)]
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return LintReport(
        findings=kept,
        checked_files=len(files),
        waived=len(findings) - len(kept),
        notes=notes,
    )

"""The shipped lint rules, L001–L007.

Each rule encodes one repository invariant the type system cannot see:

* **L001 rng-discipline** — all randomness flows through the blessed
  constructors in :mod:`repro.scheduler.rng` (``make_rng`` /
  ``np_generator`` / ``np_stream``); no direct ``random`` imports or
  ``numpy.random`` construction anywhere else, and fault appliers never
  touch the schedule stream.
* **L002 backend-contract** — every registered execution engine exposes
  the complete canonical surface
  (:data:`repro.sim.backends.ENGINE_SURFACE`); engine-shaped classes in
  the tree carry the same surface statically.
* **L003 no-backend-conditionals** — no string comparisons against
  backend names outside the registry module (PR 4's invariant, now
  enforced).
* **L004 transition-purity** — δ and ``transition_table`` bodies are
  free of global mutation, I/O and randomness; the generic table
  builder's poisoned-RNG rejection runs at lint time for every
  registered finite-state protocol.
* **L005 deprecated-kwargs** — no internal use of the removed
  ``config=``/``codes=``/``counts=`` keyword shim.
* **L006 counts-dtype** — count-vector arithmetic stays ``int64`` in the
  counts/batch hot paths (no narrowing casts or ``int32`` accumulators).
* **L007 obs-discipline** — wall-clock reads (``time.time`` /
  ``time.perf_counter``) happen only inside :mod:`repro.obs`; everything
  else imports the blessed ``repro.obs.perf_counter``.  And no tracing or
  metrics calls inside δ / ``transition_table`` bodies — observability
  must never sit on the semantic hot path.

File-scope checkers are pure AST; project-scope checkers are the
``importlib`` half of the hybrid analyzer and consult the live backend /
protocol registries, so new registrations inherit the gates for free.
"""

from __future__ import annotations

import ast
import inspect
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.lint.registry import (
    Finding,
    LintRule,
    ProjectContext,
    SourceFile,
    register_rule,
)

# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _terminal_name(func: ast.AST) -> Optional[str]:
    """The last identifier of a call target (``pkg.mod.fn`` → ``fn``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class _ImportMap:
    """Per-file import aliases, resolved to canonical dotted prefixes."""

    def __init__(self, tree: ast.Module):
        #: local name -> canonical module path it is bound to.
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    canonical = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[local] = canonical
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def canonical(self, dotted: Optional[str]) -> Optional[str]:
        """Rewrite a local dotted path onto canonical module names."""
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        mapped = self.aliases.get(head)
        if mapped is None:
            return dotted
        return f"{mapped}.{rest}" if rest else mapped


def _walk_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node  # type: ignore[misc]


# ---------------------------------------------------------------------------
# L001 — rng-discipline
# ---------------------------------------------------------------------------

#: The one module allowed to construct generators directly.
_RNG_MODULE_SUFFIX = "repro/scheduler/rng.py"

#: Schedule-stream attributes a fault applier must never touch: appliers
#: draw from the corruption generator they are handed, or the schedule
#: stream stops being bit-identical across backends.
_SCHEDULE_ATTRS = {"schedule", "_schedule", "next_burst", "_next_burst"}


def _check_rng_discipline(source: SourceFile) -> Iterable[Finding]:
    if source.relpath.endswith(_RNG_MODULE_SUFFIX):
        return
    rule = L001
    imports = _ImportMap(source.tree)
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield rule.finding(
                        source.relpath, node.lineno,
                        "direct 'import random' outside repro.scheduler.rng",
                    )
                if alias.name == "numpy.random":
                    yield rule.finding(
                        source.relpath, node.lineno,
                        "direct 'import numpy.random' outside repro.scheduler.rng",
                    )
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            if node.module == "random" or node.module.startswith("random."):
                yield rule.finding(
                    source.relpath, node.lineno,
                    "direct 'from random import ...' outside repro.scheduler.rng",
                )
            elif node.module == "numpy.random" or (
                node.module == "numpy"
                and any(alias.name == "random" for alias in node.names)
            ):
                yield rule.finding(
                    source.relpath, node.lineno,
                    "direct numpy.random import outside repro.scheduler.rng",
                )
        elif isinstance(node, ast.Call):
            canonical = imports.canonical(_dotted(node.func))
            if canonical is None:
                continue
            if canonical == "random" or canonical.startswith("random."):
                yield rule.finding(
                    source.relpath, node.lineno,
                    f"stdlib RNG call '{canonical}' outside repro.scheduler.rng",
                )
            elif canonical.startswith("numpy.random."):
                yield rule.finding(
                    source.relpath, node.lineno,
                    f"unseeded-stream construction '{canonical}' outside "
                    "repro.scheduler.rng",
                )
    # Fault appliers must not consume the schedule stream.
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for method in node.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            if not method.name.startswith("apply_"):
                continue
            for inner in ast.walk(method):
                if (
                    isinstance(inner, ast.Attribute)
                    and inner.attr in _SCHEDULE_ATTRS
                    and isinstance(inner.value, ast.Name)
                    and inner.value.id == "self"
                ):
                    yield rule.finding(
                        source.relpath, inner.lineno,
                        f"fault applier {node.name}.{method.name} touches the "
                        f"schedule stream (self.{inner.attr}); appliers may "
                        "only draw from the corruption generator they are "
                        "passed",
                    )


L001 = LintRule(
    rule_id="L001",
    name="rng-discipline",
    summary=(
        "all randomness flows through repro.scheduler.rng (make_rng / "
        "np_generator / np_stream); appliers never consume the schedule stream"
    ),
    hint=(
        "construct generators via repro.scheduler.rng.make_rng / np_generator "
        "/ np_stream and thread them explicitly"
    ),
    check_file=_check_rng_discipline,
)


# ---------------------------------------------------------------------------
# L002 — backend-contract
# ---------------------------------------------------------------------------


def _engine_surface() -> tuple[str, ...]:
    from repro.sim.backends import ENGINE_SURFACE

    return ENGINE_SURFACE


def _class_surface(node: ast.ClassDef) -> set[str]:
    """Every member name a class visibly defines: methods, properties,
    class-level assignments, ``__slots__`` entries, ``self.X`` targets."""
    names: set[str] = set()
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(item.name)
            for inner in ast.walk(item):
                if isinstance(inner, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    targets = (
                        inner.targets
                        if isinstance(inner, ast.Assign)
                        else [inner.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            names.add(target.attr)
        elif isinstance(item, (ast.Assign, ast.AnnAssign)):
            targets = item.targets if isinstance(item, ast.Assign) else [item.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                    if target.id == "__slots__" and isinstance(item, ast.Assign):
                        for entry in ast.walk(item.value):
                            if isinstance(entry, ast.Constant) and isinstance(
                                entry.value, str
                            ):
                                names.add(entry.value)
    return names


def _check_engine_classes(source: SourceFile) -> Iterable[Finding]:
    """Static half: engine-shaped classes carry the full surface.

    A class is engine-shaped when it defines both ``run_batch`` and
    ``predicate_holds`` — the two members nothing but an execution
    engine implements.
    """
    surface = _engine_surface()
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        defined = _class_surface(node)
        if "run_batch" not in defined or "predicate_holds" not in defined:
            continue
        missing = [name for name in surface if name not in defined]
        if missing:
            yield L002.finding(
                source.relpath, node.lineno,
                f"engine class {node.name} is missing backend-surface "
                f"member(s): {', '.join(missing)}",
            )


def _note(message: str) -> Finding:
    return Finding(rule="note", path="", line=0, message=message)


def _supported_probe(entry):
    """A small finite-state protocol instance the backend can run."""
    from repro.sim.sweep import PROTOCOLS, _probe_protocol

    for kind in PROTOCOLS.values():
        probe = _probe_protocol(kind)
        if entry.supports(probe) is None:
            return probe
    return None


def _check_registered_backends(context: ProjectContext) -> Iterable[Finding]:
    """importlib half: construct every registered engine, verify the
    complete canonical surface on the live object (so a surface member
    deleted from any engine — or absent from a brand-new registration —
    fails the gate without the linter naming that engine anywhere)."""
    from repro.sim.backends import ENGINE_SURFACE, backend_names, get_backend

    for name in backend_names():
        entry = get_backend(name)
        try:
            probe = _supported_probe(entry)
            if probe is None:
                yield _note(
                    f"L002: no registered protocol probes backend '{name}'; "
                    "its surface was not checked"
                )
                continue
            sim = entry.factory(probe, init=None, n=16, seed=0)
        except (ImportError, RuntimeError) as error:
            yield _note(
                f"L002: backend '{name}' could not be constructed for the "
                f"contract check ({error})"
            )
            continue
        missing = [attr for attr in ENGINE_SURFACE if not hasattr(sim, attr)]
        if not missing:
            continue
        path, line = _locate_class(context, type(sim))
        yield L002.finding(
            path, line,
            f"registered backend '{name}' ({type(sim).__name__}) is missing "
            f"engine-surface member(s): {', '.join(missing)}",
        )


def _locate_class(context: ProjectContext, cls: type) -> tuple[str, int]:
    """(path, line) of a class definition, best effort."""
    try:
        source_file = inspect.getsourcefile(cls)
        _, line = inspect.getsourcelines(cls)
    except (OSError, TypeError):
        return "src/repro/sim/backends.py", 1
    if source_file is None:
        return "src/repro/sim/backends.py", 1
    return context.relpath(Path(source_file)), line


L002 = LintRule(
    rule_id="L002",
    name="backend-contract",
    summary=(
        "every registered execution engine exposes the complete canonical "
        "surface (repro.sim.backends.ENGINE_SURFACE)"
    ),
    hint=(
        "implement the full engine surface (run, run_batch, run_until, "
        "predicate_holds, apply_fault, metrics, config, n) on the engine class"
    ),
    check_file=_check_engine_classes,
    check_project=_check_registered_backends,
)


# ---------------------------------------------------------------------------
# L003 — no-backend-conditionals
# ---------------------------------------------------------------------------

#: The registry module itself (and its thin re-export shim) may mention
#: backend names; everywhere else must dispatch through the registry.
_REGISTRY_MODULE_SUFFIX = "repro/sim/backends.py"


def _backend_names() -> frozenset[str]:
    from repro.sim.backends import backend_names

    return frozenset(backend_names())


def _backendish_identifier(node: ast.AST) -> bool:
    """Does this expression read as a backend/engine selector?"""
    if isinstance(node, ast.Attribute):
        label = node.attr
    elif isinstance(node, ast.Name):
        label = node.id
    else:
        return False
    lowered = label.lower()
    return "backend" in lowered or "engine" in lowered


def _constant_backend_names(node: ast.AST, names: frozenset[str]) -> bool:
    """Is this a backend-name string constant (or a container of them)?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, str) and node.value in names
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)) and node.elts:
        return all(
            isinstance(e, ast.Constant)
            and isinstance(e.value, str)
            and e.value in names
            for e in node.elts
        )
    return False


def _check_backend_conditionals(source: SourceFile) -> Iterable[Finding]:
    if source.relpath.endswith(_REGISTRY_MODULE_SUFFIX):
        return
    names = _backend_names()
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Compare):
            continue
        comparators = [node.left, *node.comparators]
        has_name_constant = any(
            _constant_backend_names(c, names) for c in comparators
        )
        has_backend_selector = any(
            _backendish_identifier(c) for c in comparators
        )
        if has_name_constant and has_backend_selector:
            yield L003.finding(
                source.relpath, node.lineno,
                "comparison against a backend name outside the registry "
                "module — dispatch belongs in repro.sim.backends",
            )


L003 = LintRule(
    rule_id="L003",
    name="no-backend-conditionals",
    summary=(
        "no string comparisons against backend names outside "
        "repro.sim.backends (dispatch goes through the registry)"
    ),
    hint=(
        "look the engine up with repro.sim.backends.get_backend and use its "
        "metadata (native_form, supports, trial_runner) instead of comparing "
        "names"
    ),
    check_file=_check_backend_conditionals,
)


# ---------------------------------------------------------------------------
# L004 — transition-purity
# ---------------------------------------------------------------------------

#: Call targets that are I/O in a δ body.
_IO_CALLS = {"print", "open", "input"}


def _check_transition_purity_ast(source: SourceFile) -> Iterable[Finding]:
    """Static half: δ / ``transition_table`` bodies free of global
    mutation and I/O (and, for table builders, of any RNG use — a table
    is a pure function of the protocol's parameters)."""
    for func in _walk_functions(source.tree):
        if func.name not in ("transition", "transition_table"):
            continue
        for node in ast.walk(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                kind = "global" if isinstance(node, ast.Global) else "nonlocal"
                yield L004.finding(
                    source.relpath, node.lineno,
                    f"{func.name} declares '{kind} {', '.join(node.names)}' — "
                    "transition semantics must be pure",
                )
            elif isinstance(node, ast.Call):
                target = _terminal_name(node.func)
                if isinstance(node.func, ast.Name) and target in _IO_CALLS:
                    yield L004.finding(
                        source.relpath, node.lineno,
                        f"{func.name} performs I/O ({target}) — transition "
                        "semantics must be pure",
                    )
                elif func.name == "transition_table":
                    dotted = _dotted(node.func) or ""
                    if dotted.split(".")[0] in ("random",) or ".random." in f".{dotted}.":
                        yield L004.finding(
                            source.relpath, node.lineno,
                            f"transition_table calls '{dotted}' — dense tables "
                            "must be pure functions of the protocol parameters",
                        )


def _check_transition_tables_build(context: ProjectContext) -> Iterable[Finding]:
    """importlib half: build every registered finite-state protocol's
    dense table through the generic builder, whose poisoned RNG rejects
    any δ that consumes randomness — the former runtime-only check, now
    a lint-time gate."""
    try:
        from repro.sim.array_backend import ArrayBackendError
        from repro.sim.sweep import PROTOCOLS
    except ImportError as error:  # pragma: no cover - broken tree
        yield _note(f"L004: protocol registry unavailable ({error})")
        return
    for kind in PROTOCOLS.values():
        try:
            protocol = kind.build(16, 1)[0]
        except Exception as error:  # pragma: no cover - broken registration
            yield _note(f"L004: protocol '{kind.name}' failed to build ({error})")
            continue
        if protocol.num_states() is None:
            continue
        try:
            protocol.transition_table()
        except ArrayBackendError as error:
            message = str(error)
            if "consumed randomness" not in message:
                yield _note(
                    f"L004: protocol '{kind.name}' table build failed "
                    f"for a non-purity reason ({message})"
                )
                continue
            path, line = _locate_class(context, type(protocol))
            yield L004.finding(
                path, line,
                f"protocol '{kind.name}' has a randomized transition "
                "function but advertises a finite-state encoding: "
                f"{message}",
            )
        except (ImportError, RuntimeError) as error:
            yield _note(
                f"L004: protocol '{kind.name}' table could not be built "
                f"({error})"
            )


L004 = LintRule(
    rule_id="L004",
    name="transition-purity",
    summary=(
        "transition functions compiled into dense tables are pure: no RNG, "
        "no global mutation, no I/O (poisoned-RNG table build runs at lint "
        "time for every registered finite-state protocol)"
    ),
    hint=(
        "derandomize the transition (Appendix B) or drop the finite-state "
        "encoding (num_states() -> None) so the protocol stays object-only"
    ),
    check_file=_check_transition_purity_ast,
    check_project=_check_transition_tables_build,
)


# ---------------------------------------------------------------------------
# L005 — deprecated-kwargs
# ---------------------------------------------------------------------------

#: Entry points that once accepted the removed keyword shim.
_SHIMMED_CALLABLES = {"make_simulation", "run_trials", "run_until", "TrialSpec"}

#: The removed keywords (PR 6's one-release shim, now gone).
_REMOVED_KEYWORDS = {
    "config", "codes", "counts",
    "config_factory", "codes_factory", "counts_factory",
}


def _check_deprecated_kwargs(source: SourceFile) -> Iterable[Finding]:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        target = _terminal_name(node.func)
        if target not in _SHIMMED_CALLABLES:
            continue
        for keyword in node.keywords:
            if keyword.arg in _REMOVED_KEYWORDS:
                yield L005.finding(
                    source.relpath, keyword.value.lineno,
                    f"{target}(..., {keyword.arg}=) uses the removed "
                    "legacy keyword shim",
                )


L005 = LintRule(
    rule_id="L005",
    name="deprecated-kwargs",
    summary=(
        "no use of the removed config=/codes=/counts= (and *_factory=) "
        "keyword shim on make_simulation / run_trials / run_until / TrialSpec"
    ),
    hint=(
        "pass init= with an InitialState (ObjectConfig / CodeArray / "
        "CountVector / SampledStart; see repro.sim.initial_state)"
    ),
    check_file=_check_deprecated_kwargs,
)


# ---------------------------------------------------------------------------
# L006 — counts-dtype
# ---------------------------------------------------------------------------

#: Narrowing integer dtypes that must not appear in counts arithmetic.
_NARROW_DTYPES = {"int32", "int16", "int8", "intc", "short"}


def _counts_hot_path(source: SourceFile) -> bool:
    lowered = source.basename.lower()
    return "counts" in lowered or "batch" in lowered


def _narrow_dtype_label(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute) and node.attr in _NARROW_DTYPES:
        return node.attr
    if isinstance(node, ast.Constant) and node.value in _NARROW_DTYPES:
        return str(node.value)
    return None


def _check_counts_dtype(source: SourceFile) -> Iterable[Finding]:
    if not _counts_hot_path(source):
        return
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        # .astype(np.int32) / .astype("int32") — narrowing cast.
        if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
            for arg in [*node.args, *[k.value for k in node.keywords]]:
                label = _narrow_dtype_label(arg)
                if label:
                    yield L006.finding(
                        source.relpath, node.lineno,
                        f"narrowing cast .astype({label}) in a counts/batch "
                        "hot path — count vectors must stay int64",
                    )
        # np.zeros(..., dtype=np.int32) and friends.
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                label = _narrow_dtype_label(keyword.value)
                if label:
                    yield L006.finding(
                        source.relpath, keyword.value.lineno,
                        f"{label} accumulator in a counts/batch hot path — "
                        "count vectors must stay int64",
                    )


L006 = LintRule(
    rule_id="L006",
    name="counts-dtype",
    summary=(
        "count-vector arithmetic stays int64 in the counts/batch hot paths "
        "(no int32/int16 accumulators or narrowing casts)"
    ),
    hint="allocate and cast counts arrays as int64 (numpy.int64)",
    check_file=_check_counts_dtype,
)


# ---------------------------------------------------------------------------
# L007 — obs-discipline
# ---------------------------------------------------------------------------

#: The one package allowed to read the wall clock directly.
_OBS_PACKAGE_FRAGMENT = "repro/obs/"

#: Clock reads that must flow through repro.obs.  ``time.monotonic`` and
#: ``time.sleep`` stay legal — they are control-flow (lease timeouts,
#: poll intervals), not measurement.
_CLOCK_CALLS = {"time.time", "time.perf_counter", "time.perf_counter_ns"}


def _check_obs_discipline(source: SourceFile) -> Iterable[Finding]:
    if _OBS_PACKAGE_FRAGMENT in source.relpath:
        return
    imports = _ImportMap(source.tree)
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        canonical = imports.canonical(_dotted(node.func))
        if canonical in _CLOCK_CALLS:
            yield L007.finding(
                source.relpath, node.lineno,
                f"direct clock read '{canonical}' outside repro.obs — "
                "timing flows through the blessed repro.obs.perf_counter",
            )
    # Transition semantics never observe themselves: a span or metric in
    # a δ body would put I/O-shaped work on every simulated interaction.
    for func in _walk_functions(source.tree):
        if func.name not in ("transition", "transition_table"):
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            canonical = imports.canonical(_dotted(node.func)) or ""
            if canonical == "repro.obs" or canonical.startswith("repro.obs."):
                yield L007.finding(
                    source.relpath, node.lineno,
                    f"{func.name} calls '{canonical}' — no tracing or "
                    "metrics inside transition semantics",
                )


L007 = LintRule(
    rule_id="L007",
    name="obs-discipline",
    summary=(
        "wall-clock reads (time.time / time.perf_counter) only inside "
        "repro.obs; no tracing or metrics calls in transition semantics"
    ),
    hint=(
        "import the blessed clock ('from repro.obs import perf_counter') "
        "and keep spans/metrics out of transition / transition_table bodies"
    ),
    check_file=_check_obs_discipline,
)


for _rule in (L001, L002, L003, L004, L005, L006, L007):
    register_rule(_rule)

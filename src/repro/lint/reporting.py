"""Finding renderers: human text and machine-readable JSON.

The JSON shape is versioned and stable — CI's ``lint-contracts`` job
uploads it as an artifact, so downstream tooling can diff finding sets
across commits without scraping text output.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintReport
from repro.lint.registry import registered_rules

#: Bumped when the JSON shape changes incompatibly.
JSON_VERSION = 1


def render_text(report: LintReport, *, verbose: bool = False) -> str:
    """``path:line: LXXX message (hint: ...)`` per finding, plus a tally."""
    lines: list[str] = []
    for finding in report.findings:
        line = f"{finding.path}:{finding.line}: {finding.rule} {finding.message}"
        if finding.hint:
            line += f" (hint: {finding.hint})"
        lines.append(line)
    for note in report.notes:
        lines.append(f"note: {note}")
    tally = (
        f"{len(report.findings)} finding(s) in {report.checked_files} file(s)"
    )
    if report.waived:
        tally += f", {report.waived} waived"
    lines.append(tally if report.findings else f"clean: {tally}")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The versioned machine-readable report (one JSON document)."""
    payload = {
        "version": JSON_VERSION,
        "clean": report.clean,
        "checked_files": report.checked_files,
        "waived": report.waived,
        "rules": {
            rule.rule_id: {"name": rule.name, "summary": rule.summary}
            for rule in registered_rules()
        },
        "findings": [finding.as_dict() for finding in report.findings],
        "notes": list(report.notes),
    }
    return json.dumps(payload, indent=2, sort_keys=False)

"""Statistical helpers for w.h.p.-style claims at finite n.

The paper's guarantees are "with probability at least 1 − O(1/n)"
statements.  A finite simulation can only estimate tail behaviour, so the
experiment harness uses:

* :func:`bootstrap_ci` — nonparametric bootstrap confidence intervals for
  medians (and any other statistic) of stabilization-time samples;
* :func:`tail_probability` — the empirical probability that a sample
  exceeds a threshold, with a rule-of-three upper bound when no
  exceedances are observed;
* :func:`geometric_tail_fit` — fits the exponential tail
  ``P[T > t] ≈ exp(−t/τ)`` beyond a quantile, the signature of the
  restart-style arguments behind the paper's w.h.p. amplifications
  (failed phases simply retry);
* :func:`success_rate_ci` — Wilson interval for Bernoulli success rates
  (the "did it stabilize within budget" column).
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.scheduler.rng import RNG, make_rng


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval for a statistic."""

    point: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[Sequence[float]], float] = statistics.median,
    confidence: float = 0.95,
    resamples: int = 2_000,
    rng: RNG | None = None,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for an arbitrary statistic."""
    if not samples:
        raise ValueError("need at least one sample")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    rng = rng if rng is not None else make_rng(0)
    values = list(samples)
    n = len(values)
    replicates = sorted(
        statistic([values[rng.randrange(n)] for _ in range(n)])
        for _ in range(resamples)
    )
    alpha = (1 - confidence) / 2
    low_index = max(0, min(resamples - 1, int(alpha * resamples)))
    high_index = max(0, min(resamples - 1, int((1 - alpha) * resamples)))
    return ConfidenceInterval(
        point=statistic(values),
        low=replicates[low_index],
        high=replicates[high_index],
        confidence=confidence,
    )


def tail_probability(samples: Sequence[float], threshold: float) -> float:
    """Empirical ``P[T > threshold]``; rule-of-three bound if no exceedance.

    With k = 0 exceedances out of m samples, returns the classical ``3/m``
    95%-confidence upper bound instead of a misleading exact 0.
    """
    if not samples:
        raise ValueError("need at least one sample")
    m = len(samples)
    exceedances = sum(1 for value in samples if value > threshold)
    if exceedances == 0:
        return 3.0 / m
    return exceedances / m


def geometric_tail_fit(
    samples: Sequence[float], quantile: float = 0.5
) -> tuple[float, float]:
    """Fit ``P[T > t] ≈ exp(−(t − t0)/τ)`` beyond the given quantile.

    Returns ``(t0, τ)`` where ``t0`` is the quantile threshold and ``τ``
    the mean residual excess (the MLE of an exponential tail).  Small τ
    relative to t0 is the signature of sharp concentration — the
    finite-n face of a w.h.p. bound.
    """
    if not samples:
        raise ValueError("need at least one sample")
    if not 0 <= quantile < 1:
        raise ValueError("quantile must be in [0, 1)")
    ordered = sorted(samples)
    cut = min(len(ordered) - 1, int(quantile * len(ordered)))
    t0 = ordered[cut]
    excesses = [value - t0 for value in ordered[cut:] if value > t0]
    tau = statistics.fmean(excesses) if excesses else 0.0
    return t0, tau


def success_rate_ci(
    successes: int, trials: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Wilson score interval for a Bernoulli success rate."""
    if trials <= 0:
        raise ValueError("need at least one trial")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be within [0, trials]")
    z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}.get(round(confidence, 2))
    if z is None:
        # Inverse-normal via the Beasley-Springer-Moro-free approximation
        # is overkill here; restrict to the standard confidence levels.
        raise ValueError("supported confidence levels: 0.90, 0.95, 0.99")
    p = successes / trials
    denominator = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    return ConfidenceInterval(
        point=p,
        low=max(0.0, centre - margin),
        high=min(1.0, centre + margin),
        confidence=confidence,
    )

"""Predicted bounds and scaling-fit helpers.

The reproduction cannot match the paper's absolute constants (they are
never stated), so every experiment compares *shapes*: measured medians
against the predicted growth law, plus log-log power-law fits whose
exponents should land near the prediction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


# ---------------------------------------------------------------------------
# Predicted interaction counts (up to constants)
# ---------------------------------------------------------------------------


def elect_leader_interactions(n: int, r: int) -> float:
    """Theorem 1.1: ``Θ((n²/r)·log n)`` interactions to stabilize."""
    return (n * n / r) * math.log(max(2, n))


def predicted_stabilization_interactions(params) -> float:
    """Concrete clean-start prediction for *this implementation*.

    From a clean (awakening) configuration stabilization is
    countdown-dominated: the last ranker becomes a verifier after ``C_max``
    of its own interactions, i.e. about ``C_max · n/2`` global interactions
    (Lemma A.1's concentration).  Because ``C_max`` carries the
    ``Θ(log n)`` floor (see :class:`~repro.core.params.ProtocolParams`),
    this prediction correctly flattens at the ``Θ(n log n)``-interactions
    optimum for large ``r`` where the bare ``(n²/r) log n`` formula would
    dip below it.
    """
    return params.countdown_max * params.n / 2


def assign_ranks_interactions(n: int, r: int) -> float:
    """Lemma D.1: ``Θ((n²/r)·log n)`` interactions to a silent ranking."""
    return (n * n / r) * math.log(max(2, n))


def collision_detection_interactions(n: int, r: int) -> float:
    """Lemma E.1(b): ⊤ within ``Θ((n²/r)·log n)`` interactions."""
    return (n * n / r) * math.log(max(2, n))


def epidemic_interactions(n: int) -> float:
    """Lemma A.2: completion within ``c_epi·n·log n``, ``c_epi < 7``."""
    return n * math.log(max(2, n))


def load_balancing_interactions(m: int) -> float:
    """Lemma E.6 / Berenbrink et al.: coverage within ``O(m log m)``."""
    return m * math.log(max(2, m))


def fast_leader_elect_interactions(n: int) -> float:
    """Lemma D.10: unique leader within ``O(n log n)`` interactions."""
    return n * math.log(max(2, n))


def ciw_interactions(n: int) -> float:
    """CIW baseline: ``O(n²)`` expected parallel time → ``O(n³)``
    interactions in the worst case; empirically ``Θ(n² log n)``-ish from
    typical starts."""
    return n * n * math.log(max(2, n))


def burman_style_interactions(n: int) -> float:
    """Burman-style baseline: ``O(n log n)`` interactions from clean starts."""
    return n * math.log(max(2, n))


# ---------------------------------------------------------------------------
# Fitting
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PowerLawFit:
    """``y ≈ coefficient · x^exponent`` fitted on log-log axes."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * x**self.exponent


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least-squares power-law fit; requires ≥ 2 positive points."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs")
    log_x = np.log(np.asarray(xs, dtype=float))
    log_y = np.log(np.asarray(ys, dtype=float))
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = slope * log_x + intercept
    residual = float(np.sum((log_y - predicted) ** 2))
    total = float(np.sum((log_y - np.mean(log_y)) ** 2))
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return PowerLawFit(
        exponent=float(slope),
        coefficient=float(np.exp(intercept)),
        r_squared=r_squared,
    )


def normalized_ratio(measured: Sequence[float], predicted: Sequence[float]) -> list[float]:
    """measured/predicted — flat ratios mean the predicted shape holds."""
    if len(measured) != len(predicted):
        raise ValueError("length mismatch")
    return [m / p for m, p in zip(measured, predicted)]


def ratio_spread(measured: Sequence[float], predicted: Sequence[float]) -> float:
    """max/min of the normalized ratios (1.0 = perfect shape match)."""
    ratios = normalized_ratio(measured, predicted)
    low, high = min(ratios), max(ratios)
    if low <= 0:
        return float("inf")
    return high / low

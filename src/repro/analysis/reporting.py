"""Plot-free reporting: ASCII charts and experiment serialization.

The benchmark harness runs in terminals without display servers, so the
"figures" of this reproduction are rendered as monospace charts:

* :func:`ascii_chart` — a scatter/line chart on linear or log axes,
  multi-series, suitable for the time-vs-n and time-vs-r sweeps;
* :func:`series_from_rows` — extract (x, y) series from the row dicts the
  trial runner produces;
* :func:`dump_rows` / :func:`load_rows` — JSON round-trip of experiment
  rows so EXPERIMENTS.md numbers can be regenerated verbatim.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Mapping, Sequence

Number = float | int


def series_from_rows(
    rows: Sequence[Mapping[str, object]], x: str, y: str
) -> list[tuple[float, float]]:
    """Extract a numeric (x, y) series from experiment rows."""
    series = []
    for row in rows:
        series.append((float(row[x]), float(row[y])))  # type: ignore[arg-type]
    return series


def _transform(value: float, log: bool) -> float:
    if not log:
        return value
    if value <= 0:
        raise ValueError(f"log axis requires positive values, got {value}")
    return math.log10(value)


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 18,
    log_x: bool = False,
    log_y: bool = False,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more (x, y) series as a monospace chart.

    Each series gets a distinct marker; series points are plotted on a
    ``width × height`` grid with optional log axes.  Returns the chart as
    a multi-line string.
    """
    if not series or all(not points for points in series.values()):
        return f"{title}\n(no data)"
    markers = "•x+o#@%&"
    all_points = [p for points in series.values() for p in points]
    xs = [_transform(x, log_x) for x, _ in all_points]
    ys = [_transform(y, log_y) for _, y in all_points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in points:
            column = round((_transform(x, log_x) - x_min) / x_span * (width - 1))
            row = round((_transform(y, log_y) - y_min) / y_span * (height - 1))
            grid[height - 1 - row][column] = marker

    def fmt(value: float, log: bool) -> str:
        real = 10**value if log else value
        return f"{real:.3g}"

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top={fmt(y_max, log_y)}, bottom={fmt(y_min, log_y)})")
    border = "+" + "-" * width + "+"
    lines.append(border)
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append(border)
    lines.append(
        f"{x_label}: {fmt(x_min, log_x)} .. {fmt(x_max, log_x)}"
        + ("  [log-log]" if log_x and log_y else "")
    )
    legend = "  ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def dump_rows(
    rows: Sequence[Mapping[str, object]], path: str | pathlib.Path, title: str = ""
) -> None:
    """Serialize experiment rows (with a title) to JSON."""
    payload = {"title": title, "rows": [dict(row) for row in rows]}
    pathlib.Path(path).write_text(json.dumps(payload, indent=2, default=str) + "\n")


def load_rows(path: str | pathlib.Path) -> list[dict[str, object]]:
    """Load experiment rows written by :func:`dump_rows`."""
    payload = json.loads(pathlib.Path(path).read_text())
    return list(payload["rows"])

"""State-space (bit-complexity) calculators — Figures 1-4 and Theorem 1.1.

The paper's headline space result is that ``ElectLeader_r`` uses
``2^{O(r^2 log n)}`` states; for ``r = Θ(n)`` this makes the *bit
complexity* (log₂ of the state count) of time-optimal SSLE sub-cubic,
versus ``2^{Θ(n log n)·log n}``-ish for Burman et al.  These calculators
evaluate the exact state-count formulas implied by the state-space figures
(Fig. 1 for the wrapper, Fig. 2 for StableVerify, Fig. 3 for
DetectCollision, Fig. 4 for FastLeaderElect) with this reproduction's
concrete parameters, entirely in log₂ space so that astronomically large
counts (``n`` up to ``2^20`` and beyond) stay computable.

Following Fig. 3, the message store is counted in its packed encoding —
a bounded number of *held-message slots*, each holding (governing rank,
ID, content) or ⊥ — rather than the dense ``|group| × [2r²]`` grid, since
the protocol's invariant keeps every agent's holdings at ``Θ(r^2)``
messages.  This is what gives ``2^{O(r^2 log r)}`` for the collision
detector instead of a spurious ``r^3`` exponent.

Experiment E1 sweeps these formulas across ``(n, r)`` and regenerates the
paper's comparison table (Sections 1-2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.params import BaselineParams, ProtocolParams
from repro.core.partition import RankPartition


def log2_add(a: float, b: float) -> float:
    """log₂(2^a + 2^b), numerically stable."""
    if a < b:
        a, b = b, a
    if a == float("-inf"):
        return b
    return a + math.log2(1.0 + 2.0 ** (b - a))


def log2_sum(terms: list[float]) -> float:
    total = float("-inf")
    for term in terms:
        total = log2_add(total, term)
    return total


def log2_binomial(n: float, k: float) -> float:
    """log₂ C(n, k) via lgamma (valid for huge n)."""
    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    ) / math.log(2)


# ---------------------------------------------------------------------------
# ElectLeader_r
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StateSpaceReport:
    """Per-component log₂ state counts for one parametrization."""

    n: int
    r: int
    resetter_bits: float
    ranker_bits: float
    verifier_bits: float
    total_bits: float

    def as_row(self) -> dict[str, object]:
        return {
            "n": self.n,
            "r": self.r,
            "resetter_bits": round(self.resetter_bits, 1),
            "ranker_bits": round(self.ranker_bits, 1),
            "verifier_bits": round(self.verifier_bits, 1),
            "total_bits": round(self.total_bits, 1),
        }


def propagate_reset_bits(params: ProtocolParams) -> float:
    """log₂ |Q_PR| = log₂((R_max+1)(D_max+1)) — Θ(log n) states (Cor. C.3)."""
    return math.log2((params.reset_count_max + 1) * (params.delay_timer_max + 1))


def fast_leader_elect_bits(params: ProtocolParams) -> float:
    """log₂ of Fig. 4's space: [n³] × [n³] × [Θ(log n)] × {0,1}²."""
    ids = math.log2(params.identifier_space + 1)  # +1: not-yet-activated
    return 2 * ids + math.log2(params.le_count_max + 1) + 2


def assign_ranks_bits(params: ProtocolParams) -> float:
    """log₂ |Q_AR| — the ``2^{O(r log n)}`` ranking space (Lemma D.1).

    Disjoint union over the six AR phases; the shared ``channel`` field
    (``(L+1)^r`` values for pool size ``L = ⌈c n / r⌉``) dominates.
    """
    r, n = params.r, params.n
    labels = params.labels_per_deputy
    channel_bits = r * math.log2(labels + 1)
    label_bits = math.log2(r * labels + 1)  # a label or ⊥
    le = fast_leader_elect_bits(params)
    sheriff = math.log2(r * (r + 1) / 2) + channel_bits
    deputy = math.log2(r) + math.log2(labels) + channel_bits
    recipient = label_bits + channel_bits
    sleeper = label_bits + math.log2(params.sleep_timer_max + 1) + channel_bits
    ranked = math.log2(n)
    return log2_sum([le, sheriff, deputy, recipient, sleeper, ranked])


def detect_collision_bits(params: ProtocolParams, group_size: int) -> float:
    """log₂ |Q_DC| for one group of size ``m`` — Fig. 3's ``2^{O(r² log r)}``.

    Packed encoding: signature × refresh counter × (2M held-message slots,
    each (rank, ID, content) or ⊥) × (M observations), with
    ``M = msg_factor·m²`` messages per governed rank.
    """
    m = max(2, group_size)
    total = params.messages_per_rank(group_size)
    sig = params.signature_space(group_size)
    period = params.signature_period(group_size)
    slot_values = m * total * sig + 1  # (governing rank, id, content) or ⊥
    slots = 2 * total  # holdings stay Θ(M); factor-2 slack for imbalance
    msgs_bits = slots * math.log2(slot_values)
    obs_bits = total * math.log2(sig)
    non_error = math.log2(sig) + math.log2(period) + msgs_bits + obs_bits
    return log2_add(non_error, 0.0)  # ⊎ {⊤}


def stable_verify_bits(params: ProtocolParams, group_size: int) -> float:
    """log₂ |Q_SV| for one group: Z₆ × probation × Q_DC (Fig. 2)."""
    return (
        math.log2(params.generations)
        + math.log2(params.probation_max + 1)
        + detect_collision_bits(params, group_size)
    )


def elect_leader_report(params: ProtocolParams) -> StateSpaceReport:
    """Full Fig. 1 accounting: |Q| = |Q_PR| + C_max·|Q_AR| + Σ_rank |Q_SV|."""
    partition = RankPartition(params.n, params.r)
    resetter = propagate_reset_bits(params)
    ranker = math.log2(params.countdown_max + 1) + assign_ranks_bits(params)
    verifier_terms = []
    for group in range(partition.group_count):
        size = partition.group_size(group)
        # ``size`` ranks share this group's Q_SV shape.
        verifier_terms.append(math.log2(size) + stable_verify_bits(params, size))
    verifier = log2_sum(verifier_terms)
    total = log2_sum([resetter, ranker, verifier])
    return StateSpaceReport(
        n=params.n,
        r=params.r,
        resetter_bits=resetter,
        ranker_bits=ranker,
        verifier_bits=verifier,
        total_bits=total,
    )


def elect_leader_bits(n: int, r: int) -> float:
    """Convenience: total bit complexity of ``ElectLeader_r``."""
    return elect_leader_report(ProtocolParams(n=n, r=r)).total_bits


def theorem_bound_bits(n: int, r: int, constant: float = 30.0) -> float:
    """The Theorem 1.1 envelope ``c · r² log₂ n`` (natural-log-free form)."""
    return constant * r * r * math.log2(max(2, n))


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


def cai_izumi_wada_bits(n: int) -> float:
    """log₂ n — the state-optimal baseline."""
    return math.log2(n)


def burman_style_bits(params: BaselineParams) -> float:
    """Bit complexity of the name-set broadcast baseline.

    Dominated by the seen-set: a subset of ``[n^3]`` of size ≤ n, i.e.
    ``log₂ Σ_{k≤n} C(n³, k) = Θ(n log n)`` bits — the ``2^{Θ(n log n)}``
    state count the paper attributes to the PODC '21 comparator.
    """
    n = params.n
    space = params.name_space
    seen_bits = log2_sum([log2_binomial(space, k) for k in range(0, n + 1)])
    name_bits = math.log2(space + 1)
    reset_bits = 2 * math.log2(params.timer_max + 1)
    rank_bits = math.log2(n + 1)
    return seen_bits + name_bits + reset_bits + rank_bits


def pairwise_elimination_bits() -> float:
    """One bit."""
    return 1.0


# ---------------------------------------------------------------------------
# Quoted bounds from the paper (not simulable; analytic comparison only)
# ---------------------------------------------------------------------------


def sublinear_ssr_quoted_bits(n: int, H: int) -> float:
    """Bit complexity ``Θ(n^H · log n)`` of Sublinear-Time-SSR (quoted).

    Burman et al.'s trade-off protocol: ``O(log(n) · n^{1/(H+1)})`` time
    using ``2^{Θ(n^H)·log n}`` states, for ``1 ≤ H ≤ Θ(log n)``.  Our
    simulable baseline replaces its history trees (DESIGN.md §3), so this
    quoted formula is the honest comparator for the paper's state claims.
    """
    if H < 1:
        raise ValueError("need H >= 1")
    return float(n) ** H * math.log2(max(2, n))


def sublinear_ssr_quoted_time(n: int, H: int) -> float:
    """Parallel time ``O(log(n) · n^{1/(H+1)})`` of Sublinear-Time-SSR."""
    return math.log(max(2, n)) * float(n) ** (1.0 / (H + 1))


def sublinear_ssr_time_optimal_bits(n: int) -> float:
    """Quoted bits at the H making Sublinear-Time-SSR time-optimal.

    Time-optimality (``O(log n)`` parallel time) needs ``n^{1/(H+1)} =
    O(1)``, i.e. ``H = Θ(log n)`` — giving the *super-polynomial* bit
    complexity ``n^{Θ(log n)}`` that Theorem 1.1 reduces to the sub-cubic
    ``O(n² log n)``.
    """
    H = max(1, math.ceil(math.log(max(2, n))))
    return sublinear_ssr_quoted_bits(n, H)


def tradeoff_frontier(n: int) -> list[dict[str, object]]:
    """The space-time trade-off frontier: ours (r sweep) vs quoted
    Sublinear-Time-SSR (H sweep), at one population size.

    Rows pair comparable *time* targets: our ``r`` gives parallel time
    ``Θ((n/r) log n)``; their ``H`` gives ``Θ(log(n)·n^{1/(H+1)})``.
    The paper's Theorem 1.1 discussion is exactly this frontier.
    """
    rows: list[dict[str, object]] = []
    log_n = math.log(max(2, n))
    for r in _r_sweep(n):
        ours_time = (n / r) * log_n
        ours_bits = elect_leader_bits(n, r)
        # The H whose quoted time is closest to ours.
        best_h = min(
            range(1, max(2, math.ceil(log_n)) + 1),
            key=lambda H: abs(sublinear_ssr_quoted_time(n, H) - ours_time),
        )
        rows.append(
            {
                "n": n,
                "r": r,
                "ours_parallel_time": round(ours_time, 1),
                "ours_bits": round(ours_bits, 1),
                "their_H": best_h,
                "their_parallel_time": round(sublinear_ssr_quoted_time(n, best_h), 1),
                "their_bits_quoted": round(sublinear_ssr_quoted_bits(n, best_h), 1),
            }
        )
    return rows


def _r_sweep(n: int) -> list[int]:
    """Representative trade-off parameters: 1, 2, 4, ..., ⌈log² n⌉, n/2."""
    values = {1}
    r = 2
    while r <= n // 2:
        values.add(r)
        r *= 4
    values.add(min(max(1, n // 2), max(1, round(math.log(max(2, n)) ** 2))))
    values.add(max(1, n // 2))
    return sorted(values)


def comparison_table(ns: list[int]) -> list[dict[str, object]]:
    """Experiment E1's headline table: bit complexity across protocols.

    Columns follow the paper's Section 1 comparison: our protocol at
    ``r = 1``, ``r = ⌈log² n⌉`` (the sub-exponential open-problem regime)
    and ``r = n/2`` (time-optimal), against CIW and the Burman-style
    baseline.
    """
    rows = []
    for n in ns:
        r_log2 = min(n // 2, max(1, round(math.log(n) ** 2)))
        row: dict[str, object] = {
            "n": n,
            "ciw_bits": round(cai_izumi_wada_bits(n), 1),
            "burman_sim_bits": round(burman_style_bits(BaselineParams(n=n)), 1),
            "burman_quoted_bits": round(sublinear_ssr_time_optimal_bits(n), 1),
            "ours_r1_bits": round(elect_leader_bits(n, 1), 1),
            "ours_rlog2_bits": round(elect_leader_bits(n, r_log2), 1),
            "ours_rmax_bits": round(elect_leader_bits(n, max(1, n // 2)), 1),
        }
        rows.append(row)
    return rows

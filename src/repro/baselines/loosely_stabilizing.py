"""Loosely-stabilizing leader election (Sudo et al., related work).

The paper's related-work section contrasts *self*-stabilization with the
relaxation of Sudo, Nakamura, Yamauchi, Ooshita, Kakugawa and Masuzawa
(TCS 2012) and its successors: from any configuration the population must
reach a unique-leader configuration within a short *convergence time*, and
then keep that leader for a long (but not infinite) *holding time* —
trading eternal correctness for dramatically fewer states
(``O(τ log n)``-ish versus the self-stabilizing lower bounds).

The classic timeout mechanism implemented here:

* every agent carries ``timer ∈ {0..T_max}`` with ``T_max = c·τ·log n``;
* a leader resets its own timer to ``T_max`` on every interaction and
  propagates timer values: on contact both agents adopt
  ``max(timer_u, timer_v) - 1`` (the leader's heartbeat spreads as an
  epidemic, decaying with distance in interaction-time);
* a non-leader whose timer hits 0 concludes the leader is gone and
  promotes itself;
* two leaders meeting eliminate one (pairwise elimination).

Properties (measured in experiment E14): from *any* configuration a
unique leader emerges within ``O(n log n)`` interactions w.h.p.; once
unique, the leader persists until some agent's timer runs out despite the
heartbeat — an event whose waiting time grows rapidly with ``T_max``
(exponentially in the paper's analysis; our bench measures the growth) —
whereas the two-state pairwise-elimination protocol can never recover
from a zero-leader configuration at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.params import BaselineParams
from repro.core.protocol import PopulationProtocol
from repro.scheduler.rng import RNG


@dataclass(slots=True)
class LooseState:
    """Leader bit plus the heartbeat timer."""

    leader: bool = False
    timer: int = 0

    def clone(self) -> "LooseState":
        return LooseState(self.leader, self.timer)


class LooselyStabilizingLeaderElection(PopulationProtocol):
    """Timeout-heartbeat loosely-stabilizing leader election.

    ``tau`` scales the holding time: ``T_max = c_timer · tau · log n``.
    The state count is ``2·(T_max+1) = O(τ log n)`` — the tiny footprint
    that motivates the loose relaxation.
    """

    name = "loosely-stabilizing"

    def __init__(self, params: BaselineParams, tau: float = 4.0):
        self.params = params
        self.n = params.n
        self.tau = tau
        self.timer_max = max(4, math.ceil(params.c_timer * tau * params.log_n))

    def initial_state(self) -> LooseState:
        """Clean start: everyone a follower with expired timer — the first
        interactions promote leaders and elimination prunes them."""
        return LooseState(leader=False, timer=0)

    def adversarial_configuration(self, rng: RNG) -> list[LooseState]:
        """Arbitrary leader bits and timers."""
        return [
            LooseState(
                leader=rng.random() < 0.5,
                timer=rng.randrange(self.timer_max + 1),
            )
            for _ in range(self.n)
        ]

    def zero_leader_configuration(self, timer: int | None = None) -> list[LooseState]:
        """The configuration pairwise elimination can never escape."""
        value = self.timer_max if timer is None else timer
        return [LooseState(leader=False, timer=value) for _ in range(self.n)]

    def state_count(self) -> int:
        return 2 * (self.timer_max + 1)

    # ------------------------------------------------------------------

    def transition(self, u: LooseState, v: LooseState, rng: RNG) -> None:
        if u.leader and v.leader:
            v.leader = False  # pairwise elimination
        if u.leader or v.leader:
            u.timer = self.timer_max
            v.timer = self.timer_max
            return
        # Heartbeat decay: both adopt max - 1; on expiry, self-promote.
        merged = max(u.timer, v.timer) - 1
        if merged <= 0:
            u.timer = self.timer_max
            u.leader = True
            v.timer = self.timer_max
            return
        u.timer = merged
        v.timer = merged

    def output(self, state: LooseState) -> bool:
        return state.leader

    def is_goal_configuration(self, config: Sequence[LooseState]) -> bool:
        return self.leader_count(config) == 1

    # ------------------------------------------------------------------
    # Finite-state encoding (array backend): (leader bit, timer) pairs,
    # laid out as leader-major blocks of (timer_max + 1) timer values.
    # The transition is deterministic, so the generic S² table builder
    # applies; S = 2·(T_max+1) stays in the hundreds even at n = 4096.
    # ------------------------------------------------------------------

    def num_states(self) -> int:
        return self.state_count()

    def encode_state(self, state: LooseState) -> int:
        return int(state.leader) * (self.timer_max + 1) + state.timer

    def decode_state(self, code: int) -> LooseState:
        block = self.timer_max + 1
        return LooseState(leader=bool(code // block), timer=code % block)

    def goal_counts(self, counts) -> bool:
        """Counts form (counts backend): one agent in the leader-major block."""
        return int(counts[self.timer_max + 1:].sum()) == 1

    def goal_counts_rows(self, counts_rows):
        """Row-vectorized form (batch engines): one array op over rows."""
        return counts_rows[:, self.timer_max + 1:].sum(axis=1) == 1

    # ------------------------------------------------------------------

    def holding_time(self, config: list[LooseState], rng: RNG, budget: int) -> int:
        """Interactions until the unique-leader property first breaks.

        Runs the protocol forward from ``config`` (which must have exactly
        one leader) and returns the first interaction count at which the
        leader count differs from one, or ``budget`` if it never breaks.
        """
        leaders = self.leader_count(config)
        if leaders != 1:
            raise ValueError("holding_time requires a unique-leader configuration")
        n = len(config)
        for step in range(1, budget + 1):
            i = rng.randrange(n)
            j = rng.randrange(n - 1)
            if j >= i:
                j += 1
            u, v = config[i], config[j]
            before = u.leader + v.leader
            self.transition(u, v, rng)
            leaders += (u.leader + v.leader) - before
            if leaders != 1:
                return step
        return budget

"""The Cai–Izumi–Wada baseline: ``n``-state self-stabilizing ranking.

Cai, Izumi and Wada (Theory Comput. Syst. 2012) showed ``n`` states are
necessary and sufficient for self-stabilizing leader election, via the
folklore *rank-bump* protocol: each agent's entire state is a presumed
rank in ``[n]``, and when two agents with equal ranks meet, one of them
advances cyclically::

    δ(i, i) = (i, i mod n + 1)        δ(i, j) = (i, j)   for i ≠ j

From any configuration a permutation of ``[n]`` is reachable (duplicated
ranks push their excess forward around the cycle into the gaps, and the
number of gaps equals the number of excess tokens), and permutations are
silent, so the protocol stabilizes with probability 1.  Expected
stabilization time is ``O(n^2)`` parallel time — the slow-but-tiny end of
the design space against which the paper positions itself (Section 2).

This protocol is *silent*: in a correct configuration no interaction
changes any state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.params import BaselineParams
from repro.core.protocol import RankingProtocol
from repro.scheduler.rng import RNG


@dataclass(slots=True)
class CIWState:
    """The whole state is one presumed rank."""

    rank: int

    def clone(self) -> "CIWState":
        return CIWState(self.rank)


class CaiIzumiWada(RankingProtocol):
    """The ``n``-state rank-bump SSLE baseline."""

    name = "cai-izumi-wada"

    def __init__(self, params: BaselineParams):
        self.params = params
        self.n = params.n
        self._next_rank = 0

    def initial_state(self) -> CIWState:
        """Clean starts are the worst case here: all agents at rank 1."""
        return CIWState(rank=1)

    def adversarial_configuration(self, rng: RNG) -> list[CIWState]:
        """Uniformly random ranks — the generic adversarial start."""
        return [CIWState(rng.randrange(1, self.n + 1)) for _ in range(self.n)]

    def transition(self, u: CIWState, v: CIWState, rng: RNG) -> None:
        if u.rank == v.rank:
            v.rank = u.rank % self.n + 1

    def rank(self, state: CIWState) -> int:
        return state.rank

    # ------------------------------------------------------------------
    # Finite-state encoding (array backend): the state IS a rank in [n].
    # ------------------------------------------------------------------

    def num_states(self) -> int:
        return self.n

    def encode_state(self, state: CIWState) -> int:
        return state.rank - 1

    def decode_state(self, code: int) -> CIWState:
        return CIWState(rank=code + 1)

    def transition_table(self):
        """Closed-form ``n × n`` table: identity off the diagonal, rank
        bump on it — the generic S² enumeration would make 16.7M Python δ
        calls at n=4096 where two vectorized lines suffice."""
        from repro.sim.array_backend import TransitionTable, require_numpy

        np = require_numpy()
        size = self.n
        codes = np.arange(size, dtype=np.int32)
        u_out = np.broadcast_to(codes[:, None], (size, size)).copy()
        v_out = np.broadcast_to(codes[None, :], (size, size)).copy()
        # δ(i, i) = (i, i mod n + 1): in code space, (k, k) -> (k, (k+1) mod n).
        v_out[codes, codes] = (codes + 1) % size
        return TransitionTable(num_states=size, u_out=u_out, v_out=v_out)

    def is_silent_configuration(self, config: Sequence[CIWState]) -> bool:
        """Silent iff all ranks distinct (= correct, since |config| = n)."""
        ranks = [s.rank for s in config]
        return len(set(ranks)) == len(ranks)

    def goal_counts(self, counts) -> bool:
        """Counts form (counts backend): no rank held by two agents.

        With ``S = n`` codes and ``counts.sum() = n`` agents, "no count
        exceeds 1" is exactly "every rank held once" — the permutation
        (= silent = goal) configuration.
        """
        return int(counts.max()) <= 1

    def goal_counts_rows(self, counts_rows):
        """Row-vectorized form (batch engines): one array op over rows."""
        return counts_rows.max(axis=1) <= 1

"""Pairwise-elimination leader election — a non-self-stabilizing calibration
baseline.

The original Angluin et al. protocol: every agent starts as a potential
leader; when two leaders meet, one survives::

    δ(L, L) = (L, F)        δ(x, y) = (x, y)   otherwise

It converges to exactly one leader from the all-leader start in ``Θ(n)``
expected parallel time (coupon-collector over shrinking leader counts:
``Σ_k n^2/k(k-1) = O(n^2)`` interactions) using just two states — but it
is *not* self-stabilizing: from a zero-leader configuration no leader can
ever appear.  Experiments use it to calibrate the simulator and to
illustrate why SSLE needs strictly more machinery (the paper's
introduction motivates exactly this gap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.protocol import PopulationProtocol
from repro.scheduler.rng import RNG


@dataclass(slots=True)
class LeaderBitState:
    """One bit: potential leader or follower."""

    leader: bool = True

    def clone(self) -> "LeaderBitState":
        return LeaderBitState(self.leader)


class PairwiseElimination(PopulationProtocol):
    """Two-state leader election by pairwise elimination."""

    name = "pairwise-elimination"

    def __init__(self, n: int):
        self.n = n

    def initial_state(self) -> LeaderBitState:
        return LeaderBitState(leader=True)

    def transition(self, u: LeaderBitState, v: LeaderBitState, rng: RNG) -> None:
        if u.leader and v.leader:
            v.leader = False

    # Finite-state encoding (array backend): the single leader bit.

    def num_states(self) -> int:
        return 2

    def encode_state(self, state: LeaderBitState) -> int:
        return int(state.leader)

    def decode_state(self, code: int) -> LeaderBitState:
        return LeaderBitState(leader=bool(code))

    def output(self, state: LeaderBitState) -> bool:
        return state.leader

    def is_goal_configuration(self, config: Sequence[LeaderBitState]) -> bool:
        return self.leader_count(config) == 1

    def goal_counts(self, counts) -> bool:
        """Counts form (counts backend): exactly one agent in the L state."""
        return int(counts[1]) == 1

    def goal_counts_rows(self, counts_rows):
        """Row-vectorized form (batch engines): one array op over rows."""
        return counts_rows[:, 1] == 1

"""A Burman-et-al.-style time-optimal silent SSR baseline.

The paper's head-to-head comparator is Silent-Linear-Time-SSR / the
time-optimal self-stabilizing ranking of Burman, Chen, Chen, Doty, Nowak,
Severson and Xu (PODC '21): agents draw random *names* from ``[n^3]``,
broadcast the **entire set of seen names**, rank themselves by the sorted
position of their own name once ``n`` names are known, and fall back to an
epidemic reset on any detected inconsistency.  Stabilization takes
``O(n log n)`` interactions w.h.p., but storing a subset of ``[n^3]`` of
size up to ``n`` costs ``Θ(n log n)`` bits — i.e. ``2^{Θ(n log n)}``
states, the super-polynomial bit complexity that Theorem 1.1 improves to
``O(n^2 log n)`` bits.

**Substitution note (see DESIGN.md §3):** the PODC '21 protocol detects
rank collisions through history trees; we substitute direct detection
(equal names or equal ranks meeting, malformed name sets), which preserves
the baseline's clean-start time bound and its state-space shape — the two
axes on which the paper compares — while simplifying recovery, whose
worst-case time is ``O(n^2)`` here instead of ``O(n log n)``.  The
experiment tables report clean-start stabilization for this baseline.

The reset mechanism is the same ``PropagateReset`` pattern as the main
protocol, inlined in a self-contained form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.params import BaselineParams
from repro.core.protocol import RankingProtocol
from repro.scheduler.rng import RNG


@dataclass(slots=True)
class SSRState:
    """A Burman-style agent: reset fields + name-broadcast fields."""

    resetting: bool = False
    reset_count: int = 0
    delay_timer: int = 0

    name: Optional[int] = None  #: drawn u.a.r. from [n^3] on activation
    seen: set[int] = field(default_factory=set)  #: names observed so far
    rank: int = 0  #: 0 = undecided

    def clone(self) -> "SSRState":
        return SSRState(
            resetting=self.resetting,
            reset_count=self.reset_count,
            delay_timer=self.delay_timer,
            name=self.name,
            seen=set(self.seen),
            rank=self.rank,
        )


class BurmanStyleSSR(RankingProtocol):
    """Time-optimal-shaped silent self-stabilizing ranking via name sets."""

    name = "burman-style-ssr"

    def __init__(self, params: BaselineParams):
        self.params = params
        self.n = params.n

    # ------------------------------------------------------------------

    def initial_state(self) -> SSRState:
        """Clean start: an un-activated computing agent (awakening config)."""
        return SSRState()

    def adversarial_configuration(self, rng: RNG) -> list[SSRState]:
        """Garbage names, seen-sets and ranks."""
        config = []
        for _ in range(self.n):
            name = rng.randrange(1, self.params.name_space + 1)
            seen = {
                rng.randrange(1, self.params.name_space + 1)
                for _ in range(rng.randrange(self.n + 1))
            }
            seen.add(name)
            config.append(
                SSRState(name=name, seen=seen, rank=rng.randrange(0, self.n + 1))
            )
        return config

    # ------------------------------------------------------------------

    def _trigger(self, state: SSRState) -> None:
        state.resetting = True
        state.reset_count = self.params.timer_max
        state.delay_timer = self.params.timer_max
        state.name = None
        state.seen = set()
        state.rank = 0

    def _restart(self, state: SSRState) -> None:
        state.resetting = False
        state.reset_count = 0
        state.delay_timer = 0
        state.name = None
        state.seen = set()
        state.rank = 0

    def _propagate_reset(self, u: SSRState, v: SSRState) -> None:
        pre = {id(a): a.reset_count for a in (u, v) if a.resetting}
        for a, b in ((u, v), (v, u)):
            if a.resetting and a.reset_count > 0 and not b.resetting:
                b.resetting = True
                b.reset_count = 0
                b.delay_timer = self.params.timer_max
                b.name = None
                b.seen = set()
                b.rank = 0
        if u.resetting and v.resetting:
            merged = max(u.reset_count - 1, v.reset_count - 1, 0)
            u.reset_count = merged
            v.reset_count = merged
        for a, b in ((u, v), (v, u)):
            if not a.resetting or a.reset_count != 0:
                continue
            if id(a) not in pre or pre[id(a)] > 0:
                a.delay_timer = self.params.timer_max
            else:
                a.delay_timer = max(0, a.delay_timer - 1)
            if a.delay_timer == 0 or not b.resetting:
                self._restart(a)

    # ------------------------------------------------------------------

    def _activate(self, state: SSRState, rng: RNG) -> None:
        if state.name is None:
            state.name = rng.randrange(1, self.params.name_space + 1)
            state.seen = {state.name}
            state.rank = 0

    def _inconsistent(self, u: SSRState, v: SSRState) -> bool:
        """Direct collision detection (the substitution for history trees)."""
        if u.name is not None and u.name == v.name:
            return True
        if u.rank and u.rank == v.rank:
            return True
        for a in (u, v):
            if a.name is not None and a.seen and a.name not in a.seen:
                return True  # malformed: own name missing from the seen set
        return len(u.seen | v.seen) > self.n

    def transition(self, u: SSRState, v: SSRState, rng: RNG) -> None:
        if u.resetting or v.resetting:
            self._propagate_reset(u, v)
            return
        self._activate(u, rng)
        self._activate(v, rng)
        if self._inconsistent(u, v):
            self._trigger(u)
            return
        merged = u.seen | v.seen
        u.seen = set(merged)
        v.seen = set(merged)
        if len(merged) == self.n:
            ordered = sorted(merged)
            for a in (u, v):
                assert a.name is not None
                a.rank = ordered.index(a.name) + 1

    # ------------------------------------------------------------------

    def rank(self, state: SSRState) -> int:
        return state.rank if state.rank else 1

    def ranked_and_correct(self, config: Sequence[SSRState]) -> bool:
        """Every agent decided a rank and the ranks form a permutation."""
        if any(s.resetting or s.rank == 0 for s in config):
            return False
        return self.ranking_correct(config)

    def is_goal_configuration(self, config: Sequence[SSRState]) -> bool:
        return self.ranked_and_correct(config)

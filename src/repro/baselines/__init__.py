"""Baseline protocols from the paper's related work (Section 2)."""

from repro.baselines.cai_izumi_wada import CaiIzumiWada, CIWState
from repro.baselines.loosely_stabilizing import (
    LooselyStabilizingLeaderElection,
    LooseState,
)
from repro.baselines.nonss_leader import LeaderBitState, PairwiseElimination
from repro.baselines.silent_ssr import BurmanStyleSSR, SSRState

__all__ = [
    "CaiIzumiWada",
    "CIWState",
    "PairwiseElimination",
    "LeaderBitState",
    "BurmanStyleSSR",
    "SSRState",
    "LooselyStabilizingLeaderElection",
    "LooseState",
]

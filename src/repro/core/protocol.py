"""Abstract interface for population protocols.

A population protocol (Angluin et al., JDistComp '06) is a pair ``(Q, δ)``
of a state space and a transition function applied to uniformly random
ordered pairs of agents.  Agents are anonymous: the transition function may
only read and write the two interacting *states*, never agent identities.

This module fixes the contract every protocol in this repository obeys:

* :meth:`PopulationProtocol.initial_state` produces the clean start state
  (used by non-self-stabilizing components and by benchmarks that measure
  convergence from a clean configuration);
* :meth:`PopulationProtocol.transition` mutates the two states in place
  (population protocol transitions are total functions ``Q×Q → Q×Q``; we
  use in-place mutation for speed and return nothing);
* :meth:`PopulationProtocol.output` maps a state to the protocol's output
  (for leader election: ``True`` iff the agent is marked leader);
* :meth:`PopulationProtocol.is_goal_configuration` is the correctness
  predicate used by the simulator's convergence detection.

Self-stabilization is exercised by bypassing ``initial_state`` and handing
the simulator an adversarial configuration (see
:mod:`repro.adversary.initializers`).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro.scheduler.rng import RNG

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim imports core)
    from repro.sim.array_backend import TransitionTable


class PopulationProtocol(abc.ABC):
    """Base class for all population protocols in this repository."""

    #: human-readable protocol name used by benchmarks and reports
    name: str = "protocol"

    @abc.abstractmethod
    def initial_state(self) -> Any:
        """A fresh clean start state (one per agent; never shared/aliased)."""

    @abc.abstractmethod
    def transition(self, u: Any, v: Any, rng: RNG) -> None:
        """Apply δ to the ordered pair ``(u, v)``, mutating both states.

        ``rng`` models the paper's assumption that agents can sample values
        (almost) uniformly at random; Appendix B shows how to compile such
        sampling down to scheduler randomness (see
        :mod:`repro.substrates.synthetic_coin`).
        """

    @abc.abstractmethod
    def output(self, state: Any) -> Any:
        """The agent's output in this state (protocol-specific)."""

    def is_goal_configuration(self, config: Sequence[Any]) -> bool:
        """True iff the configuration is correct for the protocol's task.

        Default: exactly one agent outputs a truthy value (leader election).
        """
        return sum(1 for s in config if self.output(s)) == 1

    # ------------------------------------------------------------------
    # Finite-state encoding (the array backend's contract)
    # ------------------------------------------------------------------
    #
    # A protocol whose state space is small and finite can opt into the
    # vectorized numpy execution engine (:mod:`repro.sim.array_backend`)
    # by implementing the three hooks below.  The contract:
    #
    # * ``num_states()`` returns the encoding size ``S`` (or ``None`` to
    #   stay object-backend only);
    # * ``encode_state``/``decode_state`` are inverse bijections between
    #   the protocol's state objects and ``range(S)`` — every state
    #   reachable from any supported start configuration must encode, and
    #   ``encode_state(decode_state(k)) == k`` for all ``k < S``;
    # * the transition function must be *deterministic* (it never touches
    #   its ``rng`` argument), because the backend replays it from a
    #   ``S × S`` lookup table.  The paper presents its main protocol with
    #   sampling transitions, but Appendix B's derandomization argument is
    #   exactly why the deterministic-δ restriction loses no generality
    #   for protocols small enough to tabulate.

    def num_states(self) -> Optional[int]:
        """Size of the finite state encoding, or ``None``.

        ``None`` (the default) means the protocol has no tractably small
        finite encoding — e.g. ``ElectLeader_r`` with its
        ``2^{Θ(r² log n)}`` states — and can only run on the object
        backend.
        """
        return None

    def encode_state(self, state: Any) -> int:
        """Encode a state object as an integer in ``range(num_states())``."""
        raise NotImplementedError(f"protocol '{self.name}' has no finite state encoding")

    def decode_state(self, code: int) -> Any:
        """Decode an integer in ``range(num_states())`` to a fresh state object."""
        raise NotImplementedError(f"protocol '{self.name}' has no finite state encoding")

    def transition_table(self) -> "TransitionTable":
        """The dense pair-transition table used by the array backend.

        Default: the generic builder enumerates all ``S × S`` ordered
        state pairs through :meth:`transition` (rejecting transitions
        that consume randomness).  Protocols with structured δ — e.g.
        :class:`~repro.baselines.cai_izumi_wada.CaiIzumiWada`, whose
        ``n × n`` table has a two-line closed form — override this with
        a vectorized construction.
        """
        from repro.sim.array_backend import build_transition_table

        return build_transition_table(self)

    def goal_counts(self, counts) -> bool:
        """:meth:`is_goal_configuration` evaluated on a state-code count vector.

        ``counts`` is the counts backend's representation: an ``S``-length
        integer vector where ``counts[code]`` is the number of agents in
        the state ``decode_state(code)``.  Every predicate in this
        repository is symmetric in the agents (configurations are
        multisets semantically), so a counts form always exists.

        Default: expand the counts to a configuration list — *sharing*
        one decoded object per occupied code, which is safe because
        predicates only read — and delegate.  That is ``O(n)`` per call;
        finite-state protocols override this with ``O(S)`` aggregate
        forms (``counts[marked] == n``, permutation checks over rank
        counts, ...), which is what makes convergence detection at
        ``n ≥ 10⁶`` affordable on the counts backend.
        """
        from repro.sim.counts_backend import configuration_from_counts

        return self.is_goal_configuration(configuration_from_counts(self, counts))

    def goal_counts_rows(self, counts_rows):
        """:meth:`goal_counts` over a whole ``(T, S)`` batch of count rows.

        ``counts_rows`` stacks one count vector per trial (the batch
        engines' native representation); the result is one boolean per
        row, in any sequence ``numpy.asarray`` accepts.  Default: a
        Python loop over :meth:`goal_counts` — correct everywhere, but
        ``O(T)`` dispatches per convergence check.  Finite-state
        protocols override this with one vectorized expression written
        against the argument's own array operators (``counts_rows[:, 0]
        == 0``, ...), which keeps their modules numpy-free at import
        while answering every live row of a batch in one array op.
        """
        return [self.goal_counts(row) for row in counts_rows]

    # ------------------------------------------------------------------

    def clean_configuration(self, n: int) -> list[Any]:
        """A list of ``n`` independent clean start states."""
        return [self.initial_state() for _ in range(n)]

    def leader_count(self, config: Sequence[Any]) -> int:
        """Number of agents currently marked leader."""
        return sum(1 for s in config if self.output(s))


class RankingProtocol(PopulationProtocol):
    """A protocol whose output is a rank in ``[n]`` (leader = rank 1).

    All self-stabilizing protocols in this repository solve leader election
    via ranking, following the paper (Section 3): the existence of duplicate
    leaders and the absence of a leader both manifest as rank collisions.
    """

    n: int = 0

    @abc.abstractmethod
    def rank(self, state: Any) -> int:
        """The agent's current presumed rank in ``[n]`` (1-based)."""

    def output(self, state: Any) -> bool:
        """Leader iff rank 1 (the paper's convention)."""
        return self.rank(state) == 1

    def ranking_correct(self, config: Sequence[Any]) -> bool:
        """True iff the ranks form a permutation of ``1..n``."""
        ranks = sorted(self.rank(s) for s in config)
        return ranks == list(range(1, len(config) + 1))

    def is_goal_configuration(self, config: Sequence[Any]) -> bool:
        return self.ranking_correct(config)

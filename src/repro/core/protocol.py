"""Abstract interface for population protocols.

A population protocol (Angluin et al., JDistComp '06) is a pair ``(Q, δ)``
of a state space and a transition function applied to uniformly random
ordered pairs of agents.  Agents are anonymous: the transition function may
only read and write the two interacting *states*, never agent identities.

This module fixes the contract every protocol in this repository obeys:

* :meth:`PopulationProtocol.initial_state` produces the clean start state
  (used by non-self-stabilizing components and by benchmarks that measure
  convergence from a clean configuration);
* :meth:`PopulationProtocol.transition` mutates the two states in place
  (population protocol transitions are total functions ``Q×Q → Q×Q``; we
  use in-place mutation for speed and return nothing);
* :meth:`PopulationProtocol.output` maps a state to the protocol's output
  (for leader election: ``True`` iff the agent is marked leader);
* :meth:`PopulationProtocol.is_goal_configuration` is the correctness
  predicate used by the simulator's convergence detection.

Self-stabilization is exercised by bypassing ``initial_state`` and handing
the simulator an adversarial configuration (see
:mod:`repro.adversary.initializers`).
"""

from __future__ import annotations

import abc
from typing import Any, Sequence

from repro.scheduler.rng import RNG


class PopulationProtocol(abc.ABC):
    """Base class for all population protocols in this repository."""

    #: human-readable protocol name used by benchmarks and reports
    name: str = "protocol"

    @abc.abstractmethod
    def initial_state(self) -> Any:
        """A fresh clean start state (one per agent; never shared/aliased)."""

    @abc.abstractmethod
    def transition(self, u: Any, v: Any, rng: RNG) -> None:
        """Apply δ to the ordered pair ``(u, v)``, mutating both states.

        ``rng`` models the paper's assumption that agents can sample values
        (almost) uniformly at random; Appendix B shows how to compile such
        sampling down to scheduler randomness (see
        :mod:`repro.substrates.synthetic_coin`).
        """

    @abc.abstractmethod
    def output(self, state: Any) -> Any:
        """The agent's output in this state (protocol-specific)."""

    def is_goal_configuration(self, config: Sequence[Any]) -> bool:
        """True iff the configuration is correct for the protocol's task.

        Default: exactly one agent outputs a truthy value (leader election).
        """
        return sum(1 for s in config if self.output(s)) == 1

    # ------------------------------------------------------------------

    def clean_configuration(self, n: int) -> list[Any]:
        """A list of ``n`` independent clean start states."""
        return [self.initial_state() for _ in range(n)]

    def leader_count(self, config: Sequence[Any]) -> int:
        """Number of agents currently marked leader."""
        return sum(1 for s in config if self.output(s))


class RankingProtocol(PopulationProtocol):
    """A protocol whose output is a rank in ``[n]`` (leader = rank 1).

    All self-stabilizing protocols in this repository solve leader election
    via ranking, following the paper (Section 3): the existence of duplicate
    leaders and the absence of a leader both manifest as rank collisions.
    """

    n: int = 0

    @abc.abstractmethod
    def rank(self, state: Any) -> int:
        """The agent's current presumed rank in ``[n]`` (1-based)."""

    def output(self, state: Any) -> bool:
        """Leader iff rank 1 (the paper's convention)."""
        return self.rank(state) == 1

    def ranking_correct(self, config: Sequence[Any]) -> bool:
        """True iff the ranks form a permutation of ``1..n``."""
        ranks = sorted(self.rank(s) for s in config)
        return ranks == list(range(1, len(config) + 1))

    def is_goal_configuration(self, config: Sequence[Any]) -> bool:
        return self.ranking_correct(config)

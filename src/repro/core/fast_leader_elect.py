"""``FastLeaderElect`` — non-self-stabilizing leader election (Appendix D.2).

``AssignRanks_r`` needs a sheriff elected from an *awakening* configuration
(agents may wake up at very different times, so protocols that assume a
common start state do not apply).  The paper's self-contained protocol:

* on its first activation an agent draws an identifier u.a.r. from
  ``[n^3]`` and starts a personal countdown ``LECount = c·log n``
  (``c > 14`` in the paper so that two sequential epidemics complete
  first, Lemma D.11);
* the minimum identifier spreads by a two-way epidemic through the
  ``MinIdentifier`` field;
* when an agent's countdown expires it sets ``LeaderDone`` and declares
  itself leader iff its own identifier equals the minimum it has seen.

With identifiers from ``[n^3]`` the minimum is unique w.h.p. (union bound
over ``O(n^2)`` pairs), so w.h.p. exactly one leader emerges within
``O(log n)`` parallel time (Lemma D.10).

This module operates on the FastLeaderElect fields embedded in
:class:`~repro.core.state.ARState`; :mod:`repro.core.assign_ranks` invokes
it while both agents are in the ``LEADER_ELECTION`` phase and converts the
winner into the sheriff.  A standalone protocol wrapper for direct
measurement (experiment E12) lives in
:class:`repro.core.fast_leader_elect.FastLeaderElectProtocol`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.params import ProtocolParams
from repro.core.protocol import PopulationProtocol
from repro.core.state import ARState
from repro.scheduler.rng import RNG


def activate(state: ARState, params: ProtocolParams, rng: RNG) -> None:
    """First activation: draw the identifier, start the countdown.

    Idempotent — does nothing if the agent already drew an identifier.
    """
    if state.identifier is not None:
        return
    state.identifier = rng.randrange(1, params.identifier_space + 1)
    state.min_identifier = state.identifier
    state.le_count = params.le_count_max
    state.leader_done = False
    state.leader_bit = False


def leader_election_step(u: ARState, v: ARState, params: ProtocolParams, rng: RNG) -> None:
    """One FastLeaderElect interaction between two leader-election agents."""
    activate(u, params, rng)
    activate(v, params, rng)

    # Two-way min-epidemic on identifiers (Eq. 10).
    assert u.min_identifier is not None and v.min_identifier is not None
    merged = min(u.min_identifier, v.min_identifier)
    u.min_identifier = merged
    v.min_identifier = merged

    # Personal countdowns; on expiry the agent decides.
    for agent in (u, v):
        if agent.leader_done:
            continue
        agent.le_count -= 1
        if agent.le_count <= 0:
            agent.le_count = 0
            agent.leader_done = True
            agent.leader_bit = agent.identifier == agent.min_identifier


# ---------------------------------------------------------------------------
# Standalone protocol for direct measurement (experiment E12)
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class LEState:
    """Standalone FastLeaderElect agent state (Fig. 4)."""

    identifier: Optional[int] = None
    min_identifier: Optional[int] = None
    le_count: int = 0
    leader_done: bool = False
    leader_bit: bool = False

    def clone(self) -> "LEState":
        return LEState(
            self.identifier,
            self.min_identifier,
            self.le_count,
            self.leader_done,
            self.leader_bit,
        )


class FastLeaderElectProtocol(PopulationProtocol):
    """FastLeaderElect as a standalone population protocol.

    Started from a clean configuration (all agents un-activated, modelling
    an awakening configuration in which every agent activates on its first
    interaction), it elects a unique leader within ``O(log n)`` parallel
    time w.h.p. — Lemma D.10.
    """

    name = "fast-leader-elect"

    def __init__(self, params: ProtocolParams):
        self.params = params
        self.n = params.n

    def initial_state(self) -> LEState:
        return LEState()

    def transition(self, u: LEState, v: LEState, rng: RNG) -> None:
        self._activate(u, rng)
        self._activate(v, rng)
        assert u.min_identifier is not None and v.min_identifier is not None
        merged = min(u.min_identifier, v.min_identifier)
        u.min_identifier = merged
        v.min_identifier = merged
        for agent in (u, v):
            if agent.leader_done:
                continue
            agent.le_count -= 1
            if agent.le_count <= 0:
                agent.le_count = 0
                agent.leader_done = True
                agent.leader_bit = agent.identifier == agent.min_identifier

    def _activate(self, state: LEState, rng: RNG) -> None:
        if state.identifier is None:
            state.identifier = rng.randrange(1, self.params.identifier_space + 1)
            state.min_identifier = state.identifier
            state.le_count = self.params.le_count_max

    def output(self, state: LEState) -> bool:
        return state.leader_bit

    def all_done(self, config: Sequence[LEState]) -> bool:
        """True iff every agent has decided."""
        return all(s.leader_done for s in config)

    def is_goal_configuration(self, config: Sequence[LEState]) -> bool:
        """Done with exactly one leader."""
        return self.all_done(config) and self.leader_count(config) == 1

"""Protocol parameters for ``ElectLeader_r`` and its sub-protocols.

The paper states every bound asymptotically and leaves the leading constants
implicit (``C_max = Θ((n/r) log n)``, ``P_max = c_prob · (n/r) · log n``,
``R_max = 60 log n``, message pools of size ``Θ(r^2)`` per rank, signature
space ``[r^5]`` and so on).  For a runnable system every constant must be
pinned down; :class:`ProtocolParams` collects all of them in one place with
defaults chosen so that (a) the asymptotic *shape* in ``n`` and ``r`` matches
the paper exactly, and (b) populations of a few dozen to a few hundred agents
stabilize in simulable numbers of interactions.

All logarithms are natural, following the paper's convention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def _log(n: int) -> float:
    """Natural log clamped below at 1 so tiny populations get sane timers."""
    return max(1.0, math.log(max(2, n)))


@dataclass(frozen=True)
class ProtocolParams:
    """All tunable constants of ``ElectLeader_r``.

    Parameters
    ----------
    n:
        Population size.  The protocol is strongly non-uniform (Cai, Izumi
        and Wada show this is necessary for self-stabilizing leader
        election), so ``n`` is part of the transition function.
    r:
        Space-time trade-off parameter, ``1 <= r <= n/2``.  Larger ``r``
        means faster stabilization — ``O((n^2/r) log n)`` interactions —
        at the price of ``2^{O(r^2 log n)}`` states.

    The ``c_*`` attributes are the hidden constants of the paper's
    ``Θ(·)``/``O(·)`` expressions; see each property's docstring for which
    paper quantity it instantiates.
    """

    n: int
    r: int = 1

    # --- PropagateReset (Appendix C) -------------------------------------
    c_reset: float = 2.0  #: R_max = c_reset * log n  (paper: 60 log n)
    c_delay: float = 4.0  #: D_max = c_delay * log n  (paper: Ω(log n + R_max))

    # --- ElectLeader wrapper (Section 4) ----------------------------------
    c_countdown: float = 8.0  #: C_max = c_countdown * (n/r) * log n
    c_countdown_floor: float = 90.0  #: C_max >= c_countdown_floor * log n

    # --- StableVerify (Section 5) ------------------------------------------
    c_prob: float = 6.0  #: P_max = c_prob * (n/r) * log n
    c_prob_floor: float = 60.0  #: P_max >= c_prob_floor * log n
    generations: int = 6  #: generation counter modulus (paper: Z_6)

    # --- DetectCollision (Section 5.1) --------------------------------------
    msg_factor: int = 2  #: messages governed per rank = msg_factor * group_size^2
    sig_exponent: int = 5  #: signature space = [group_size ** sig_exponent]
    c_sig: float = 4.0  #: signature refresh period = c_sig * log(group_size)

    # --- AssignRanks (Appendix D) -------------------------------------------
    c_labels: float = 2.0  #: labels per deputy = ceil(c_labels * n / r)  (paper: c > 1)
    c_sleep: float = 6.0  #: sleep timer = c_sleep * log n
    c_le: float = 6.0  #: FastLeaderElect timer = c_le * log n (paper: c > 14)
    id_exponent: int = 3  #: FastLeaderElect identifier space = [n ** id_exponent]

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"population size must be >= 2, got n={self.n}")
        if not 1 <= self.r <= max(1, self.n // 2):
            raise ValueError(
                f"trade-off parameter must satisfy 1 <= r <= n/2, got r={self.r}, n={self.n}"
            )
        if self.generations < 3:
            raise ValueError("generation modulus must be >= 3 for soft-reset epidemics")
        if self.c_labels <= 1.0:
            raise ValueError("c_labels must exceed 1 (paper requires c > 1 label slack)")

    # ------------------------------------------------------------------
    # Derived quantities (one per paper timer / pool size)
    # ------------------------------------------------------------------

    @property
    def log_n(self) -> float:
        """Natural log of the population size (clamped at 1)."""
        return _log(self.n)

    @property
    def reset_count_max(self) -> int:
        """``R_max``: reset epidemic countdown (Appendix C, Lemma C.1)."""
        return max(2, math.ceil(self.c_reset * self.log_n))

    @property
    def delay_timer_max(self) -> int:
        """``D_max``: dormancy delay before re-awakening (Appendix C)."""
        return max(2, math.ceil(self.c_delay * self.log_n))

    @property
    def countdown_max(self) -> int:
        """``C_max = Θ((n/r) log n)``: ranker→verifier fallback timer (Sec. 4).

        Floored at ``c_countdown_floor · log n``: the ranking pipeline's
        per-agent cost has a ``Θ(log n)`` component independent of ``r``
        (FastLeaderElect timer, sleep timer, broadcast epidemics), so for
        ``r = Θ(n)`` the bare ``(n/r)·log n`` formula would under-provision
        by a constant factor and livelock the protocol in a reset loop.
        Since ``n/r >= 2``, the floor changes ``C_max`` by at most the
        constant factor ``c_countdown_floor / (2 c_countdown)`` and the
        ``Θ((n/r) log n)`` asymptotics are preserved.
        """
        formula = self.c_countdown * (self.n / self.r) * self.log_n
        floor = self.c_countdown_floor * self.log_n
        return max(4, math.ceil(max(formula, floor)))

    @property
    def probation_max(self) -> int:
        """``P_max = c_prob (n/r) log n``: probation timer bound (Sec. 5).

        Floored at ``c_prob_floor · log n`` for the same reason as
        :attr:`countdown_max` — probation must outlast the constant-factor
        ``Θ(log n)`` per-agent cost of collision detection at ``r = Θ(n)``.
        """
        formula = self.c_prob * (self.n / self.r) * self.log_n
        floor = self.c_prob_floor * self.log_n
        return max(4, math.ceil(max(formula, floor)))

    @property
    def labels_per_deputy(self) -> int:
        """``ceil(c n / r)``: size of each deputy's label pool (Appendix D)."""
        return math.ceil(self.c_labels * self.n / self.r)

    @property
    def sleep_timer_max(self) -> int:
        """``c_sleep log n``: interactions slept before self-ranking (Prot. 11)."""
        return max(2, math.ceil(self.c_sleep * self.log_n))

    @property
    def le_count_max(self) -> int:
        """``c log n`` timer of FastLeaderElect (Appendix D.2, c > 14 in paper)."""
        return max(2, math.ceil(self.c_le * self.log_n))

    @property
    def identifier_space(self) -> int:
        """``n^3`` identifier space of FastLeaderElect (Lemma D.10)."""
        return self.n**self.id_exponent

    # Group-local quantities.  ``DetectCollision_r`` is instantiated per
    # rank-group of size m in {ceil(r/2) .. r}; the paper parametrizes the
    # message system by the group size (written r_u for agent u).

    def messages_per_rank(self, group_size: int) -> int:
        """Number of circulating messages governed by one rank.

        Paper: ``2 r_u^2`` (the msgs array is indexed by ``[2 r_u^2]``).  We
        scale by ``msg_factor`` and clamp so even groups of size 1 circulate
        at least two messages per rank.
        """
        m = max(2, group_size)
        return self.msg_factor * m * m

    def signature_space(self, group_size: int) -> int:
        """Signature space ``[r_u^5]`` (Sec. 5.1); clamped to >= 16."""
        return max(16, max(2, group_size) ** self.sig_exponent)

    def signature_period(self, group_size: int) -> int:
        """Interactions between signature refreshes, ``c log r_u`` (Prot. 13)."""
        return max(2, math.ceil(self.c_sig * _log(max(2, group_size))))

    # ------------------------------------------------------------------

    def with_updates(self, **changes: object) -> "ProtocolParams":
        """Return a copy with the given fields replaced."""
        from dataclasses import replace

        return replace(self, **changes)


@dataclass(frozen=True)
class BaselineParams:
    """Constants shared by the baseline protocols in :mod:`repro.baselines`."""

    n: int
    c_timer: float = 6.0  #: generic Θ(log n) timers in the baselines
    name_exponent: int = 3  #: Burman-style name space = [n ** name_exponent]
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"population size must be >= 2, got n={self.n}")

    @property
    def log_n(self) -> float:
        return _log(self.n)

    @property
    def timer_max(self) -> int:
        return max(2, math.ceil(self.c_timer * self.log_n))

    @property
    def name_space(self) -> int:
        return self.n**self.name_exponent

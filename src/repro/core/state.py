"""Agent state containers for ``ElectLeader_r``.

Fig. 1 of the paper: an agent's state is a ``role`` tag plus the *active*
fields of that role — resetters carry ``PropagateReset`` state, rankers
carry ``AssignRanks_r`` state and a ``countdown``, verifiers carry a
``rank`` and ``StableVerify_r`` state (which nests ``DetectCollision_r``
state).  Whenever an agent changes role, all newly inactive fields are
deleted; we model this by setting the corresponding sub-state attribute to
``None`` so that stale data can never leak across roles.

The total state space is the *disjoint union* over roles of the
cross-products of the active fields; :mod:`repro.analysis.statespace`
computes its size from these definitions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.roles import Role


# ---------------------------------------------------------------------------
# PropagateReset (Appendix C)
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class PRState:
    """State of a resetting agent (Protocol 4).

    ``reset_count ∈ {0..R_max}`` drives the reset epidemic; an agent whose
    count has hit zero is *dormant* and waits out ``delay_timer ∈
    {0..D_max}`` before restarting as a ranker.
    """

    reset_count: int
    delay_timer: int

    @property
    def dormant(self) -> bool:
        """Dormant = the reset wave has passed, the agent awaits restart."""
        return self.reset_count == 0

    def clone(self) -> "PRState":
        return PRState(self.reset_count, self.delay_timer)


# ---------------------------------------------------------------------------
# AssignRanks (Appendix D) and FastLeaderElect (Appendix D.2)
# ---------------------------------------------------------------------------


class ARPhase(enum.Enum):
    """The six agent types of ``AssignRanks_r`` (Appendix D)."""

    LEADER_ELECTION = "leader_election"
    SHERIFF = "sheriff"
    DEPUTY = "deputy"
    RECIPIENT = "recipient"
    SLEEPER = "sleeper"
    RANKED = "ranked"


@dataclass(slots=True)
class ARState:
    """State of a ranking agent.

    Fields are grouped by the AR phase that uses them; inactive fields hold
    ``None``/defaults.  ``channel`` is the per-deputy max-counter broadcast
    array shared by all non-LE, non-ranked phases; ``rank`` is the agent's
    final computed rank (initialised to 1 and written exactly once, when
    the agent becomes ranked — Protocol 11).
    """

    phase: ARPhase = ARPhase.LEADER_ELECTION

    # FastLeaderElect fields (Appendix D.2, Fig. 4).
    identifier: Optional[int] = None  #: drawn u.a.r. from [n^3] on first activation
    min_identifier: Optional[int] = None  #: min-epidemic value
    le_count: int = 0  #: countdown, initialised c·log n on first activation
    leader_done: bool = False
    leader_bit: bool = False

    # Sheriff fields: inclusive badge range still to distribute.
    low_badge: int = 0
    high_badge: int = 0

    # Deputy fields.
    deputy_id: int = 0
    counter: int = 0  #: labels given out, including the deputy's own

    # Recipient / sleeper fields.
    label: Optional[tuple[int, int]] = None  #: (deputy id, per-deputy index)
    sleep_timer: int = 0

    # Shared fields.
    channel: tuple[int, ...] = ()  #: channel[i-1] = max observed counter of deputy i
    rank: int = 1  #: final rank; meaningful once phase == RANKED

    @property
    def in_leader_election(self) -> bool:
        return self.phase is ARPhase.LEADER_ELECTION

    @property
    def ranked(self) -> bool:
        return self.phase is ARPhase.RANKED

    def clone(self) -> "ARState":
        return ARState(
            phase=self.phase,
            identifier=self.identifier,
            min_identifier=self.min_identifier,
            le_count=self.le_count,
            leader_done=self.leader_done,
            leader_bit=self.leader_bit,
            low_badge=self.low_badge,
            high_badge=self.high_badge,
            deputy_id=self.deputy_id,
            counter=self.counter,
            label=self.label,
            sleep_timer=self.sleep_timer,
            channel=self.channel,
            rank=self.rank,
        )


# ---------------------------------------------------------------------------
# DetectCollision (Section 5.1)
# ---------------------------------------------------------------------------


class Top:
    """The error state ``⊤`` of ``DetectCollision_r`` (a singleton).

    ``⊤`` signals that a collision was found: a shared rank, a duplicated
    circulating message, or a message whose content contradicts its
    governor's recorded observation.
    """

    _instance: Optional["Top"] = None

    def __new__(cls) -> "Top":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "⊤"


#: The singleton error state.
TOP = Top()


@dataclass(slots=True)
class DCState:
    """Non-error state of ``DetectCollision_r`` (Fig. 3).

    ``msgs`` stores the circulating messages this agent currently *holds*,
    as a dict-of-dicts ``{governing rank: {message id: content}}`` — the
    paper's sparse array indexed by ``𝒢(rank) × [2 r_u^2]`` with values in
    ``[r_u^5]``.  ``observations`` is the dense array of the agent's own
    recorded contents for the messages *its* rank governs.
    """

    signature: int = 1
    counter: int = 1
    #: held messages: governing rank -> {message id -> content}
    msgs: dict[int, dict[int, int]] = field(default_factory=dict)
    #: own recorded contents, observations[j-1] for message id j
    observations: list[int] = field(default_factory=list)

    def held_count(self) -> int:
        """Total number of messages currently held."""
        return sum(len(per_rank) for per_rank in self.msgs.values())

    def holds(self, rank: int, msg_id: int) -> bool:
        per_rank = self.msgs.get(rank)
        return per_rank is not None and msg_id in per_rank

    def clone(self) -> "DCState":
        return DCState(
            signature=self.signature,
            counter=self.counter,
            msgs={rank: dict(ids) for rank, ids in self.msgs.items()},
            observations=list(self.observations),
        )


#: A DetectCollision state is either ``TOP`` or a :class:`DCState`.
DCValue = "DCState | Top"


# ---------------------------------------------------------------------------
# StableVerify (Section 5)
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class SVState:
    """State of a verifying agent (Fig. 2): generation, probation, DC state."""

    generation: int = 0  #: in Z_6
    probation_timer: int = 0  #: in {0..P_max}
    dc: "DCState | Top" = field(default_factory=DCState)

    @property
    def has_error(self) -> bool:
        return self.dc is TOP

    def clone(self) -> "SVState":
        dc = self.dc if self.dc is TOP else self.dc.clone()
        return SVState(self.generation, self.probation_timer, dc)


# ---------------------------------------------------------------------------
# The full agent state (Fig. 1)
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class AgentState:
    """One agent's complete ``ElectLeader_r`` state.

    Exactly one of ``pr``/``ar``/``sv`` is populated, matching ``role``;
    ``rank`` and ``countdown`` are the wrapper-level fields of Fig. 1
    (``rank`` is active for verifiers, ``countdown`` for rankers).
    """

    role: Role = Role.RANKING
    rank: int = 1
    countdown: int = 0
    pr: Optional[PRState] = None
    ar: Optional[ARState] = None
    sv: Optional[SVState] = None

    def clone(self) -> "AgentState":
        return AgentState(
            role=self.role,
            rank=self.rank,
            countdown=self.countdown,
            pr=self.pr.clone() if self.pr is not None else None,
            ar=self.ar.clone() if self.ar is not None else None,
            sv=self.sv.clone() if self.sv is not None else None,
        )

    def consistent(self) -> bool:
        """True iff exactly the role's sub-state is populated."""
        populated = {
            Role.RESETTING: (self.pr is not None, self.ar is None, self.sv is None),
            Role.RANKING: (self.pr is None, self.ar is not None, self.sv is None),
            Role.VERIFYING: (self.pr is None, self.ar is None, self.sv is not None),
        }[self.role]
        return all(populated)

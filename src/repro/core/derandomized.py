"""Appendix-B derandomization wired into collision detection.

The main protocols are presented (as in the paper) with transitions that
sample values u.a.r.  Lemma B.1 shows such sampling compiles down to pure
scheduler randomness: each agent flips a public coin on every interaction,
records the last ``log N`` partner coins, and reads samples off that
array — almost-uniform with ``P[x] ∈ [1/(2N), 2/N]`` once the population's
coins have mixed.

This module applies the construction to ``DetectCollision_r``, the one
component that samples *recurrently* (signature refreshes every
``Θ(log r)`` own interactions — exactly Lemma B.1's premise 2).
:class:`DerandomizedDetectCollisionProtocol` is a drop-in variant of
:class:`~repro.core.detect_collision.DetectCollisionProtocol` whose agents
carry :class:`~repro.substrates.synthetic_coin.SyntheticCoinState` and
whose signature refreshes read the coin array through
:class:`CoinBackedSampler` instead of touching the simulator's RNG.

The state blow-up is the predicted ``O(N log N)`` factor: ``log N``
observation bits, a ``log log N``-bit cyclic counter and one coin bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.core.detect_collision import detect_collision, initial_dc_state
from repro.core.params import ProtocolParams
from repro.core.partition import RankPartition
from repro.core.protocol import PopulationProtocol
from repro.core.state import TOP, DCState, Top
from repro.scheduler.rng import RNG
from repro.substrates.synthetic_coin import SyntheticCoinState, bits_needed


class CoinBackedSampler:
    """A ``randrange``-compatible facade over a synthetic-coin array.

    Values are read as the integer encoded by the agent's last ``k``
    partner-coin observations, folded into the requested range by modular
    reduction.  The fold costs at most another factor-2 distortion on top
    of Lemma B.1's ``[1/(2N), 2/N]`` envelope — still "almost u.a.r." in
    the paper's sense, and all the analysis needs.
    """

    def __init__(self, coin: SyntheticCoinState):
        self._coin = coin

    def randrange(self, start: int, stop: Optional[int] = None) -> int:
        if stop is None:
            start, stop = 0, start
        span = stop - start
        if span <= 0:
            raise ValueError(f"empty range: randrange({start}, {stop})")
        value = 0
        for bit in self._coin.coins:
            value = (value << 1) | bit
        return start + value % span


@dataclass(slots=True)
class DerandomizedDCState:
    """Standalone derandomized collision-detection agent."""

    rank: int
    dc: Union[DCState, Top]
    coin: SyntheticCoinState

    def clone(self) -> "DerandomizedDCState":
        dc = self.dc if self.dc is TOP else self.dc.clone()
        return DerandomizedDCState(self.rank, dc, self.coin.clone())


class DerandomizedDetectCollisionProtocol(PopulationProtocol):
    """``DetectCollision_r`` with synthetic-coin signature sampling.

    The transition function consumes **no** external randomness: the
    ``rng`` argument is ignored, as the population model's deterministic
    δ requires.  All stochasticity comes from the scheduler, exactly as
    Lemma B.1 prescribes.
    """

    name = "detect-collision-derandomized"

    def __init__(self, params: ProtocolParams):
        self.params = params
        self.n = params.n
        self.partition = RankPartition(params.n, params.r)
        # Coin array sized for the largest signature space in use.
        largest_group = max(self.partition.sizes())
        self.coin_bits = bits_needed(params.signature_space(largest_group))

    def _fresh_coin(self) -> SyntheticCoinState:
        return SyntheticCoinState(coin=0, coins=[0] * self.coin_bits, coin_count=0)

    def initial_state(self) -> DerandomizedDCState:  # pragma: no cover - interface
        raise NotImplementedError("use state_for_rank; ranks are explicit here")

    def state_for_rank(self, rank: int) -> DerandomizedDCState:
        return DerandomizedDCState(
            rank=rank,
            dc=initial_dc_state(rank, self.params, self.partition),
            coin=self._fresh_coin(),
        )

    def clean_configuration(self, n: int) -> list[DerandomizedDCState]:
        if n != self.n:
            raise ValueError(f"protocol is non-uniform: configured for n={self.n}")
        return [self.state_for_rank(rank) for rank in range(1, n + 1)]

    def transition(self, u: DerandomizedDCState, v: DerandomizedDCState, rng: RNG) -> None:
        # Synthetic-coin bookkeeping (Eqs. 4-7), before the payload step so
        # both agents observe the partner's pre-flip coin.
        u_coin_before, v_coin_before = u.coin.coin, v.coin.coin
        for agent, partner_coin in ((u, v_coin_before), (v, u_coin_before)):
            coin = agent.coin
            coin.coin = 1 - coin.coin
            coin.coin_count = (coin.coin_count + 1) % self.coin_bits
            coin.coins[coin.coin_count] = partner_coin

        u.dc, v.dc = detect_collision(
            u.rank,
            u.dc,
            v.rank,
            v.dc,
            self.params,
            self.partition,
            rng=CoinBackedSampler(u.coin),  # type: ignore[arg-type]
            rng_v=CoinBackedSampler(v.coin),  # type: ignore[arg-type]
        )

    def output(self, state: DerandomizedDCState) -> bool:
        return state.dc is TOP

    def error_detected(self, config: Sequence[DerandomizedDCState]) -> bool:
        return any(s.dc is TOP for s in config)

    def is_goal_configuration(self, config: Sequence[DerandomizedDCState]) -> bool:
        return self.error_detected(config)

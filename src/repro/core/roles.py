"""Agent roles and generation arithmetic.

``ElectLeader_r`` gates its sub-protocols on a per-agent ``role`` field
(Section 4): *resetters* run ``PropagateReset``, *rankers* run
``AssignRanks_r`` and *verifiers* run ``StableVerify_r``.  The verifier
layer additionally tracks a *generation* counter in ``Z_6`` used by the
soft-reset epidemic (Section 3.2); :func:`generation_ahead` implements the
"larger by one (mod 6)" comparison of Protocol 2.
"""

from __future__ import annotations

import enum


class Role(enum.Enum):
    """The three top-level roles of ``ElectLeader_r`` (Fig. 1)."""

    RESETTING = "resetting"
    RANKING = "ranking"
    VERIFYING = "verifying"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Role.{self.name}"


def generation_successor(generation: int, modulus: int = 6) -> int:
    """The generation a soft reset advances to: ``g + 1 (mod modulus)``."""
    return (generation + 1) % modulus


def generation_ahead(own: int, other: int, modulus: int = 6) -> bool:
    """True iff ``other`` is exactly one generation ahead of ``own`` (mod m).

    Protocol 2 lines 10-12: an agent with probation timer 0 whose partner is
    one generation ahead adopts the successor generation via epidemic.  Any
    other difference is illegal and forces a hard reset (line 13).
    """
    return (own + 1) % modulus == other % modulus


def generations_equal(own: int, other: int, modulus: int = 6) -> bool:
    """True iff the two agents are in the same generation (mod m)."""
    return own % modulus == other % modulus

"""``PropagateReset`` — the epidemic hard-reset mechanism (Appendix C).

The protocol, due to Burman et al. (PODC '21), resets the whole population
to a well-defined clean configuration:

* an agent *triggers* a reset by becoming a resetter with
  ``resetCount = R_max`` (Protocol 5);
* resetters with positive count infect computing agents and synchronize
  counts downward via ``max(u−1, v−1, 0)`` (Protocol 4, lines 1-4);
* an agent whose count hits zero becomes *dormant* and waits out
  ``delayTimer = D_max`` interactions — by Lemma C.1 the whole population
  is dormant before any timer expires, w.h.p.;
* a dormant agent restarts (``Reset``) when its delay expires or when it
  meets a computing agent, so awakening spreads as an epidemic
  (Theorem C.2 / Corollary C.3).

``Reset`` itself (Protocol 6) is supplied by the *user* of the mechanism —
here ``ElectLeader_r``, which restarts agents as rankers — so this module
exposes the transition as a function over :class:`AgentState` taking a
``reset_agent`` callback.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.params import ProtocolParams
from repro.core.protocol import PopulationProtocol
from repro.core.roles import Role
from repro.core.state import AgentState, PRState
from repro.scheduler.rng import RNG

#: Callback (re-)initializing an agent when it leaves dormancy (Protocol 6).
ResetCallback = Callable[[AgentState], None]


def trigger_reset(state: AgentState, params: ProtocolParams) -> None:
    """Protocol 5: make ``state`` a freshly-triggered resetter."""
    state.role = Role.RESETTING
    state.pr = PRState(
        reset_count=params.reset_count_max,
        delay_timer=params.delay_timer_max,
    )
    # Role change deletes the newly inactive fields (Fig. 1).
    state.ar = None
    state.sv = None
    state.rank = 1
    state.countdown = 0


def propagate_reset(
    u: AgentState,
    v: AgentState,
    params: ProtocolParams,
    reset_agent: ResetCallback,
) -> None:
    """Protocol 4, symmetrized over the (unordered) interacting pair.

    The paper's pseudocode is written with ``u`` the resetter; interactions
    in the population model update both participants, so we apply the
    infection / countdown / dormancy rules to whichever participants are
    resetting.  At least one of ``u``, ``v`` must be resetting.
    """
    if u.role is not Role.RESETTING and v.role is not Role.RESETTING:
        raise ValueError("propagate_reset requires at least one resetting agent")

    # Snapshot pre-interaction counts to evaluate "just became 0" (line 6).
    pre_counts = {
        id(a): (a.pr.reset_count if a.role is Role.RESETTING and a.pr is not None else None)
        for a in (u, v)
    }

    # Lines 1-2: infection.  A resetter with positive count turns a
    # computing partner into a resetter (count 0, full delay).
    for a, b in ((u, v), (v, u)):
        if (
            a.role is Role.RESETTING
            and a.pr is not None
            and a.pr.reset_count > 0
            and b.role is not Role.RESETTING
        ):
            b.role = Role.RESETTING
            b.pr = PRState(reset_count=0, delay_timer=params.delay_timer_max)
            b.ar = None
            b.sv = None
            b.rank = 1
            b.countdown = 0

    # Lines 3-4: two resetters synchronize their countdowns downward.
    if u.role is Role.RESETTING and v.role is Role.RESETTING:
        assert u.pr is not None and v.pr is not None
        merged = max(u.pr.reset_count - 1, v.pr.reset_count - 1, 0)
        u.pr.reset_count = merged
        v.pr.reset_count = merged

    # Lines 5-11: dormancy countdown and awakening.
    for a, b in ((u, v), (v, u)):
        if a.role is not Role.RESETTING or a.pr is None or a.pr.reset_count != 0:
            continue
        pre = pre_counts[id(a)]
        just_became_zero = pre is None or pre > 0
        if just_became_zero:
            a.pr.delay_timer = params.delay_timer_max
        else:
            a.pr.delay_timer = max(0, a.pr.delay_timer - 1)
        partner_computing = b.role is not Role.RESETTING
        if a.pr.delay_timer == 0 or partner_computing:
            reset_agent(a)


class ResetEpidemicProtocol(PopulationProtocol):
    """Standalone ``PropagateReset`` as a runnable population protocol.

    Wraps the reset epidemic with the trivial ``Reset`` callback "become a
    clean awake agent", turning Appendix C into a self-contained protocol:
    from any configuration with a triggered resetter, the reset wave
    infects everyone, the population goes dormant, and every agent
    restarts awake (Theorem C.2 / Corollary C.3).  The goal predicate is
    "everyone awake", which is absorbing — two awake agents are a no-op.

    This is the one *finite-state, deterministic* protocol in ``core/``:
    its state is awake or ``(reset_count ≤ R_max, delay_timer ≤ D_max)``,
    both timers ``Θ(log n)``, so it tabulates for the array backend where
    the full ``ElectLeader_r`` cannot.  Experiments use it to measure the
    reset epidemic's completion time in isolation at populations far
    beyond what the object backend reaches.
    """

    name = "reset-epidemic"

    def __init__(self, params: ProtocolParams):
        self.params = params
        self.n = params.n

    # ------------------------------------------------------------------

    @staticmethod
    def _restart(state: AgentState) -> None:
        """Protocol 6, degenerate form: restart as a clean awake agent."""
        state.role = Role.RANKING
        state.pr = None
        state.ar = None
        state.sv = None
        state.rank = 1
        state.countdown = 0

    def initial_state(self) -> AgentState:
        """A clean awake agent (the post-restart state)."""
        state = AgentState()
        self._restart(state)
        return state

    def triggered_state(self) -> AgentState:
        """A freshly-triggered resetter (Protocol 5)."""
        state = AgentState()
        trigger_reset(state, self.params)
        return state

    def triggered_configuration(self, n: int, sources: int = 1) -> list[AgentState]:
        """``n`` agents with the first ``sources`` freshly triggered."""
        if not 1 <= sources <= n:
            raise ValueError(f"need 1 <= sources <= n, got {sources}, n={n}")
        return [
            self.triggered_state() if index < sources else self.initial_state()
            for index in range(n)
        ]

    def transition(self, u: AgentState, v: AgentState, rng: RNG) -> None:
        if u.role is Role.RESETTING or v.role is Role.RESETTING:
            propagate_reset(u, v, self.params, self._restart)

    def output(self, state: AgentState) -> bool:
        """True iff the agent is awake (has restarted or never reset)."""
        return state.role is not Role.RESETTING

    def is_goal_configuration(self, config: Sequence[AgentState]) -> bool:
        """The reset completed: every agent is awake again."""
        return all(s.role is not Role.RESETTING for s in config)

    def goal_counts(self, counts) -> bool:
        """Counts form (counts backend): every agent in the awake code 0."""
        return int(counts[0]) == int(counts.sum())

    def goal_counts_rows(self, counts_rows):
        """Row-vectorized form (batch engines): one array op over rows."""
        return counts_rows[:, 0] == counts_rows.sum(axis=1)

    # ------------------------------------------------------------------
    # Finite-state encoding (array backend): code 0 is the awake agent;
    # resetters occupy a dense (reset_count, delay_timer) grid above it.
    # ------------------------------------------------------------------

    def num_states(self) -> int:
        return 1 + (self.params.reset_count_max + 1) * (self.params.delay_timer_max + 1)

    def encode_state(self, state: AgentState) -> int:
        if state.role is not Role.RESETTING:
            return 0
        assert state.pr is not None
        return 1 + state.pr.reset_count * (self.params.delay_timer_max + 1) + state.pr.delay_timer

    def decode_state(self, code: int) -> AgentState:
        if code == 0:
            return self.initial_state()
        block = self.params.delay_timer_max + 1
        count, delay = divmod(code - 1, block)
        state = AgentState()
        state.role = Role.RESETTING
        state.pr = PRState(reset_count=count, delay_timer=delay)
        state.rank = 1
        state.countdown = 0
        return state

    def transition_table(self):
        """Closed-form ``S × S`` table (replaces the generic S² builder).

        The generic enumeration makes ``S²`` Python δ calls; with
        ``S = 1 + (R_max+1)(D_max+1) = Θ(log² n)`` that is ~600k calls at
        ``n = 10⁴`` and ~2.7M at ``n = 10⁶`` — the cap that kept nightly
        reset rows at ``n = 10⁴``.  ``propagate_reset``'s case analysis
        over (awake, resetter(c, d)) pairs has a direct vectorized form:

        * awake × awake — no-op;
        * resetter(c, d) × awake — ``c = 0``: the dormant agent meets a
          computing one and both end awake (awakening epidemic);
          ``c ≥ 1``: infection then downward sync, so the resetter drops
          to ``c − 1`` (delay refreshed to ``D_max`` iff it just hit 0)
          and the partner becomes ``resetter(c − 1, D_max)``;
        * resetter(c₁, d₁) × resetter(c₂, d₂) — both counts become
          ``m = max(c₁ − 1, c₂ − 1, 0)``; if ``m ≥ 1`` delays are
          untouched; if ``m = 0`` each agent independently refreshes its
          delay to ``D_max`` (if its count just became 0) or ticks it
          down, awakening when the new delay hits 0.

        A regression test checks this table equals the generic builder's
        entry for entry.
        """
        from repro.sim.array_backend import TransitionTable, require_numpy

        np = require_numpy()
        d_max = self.params.delay_timer_max
        block = d_max + 1
        size = self.num_states()
        codes = np.arange(size, dtype=np.int64)
        # Per-code fields: count/delay are -1 for the awake code so the
        # masks below can treat "awake" uniformly.
        count = np.where(codes == 0, -1, (codes - 1) // block)
        delay = np.where(codes == 0, -1, (codes - 1) % block)

        def resetter(c, d):
            return 1 + c * block + d

        def post_sync(own_count, own_delay, merged):
            """One agent's code after its count becomes ``merged``."""
            # merged >= 1: delay untouched.  merged == 0: refresh to D_max
            # if the count just dropped to 0, else tick down and awaken at
            # 0 (Protocol 4 lines 5-11 with a resetting partner).
            ticked = np.maximum(own_delay - 1, 0)
            dormant = np.where(
                own_count > 0,
                resetter(0, d_max),
                np.where(ticked == 0, 0, resetter(0, ticked)),
            )
            return np.where(merged > 0, resetter(merged, own_delay), dormant)

        ca, cb = count[:, None], count[None, :]
        da, db = delay[:, None], delay[None, :]
        a_code = np.broadcast_to(codes[:, None], (size, size))
        b_code = np.broadcast_to(codes[None, :], (size, size))
        a_resets = ca >= 0
        b_resets = cb >= 0

        # Both resetting: counts sync to m, then the dormancy step — which
        # is *sequential in the pair order*: ``propagate_reset`` finalizes
        # ``u`` first, so a ``u`` that awakens (its ticked delay hit 0) is
        # a computing partner by the time ``v`` is processed, and ``v``
        # awakens in the same interaction; the cascade does not run the
        # other way.  (Evaluated everywhere; masked in below.)
        merged = np.maximum(np.maximum(ca - 1, cb - 1), 0)
        both_u = post_sync(ca, da, merged)
        both_v = np.where(both_u == 0, 0, post_sync(cb, db, merged))

        # Resetter × awake (either order): dormant resetters awaken on
        # contact with a computing agent; active ones infect it and both
        # sync to c - 1.  The infected partner's count "just became zero"
        # whenever the merged count is 0 (its pre-count was None), so it
        # takes post_sync's refresh branch (own_count=1) at delay D_max.
        ra_u = np.where(ca == 0, 0, post_sync(ca, da, np.maximum(ca - 1, 0)))
        ra_v = np.where(
            ca == 0,
            0,
            post_sync(np.ones_like(ca), np.full_like(da, d_max), np.maximum(ca - 1, 0)),
        )
        rb_v = np.where(cb == 0, 0, post_sync(cb, db, np.maximum(cb - 1, 0)))
        rb_u = np.where(
            cb == 0,
            0,
            post_sync(np.ones_like(cb), np.full_like(db, d_max), np.maximum(cb - 1, 0)),
        )

        u_out = np.where(
            a_resets & b_resets, both_u,
            np.where(a_resets, ra_u, np.where(b_resets, rb_u, a_code)),
        ).astype(np.int32)
        v_out = np.where(
            a_resets & b_resets, both_v,
            np.where(a_resets, ra_v, np.where(b_resets, rb_v, b_code)),
        ).astype(np.int32)
        return TransitionTable(num_states=size, u_out=u_out, v_out=v_out)


def is_dormant(state: AgentState) -> bool:
    """True iff the agent is a dormant resetter (count 0, waiting)."""
    return state.role is Role.RESETTING and state.pr is not None and state.pr.dormant


def fully_dormant(config: list[AgentState]) -> bool:
    """True iff every agent is dormant (Appendix C terminology)."""
    return all(is_dormant(s) for s in config)


def partially_computing(config: list[AgentState]) -> bool:
    """True iff some agent is computing (non-resetting)."""
    return any(s.role is not Role.RESETTING for s in config)

"""Partition of the rank space ``[n]`` into groups of size ``Θ(r)``.

Section 3.3 of the paper: the space-time trade-off runs the collision
detection protocol independently inside each group of a partition of
``[n]`` into ``⌈n/r⌉`` groups whose sizes lie in ``{r/2, ..., r}``
(such a partition always exists).  Collisions — two agents with the same
rank — are necessarily intra-group, so each group can be treated as a
distinct sub-population of size ``Θ(r)``, shrinking the per-agent message
system from ``Θ(n^3)`` to ``Θ(r^3)`` entries.

The partition is *encoded in the transition function* (the protocol is
strongly non-uniform), which we model by giving every agent read access to
one shared immutable :class:`RankPartition`.
"""

from __future__ import annotations

import math
from functools import lru_cache


class RankPartition:
    """An immutable partition of ranks ``1..n`` into contiguous groups.

    We use the canonical construction: ``g = ⌈n/r⌉`` contiguous groups with
    sizes as equal as possible (each ``⌊n/g⌋`` or ``⌈n/g⌉``).  For every
    ``1 <= r <= n`` this yields group sizes within ``{⌈r/2⌉, ..., r}``,
    matching the paper's requirement.
    """

    __slots__ = ("n", "r", "group_count", "_sizes", "_starts", "_group_of")

    def __init__(self, n: int, r: int):
        if n < 1:
            raise ValueError(f"need n >= 1, got {n}")
        if not 1 <= r <= n:
            raise ValueError(f"need 1 <= r <= n, got r={r}, n={n}")
        self.n = n
        self.r = r
        g = math.ceil(n / r)
        self.group_count = g
        base, extra = divmod(n, g)
        # The first ``extra`` groups get one additional rank.
        self._sizes = tuple(base + 1 if k < extra else base for k in range(g))
        starts = [1]
        for size in self._sizes[:-1]:
            starts.append(starts[-1] + size)
        self._starts = tuple(starts)
        group_of = []
        for k, size in enumerate(self._sizes):
            group_of.extend([k] * size)
        self._group_of = tuple(group_of)

    # ------------------------------------------------------------------

    def group_of(self, rank: int) -> int:
        """Index of the group containing ``rank`` (ranks are 1-based)."""
        self._check_rank(rank)
        return self._group_of[rank - 1]

    def group_size(self, group: int) -> int:
        """Number of ranks in group ``group``."""
        return self._sizes[group]

    def group_ranks(self, group: int) -> range:
        """The contiguous rank range of group ``group``."""
        start = self._starts[group]
        return range(start, start + self._sizes[group])

    def position_in_group(self, rank: int) -> int:
        """1-based position of ``rank`` within its group.

        The paper writes this as ``rank_r = rank (mod r_u)``; with contiguous
        groups it is the offset from the group's first rank.
        """
        group = self.group_of(rank)
        return rank - self._starts[group] + 1

    def same_group(self, rank_a: int, rank_b: int) -> bool:
        """True iff the two ranks fall in the same group (``𝒢`` test, Prot. 3)."""
        return self.group_of(rank_a) == self.group_of(rank_b)

    def sizes(self) -> tuple[int, ...]:
        """All group sizes."""
        return self._sizes

    def _check_rank(self, rank: int) -> None:
        if not 1 <= rank <= self.n:
            raise ValueError(f"rank must be in 1..{self.n}, got {rank}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RankPartition(n={self.n}, r={self.r}, sizes={self._sizes})"


@lru_cache(maxsize=256)
def cached_partition(n: int, r: int) -> RankPartition:
    """A memoized partition; the partition is pure data shared by all agents."""
    return RankPartition(n, r)

"""``StableVerify_r`` — soft/hard reset arbitration (Section 5, Protocol 2).

``DetectCollision_r`` may raise ⊤ for two very different reasons: a genuine
rank collision, or a message system that was adversarially initialized in
an inconsistent way on top of a *correct* ranking.  A full reset in the
second case would destroy the correct ranking, so the wrapper interleaves
two mechanisms (Section 3.2):

* **Probation** — every verifier holds a ``probationTimer`` counting down
  from ``P_max = c_prob·(n/r)·log n``.  A ⊤ with the timer at zero means a
  long collision-free period preceded it; since genuine collisions are
  detected fast w.h.p., the error is attributed to bad initialization and
  only a *soft reset* is performed.  A ⊤ while on probation means an
  inconsistency survived the previous soft reset — which, absent genuine
  collisions, happens with low probability — so a *hard reset* is
  triggered.
* **Generations** — a soft reset advances the agent's ``generation``
  (mod 6) and reinitializes only its ``DetectCollision_r`` state.  Agents
  one generation behind adopt the successor generation (with a fresh DC
  state) by epidemic, but only while *their* probation timer is zero;
  collision detection only runs between same-generation agents, so stale
  pre-reset messages never mix with the fresh ones.  Any generation gap
  other than +1 forces a hard reset.

The wrapper treats ranking and collision detection as black boxes, so the
construction applies to other verification problems as well (noted in
Section 3.2 of the paper).
"""

from __future__ import annotations

from typing import Callable

from repro.core.detect_collision import detect_collision, initial_dc_state
from repro.core.params import ProtocolParams
from repro.core.partition import RankPartition
from repro.core.roles import Role, generation_ahead, generation_successor
from repro.core.state import TOP, AgentState, SVState
from repro.scheduler.rng import RNG

#: Callback performing ``TriggerReset`` on an agent (Protocol 5).
TriggerCallback = Callable[[AgentState], None]

#: Optional observer invoked when an agent soft-resets (for instrumentation).
SoftResetObserver = Callable[[AgentState], None]


def initial_sv_state(rank: int, params: ProtocolParams, partition: RankPartition) -> SVState:
    """``q_{0,SV}``: generation 0, full probation, fresh ``q_{0,DC}``.

    The probation timer starts at ``P_max``: right after becoming a
    verifier "only a short period of time has passed since the beginning of
    the process", so early errors must cause a (cheap at this point) full
    reset (Section 3.2).
    """
    return SVState(
        generation=0,
        probation_timer=params.probation_max,
        dc=initial_dc_state(rank, params, partition),
    )


def soft_reset(agent: AgentState, params: ProtocolParams, partition: RankPartition) -> None:
    """Protocol 2, line 7: advance generation, refresh DC state, re-arm probation."""
    assert agent.sv is not None
    agent.sv.generation = generation_successor(agent.sv.generation, params.generations)
    agent.sv.dc = initial_dc_state(agent.rank, params, partition)
    agent.sv.probation_timer = params.probation_max


def adopt_generation(
    agent: AgentState,
    target_generation: int,
    params: ProtocolParams,
    partition: RankPartition,
) -> None:
    """Protocol 2, line 11: join the successor generation via epidemic."""
    assert agent.sv is not None
    agent.sv.generation = target_generation % params.generations
    agent.sv.dc = initial_dc_state(agent.rank, params, partition)
    agent.sv.probation_timer = params.probation_max


def stable_verify(
    u: AgentState,
    v: AgentState,
    params: ProtocolParams,
    partition: RankPartition,
    rng: RNG,
    trigger: TriggerCallback,
    on_soft_reset: SoftResetObserver | None = None,
) -> None:
    """Protocol 2: one ``StableVerify_r`` interaction between two verifiers."""
    if u.role is not Role.VERIFYING or v.role is not Role.VERIFYING:
        raise ValueError("stable_verify requires two verifying agents")
    assert u.sv is not None and v.sv is not None

    # Lines 1-2: probation timers tick down on every interaction.
    u.sv.probation_timer = max(0, u.sv.probation_timer - 1)
    v.sv.probation_timer = max(0, v.sv.probation_timer - 1)

    same_generation = (u.sv.generation % params.generations) == (
        v.sv.generation % params.generations
    )

    # Lines 3-4: collision detection runs only within a generation.
    if same_generation:
        u.sv.dc, v.sv.dc = detect_collision(
            u.rank, u.sv.dc, v.rank, v.sv.dc, params, partition, rng
        )

    # Lines 5-8: error handling.  This also absorbs adversarially planted ⊤
    # states regardless of the generation comparison.
    any_error = False
    for agent in (u, v):
        if agent.sv is not None and agent.sv.dc is TOP:
            any_error = True
            if agent.sv.probation_timer == 0:
                soft_reset(agent, params, partition)
                if on_soft_reset is not None:
                    on_soft_reset(agent)
            else:
                trigger(agent)
    if any_error:
        return

    if same_generation:
        return

    # Lines 10-12: the soft-reset epidemic — an off-probation agent exactly
    # one generation behind adopts the successor generation.
    for a, b in ((u, v), (v, u)):
        assert a.sv is not None and b.sv is not None
        if a.sv.probation_timer == 0 and generation_ahead(
            a.sv.generation, b.sv.generation, params.generations
        ):
            adopt_generation(a, b.sv.generation, params, partition)
            if on_soft_reset is not None:
                on_soft_reset(a)
            return

    # Line 13: generations differ but no soft reset is permissible.
    trigger(u)

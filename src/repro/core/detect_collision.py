"""``DetectCollision_r`` — message-based rank-collision detection (Sec. 5.1).

The core difficulty of self-stabilizing leader election is detecting two
agents with the same (supposedly unique) rank without false positives.
Waiting for the two duplicates to meet directly costs ``Ω(n)`` time; the
paper instead *amplifies the number of collidable objects*: every rank
governs ``Θ(r^2)`` circulating messages ``(rank, ID, content)``.

* Only agents whose rank matches a message's rank may modify it; whenever
  they do, they record the new content in their own ``observations`` array
  (Protocol 13, ``UpdateMessages``).
* Message contents are the governing agent's current *signature*, drawn
  from ``[r^5]`` and refreshed every ``Θ(log r)`` of the agent's own
  interactions (so two same-ranked agents initialized with equal
  signatures diverge quickly).
* Messages spread by deterministic per-(rank, content) load balancing
  (Protocol 14, ``BalanceLoad``), so refreshed messages reach every agent
  within ``O(m log m)`` intra-group interactions (Lemma E.6, via the
  Berenbrink et al. load-balancing coupling).
* An agent raises the error state ``⊤`` when it meets its own rank, sees
  two copies of one message, or sees a message it governs whose content
  contradicts its recorded observation (Protocols 3 and 12).

The space-time trade-off (Section 3.3) runs this machinery independently
inside each rank-group of size ``Θ(r)``; interactions across groups are
no-ops.  Lemma E.1 gives the contract: *soundness* (no ⊤ ever, from
``q_0`` on a correct ranking) and *robust completeness* (⊤ within
``O((n^2/r) log n)`` interactions whenever duplicate ranks exist,
regardless of the message system's state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.core.params import ProtocolParams
from repro.core.partition import RankPartition
from repro.core.protocol import PopulationProtocol
from repro.core.state import TOP, DCState, Top
from repro.scheduler.rng import RNG

DCValue = Union[DCState, Top]


# ---------------------------------------------------------------------------
# Initialization
# ---------------------------------------------------------------------------


def message_block(position: int, group_size: int, total: int) -> range:
    """IDs initially held by the agent at 1-based ``position`` in its group.

    The ``total`` message IDs of each governed rank are pre-mixed across the
    group's ``group_size`` agents in contiguous, nearly equal blocks
    (footnote 2 of the paper: the initial round of messages is hardcoded and
    pre-mixed among agents).
    """
    base, extra = divmod(total, group_size)
    start = (position - 1) * base + min(position - 1, extra) + 1
    size = base + (1 if position <= extra else 0)
    return range(start, start + size)


def initial_dc_state(
    rank: int,
    params: ProtocolParams,
    partition: RankPartition,
    premixed: bool = True,
) -> DCState:
    """``q_{0,DC}`` for an agent of the given rank (Section 5.1).

    Signature, counter and all observations start at 1; the agent holds its
    pre-mixed block of message IDs *for every rank its group governs*, all
    with content 1.

    ``premixed=False`` is an ablation switch (bench E13): the agent instead
    starts holding **all** messages of its own rank and none of the
    others' — the clumped allocation the paper's footnote 2 pre-mixes away.
    """
    group = partition.group_of(rank)
    group_size = partition.group_size(group)
    total = params.messages_per_rank(group_size)
    if not premixed:
        return DCState(
            signature=1,
            counter=1,
            msgs={rank: {msg_id: 1 for msg_id in range(1, total + 1)}},
            observations=[1] * total,
        )
    position = partition.position_in_group(rank)
    block = message_block(position, group_size, total)
    msgs = {
        governed: {msg_id: 1 for msg_id in block}
        for governed in partition.group_ranks(group)
    }
    return DCState(signature=1, counter=1, msgs=msgs, observations=[1] * total)


# ---------------------------------------------------------------------------
# Sub-protocols (Protocols 12-14)
# ---------------------------------------------------------------------------


def has_duplicate_message(u: DCState, v: DCState) -> bool:
    """True iff some message ``(i, j)`` is held by both agents (Prot. 3, l.3)."""
    for rank, u_ids in u.msgs.items():
        v_ids = v.msgs.get(rank)
        if v_ids and not u_ids.keys().isdisjoint(v_ids.keys()):
            return True
    return False


def check_message_consistency(owner_rank: int, owner: DCState, other: DCState) -> bool:
    """Protocol 12: does ``other`` carry a message of ``owner``'s rank whose
    content contradicts ``owner``'s observation?  Returns True on conflict.
    """
    carried = other.msgs.get(owner_rank)
    if not carried:
        return False
    observations = owner.observations
    limit = len(observations)
    for msg_id, content in carried.items():
        if 1 <= msg_id <= limit and content != observations[msg_id - 1]:
            return True
    return False


def update_messages(
    owner_rank: int,
    owner: DCState,
    other: DCState,
    group_size: int,
    params: ProtocolParams,
    rng: RNG,
) -> None:
    """Protocol 13: refresh the signature on schedule; restamp own messages.

    On every interaction the owner restamps the messages *it governs* that
    the partner carries with its current signature, recording the contents
    in its observations — this is the "modify and record" step that makes
    duplicated ranks visible.
    """
    owner.counter += 1
    if owner.counter >= params.signature_period(group_size):
        owner.signature = rng.randrange(1, params.signature_space(group_size) + 1)
        owner.counter = 1
        own_held = owner.msgs.get(owner_rank)
        if own_held:
            signature = owner.signature
            observations = owner.observations
            limit = len(observations)
            for msg_id in own_held:
                own_held[msg_id] = signature
                if 1 <= msg_id <= limit:
                    observations[msg_id - 1] = signature

    carried = other.msgs.get(owner_rank)
    if carried:
        signature = owner.signature
        observations = owner.observations
        limit = len(observations)
        for msg_id in carried:
            carried[msg_id] = signature
            if 1 <= msg_id <= limit:
                observations[msg_id - 1] = signature


def balance_load(u: DCState, v: DCState, governed_ranks: Sequence[int]) -> None:
    """Protocol 14: per-(rank, content) halving swap of held messages.

    For every governing rank ``i`` and content ``k``, the union of IDs held
    by the two agents is split into halves by ID order; the agent currently
    holding fewer messages overall receives the larger half.  Messages are
    never created or destroyed, and afterwards the per-(rank, content)
    holdings of the two agents differ by at most one.
    """
    u_new: dict[int, dict[int, int]] = {}
    v_new: dict[int, dict[int, int]] = {}
    u_total = 0
    v_total = 0
    for rank in governed_ranks:
        u_ids = u.msgs.get(rank, {})
        v_ids = v.msgs.get(rank, {})
        if not u_ids and not v_ids:
            continue
        by_content: dict[int, list[int]] = {}
        for msg_id, content in u_ids.items():
            by_content.setdefault(content, []).append(msg_id)
        for msg_id, content in v_ids.items():
            by_content.setdefault(content, []).append(msg_id)
        u_rank_new: dict[int, int] = {}
        v_rank_new: dict[int, int] = {}
        for content in sorted(by_content):
            ids = sorted(by_content[content])
            half = len(ids) // 2
            floor_ids, ceil_ids = ids[:half], ids[half:]
            if u_total > v_total:
                take_u, take_v = floor_ids, ceil_ids
            else:
                take_u, take_v = ceil_ids, floor_ids
            for msg_id in take_u:
                u_rank_new[msg_id] = content
            for msg_id in take_v:
                v_rank_new[msg_id] = content
            u_total += len(take_u)
            v_total += len(take_v)
        if u_rank_new:
            u_new[rank] = u_rank_new
        if v_rank_new:
            v_new[rank] = v_rank_new
    u.msgs = u_new
    v.msgs = v_new


# ---------------------------------------------------------------------------
# Protocol 3
# ---------------------------------------------------------------------------


def detect_collision(
    u_rank: int,
    u_dc: DCValue,
    v_rank: int,
    v_dc: DCValue,
    params: ProtocolParams,
    partition: RankPartition,
    rng: RNG,
    rng_v: RNG | None = None,
    balance: bool = True,
) -> tuple[DCValue, DCValue]:
    """Protocol 3: one ``DetectCollision_r`` interaction.

    Returns the two (possibly replaced-by-⊤) DC states.  ``⊤`` inputs are
    absorbing here; the ``StableVerify_r`` wrapper decides what a ⊤ means
    (soft vs. hard reset).

    ``rng`` draws ``u``'s signature refreshes and ``rng_v`` (defaulting to
    ``rng``) draws ``v``'s — the split exists so the Appendix-B
    derandomization can substitute per-agent synthetic-coin samplers
    (:mod:`repro.core.derandomized`).  ``balance=False`` disables the
    ``BalanceLoad`` step — an ablation switch only (bench E13); the real
    protocol always balances.
    """
    if u_dc is TOP or v_dc is TOP:
        return u_dc, v_dc
    assert isinstance(u_dc, DCState) and isinstance(v_dc, DCState)

    # Line 1-2: interactions across groups are no-ops.
    if not partition.same_group(u_rank, v_rank):
        return u_dc, v_dc

    # Lines 3-4: obvious collisions — shared rank or duplicated message.
    if u_rank == v_rank or has_duplicate_message(u_dc, v_dc):
        return TOP, TOP

    # Line 5: cross-check circulating messages against recorded contents.
    if check_message_consistency(u_rank, u_dc, v_dc) or check_message_consistency(
        v_rank, v_dc, u_dc
    ):
        return TOP, TOP

    # Lines 6-7: restamp and rebalance.
    group_size = partition.group_size(partition.group_of(u_rank))
    update_messages(u_rank, u_dc, v_dc, group_size, params, rng)
    update_messages(v_rank, v_dc, u_dc, group_size, params, rng_v if rng_v is not None else rng)
    if balance:
        balance_load(u_dc, v_dc, partition.group_ranks(partition.group_of(u_rank)))
    return u_dc, v_dc


# ---------------------------------------------------------------------------
# Standalone protocol for direct measurement (experiment E5)
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class DCAgentState:
    """Standalone collision-detection agent: a fixed rank plus a DC state."""

    rank: int
    dc: DCValue

    def clone(self) -> "DCAgentState":
        dc = self.dc if self.dc is TOP else self.dc.clone()
        return DCAgentState(self.rank, dc)


class DetectCollisionProtocol(PopulationProtocol):
    """``DetectCollision_r`` over fixed ranks, for isolation experiments.

    Clean starts build a *correct* ranking ``1..n`` with ``q_{0,DC}``
    states; adversarial starts (duplicate ranks, scrambled messages) come
    from :mod:`repro.adversary.initializers`.  The goal predicate for
    completeness experiments is "some agent reached ⊤".
    """

    name = "detect-collision"

    def __init__(self, params: ProtocolParams, balance: bool = True, premixed: bool = True):
        self.params = params
        self.n = params.n
        self.partition = RankPartition(params.n, params.r)
        self.balance = balance
        self.premixed = premixed
        self._next_rank = 0

    def initial_state(self) -> DCAgentState:
        """Clean states cycle through ranks 1..n in order."""
        self._next_rank = self._next_rank % self.n + 1
        return self.state_for_rank(self._next_rank)

    def state_for_rank(self, rank: int) -> DCAgentState:
        return DCAgentState(
            rank, initial_dc_state(rank, self.params, self.partition, self.premixed)
        )

    def transition(self, u: DCAgentState, v: DCAgentState, rng: RNG) -> None:
        u.dc, v.dc = detect_collision(
            u.rank, u.dc, v.rank, v.dc, self.params, self.partition, rng,
            balance=self.balance,
        )

    def output(self, state: DCAgentState) -> bool:
        """Output = "error raised"."""
        return state.dc is TOP

    def error_detected(self, config: Sequence[DCAgentState]) -> bool:
        return any(s.dc is TOP for s in config)

    def is_goal_configuration(self, config: Sequence[DCAgentState]) -> bool:
        return self.error_detected(config)


# ---------------------------------------------------------------------------
# Global message-system invariants (used by convergence checks and tests)
# ---------------------------------------------------------------------------


def message_system_consistent(
    pairs: Sequence[tuple[int, DCValue]],
    params: ProtocolParams,
    partition: RankPartition,
) -> bool:
    """Global soundness invariant of the message system.

    Requires: no ⊤ present; ranks distinct; for every rank, every one of
    its message IDs circulates **exactly once** within the group; and every
    circulating message's content matches its governor's observation.  From
    such a configuration ``DetectCollision_r`` can never raise ⊤ (this is
    the workhorse behind Lemma 6.1's safety argument).
    """
    ranks = [rank for rank, _ in pairs]
    if len(set(ranks)) != len(ranks):
        return False
    by_rank: dict[int, DCState] = {}
    for rank, dc in pairs:
        if dc is TOP or not isinstance(dc, DCState):
            return False
        by_rank[rank] = dc

    # Collect every circulating copy of every message.
    seen: dict[tuple[int, int], list[int]] = {}
    for rank, dc in pairs:
        assert isinstance(dc, DCState)
        for governed, ids in dc.msgs.items():
            if not partition.same_group(governed, rank):
                return False  # an agent may only hold its own group's messages
            for msg_id, content in ids.items():
                seen.setdefault((governed, msg_id), []).append(content)

    for governed, governor in by_rank.items():
        group_size = partition.group_size(partition.group_of(governed))
        total = params.messages_per_rank(group_size)
        if len(governor.observations) != total:
            return False
        for msg_id in range(1, total + 1):
            copies = seen.get((governed, msg_id), [])
            if len(copies) != 1:
                return False
            if copies[0] != governor.observations[msg_id - 1]:
                return False
    return True

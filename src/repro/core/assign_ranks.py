"""``AssignRanks_r`` — the parametrized silent ranking protocol (Appendix D).

The protocol assigns a unique rank from ``[n]`` to every agent within
``O((n^2/r) log n)`` interactions w.h.p. from a dormant configuration,
using ``2^{O(r log n)}`` states (Lemma D.1).  The pipeline:

1. **Sheriff election** — the ``FastLeaderElect`` black box elects a
   unique sheriff from an awakening configuration (Protocol 8, Lemma D.3).
2. **Deputization** — the sheriff carries ``r`` badges; on meeting a
   recipient it hands over the upper half of its badge range (Protocol 9).
   An agent whose range shrinks to one badge becomes the *deputy* with
   that badge as its id.
3. **Labeling** — each deputy owns a pool of ``⌈c·n/r⌉`` labels
   ``(id, 1), (id, 2), ...`` and hands them to unlabeled recipients
   (Protocol 10); labeling is gated on all ``r`` deputies existing
   (``Σ channel >= r``) so deputy ids are unique (Lemma D.5).
4. **Channel broadcast** — every non-LE, non-ranked agent carries a
   ``channel`` array holding the maximum observed counter of each deputy;
   entries merge by max on every interaction (Protocol 7, lines 8-9).
5. **Sleep & rank** — once an agent's channel sums to ``n`` it knows the
   complete label set, goes to sleep for ``c_sleep·log n`` of its own
   interactions (so stragglers catch up before anyone discards broadcast
   state — Lemma D.9), then ranks itself by the lexicographic position of
   its label and becomes silent (Protocol 11).

The transition is a *total* function: adversarial field combinations that
cannot arise in a clean execution (e.g. a sheriff whose channel already
sums to ``n``) take harmless default branches, producing a possibly wrong
ranking that the verification layer then catches — that is precisely the
self-stabilization contract of the wrapper.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import fast_leader_elect
from repro.core.params import ProtocolParams
from repro.core.protocol import RankingProtocol
from repro.core.state import ARPhase, ARState
from repro.scheduler.rng import RNG


def initial_ar_state() -> ARState:
    """``q_{0,AR}``: the clean post-reset ranking state (LE, nothing drawn)."""
    return ARState(phase=ARPhase.LEADER_ELECTION)


def rank_from_label(
    label: Optional[tuple[int, int]], channel: Sequence[int], n: int
) -> int:
    """Protocol 11's rank rule: lexicographic position of the label.

    For label ``(i, j)`` the rank is ``Σ_{i' < i} channel[i'] + j`` — the
    number of labels issued by lower-id deputies plus the label's own index.
    With a complete, valid channel this is a bijection onto ``[n]``
    (Lemma D.9).  Garbage inputs are clamped into ``[n]`` to keep the state
    space well-formed; a wrong rank is the verifier layer's problem.
    """
    if label is None:
        return 1
    deputy_id, index = label
    prefix = sum(channel[: max(0, deputy_id - 1)])
    return min(max(1, prefix + index), n)


def _become_deputy(state: ARState, params: ProtocolParams) -> None:
    """Badge range collapsed to one badge: become the deputy with that id."""
    badge = state.low_badge
    state.phase = ARPhase.DEPUTY
    state.deputy_id = badge
    state.counter = 1  # the deputy's own (implicit) label (badge, 1)
    channel = list(state.channel) if state.channel else [0] * params.r
    if 1 <= badge <= len(channel):
        channel[badge - 1] = max(channel[badge - 1], 1)
    state.channel = tuple(channel)


def _become_sheriff(state: ARState, params: ProtocolParams) -> None:
    """LE winner: full badge roster ``[1..r]``, all-zero channel (Def. D.2)."""
    state.phase = ARPhase.SHERIFF
    state.low_badge = 1
    state.high_badge = params.r
    state.channel = (0,) * params.r
    if state.low_badge == state.high_badge:  # r == 1: sole badge, deputize now
        _become_deputy(state, params)


def _become_recipient(state: ARState, partner: ARState, params: ProtocolParams) -> None:
    """LE agent learns the election is over (Protocol 8, second branch).

    Per Observation D.1(a) the fresh recipient's channel is all zeros or a
    copy of the partner's; we copy when available to speed the broadcast.
    """
    state.phase = ARPhase.RECIPIENT
    state.label = None
    state.channel = partner.channel if partner.channel else (0,) * params.r


def _become_sleeper(state: ARState) -> None:
    """Complete channel observed: sleep, carrying the label (Protocol 7)."""
    if state.phase is ARPhase.DEPUTY:
        state.label = (state.deputy_id, 1)
    # Recipients keep their label; a sheriff (adversarial only) keeps None.
    state.phase = ARPhase.SLEEPER
    state.sleep_timer = 1


def _become_ranked(state: ARState, params: ProtocolParams) -> None:
    """Protocol 11: adopt the final rank and discard everything else."""
    state.rank = rank_from_label(state.label, state.channel, params.n)
    state.phase = ARPhase.RANKED
    state.channel = ()
    state.label = None
    state.sleep_timer = 0


def _elect_sheriff(u: ARState, v: ARState, params: ProtocolParams, rng: RNG) -> None:
    """Protocol 8: drive the LE black box / retire LE stragglers."""
    if u.in_leader_election and v.in_leader_election:
        fast_leader_elect.leader_election_step(u, v, params, rng)
        for agent in (u, v):
            if agent.in_leader_election and agent.leader_done and agent.leader_bit:
                _become_sheriff(agent, params)
        return
    # Exactly one still in leader election: it learns the election is over
    # and becomes a recipient.
    if u.in_leader_election:
        _become_recipient(u, v, params)
    else:
        _become_recipient(v, u, params)


def _deputize(sheriff: ARState, recipient: ARState, params: ProtocolParams) -> None:
    """Protocol 9: hand the upper half of the badge range to the recipient."""
    recipient.phase = ARPhase.SHERIFF
    recipient.label = None
    recipient.high_badge = sheriff.high_badge
    sheriff.high_badge = (sheriff.high_badge + sheriff.low_badge) // 2
    recipient.low_badge = sheriff.high_badge + 1
    if not recipient.channel:
        recipient.channel = (0,) * params.r
    for agent in (recipient, sheriff):
        if agent.high_badge == agent.low_badge:
            _become_deputy(agent, params)


def _labeling(deputy: ARState, recipient: ARState, params: ProtocolParams) -> None:
    """Protocol 10: issue the next label once all deputies exist."""
    if sum(deputy.channel) < params.r:
        return
    if deputy.counter >= params.labels_per_deputy:
        return
    deputy.counter += 1
    channel = list(deputy.channel)
    channel[deputy.deputy_id - 1] = deputy.counter
    deputy.channel = tuple(channel)
    recipient.label = (deputy.deputy_id, deputy.counter)


def _sleep(u: ARState, v: ARState, params: ProtocolParams) -> None:
    """Protocol 11: sleeper timers, rank adoption and sleep epidemics."""
    sleepers = [s for s in (u, v) if s.phase is ARPhase.SLEEPER]
    for sleeper in sleepers:
        sleeper.sleep_timer = min(params.sleep_timer_max, sleeper.sleep_timer + 1)

    if len(sleepers) == 2:
        if any(s.sleep_timer >= params.sleep_timer_max for s in (u, v)):
            _become_ranked(u, params)
            _become_ranked(v, params)
        return

    sleeper = sleepers[0]
    other = v if sleeper is u else u
    if other.ranked:
        _become_ranked(sleeper, params)
    elif sleeper.sleep_timer >= params.sleep_timer_max:
        _become_ranked(sleeper, params)
        _become_ranked(other, params)
    else:
        _become_sleeper(other)


_CHANNEL_PHASES = (ARPhase.SHERIFF, ARPhase.DEPUTY, ARPhase.RECIPIENT, ARPhase.SLEEPER)


def assign_ranks(u: ARState, v: ARState, params: ProtocolParams, rng: RNG) -> None:
    """Protocol 7: one ``AssignRanks_r`` interaction."""
    if u.in_leader_election or v.in_leader_election:
        _elect_sheriff(u, v, params, rng)
        return

    phases = (u.phase, v.phase)
    if ARPhase.SLEEPER in phases:
        _sleep(u, v, params)
    elif ARPhase.SHERIFF in phases and ARPhase.RECIPIENT in phases:
        sheriff, recipient = (u, v) if u.phase is ARPhase.SHERIFF else (v, u)
        _deputize(sheriff, recipient, params)
    elif ARPhase.DEPUTY in phases and ARPhase.RECIPIENT in phases:
        deputy, recipient = (u, v) if u.phase is ARPhase.DEPUTY else (v, u)
        if recipient.label is None:
            _labeling(deputy, recipient, params)

    # Lines 8-11: channel max-merge and the sleep transition.
    if u.phase in _CHANNEL_PHASES and v.phase in _CHANNEL_PHASES:
        merged = tuple(max(a, b) for a, b in zip(u.channel, v.channel))
        if merged:
            u.channel = merged
            v.channel = merged
    for agent in (u, v):
        if agent.phase in (ARPhase.SHERIFF, ARPhase.DEPUTY, ARPhase.RECIPIENT):
            if agent.channel and sum(agent.channel) >= params.n:
                _become_sleeper(agent)


class AssignRanksProtocol(RankingProtocol):
    """``AssignRanks_r`` as a standalone protocol (experiment E10).

    Clean starts model a fully dormant configuration: every agent begins in
    ``q_{0,AR}`` and activates on its first interaction.  The protocol is
    *silent*: once ranked, an agent's AR state never changes again
    (Lemma D.1).
    """

    name = "assign-ranks"

    def __init__(self, params: ProtocolParams):
        self.params = params
        self.n = params.n

    def initial_state(self) -> ARState:
        return initial_ar_state()

    def transition(self, u: ARState, v: ARState, rng: RNG) -> None:
        assign_ranks(u, v, self.params, rng)

    def rank(self, state: ARState) -> int:
        return state.rank

    def all_ranked(self, config: Sequence[ARState]) -> bool:
        return all(s.ranked for s in config)

    def is_goal_configuration(self, config: Sequence[ARState]) -> bool:
        """Silent and correct: everyone ranked, ranks a permutation."""
        return self.all_ranked(config) and self.ranking_correct(config)

"""Core protocol components: the paper's primary contribution.

This package implements ``ElectLeader_r`` (Protocol 1 of the paper) and all
of its sub-protocols: ``PropagateReset`` (Appendix C), ``AssignRanks_r``
(Appendix D), ``StableVerify_r`` (Section 5) and ``DetectCollision_r``
(Section 5.1), plus the ``FastLeaderElect`` black-box used by the ranking
component (Appendix D.2).
"""

from repro.core.params import ProtocolParams
from repro.core.protocol import PopulationProtocol
from repro.core.roles import Role
from repro.core.partition import RankPartition
from repro.core.elect_leader import ElectLeader
from repro.core.propagate_reset import ResetEpidemicProtocol

__all__ = [
    "ProtocolParams",
    "PopulationProtocol",
    "Role",
    "RankPartition",
    "ElectLeader",
    "ResetEpidemicProtocol",
]

"""``ElectLeader_r`` — the paper's main protocol (Protocol 1, Theorem 1.1).

A thin wrapper composing the three role-gated sub-protocols:

* resetters run ``PropagateReset`` (Appendix C);
* rankers run ``AssignRanks_r`` (Appendix D) while a ``countdown`` of
  ``C_max = Θ((n/r) log n)`` guarantees they eventually become verifiers
  even if ranking stalls (Section 4);
* verifiers run ``StableVerify_r`` (Section 5), which nests
  ``DetectCollision_r`` and decides between soft and hard resets.

For ``1 <= r <= n/2`` the protocol solves self-stabilizing leader election
and ranking within ``O((n^2/r) log n)`` interactions w.h.p. using
``2^{O(r^2 log n)}`` states (Theorem 1.1).  The leader is the agent of
rank 1.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional, Sequence

from repro.core.assign_ranks import assign_ranks, initial_ar_state
from repro.core.detect_collision import message_system_consistent
from repro.core.params import ProtocolParams
from repro.core.partition import RankPartition
from repro.core.propagate_reset import propagate_reset, trigger_reset
from repro.core.protocol import RankingProtocol
from repro.core.roles import Role
from repro.core.stable_verify import initial_sv_state, stable_verify
from repro.core.state import TOP, AgentState
from repro.scheduler.rng import RNG


class ElectLeader(RankingProtocol):
    """The complete ``ElectLeader_r`` protocol.

    ``initial_state`` models an *awakening* configuration — every agent
    restarts as a fresh ranker exactly as ``Reset`` (Protocol 6) leaves it.
    Self-stabilization experiments instead start from the adversarial
    configurations built by :mod:`repro.adversary.initializers`.
    """

    name = "elect-leader"

    def __init__(self, params: ProtocolParams):
        self.params = params
        self.n = params.n
        self.partition = RankPartition(params.n, params.r)
        #: Protocol-level event counters ("hard_reset", "soft_reset").
        #: Cumulative across all simulations using this protocol object;
        #: call ``reset_events()`` between experiments.
        self.events: Counter[str] = Counter()

    def reset_events(self) -> None:
        """Clear the hard/soft-reset event counters."""
        self.events.clear()

    # ------------------------------------------------------------------
    # Role transitions
    # ------------------------------------------------------------------

    def reset_agent(self, state: AgentState) -> None:
        """Protocol 6 (``Reset``): restart the agent as a clean ranker."""
        state.role = Role.RANKING
        state.ar = initial_ar_state()
        state.countdown = self.params.countdown_max
        state.pr = None
        state.sv = None
        state.rank = 1

    def trigger(self, state: AgentState) -> None:
        """Protocol 5 (``TriggerReset``): begin a hard reset at this agent."""
        self.events["hard_reset"] += 1
        trigger_reset(state, self.params)

    def _count_soft_reset(self, state: AgentState) -> None:
        self.events["soft_reset"] += 1

    def become_verifier(self, state: AgentState) -> None:
        """Protocol 1, lines 6-8: ranker → verifier, freezing its rank."""
        assert state.ar is not None
        state.rank = state.ar.rank
        state.role = Role.VERIFYING
        state.sv = initial_sv_state(state.rank, self.params, self.partition)
        state.ar = None
        state.countdown = 0

    # ------------------------------------------------------------------
    # PopulationProtocol interface
    # ------------------------------------------------------------------

    def initial_state(self) -> AgentState:
        state = AgentState()
        self.reset_agent(state)
        return state

    def triggered_state(self) -> AgentState:
        """A freshly-triggered resetter (for Lemma 6.2 experiments)."""
        state = AgentState()
        self.trigger(state)
        return state

    def transition(self, u: AgentState, v: AgentState, rng: RNG) -> None:
        """Protocol 1."""
        params = self.params

        # Line 1-2: the reset epidemic, if any resetter is involved.
        if u.role is Role.RESETTING or v.role is Role.RESETTING:
            propagate_reset(u, v, params, self.reset_agent)

        # Lines 3-5: two rankers execute AssignRanks and tick countdowns.
        if u.role is Role.RANKING and v.role is Role.RANKING:
            assert u.ar is not None and v.ar is not None
            assign_ranks(u.ar, v.ar, params, rng)
            u.countdown = max(0, u.countdown - 1)
            v.countdown = max(0, v.countdown - 1)

        # Lines 6-8: rankers become verifiers on timeout or by epidemic.
        for a, b in ((u, v), (v, u)):
            if a.role is Role.RANKING and (a.countdown == 0 or b.role is Role.VERIFYING):
                self.become_verifier(a)

        # Lines 9-10: two verifiers execute StableVerify.
        if u.role is Role.VERIFYING and v.role is Role.VERIFYING:
            stable_verify(
                u, v, params, self.partition, rng, self.trigger, self._count_soft_reset
            )

    def rank(self, state: AgentState) -> int:
        """The agent's presumed rank (meaningful once it verifies)."""
        if state.role is Role.VERIFYING:
            return state.rank
        if state.role is Role.RANKING and state.ar is not None:
            return state.ar.rank
        return 1

    # ------------------------------------------------------------------
    # Configuration predicates
    # ------------------------------------------------------------------

    def all_verifiers(self, config: Sequence[AgentState]) -> bool:
        return all(s.role is Role.VERIFYING for s in config)

    def generation_profile(self, config: Sequence[AgentState]) -> Optional[set[int]]:
        """The set of generations present, or ``None`` if not all verifiers."""
        if not self.all_verifiers(config):
            return None
        assert all(s.sv is not None for s in config)
        generations = self.params.generations
        return {s.sv.generation % generations for s in config}  # type: ignore[union-attr]

    def is_safe_configuration(self, config: Sequence[AgentState]) -> bool:
        """A checkable, absorbing strengthening of ``𝒞_safe`` (Lemma 6.1).

        Requires: all agents are verifiers with a correct ranking (condition
        (a)); everyone shares one generation; no ⊤ is present; and the
        message system is globally consistent.  Such configurations are
        closed under the transition function — collision detection is sound
        from consistent configurations (Lemma E.1(a)), so no ⊤, hence no
        generation change or reset, can ever occur — and the actual
        ``𝒞_safe`` (which also admits transient two-generation splits whose
        reachability condition is not efficiently checkable) is entered at
        most one soft-reset epidemic later.
        """
        if not self.all_verifiers(config):
            return False
        if not self.ranking_correct(config):
            return False
        modulus = self.params.generations
        generations = {s.sv.generation % modulus for s in config}  # type: ignore[union-attr]
        if len(generations) != 1:
            return False
        pairs = []
        for s in config:
            assert s.sv is not None
            if s.sv.dc is TOP:
                return False
            pairs.append((s.rank, s.sv.dc))
        return message_system_consistent(pairs, self.params, self.partition)

    def is_goal_configuration(self, config: Sequence[AgentState]) -> bool:
        """Stabilized = reached the (checkable) safe set."""
        return self.is_safe_configuration(config)

    def describe_configuration(self, config: Sequence[AgentState]) -> dict[str, object]:
        """A compact diagnostic summary used by examples and debugging."""
        roles = {role: 0 for role in Role}
        for s in config:
            roles[s.role] += 1
        ranks = [self.rank(s) for s in config]
        top_count = sum(
            1 for s in config if s.role is Role.VERIFYING and s.sv is not None and s.sv.dc is TOP
        )
        return {
            "roles": {role.value: count for role, count in roles.items()},
            "distinct_ranks": len(set(ranks)),
            "ranking_correct": sorted(ranks) == list(range(1, len(config) + 1)),
            "generations": sorted(self.generation_profile(config) or set()),
            "top_states": top_count,
            "leaders": ranks.count(1),
            "safe": self.is_safe_configuration(config),
        }

"""repro — reproduction of "A Space-Time Trade-off for Fast Self-Stabilizing
Leader Election in Population Protocols" (Austin, Berenbrink, Friedetzky,
Götte, Hintze; PODC 2025, arXiv:2505.01210).

The package implements the paper's parametrized protocol ``ElectLeader_r``
and every substrate it depends on, a simulation engine for the population
model's uniformly random scheduler, adversarial initializers for
self-stabilization experiments, baseline protocols from the related work,
and analytical state-space calculators.

Quickstart::

    from repro import ElectLeader, ProtocolParams, Simulation

    params = ProtocolParams(n=24, r=3)
    protocol = ElectLeader(params)
    sim = Simulation(protocol, n=params.n, seed=1)
    result = sim.run_until(
        protocol.is_safe_configuration,
        max_interactions=2_000_000,
        check_interval=2_000,
    )
    assert result.converged
"""

from repro.core.elect_leader import ElectLeader
from repro.core.params import BaselineParams, ProtocolParams
from repro.core.partition import RankPartition
from repro.core.protocol import PopulationProtocol, RankingProtocol
from repro.core.roles import Role
from repro.fabric import (
    FabricError,
    merge_checkpoints,
    run_pool,
    shard_grid,
)
from repro.scheduler.rng import make_rng, spawn_rngs
from repro.sim.parallel import (
    TrialOutcome,
    TrialSpec,
    run_trial_specs,
    run_trial_specs_streaming,
    stream_ordered,
)
from repro.sim.simulation import Simulation, SimulationResult, run_until
from repro.sim.sweep import (
    GridSpec,
    ScenarioOutcome,
    ScenarioSpec,
    SweepError,
    SweepResult,
    run_sweep,
)
from repro.sim.trials import TrialSummary, format_table, run_trials

__version__ = "1.0.0"

__all__ = [
    "ElectLeader",
    "ProtocolParams",
    "BaselineParams",
    "RankPartition",
    "PopulationProtocol",
    "RankingProtocol",
    "Role",
    "Simulation",
    "SimulationResult",
    "run_until",
    "run_trials",
    "TrialSummary",
    "TrialSpec",
    "TrialOutcome",
    "run_trial_specs",
    "run_trial_specs_streaming",
    "stream_ordered",
    "GridSpec",
    "ScenarioSpec",
    "ScenarioOutcome",
    "SweepError",
    "SweepResult",
    "run_sweep",
    "FabricError",
    "shard_grid",
    "merge_checkpoints",
    "run_pool",
    "format_table",
    "make_rng",
    "spawn_rngs",
    "__version__",
]

"""The stable public API surface of the repro package.

``import repro.api as repro`` (or ``from repro.api import ...``) is the
supported way to drive the reproduction programmatically.  Everything
re-exported here is covered by the keyword-only calling conventions and
pointed-``TypeError`` guarantees documented in the README; anything *not*
listed in ``__all__`` — including the implementation modules themselves —
is internal and may move between releases.

The module deliberately contains only ``from X import name`` statements:
no submodule object is bound as an attribute, so internal modules are not
reachable through it (``repro.api.sweep`` is an :class:`AttributeError`,
not a back door).  A test enforces this with an AST walk.

The surface groups into four layers:

* **protocols & parameters** — :class:`ElectLeader`,
  :class:`ProtocolParams`, the baselines' :class:`BaselineParams`, and
  the :class:`PopulationProtocol` base;
* **single executions** — :func:`make_simulation` / :class:`Simulation`
  / :func:`run_until` on a registered backend, started from any
  :class:`InitialState` (clean, explicit, counted, or sampled
  adversarial);
* **trial batches & sweeps** — :func:`run_trials` aggregation,
  :class:`GridSpec` expansion via :func:`expand_grid` into
  :class:`ScenarioSpec` trials, :func:`run_scenario` /
  :func:`run_sweep` execution with JSONL checkpoints;
* **distributed fabric** — deterministic :func:`shard_grid` sharding,
  :func:`merge_checkpoints` validation + concatenation, and the
  lease-based :func:`run_pool` worker pool;
* **observability** — :func:`configure_tracing` / :func:`get_tracer`
  span tracing (a no-op unless a sink is configured; never touches an
  RNG stream), the :func:`get_metrics` registry, the blessed
  :func:`perf_counter` clock, and the :func:`load_trace` /
  :func:`summarize_trace` / :func:`to_chrome_trace` trace readers.
"""

from repro.core.elect_leader import ElectLeader
from repro.core.params import BaselineParams, ProtocolParams
from repro.core.protocol import PopulationProtocol, RankingProtocol
from repro.fabric.errors import FabricError
from repro.fabric.merge import MergeReport, merge_checkpoints
from repro.fabric.pool import PoolResult, run_pool
from repro.fabric.providers import (
    BudgetCaps,
    LocalWorkerProvider,
    ProviderSpec,
    SSHWorkerProvider,
    WorkerHandle,
    WorkerProvider,
    get_provider,
    provider_names,
    register_provider,
)
from repro.fabric.sharding import format_shard, parse_shard, shard_grid
from repro.obs import (
    MetricsRegistry,
    TraceError,
    configure_tracing,
    get_metrics,
    get_tracer,
    load_trace,
    perf_counter,
    summarize_trace,
    to_chrome_trace,
)
from repro.sim.backends import (
    backend_names,
    make_simulation,
    resolve_backend,
)
from repro.sim.initial_state import (
    Clean,
    CodeArray,
    CountVector,
    InitialState,
    ObjectConfig,
    Replicated,
    SampledStart,
)
from repro.sim.kernels import JitBackendError, jit_available
from repro.sim.parallel import (
    TrialOutcome,
    TrialSpec,
    run_trial_specs,
    run_trial_specs_streaming,
    stream_ordered,
)
from repro.sim.simulation import Simulation, SimulationResult, run_until
from repro.sim.sweep import (
    GridSpec,
    ScenarioOutcome,
    ScenarioSpec,
    SweepError,
    SweepResult,
    aggregate_rows,
    expand_grid,
    load_grid_file,
    run_scenario,
    run_sweep,
    shard_specs,
    validate_shard,
)
from repro.sim.trials import TrialSummary, format_table, run_trials

__all__ = [
    # protocols & parameters
    "BaselineParams",
    "ElectLeader",
    "PopulationProtocol",
    "ProtocolParams",
    "RankingProtocol",
    # initial states
    "Clean",
    "CodeArray",
    "CountVector",
    "InitialState",
    "ObjectConfig",
    "Replicated",
    "SampledStart",
    # single executions
    "JitBackendError",
    "Simulation",
    "SimulationResult",
    "backend_names",
    "jit_available",
    "make_simulation",
    "resolve_backend",
    "run_until",
    # trial batches
    "TrialOutcome",
    "TrialSpec",
    "TrialSummary",
    "format_table",
    "run_trial_specs",
    "run_trial_specs_streaming",
    "run_trials",
    "stream_ordered",
    # sweeps
    "GridSpec",
    "ScenarioOutcome",
    "ScenarioSpec",
    "SweepError",
    "SweepResult",
    "aggregate_rows",
    "expand_grid",
    "load_grid_file",
    "run_scenario",
    "run_sweep",
    "shard_specs",
    "validate_shard",
    # distributed fabric
    "BudgetCaps",
    "FabricError",
    "LocalWorkerProvider",
    "MergeReport",
    "PoolResult",
    "ProviderSpec",
    "SSHWorkerProvider",
    "WorkerHandle",
    "WorkerProvider",
    "format_shard",
    "get_provider",
    "merge_checkpoints",
    "parse_shard",
    "provider_names",
    "register_provider",
    "run_pool",
    "shard_grid",
    # observability
    "MetricsRegistry",
    "TraceError",
    "configure_tracing",
    "get_metrics",
    "get_tracer",
    "load_trace",
    "perf_counter",
    "summarize_trace",
    "to_chrome_trace",
]

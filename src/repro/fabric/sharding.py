"""Deterministic grid sharding — the fabric's partition layer.

The primitives live next to the checkpoint format they are part of
(:mod:`repro.sim.sweep`: :func:`~repro.sim.sweep.shard_of`,
:func:`~repro.sim.sweep.shard_specs`, the shard-tagged metadata line);
this module is the fabric-facing surface over them.  The contract that
everything else builds on:

* shard assignment is a pure function of ``(trial index, shard count)``
  — a splitmix-style hash under a fixed salt — so the ``k`` shards of a
  grid are **disjoint and covering by construction**, on every machine,
  in every process, regardless of enumeration order;
* each shard's checkpoint contains exactly the unsharded run's bytes for
  the trial indices it owns, so :func:`repro.fabric.merge
  .merge_checkpoints` can reconstitute the byte-identical unsharded file;
* on a batch-cell backend whole grid cells are assigned by the hash of
  their first trial index, because a lockstep cell's per-row outcomes
  depend on the full cell membership — splitting a cell across shards
  would change its bytes.
"""

from __future__ import annotations

from repro.fabric.errors import FabricError
from repro.sim.backends import get_backend
from repro.sim.sweep import (
    GridSpec,
    ScenarioSpec,
    Shard,
    SweepError,
    expand_grid,
    shard_specs,
    validate_shard,
)


def parse_shard(text: str) -> Shard:
    """Parse the CLI shard syntax ``"i/k"`` into a validated ``(i, k)`` pair."""
    index_text, separator, count_text = text.partition("/")
    if not separator:
        raise FabricError(f"shard must look like I/K (e.g. 0/4), got {text!r}")
    try:
        shard = (int(index_text), int(count_text))
    except ValueError:
        raise FabricError(f"shard must look like I/K (e.g. 0/4), got {text!r}") from None
    try:
        return validate_shard(shard)
    except SweepError as error:
        raise FabricError(str(error)) from None


def format_shard(shard: Shard) -> str:
    """The CLI/worker-facing spelling of a shard: ``"i/k"``."""
    index, count = validate_shard(shard)
    return f"{index}/{count}"


def shard_grid(grid: GridSpec, index: int, shards: int) -> list[ScenarioSpec]:
    """The scenario specs shard ``index`` of ``shards`` owns for ``grid``.

    Expansion order is preserved, so a shard's specs (and therefore its
    checkpoint records) appear exactly as they would in the unsharded
    stream.  Cell granularity is chosen from the grid's backend: lockstep
    batch-cell engines shard whole cells, everything else shards single
    trials.
    """
    return shard_specs(
        expand_grid(grid),
        (index, shards),
        by_cell=get_backend(grid.backend).batch_cells,
    )

"""Worker providers — *where* fabric workers run, behind a registry.

Mirrors the execution-backend idiom (:mod:`repro.sim.backends`): a
:class:`WorkerProvider` is the small lifecycle surface the pool
coordinator needs — ``spawn`` / ``poll`` / ``kill`` — and providers are
looked up by name through :func:`get_provider`, so adding a new substrate
(a container runner, a cloud API) is one registration, not a coordinator
change.  Two providers ship:

* ``local`` — subprocesses on this machine (:class:`LocalWorkerProvider`),
  the default and the one CI exercises, including the kill-and-re-lease
  story;
* ``ssh`` — a stub (:class:`SSHWorkerProvider`) that documents the remote
  shape (it builds the ``ssh host python -m repro ...`` argv) but refuses
  to spawn until a real transport lands.

Budgets are first-class: :class:`BudgetCaps` carries the hard stops the
coordinator enforces — max wall-clock seconds and max trials — so a
runaway grid is refused before any worker spawns and a hung fleet is
killed instead of billed.
"""

from __future__ import annotations

import shlex
import subprocess
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Callable, Optional, Sequence

from repro.fabric.errors import FabricError


@dataclass(frozen=True)
class BudgetCaps:
    """Hard budget stops for a pool run (``None`` = uncapped).

    ``max_seconds`` bounds the coordinator's wall clock: when it trips,
    every live worker is killed and the run fails loudly.  ``max_trials``
    bounds the grid itself and is checked *before* any worker spawns.
    """

    max_seconds: Optional[float] = None
    max_trials: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise FabricError(f"max_seconds cap must be > 0, got {self.max_seconds}")
        if self.max_trials is not None and self.max_trials < 1:
            raise FabricError(f"max_trials cap must be >= 1, got {self.max_trials}")

    def to_dict(self) -> dict[str, Optional[float]]:
        return {"max_seconds": self.max_seconds, "max_trials": self.max_trials}


@dataclass
class WorkerHandle:
    """One spawned worker, as the provider tracks it.

    ``process`` and ``log_handle`` are provider-private state (the local
    provider keeps the :class:`subprocess.Popen` and its open log file
    here); the coordinator only ever passes the handle back to the
    provider that created it.
    """

    worker_id: str
    argv: tuple[str, ...]
    process: Optional[Any] = None
    log_path: Optional[Path] = None
    log_handle: Optional[IO[bytes]] = None


class WorkerProvider(ABC):
    """The lifecycle surface the pool coordinator drives.

    Implementations must be non-blocking: ``spawn`` returns as soon as
    the worker is launched, ``poll`` never waits, and ``kill`` is a hard
    stop (the lease layer owns retries and graceful degradation).
    """

    #: Registry name (set per subclass).
    name: str = "abstract"

    @abstractmethod
    def spawn(
        self,
        worker_id: str,
        argv: Sequence[str],
        *,
        log_path: Optional[Path] = None,
    ) -> WorkerHandle:
        """Launch ``argv`` as a worker; its output goes to ``log_path``."""

    @abstractmethod
    def poll(self, handle: WorkerHandle) -> Optional[int]:
        """``None`` while the worker runs, else its exit code."""

    @abstractmethod
    def kill(self, handle: WorkerHandle) -> None:
        """Hard-stop the worker (idempotent; reclaimed leases call this)."""


class LocalWorkerProvider(WorkerProvider):
    """Workers as subprocesses of this machine — the default provider."""

    name = "local"

    def spawn(
        self,
        worker_id: str,
        argv: Sequence[str],
        *,
        log_path: Optional[Path] = None,
    ) -> WorkerHandle:
        log_handle: Optional[IO[bytes]] = None
        if log_path is not None:
            log_path.parent.mkdir(parents=True, exist_ok=True)
            log_handle = open(log_path, "ab")
        try:
            process = subprocess.Popen(
                list(argv),
                stdout=log_handle if log_handle is not None else subprocess.DEVNULL,
                stderr=subprocess.STDOUT,
                stdin=subprocess.DEVNULL,
            )
        except OSError as error:
            if log_handle is not None:
                log_handle.close()
            raise FabricError(f"could not spawn worker {worker_id}: {error}") from None
        return WorkerHandle(
            worker_id=worker_id,
            argv=tuple(argv),
            process=process,
            log_path=log_path,
            log_handle=log_handle,
        )

    def poll(self, handle: WorkerHandle) -> Optional[int]:
        returncode = handle.process.poll()
        if returncode is not None:
            self._release(handle)
        return returncode

    def kill(self, handle: WorkerHandle) -> None:
        if handle.process.poll() is None:
            handle.process.kill()
            handle.process.wait()
        self._release(handle)

    @staticmethod
    def _release(handle: WorkerHandle) -> None:
        if handle.log_handle is not None:
            handle.log_handle.close()
            handle.log_handle = None


class SSHWorkerProvider(WorkerProvider):
    """Remote workers over SSH — a registered stub.

    Documents the remote shape (:meth:`remote_argv` is the command a real
    transport would run) and fails loudly at :meth:`spawn` rather than
    pretending a fleet exists.  Registering the stub keeps the provider
    surface honest: the coordinator, CLI and docs already speak its name,
    so landing the transport is a provider change only.
    """

    name = "ssh"

    def __init__(self, host: str = "", python: str = "python3"):
        self.host = host
        self.python = python

    def remote_argv(self, argv: Sequence[str]) -> list[str]:
        """The ``ssh`` command line a real transport would execute."""
        if not self.host:
            raise FabricError("the 'ssh' provider needs a host= option")
        # The worker argv's interpreter is the *local* python; a remote
        # host runs its own.
        command = [self.python, *argv[1:]]
        return ["ssh", self.host, shlex.join(command)]

    def spawn(
        self,
        worker_id: str,
        argv: Sequence[str],
        *,
        log_path: Optional[Path] = None,
    ) -> WorkerHandle:
        raise FabricError(
            "the 'ssh' provider is a stub: it documents the remote worker "
            f"shape ({shlex.join(self.remote_argv(argv)) if self.host else 'ssh HOST ...'}) "
            "but has no transport yet; use provider='local' or register a "
            "complete provider via repro.fabric.register_provider"
        )

    def poll(self, handle: WorkerHandle) -> Optional[int]:  # pragma: no cover - stub
        raise FabricError("the 'ssh' provider is a stub and spawns no workers")

    def kill(self, handle: WorkerHandle) -> None:  # pragma: no cover - stub
        raise FabricError("the 'ssh' provider is a stub and spawns no workers")


@dataclass(frozen=True)
class ProviderSpec:
    """One registered provider: a name, a factory, and a --help line."""

    name: str
    factory: Callable[..., WorkerProvider]
    description: str = ""


#: Name -> ProviderSpec, in registration order (default provider first).
_REGISTRY: dict[str, ProviderSpec] = {}


def register_provider(spec: ProviderSpec, *, replace: bool = False) -> ProviderSpec:
    """Add a provider to the registry (the one-file-change extension point)."""
    if not spec.name or not spec.name.isidentifier():
        raise FabricError(f"provider name must be a simple identifier, got {spec.name!r}")
    if spec.name in _REGISTRY and not replace:
        raise FabricError(f"provider '{spec.name}' is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def provider_names() -> tuple[str, ...]:
    """All registered provider names, default provider first."""
    return tuple(_REGISTRY)


def get_provider(name: str, **options: Any) -> WorkerProvider:
    """Instantiate a registered provider by name (pure registry lookup)."""
    try:
        spec = _REGISTRY[name]
    except KeyError:
        known = ", ".join(provider_names())
        raise FabricError(f"unknown provider '{name}' (known: {known})") from None
    return spec.factory(**options)


register_provider(
    ProviderSpec(
        name="local",
        factory=LocalWorkerProvider,
        description="subprocess workers on this machine",
    )
)
register_provider(
    ProviderSpec(
        name="ssh",
        factory=SSHWorkerProvider,
        description="remote workers over SSH (stub: documents the shape, no transport)",
    )
)

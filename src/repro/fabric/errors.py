"""Fabric-level failures, one exception type for the whole subsystem."""

from __future__ import annotations


class FabricError(RuntimeError):
    """A fabric operation failed (bad shard set, dead workers, blown budget).

    The orchestration twin of :class:`repro.sim.sweep.SweepError`: the CLI
    turns both into one clean diagnostic line instead of a traceback.
    """

"""The lease-based shard pool — an elastic coordinator over providers.

``run_pool`` drives one sharded sweep to a validated, merged checkpoint:

* the grid is written once as a declarative ``grid.json`` artifact, and
  every worker is just ``python -m repro sweep --grid grid.json --shard
  i/k --out shard-i.jsonl --resume`` on some provider — workers hold no
  state the checkpoint does not;
* each shard is a **lease**: the coordinator spawns a worker for it and
  watches the shard checkpoint grow (the file *is* the heartbeat — a
  worker that stops appending for ``lease_timeout`` seconds is presumed
  dead, killed, and its shard re-leased);
* failures degrade gracefully: a dead or timed-out worker's shard is
  requeued with exponential backoff under a capped retry budget, and the
  replacement worker ``--resume``\\ s the partial checkpoint, so work is
  re-leased but never redone — and never double-counted, because shard
  ownership is a pure hash (:mod:`repro.fabric.sharding`) and the merge
  validator (:mod:`repro.fabric.merge`) refuses anything but a disjoint,
  gap-free partition;
* budgets are hard stops (:class:`~repro.fabric.providers.BudgetCaps`):
  an over-budget grid is refused before any worker spawns, and an
  over-time fleet is killed mid-flight;
* the run ends with the canonical unsharded checkpoint at ``out`` (byte-
  identical to a serial ``repro sweep``) plus a JSON run report beside it
  — per-shard attempts, lease events, wall clock, budget — written on
  failure too, so a dead pool leaves a post-mortem.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

from repro.fabric.errors import FabricError
from repro.obs import get_tracer
from repro.fabric.merge import merge_checkpoints
from repro.fabric.providers import (
    BudgetCaps,
    WorkerProvider,
    get_provider,
)
from repro.sim.backends import get_backend
from repro.sim.sweep import (
    GridSpec,
    ProgressCallback,
    SweepError,
    expand_grid,
    load_checkpoint,
    shard_specs,
)

POOL_REPORT_KIND = "pool-report"
POOL_REPORT_VERSION = 1


@dataclass
class _Lease:
    """One shard currently leased to a live worker."""

    shard: int
    handle: Any
    last_progress: float  # monotonic time of the last checkpoint growth
    last_size: int  # shard checkpoint size at that moment


@dataclass
class PoolResult:
    """A finished pool run: the merged checkpoint and its run report."""

    out: Path
    report_path: Path
    report: dict[str, Any]

    @property
    def ok(self) -> bool:
        return bool(self.report.get("ok"))


def worker_argv(grid_path: Path, shard: int, count: int, shard_path: Path) -> list[str]:
    """The command line one shard worker runs (any provider, any host)."""
    return [
        sys.executable, "-m", "repro", "sweep",
        "--grid", str(grid_path),
        "--shard", f"{shard}/{count}",
        "--out", str(shard_path),
        "--resume", "--no-progress",
    ]


def _count_trials(path: Path) -> int:
    """Completed trial records in a shard checkpoint (cheap newline count)."""
    try:
        data = path.read_bytes()
    except OSError:
        return 0
    return max(0, data.count(b"\n") - 1)  # minus the metadata line


def run_pool(
    grid: GridSpec,
    *,
    out: Union[str, Path],
    workers: int = 2,
    shards: Optional[int] = None,
    lease_timeout: float = 60.0,
    provider: Union[str, WorkerProvider] = "local",
    max_retries: int = 3,
    backoff: float = 0.5,
    budget: Optional[BudgetCaps] = None,
    workdir: Optional[Union[str, Path]] = None,
    progress: Optional[ProgressCallback] = None,
    poll_interval: float = 0.05,
) -> PoolResult:
    """Run ``grid`` as ``shards`` leased shards on up to ``workers`` workers.

    ``shards`` defaults to ``workers`` (one lease per worker slot).
    ``provider`` is a registry name or a ready :class:`WorkerProvider`
    instance (tests inject chaos providers that way).  ``backoff`` is the
    base of the exponential re-lease delay: attempt ``a`` of a shard
    waits ``backoff * 2**(a-1)`` seconds after its predecessor failed.
    Raises :class:`FabricError` — after killing the fleet and writing the
    run report — when a shard exhausts ``max_retries`` re-leases or a
    :class:`~repro.fabric.providers.BudgetCaps` limit trips.
    """
    if workers < 1:
        raise FabricError(f"pool needs workers >= 1, got {workers}")
    count = workers if shards is None else shards
    if count < 1:
        raise FabricError(f"pool needs shards >= 1, got {count}")
    if lease_timeout <= 0:
        raise FabricError(f"lease_timeout must be > 0 seconds, got {lease_timeout}")
    if max_retries < 0:
        raise FabricError(f"max_retries must be >= 0, got {max_retries}")
    if backoff < 0:
        raise FabricError(f"backoff must be >= 0 seconds, got {backoff}")
    budget = budget if budget is not None else BudgetCaps()
    pool_provider = (
        provider if isinstance(provider, WorkerProvider) else get_provider(provider)
    )
    # Lease-lifecycle events stream live into the trace sink (when one is
    # configured) in addition to the post-mortem ``events`` lists in the
    # run report.  A disabled tracer makes every call below a no-op.
    tracer = get_tracer()

    specs = expand_grid(grid)
    if budget.max_trials is not None and len(specs) > budget.max_trials:
        raise FabricError(
            f"grid expands to {len(specs)} trials, over the max_trials="
            f"{budget.max_trials} budget cap; shrink the grid or raise the cap"
        )
    by_cell = get_backend(grid.backend).batch_cells
    owned = {
        index: {spec.index for spec in shard_specs(specs, (index, count), by_cell=by_cell)}
        for index in range(count)
    }

    out_path = Path(out)
    report_path = out_path.with_suffix(".report.json")
    work_path = (
        Path(workdir) if workdir is not None
        else out_path.parent / f"{out_path.stem}-shards"
    )
    work_path.mkdir(parents=True, exist_ok=True)
    grid_path = work_path / "grid.json"
    grid_path.write_text(json.dumps(grid.to_dict(), indent=2) + "\n", encoding="utf-8")

    def shard_file(index: int) -> Path:
        return work_path / f"shard-{index:03d}-of-{count:03d}.jsonl"

    started = time.monotonic()
    pending: list[tuple[int, float]] = [(index, started) for index in range(count)]
    active: dict[int, _Lease] = {}
    completed: set[int] = set()
    attempts = {index: 0 for index in range(count)}
    events: dict[int, list[str]] = {index: [] for index in range(count)}
    live_trials = {index: 0 for index in range(count)}

    def build_report(ok: bool, error: Optional[str] = None) -> dict[str, Any]:
        report: dict[str, Any] = {
            "kind": POOL_REPORT_KIND,
            "version": POOL_REPORT_VERSION,
            "ok": ok,
            "out": str(out_path),
            "workers": workers,
            "shards": count,
            "provider": pool_provider.name,
            "lease_timeout": lease_timeout,
            "max_retries": max_retries,
            "trials": len(specs),
            "budget": budget.to_dict(),
            "wall_seconds": round(time.monotonic() - started, 3),
            "shard_reports": [
                {
                    "shard": index,
                    "trials": len(owned[index]),
                    "attempts": attempts[index],
                    "completed": index in completed,
                    "path": str(shard_file(index)),
                    "events": events[index],
                }
                for index in range(count)
            ],
        }
        if error is not None:
            report["error"] = error
        return report

    def write_report(report: dict[str, Any]) -> None:
        report_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    def fail(message: str) -> None:
        for lease in active.values():
            pool_provider.kill(lease.handle)
            tracer.event("pool.lease.kill", shard=lease.shard, reason="pool failure")
        active.clear()
        write_report(build_report(ok=False, error=message))
        raise FabricError(message)

    def emit_progress() -> None:
        if progress is None:
            return
        done = sum(len(owned[index]) for index in completed)
        done += sum(live_trials[index] for index in active)
        progress(min(done, len(specs)), len(specs))

    def verify_shard(index: int) -> Optional[str]:
        path = shard_file(index)
        if not path.exists():
            return "wrote no checkpoint"
        try:
            outcomes, _ = load_checkpoint(path, grid, specs, shard=(index, count))
        except SweepError as error:
            return f"left an invalid checkpoint: {error}"
        missing = owned[index] - set(outcomes)
        if missing:
            return (
                f"left an incomplete checkpoint ({len(missing)} of "
                f"{len(owned[index])} owned trials missing)"
            )
        return None

    def requeue(index: int, reason: str) -> None:
        events[index].append(f"attempt {attempts[index]}: {reason}")
        live_trials[index] = 0
        tracer.event(
            "pool.lease.reclaim", shard=index, attempt=attempts[index], reason=reason
        )
        if attempts[index] > max_retries:
            fail(
                f"shard {index}/{count} failed {attempts[index]} time"
                f"{'s' if attempts[index] != 1 else ''} "
                f"(retry cap {max_retries}); last failure: {reason}"
            )
        delay = backoff * (2 ** (attempts[index] - 1))
        tracer.event("pool.lease.backoff", shard=index, delay_seconds=delay)
        pending.append((index, time.monotonic() + delay))

    emit_progress()
    while len(completed) < count:
        now = time.monotonic()
        if budget.max_seconds is not None and now - started > budget.max_seconds:
            fail(
                f"pool exceeded its max_seconds={budget.max_seconds:g} budget "
                "cap; killed the remaining workers"
            )
        while len(active) < workers:
            claim = next((entry for entry in pending if entry[1] <= now), None)
            if claim is None:
                break
            pending.remove(claim)
            index = claim[0]
            attempts[index] += 1
            path = shard_file(index)
            handle = pool_provider.spawn(
                f"shard-{index}",
                worker_argv(grid_path, index, count, path),
                log_path=work_path / f"shard-{index:03d}-attempt-{attempts[index]}.log",
            )
            size = path.stat().st_size if path.exists() else 0
            active[index] = _Lease(
                shard=index, handle=handle, last_progress=now, last_size=size
            )
            tracer.event("pool.lease.spawn", shard=index, attempt=attempts[index])
        for index in list(active):
            lease = active[index]
            returncode = pool_provider.poll(lease.handle)
            path = shard_file(index)
            if returncode is None:
                size = path.stat().st_size if path.exists() else 0
                if size > lease.last_size:
                    # The growing checkpoint is the heartbeat.
                    lease.last_size = size
                    lease.last_progress = time.monotonic()
                    live_trials[index] = _count_trials(path)
                    tracer.event(
                        "pool.lease.heartbeat", shard=index, trials=live_trials[index]
                    )
                    emit_progress()
                elif time.monotonic() - lease.last_progress > lease_timeout:
                    tracer.event(
                        "pool.lease.stall", shard=index, timeout_seconds=lease_timeout
                    )
                    pool_provider.kill(lease.handle)
                    tracer.event("pool.lease.kill", shard=index, reason="lease timeout")
                    del active[index]
                    requeue(
                        index,
                        f"lease timed out after {lease_timeout:g}s without "
                        "checkpoint progress; worker killed",
                    )
                continue
            del active[index]
            if returncode == 0:
                problem = verify_shard(index)
                if problem is None:
                    live_trials[index] = 0
                    completed.add(index)
                    tracer.event(
                        "pool.lease.complete", shard=index, attempt=attempts[index]
                    )
                    emit_progress()
                else:
                    requeue(index, f"worker exited 0 but {problem}")
            else:
                requeue(index, f"worker exited with code {returncode}")
        if len(completed) < count:
            time.sleep(poll_interval)

    try:
        merge_checkpoints(
            [shard_file(index) for index in range(count)], out_path, grid=grid
        )
    except FabricError as error:
        fail(f"merge of the completed shards failed: {error}")
    report = build_report(ok=True)
    write_report(report)
    return PoolResult(out=out_path, report_path=report_path, report=report)

"""Validate and merge shard checkpoints back into the unsharded file.

The merge is the fabric's safety net: workers may die, be re-leased, or
run twice, but a set of shard files only merges if it is a **disjoint,
gap-free partition** of the grid — every trial index appears exactly
once, in exactly the shard the hash assigns it to.  Anything else (a
missing shard, an incomplete shard, a record owned by another shard —
the double-count signature) is a loud :class:`~repro.fabric.errors
.FabricError` naming the offending file.

A validated merge re-serializes the outcomes through the same canonical
encoder the sweep writer uses, so the output is **byte-identical** to
the checkpoint an unsharded ``repro sweep`` of the same grid writes —
CI holds that equality with ``cmp``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.fabric.errors import FabricError
from repro.sim.backends import get_backend
from repro.sim.sweep import (
    GridSpec,
    ScenarioOutcome,
    expand_grid,
    load_checkpoint,
    read_checkpoint_grid,
    shard_specs,
    write_checkpoint,
)


@dataclass(frozen=True)
class MergeReport:
    """What a successful merge covered."""

    out: Path
    shards: int
    trials: int


def _format_indices(indices: Sequence[int], limit: int = 10) -> str:
    """``[0, 3, 7]`` rendered for an error message, elided past ``limit``."""
    shown = ", ".join(str(index) for index in indices[:limit])
    if len(indices) > limit:
        shown += f", ... ({len(indices) - limit} more)"
    return f"[{shown}]"


def merge_checkpoints(
    paths: Sequence[Union[str, Path]],
    out: Union[str, Path],
    *,
    grid: Optional[GridSpec] = None,
) -> MergeReport:
    """Merge a complete set of shard checkpoints into ``out``.

    ``paths`` must be every shard of one sharded sweep (any order).
    Validation is strict — same grid in every file, shard count equal to
    the number of files, indices exactly ``0..k-1``, each file covering
    exactly the trial indices its shard owns — and only then are the
    outcomes written to ``out`` as the canonical unsharded checkpoint.
    ``grid`` (when given) additionally pins the expected grid, catching
    a merge pointed at the wrong run's files.
    """
    shard_paths = [Path(path) for path in paths]
    if not shard_paths:
        raise FabricError("nothing to merge: no shard checkpoints given")
    metas = [read_checkpoint_grid(path) for path in shard_paths]
    merged_grid = grid if grid is not None else metas[0][0]
    count = len(shard_paths)
    seen_shards: dict[int, Path] = {}
    duplicate_shards: dict[int, list[Path]] = {}
    for path, (stored_grid, shard) in zip(shard_paths, metas):
        if stored_grid != merged_grid:
            reference = "the given grid" if grid is not None else str(shard_paths[0])
            raise FabricError(
                f"{path}: checkpoint grid differs from {reference}; "
                "shards of different sweeps cannot merge"
            )
        if shard is None:
            raise FabricError(
                f"{path}: not a shard checkpoint (written without --shard); "
                "merge only combines sharded files"
            )
        index, shard_count = shard
        if shard_count != count:
            raise FabricError(
                f"{path}: written as shard {index}/{shard_count} but {count} "
                f"file{'s were' if count != 1 else ' was'} given; a merge "
                f"needs all {shard_count} shards"
            )
        if index in seen_shards:
            duplicate_shards.setdefault(index, [seen_shards[index]]).append(path)
        else:
            seen_shards[index] = path
    if duplicate_shards:
        listed = _format_indices(sorted(duplicate_shards))
        detail = "; ".join(
            f"shard {index} in " + ", ".join(str(p) for p in duplicate_shards[index])
            for index in sorted(duplicate_shards)
        )
        raise FabricError(
            f"duplicate shard indices {listed}: each appears twice or more "
            f"({detail}); refusing to double-count"
        )
    missing_shards = sorted(set(range(count)) - set(seen_shards))
    if missing_shards:
        raise FabricError(
            f"missing shard indices {_format_indices(missing_shards)}: the "
            f"given files cover only {_format_indices(sorted(seen_shards))} "
            f"of 0..{count - 1}; a merge needs every shard exactly once"
        )

    specs = expand_grid(merged_grid)
    by_cell = get_backend(merged_grid.backend).batch_cells
    merged: dict[int, ScenarioOutcome] = {}
    for path, (_, shard) in zip(shard_paths, metas):
        outcomes, _ = load_checkpoint(path, merged_grid, specs, shard=shard)
        owned = {spec.index for spec in shard_specs(specs, shard, by_cell=by_cell)}
        stray = sorted(set(outcomes) - owned)
        if stray:
            raise FabricError(
                f"{path}: trial record {stray[0]} belongs to another shard — "
                "a re-leased worker may have written into the wrong file; "
                "refusing to double-count"
            )
        missing = sorted(owned - set(outcomes))
        if missing:
            raise FabricError(
                f"{path}: shard {shard[0]}/{shard[1]} is incomplete "
                f"(missing trials {_format_indices(missing)}, "
                f"{len(missing)} in total); "
                "resume it with repro sweep --resume before merging"
            )
        merged.update(outcomes)

    # Disjoint + per-shard complete + all shards present => full coverage.
    ordered = [merged[index] for index in range(len(specs))]
    out_path = Path(out)
    write_checkpoint(out_path, merged_grid, ordered)
    return MergeReport(out=out_path, shards=count, trials=len(specs))

"""``repro.fabric`` — distributed sweep orchestration.

Three layers over the sweep engine's deterministic checkpoint format:

* **sharding** (:mod:`repro.fabric.sharding`): hash-partition a grid's
  trial stream into disjoint, covering shards whose checkpoints
  concatenate back to the byte-identical unsharded file;
* **providers** (:mod:`repro.fabric.providers`): a registry of worker
  substrates (``local`` subprocesses, an ``ssh`` stub) behind the
  spawn/poll/kill lifecycle surface, with hard budget caps;
* **pool** (:mod:`repro.fabric.pool`): the lease-based coordinator —
  shards are leased to workers, heartbeats are checkpoint growth,
  timed-out leases are reclaimed with capped exponential-backoff
  retries, and the run ends in a merge-validated unsharded checkpoint
  plus a JSON run report.

CLI: ``repro sweep --shard i/k``, ``repro merge``, ``repro pool``.
"""

from repro.fabric.errors import FabricError
from repro.fabric.merge import MergeReport, merge_checkpoints
from repro.fabric.pool import PoolResult, run_pool, worker_argv
from repro.fabric.providers import (
    BudgetCaps,
    LocalWorkerProvider,
    ProviderSpec,
    SSHWorkerProvider,
    WorkerHandle,
    WorkerProvider,
    get_provider,
    provider_names,
    register_provider,
)
from repro.fabric.sharding import format_shard, parse_shard, shard_grid

__all__ = [
    "BudgetCaps",
    "FabricError",
    "LocalWorkerProvider",
    "MergeReport",
    "PoolResult",
    "ProviderSpec",
    "SSHWorkerProvider",
    "WorkerHandle",
    "WorkerProvider",
    "format_shard",
    "get_provider",
    "merge_checkpoints",
    "parse_shard",
    "provider_names",
    "register_provider",
    "run_pool",
    "shard_grid",
    "worker_argv",
]

"""Seeded random number generation for reproducible experiments.

Every stochastic component in this repository draws randomness through a
generator built *here* and threaded explicitly through the call tree
(never a module-level global).  This keeps individual trials replayable
from a seed, lets multi-trial experiments spawn independent streams, and
gives the static contract checker (:mod:`repro.lint`, rule L001) a single
blessed construction surface to key on: outside this module, neither
``random.Random(...)`` nor ``numpy.random.Generator``/``PCG64``/
``default_rng`` may be called directly.

Two generator families live behind that surface:

* :func:`make_rng` / :func:`spawn_rngs` / :func:`iter_rngs` — the
  standard library :class:`random.Random`, used by the per-interaction
  object engine.  Protocol transitions draw one or two small integers
  per interaction, where ``random.Random.randrange`` has far lower
  per-call overhead than constructing numpy arrays, and the Mersenne
  Twister's reproducibility guarantees across platforms are all we need.
* :func:`np_generator` / :func:`np_stream` — seeded
  ``numpy.random.Generator(PCG64)`` streams for the vectorized engines
  (array / counts / batch schedulers, fault schedule and corruption
  streams, code-space adversaries).  PCG64 streams seeded through
  :func:`derive_seed` are what make fault schedules bit-identical
  across backends.

numpy is imported lazily and only by the numpy-stream constructors: the
object-engine runtime stays numpy-free.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy

#: The RNG type threaded through all protocol transitions.
RNG = random.Random

#: Large odd multiplier used to decorrelate derived seeds (splitmix-style).
_SEED_STRIDE = 0x9E3779B97F4A7C15


def make_rng(seed: int | None = 0) -> RNG:
    """A fresh seeded generator.  ``seed=None`` gives OS entropy."""
    return random.Random(seed)


def derive_seed(seed: int, index: int) -> int:
    """A deterministic child seed for trial ``index`` of a seeded experiment."""
    return (seed * _SEED_STRIDE + index * 0xBF58476D1CE4E5B9 + 0x94D049BB133111EB) % 2**63


def spawn_rngs(seed: int, count: int) -> list[RNG]:
    """``count`` independent generators derived deterministically from ``seed``."""
    return [random.Random(derive_seed(seed, i)) for i in range(count)]


def iter_rngs(seed: int) -> Iterator[RNG]:
    """An endless stream of independent generators derived from ``seed``."""
    index = 0
    while True:
        yield random.Random(derive_seed(seed, index))
        index += 1


def np_generator(seed: int | None = 0) -> "numpy.random.Generator":
    """A seeded ``numpy.random.Generator(PCG64(seed))`` — the blessed
    constructor for every vectorized stream in the repository.

    ``seed`` is consumed exactly as ``PCG64(seed)`` does, so call sites
    that previously built ``Generator(PCG64(seed))`` by hand get
    bit-identical streams through this function.
    """
    try:
        import numpy
    except ImportError:
        raise RuntimeError(
            "numpy is required for vectorized random streams; install it "
            "with 'pip install repro-podc25-leader-election[array]' or use "
            "the numpy-free object engine (make_rng)"
        ) from None
    return numpy.random.Generator(numpy.random.PCG64(seed))


def np_stream(seed: int, stream: int) -> "numpy.random.Generator":
    """An independent PCG64 stream: ``np_generator(derive_seed(seed, stream))``.

    ``stream`` is a small tag (0, 1, ... or a module-level stream
    constant) naming which of an experiment's independent streams this
    is; distinct tags under one ``seed`` give decorrelated generators.
    This is the constructor behind the fault engine's schedule/corruption
    stream split and the counts engines' scheduler streams.
    """
    return np_generator(derive_seed(seed, stream))

"""Seeded random number generation for reproducible experiments.

Every stochastic component in this repository draws randomness through a
:class:`random.Random` instance threaded explicitly through the call tree
(never the module-level global).  This keeps individual trials replayable
from a seed and lets multi-trial experiments spawn independent streams.

We use the standard library generator rather than numpy's: protocol
transitions draw one or two small integers per interaction, where
``random.Random.randrange`` has far lower per-call overhead than
constructing numpy arrays, and the Mersenne Twister's reproducibility
guarantees across platforms are all we need.
"""

from __future__ import annotations

import random
from typing import Iterator

#: The RNG type threaded through all protocol transitions.
RNG = random.Random

#: Large odd multiplier used to decorrelate derived seeds (splitmix-style).
_SEED_STRIDE = 0x9E3779B97F4A7C15


def make_rng(seed: int | None = 0) -> RNG:
    """A fresh seeded generator.  ``seed=None`` gives OS entropy."""
    return random.Random(seed)


def derive_seed(seed: int, index: int) -> int:
    """A deterministic child seed for trial ``index`` of a seeded experiment."""
    return (seed * _SEED_STRIDE + index * 0xBF58476D1CE4E5B9 + 0x94D049BB133111EB) % 2**63


def spawn_rngs(seed: int, count: int) -> list[RNG]:
    """``count`` independent generators derived deterministically from ``seed``."""
    return [random.Random(derive_seed(seed, i)) for i in range(count)]


def iter_rngs(seed: int) -> Iterator[RNG]:
    """An endless stream of independent generators derived from ``seed``."""
    index = 0
    while True:
        yield random.Random(derive_seed(seed, index))
        index += 1

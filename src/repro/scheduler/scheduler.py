"""The uniformly random pairwise scheduler of the population model.

In each step the scheduler selects an ordered pair of distinct agents
uniformly at random (``n(n-1)`` ordered pairs); the pair then interacts via
the protocol's transition function.  The paper's analysis (Appendix A)
relies only on this uniformity, e.g. Lemma A.1's concentration of
per-agent interaction counts.

:class:`RandomScheduler` draws fresh pairs; :class:`RecordedSchedule`
replays a recorded interaction sequence, which the test suite uses to
verify schedule-determinism of protocols (the transition function is the
only other source of randomness, and it takes an explicit RNG).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.scheduler.rng import RNG


class RandomScheduler:
    """Draws uniformly random ordered pairs of distinct agents."""

    def __init__(self, n: int, rng: RNG):
        if n < 2:
            raise ValueError(f"need at least two agents to interact, got n={n}")
        self.n = n
        self._rng = rng

    def next_pair(self) -> tuple[int, int]:
        """One ordered pair ``(i, j)``, ``i != j``, uniform over all such pairs."""
        rng = self._rng
        n = self.n
        i = rng.randrange(n)
        j = rng.randrange(n - 1)
        if j >= i:
            j += 1
        return i, j

    def next_pairs(self, count: int) -> list[tuple[int, int]]:
        """``count`` independent pairs drawn in one call (batched fast path).

        Consumes the RNG stream exactly as ``count`` calls to
        :meth:`next_pair` would, so batched and stepwise executions of the
        same seed are bit-identical.  The loop keeps everything in locals:
        one attribute lookup per batch instead of several per interaction.
        """
        if count < 0:
            raise ValueError(f"pair count must be non-negative, got {count}")
        randrange = self._rng.randrange
        n = self.n
        pairs: list[tuple[int, int]] = []
        append = pairs.append
        for _ in range(count):
            i = randrange(n)
            j = randrange(n - 1)
            if j >= i:
                j += 1
            append((i, j))
        return pairs

    def pairs(self, count: int) -> Iterator[tuple[int, int]]:
        """A stream of ``count`` independent pairs."""
        for _ in range(count):
            yield self.next_pair()


class RecordedSchedule:
    """A fixed, replayable sequence of interaction pairs.

    The population model's *reachability* notion (configurations reachable
    via some sequence of pairs) is exactly a recorded schedule; closure
    properties such as Lemma 6.1 are tested by applying hand-crafted or
    recorded schedules.
    """

    def __init__(self, pairs: Iterable[tuple[int, int]]):
        self._pairs = [(int(i), int(j)) for i, j in pairs]
        for i, j in self._pairs:
            if i == j:
                raise ValueError(f"self-interaction ({i}, {j}) is not a valid pair")

    @classmethod
    def record(cls, n: int, count: int, rng: RNG) -> "RecordedSchedule":
        """Record ``count`` pairs drawn from a :class:`RandomScheduler`."""
        scheduler = RandomScheduler(n, rng)
        return cls(scheduler.pairs(count))

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self._pairs)

    def __getitem__(self, index: int) -> tuple[int, int]:
        return self._pairs[index]

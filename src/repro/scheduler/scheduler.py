"""The uniformly random pairwise scheduler of the population model.

In each step the scheduler selects an ordered pair of distinct agents
uniformly at random (``n(n-1)`` ordered pairs); the pair then interacts via
the protocol's transition function.  The paper's analysis (Appendix A)
relies only on this uniformity, e.g. Lemma A.1's concentration of
per-agent interaction counts.

:class:`RandomScheduler` draws fresh pairs; :class:`RecordedSchedule`
replays a recorded interaction sequence, which the test suite uses to
verify schedule-determinism of protocols (the transition function is the
only other source of randomness, and it takes an explicit RNG).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.scheduler.rng import RNG, np_generator


class RandomScheduler:
    """Draws uniformly random ordered pairs of distinct agents."""

    def __init__(self, n: int, rng: RNG):
        if n < 2:
            raise ValueError(f"need at least two agents to interact, got n={n}")
        self.n = n
        self._rng = rng

    def next_pair(self) -> tuple[int, int]:
        """One ordered pair ``(i, j)``, ``i != j``, uniform over all such pairs."""
        rng = self._rng
        n = self.n
        i = rng.randrange(n)
        j = rng.randrange(n - 1)
        if j >= i:
            j += 1
        return i, j

    def next_pairs(self, count: int) -> list[tuple[int, int]]:
        """``count`` independent pairs materialized in one call.

        Consumes the RNG stream exactly as ``count`` calls to
        :meth:`next_pair` would, so batched and stepwise executions of the
        same seed are bit-identical.  Callers that immediately unpack the
        pairs should prefer :meth:`pairs`, which draws identically but
        never holds ``count`` tuples alive at once.
        """
        if count < 0:
            raise ValueError(f"pair count must be non-negative, got {count}")
        return list(self.pairs(count))

    def pairs(self, count: int) -> Iterator[tuple[int, int]]:
        """A stream of ``count`` independent pairs (the batch-loop fast path).

        Identical RNG consumption to :meth:`next_pairs`, but each pair is
        yielded, unpacked, and freed in turn — the simulator's batch loop
        used to materialize a list of ``count`` tuples per draw only to
        throw it away.  The hot locals (``randrange``, ``n``) are bound
        once per stream rather than once per pair.
        """
        randrange = self._rng.randrange
        n = self.n
        n_minus_1 = n - 1
        for _ in range(count):
            i = randrange(n)
            j = randrange(n_minus_1)
            if j >= i:
                j += 1
            yield i, j


class ArrayScheduler:
    """Vectorized sibling of :class:`RandomScheduler` for the array backend.

    Draws uniformly random ordered pairs of distinct agents in blocks of
    ``count`` at a time, as two parallel numpy index vectors.  The
    rejection-free construction is the same as :meth:`RandomScheduler
    .next_pair` — ``i ~ U[0, n)``, ``j ~ U[0, n-1)`` shifted up past ``i``
    — so the pair distribution is *identical* to the object scheduler's.

    **RNG stream.**  This scheduler owns a dedicated ``numpy`` PCG64
    stream seeded independently of the object backend's Mersenne-Twister
    stream.  The two backends therefore sample the same pair distribution
    but different concrete sequences: cross-backend runs of one seed are
    *distribution-equal, not bit-equal* (see README "Execution backends").
    PCG64's cross-platform reproducibility guarantee keeps array-backend
    runs themselves bit-stable for a given seed.

    **Slicing invariance.**  The generator is consumed in fixed-size
    internal chunks (``DRAW_CHUNK`` pairs at a time) that ``next_pairs``
    slices to order, so the pair *sequence* is a pure function of the
    seed: drawing 1000 pairs one at a time, or as 4 × 250, or as one
    block yields the same pairs.  Downstream, that is what makes array
    runs independent of block size and convergence-check interval,
    mirroring the object scheduler's batching guarantee.
    """

    #: Pairs drawn from the generator per internal refill.
    DRAW_CHUNK = 1 << 13

    def __init__(self, n: int, seed: int):
        if n < 2:
            raise ValueError(f"need at least two agents to interact, got n={n}")
        import numpy  # deferred: the object backend must not require numpy

        self.n = n
        self.seed = seed
        self._np = numpy
        self._rng = np_generator(seed)
        self._buffer_i = None
        self._buffer_j = None
        self._cursor = 0

    def _refill(self) -> None:
        np = self._np
        count = self.DRAW_CHUNK
        self._buffer_i = self._rng.integers(0, self.n, size=count, dtype=np.int64)
        responders = self._rng.integers(0, self.n - 1, size=count, dtype=np.int64)
        responders += responders >= self._buffer_i
        self._buffer_j = responders
        self._cursor = 0

    def next_pairs(self, count: int):
        """Draw ``count`` ordered pairs as ``(initiators, responders)`` arrays.

        Both arrays are fresh ``int64`` arrays of length ``count`` with
        ``initiators[k] != responders[k]`` for every ``k``.
        """
        if count < 0:
            raise ValueError(f"pair count must be non-negative, got {count}")
        np = self._np
        parts_i = []
        parts_j = []
        remaining = count
        while remaining > 0:
            if self._buffer_i is None or self._cursor >= self.DRAW_CHUNK:
                self._refill()
            take = min(remaining, self.DRAW_CHUNK - self._cursor)
            stop = self._cursor + take
            parts_i.append(self._buffer_i[self._cursor:stop])
            parts_j.append(self._buffer_j[self._cursor:stop])
            self._cursor = stop
            remaining -= take
        if len(parts_i) == 1:
            return parts_i[0].copy(), parts_j[0].copy()
        if not parts_i:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        return np.concatenate(parts_i), np.concatenate(parts_j)


class CollisionRunSampler:
    """Samples lengths of collision-free interaction *runs* (counts backend).

    The count-vector engine (:mod:`repro.sim.counts_backend`) applies
    interactions in aggregated batches, which is only sound while every
    interaction in the batch touches *distinct* agents — the moment an
    agent interacts twice, its second interaction must read the state its
    first one wrote.  Under the uniform pairwise scheduler the number of
    interactions until that first repeat is a pure function of ``n``
    (agent draws are state-independent), with the birthday-problem law::

        P(first t interactions collision-free)
            = Π_{s<t} (n-2s)(n-2s-1) / (n(n-1))

    so runs are Θ(√n) long in expectation.  This sampler precomputes that
    survival curve once per population size and draws run lengths by
    inverse transform (one uniform + one ``searchsorted``), from whatever
    ``numpy`` generator the caller owns — the counts engine passes its own
    PCG64 stream so a counts run stays a pure function of its seed.

    ``next_run_length()`` is always ≥ 1 (a single interaction's two agents
    are distinct by construction) and never exceeds ``n // 2`` (after that
    many interactions every agent has been used).
    """

    def __init__(self, n: int, generator):
        if n < 2:
            raise ValueError(f"need at least two agents to interact, got n={n}")
        import numpy  # deferred: the object backend must not require numpy

        self.n = n
        self._np = numpy
        self._generator = generator
        # Tabulate until the survival probability is negligible (or the
        # hard n//2 exhaustion bound).  6·√n stretches ~9 standard
        # deviations past the mean run length; beyond it survival < 1e-30.
        limit = min(n // 2, int(6 * numpy.sqrt(n)) + 8)
        s = numpy.arange(limit, dtype=numpy.float64)
        with numpy.errstate(divide="ignore"):
            terms = (
                numpy.log(numpy.maximum(n - 2 * s, 0))
                + numpy.log(numpy.maximum(n - 2 * s - 1, 0))
                - numpy.log(n)
                - numpy.log(n - 1)
            )
        #: survival[t-1] = P(run length >= t), a non-increasing curve.
        self.survival = numpy.exp(numpy.cumsum(terms))
        self._neg_survival = -self.survival

    def next_run_length(self) -> int:
        """Draw one run length: max t with ``P(run >= t) > u``, u ~ U(0,1)."""
        u = self._generator.random()
        # survival is non-increasing, so count entries > u via a single
        # searchsorted on its negation (which is non-decreasing).  The
        # ndarray method skips the numpy.* dispatch wrapper — this is
        # called once per collision-free run, the counts engine's unit of
        # progress.
        length = int(self._neg_survival.searchsorted(-u, side="right"))
        return max(1, length)

    def next_run_lengths(self, count: int):
        """Draw ``count`` i.i.d. run lengths as one ``int64`` vector.

        The trial-vectorized sibling of :meth:`next_run_length` for the
        batch counts engine (:mod:`repro.sim.batch_backend`): one uniform
        block plus one ``searchsorted`` serves a whole trial batch's
        lockstep step.  Same inverse transform, same law per entry, and
        the generator stream is consumed exactly as ``count`` scalar
        draws would consume it.
        """
        if count < 0:
            raise ValueError(f"run count must be non-negative, got {count}")
        np = self._np
        u = self._generator.random(count)
        lengths = self._neg_survival.searchsorted(-u, side="right")
        return np.maximum(lengths, 1).astype(np.int64)


class RecordedSchedule:
    """A fixed, replayable sequence of interaction pairs.

    The population model's *reachability* notion (configurations reachable
    via some sequence of pairs) is exactly a recorded schedule; closure
    properties such as Lemma 6.1 are tested by applying hand-crafted or
    recorded schedules.
    """

    def __init__(self, pairs: Iterable[tuple[int, int]]):
        self._pairs = [(int(i), int(j)) for i, j in pairs]
        for i, j in self._pairs:
            if i == j:
                raise ValueError(f"self-interaction ({i}, {j}) is not a valid pair")

    @classmethod
    def record(cls, n: int, count: int, rng: RNG) -> "RecordedSchedule":
        """Record ``count`` pairs drawn from a :class:`RandomScheduler`."""
        scheduler = RandomScheduler(n, rng)
        return cls(scheduler.pairs(count))

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self._pairs)

    def __getitem__(self, index: int) -> tuple[int, int]:
        return self._pairs[index]

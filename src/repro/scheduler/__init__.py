"""Uniform random pairwise scheduler and reproducible RNG utilities."""

from repro.scheduler.rng import RNG, make_rng, np_generator, np_stream, spawn_rngs
from repro.scheduler.scheduler import ArrayScheduler, RandomScheduler, RecordedSchedule

__all__ = [
    "RNG",
    "make_rng",
    "np_generator",
    "np_stream",
    "spawn_rngs",
    "ArrayScheduler",
    "RandomScheduler",
    "RecordedSchedule",
]

"""Uniform random pairwise scheduler and reproducible RNG utilities."""

from repro.scheduler.rng import RNG, make_rng, spawn_rngs
from repro.scheduler.scheduler import RandomScheduler, RecordedSchedule

__all__ = ["RNG", "make_rng", "spawn_rngs", "RandomScheduler", "RecordedSchedule"]

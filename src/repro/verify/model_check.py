"""Exhaustive exploration of population-protocol configuration graphs.

The population model's correctness notions quantify over *all* interaction
sequences: a configuration set is *safe* if no sequence leaves it
(closure), and the protocol stabilizes with probability 1 iff from every
reachable configuration some sequence reaches the goal set (under the
uniform scheduler, reachability of an absorbing goal from everywhere
implies almost-sure convergence).  At tiny population sizes these are
finite-graph properties that can be checked *exhaustively* — a much
stronger guarantee than any number of random trials.

This module applies to protocols whose transition function is
**deterministic** (consumes no RNG): the baselines, the substrates,
``PropagateReset`` and — crucially — the Appendix-B **derandomized**
collision detection, whose whole point is that δ needs no randomness.
:class:`ForbiddenRNG` enforces the requirement at runtime.

Agents are anonymous, so configurations are *multisets* of states; we
canonicalize to sorted tuples of state-keys, which typically shrinks the
graph by a factor of ``n!``.

Usage::

    result = explore(protocol, [initial_config], key=my_key, max_configs=100_000)
    assert result.complete                       # frontier exhausted: exact
    assert check_invariant(result, no_top)       # holds on EVERY reachable config
    assert check_goal_reachable_from_all(result, is_goal)   # a.s. convergence
    assert check_closure(protocol, goal_configs, key)       # goal set closed
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.core.protocol import PopulationProtocol

#: Canonical hashable key of one agent state.
StateKey = Callable[[Any], Any]
#: Predicate on a (live, decoded) configuration.
ConfigTest = Callable[[Sequence[Any]], bool]


class ForbiddenRNG:
    """An RNG stand-in that fails loudly if the transition samples.

    Exhaustive exploration is only sound for deterministic δ; passing this
    object guarantees any hidden randomness surfaces as an error instead
    of silently truncating the configuration graph.
    """

    def _refuse(self, *args: Any, **kwargs: Any) -> Any:
        raise RuntimeError(
            "transition function consumed randomness during model checking; "
            "exhaustive exploration requires a deterministic protocol"
        )

    randrange = _refuse
    random = _refuse
    randint = _refuse
    choice = _refuse
    sample = _refuse
    shuffle = _refuse


@dataclass
class ExplorationResult:
    """The (possibly truncated) reachable configuration graph."""

    #: canonical config -> list of canonical successor configs
    graph: dict[tuple, list[tuple]]
    #: canonical forms of the supplied initial configurations
    initial: list[tuple]
    #: True iff the frontier was exhausted (exact reachable set)
    complete: bool
    #: decoded representative for each canonical config
    representatives: dict[tuple, list[Any]] = field(repr=False, default_factory=dict)

    @property
    def explored(self) -> int:
        return len(self.graph)

    def configurations(self) -> Iterable[list[Any]]:
        """Decoded representative of every explored configuration."""
        return self.representatives.values()


def _canonical(config: Sequence[Any], key: StateKey) -> tuple:
    return tuple(sorted(key(state) for state in config))


def explore(
    protocol: PopulationProtocol,
    initial_configs: Sequence[Sequence[Any]],
    key: StateKey,
    max_configs: int = 100_000,
    clone: Callable[[Any], Any] = lambda state: state.clone(),
) -> ExplorationResult:
    """BFS over the configuration multiset graph.

    ``key`` must be injective on reachable states (two states with equal
    keys are treated as identical).  Exploration is exact if it terminates
    before ``max_configs`` distinct configurations; otherwise
    ``result.complete`` is False and downstream checks weaken to
    bounded-model-checking statements.
    """
    rng = ForbiddenRNG()
    graph: dict[tuple, list[tuple]] = {}
    representatives: dict[tuple, list[Any]] = {}
    queue: deque[tuple] = deque()
    initial = []
    for config in initial_configs:
        canon = _canonical(config, key)
        initial.append(canon)
        if canon not in representatives:
            representatives[canon] = [clone(state) for state in config]
            queue.append(canon)

    complete = True
    while queue:
        canon = queue.popleft()
        if canon in graph:
            continue
        if len(graph) >= max_configs:
            complete = False
            break
        base = representatives[canon]
        n = len(base)
        successors: list[tuple] = []
        seen_successors: set[tuple] = set()
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                working = [clone(state) for state in base]
                protocol.transition(working[i], working[j], rng)  # type: ignore[arg-type]
                next_canon = _canonical(working, key)
                if next_canon not in seen_successors:
                    seen_successors.add(next_canon)
                    successors.append(next_canon)
                if next_canon not in representatives:
                    representatives[next_canon] = working
                    queue.append(next_canon)
        graph[canon] = successors

    return ExplorationResult(
        graph=graph,
        initial=initial,
        complete=complete,
        representatives=representatives,
    )


def check_invariant(result: ExplorationResult, invariant: ConfigTest) -> list[list[Any]]:
    """Configurations violating the invariant (empty list = invariant holds
    on every explored configuration)."""
    violations = []
    for canon in result.graph:
        config = result.representatives[canon]
        if not invariant(config):
            violations.append(config)
    return violations


def check_goal_reachable_from_all(
    result: ExplorationResult, goal: ConfigTest
) -> list[list[Any]]:
    """Configurations from which NO path reaches the goal set.

    Empty result + ``result.complete`` ⇒ the goal is reachable from every
    reachable configuration, which under the uniform random scheduler
    gives almost-sure convergence (the paper's probabilistic
    stabilization) provided the goal set is closed.
    """
    goal_canons = {
        canon
        for canon in result.graph
        if goal(result.representatives[canon])
    }
    # Reverse reachability from the goal set.
    reverse: dict[tuple, list[tuple]] = {canon: [] for canon in result.graph}
    for canon, successors in result.graph.items():
        for successor in successors:
            if successor in reverse:
                reverse[successor].append(canon)
    reached = set(goal_canons)
    frontier = deque(goal_canons)
    while frontier:
        canon = frontier.popleft()
        for predecessor in reverse[canon]:
            if predecessor not in reached:
                reached.add(predecessor)
                frontier.append(predecessor)
    return [
        result.representatives[canon]
        for canon in result.graph
        if canon not in reached
    ]


def check_closure(
    protocol: PopulationProtocol,
    configs: Sequence[Sequence[Any]],
    key: StateKey,
    member: ConfigTest,
    clone: Callable[[Any], Any] = lambda state: state.clone(),
    max_configs: int = 100_000,
) -> list[list[Any]]:
    """Explore from ``configs`` and return explored configurations OUTSIDE
    the member set — empty iff the set is closed under all schedules
    (within the exploration bound)."""
    result = explore(protocol, configs, key, max_configs=max_configs, clone=clone)
    return check_invariant(result, member)

"""Exhaustive small-population verification (bounded model checking)."""

from repro.verify.model_check import (
    ExplorationResult,
    ForbiddenRNG,
    check_closure,
    check_goal_reachable_from_all,
    check_invariant,
    explore,
)

__all__ = [
    "ExplorationResult",
    "ForbiddenRNG",
    "explore",
    "check_invariant",
    "check_closure",
    "check_goal_reachable_from_all",
]

"""Adversarial initial configurations for self-stabilization testing."""

from repro.adversary.initializers import (
    ADVERSARIES,
    all_duplicate_rank,
    correct_verifier_configuration,
    corrupted_messages,
    duplicate_ranks,
    mid_ranking,
    mid_reset,
    mixed_generations,
    planted_top,
    probation_chaos,
    random_agent,
    random_soup,
    scrambled_observations,
    single_agent_scrambler,
    validate_configuration,
)

__all__ = [
    "ADVERSARIES",
    "all_duplicate_rank",
    "correct_verifier_configuration",
    "corrupted_messages",
    "duplicate_ranks",
    "mid_ranking",
    "mid_reset",
    "mixed_generations",
    "planted_top",
    "probation_chaos",
    "random_agent",
    "random_soup",
    "scrambled_observations",
    "single_agent_scrambler",
    "validate_configuration",
]

"""Adversarial initial configurations for self-stabilization experiments.

Self-stabilization (Section 1.1) demands convergence from *every* initial
configuration in the state space ``Q^n``.  That space is astronomically
large, so experiments sample from structured adversary classes that cover
the failure modes the paper's recovery analysis (Lemma 6.3) distinguishes
through its configuration hierarchy ``𝒞_0 ⊃ 𝒞_1 ⊃ ... ⊃ 𝒞_5``:

=====================  =====================================================
Adversary              Targets
=====================  =====================================================
``all_duplicate_rank`` verifiers all claiming the same rank (many leaders or
                       none) — the classic SSLE failure (𝒞_4 \\ 𝒞_5).
``duplicate_ranks``    a correct ranking with ``k`` agents overwritten by
                       duplicates — small collision counts, hardest for
                       detection (Lemma E.3 vs Lemma E.7 regimes).
``corrupted_messages`` correct ranking, inconsistent message system — must
                       be repaired by a *soft* reset without losing ranks.
``mixed_generations``  verifiers spread across generations (𝒞_2 \\ 𝒞_3).
``probation_chaos``    random probation timers (𝒞_3 \\ 𝒞_4).
``mid_reset``          a population frozen mid-hard-reset (𝒞_0 \\ 𝒞_1).
``mid_ranking``        rankers in arbitrary AssignRanks phases (𝒞_1 \\ 𝒞_2).
``random_soup``        independent uniform-ish garbage per agent — the
                       closest simulable analogue of "arbitrary
                       configuration".
``planted_top``        verifiers with pre-planted ⊤ error states.
=====================  =====================================================

All generators draw from an explicit RNG and produce *well-formed* states
(states within the protocol's state space, as the model requires — the
adversary corrupts values, not the data layout).

A second, vectorized suite (``CODE_ADVERSARIES``: ``scramble``,
``plant_minority``) targets *finite-state* protocols through their integer
state encoding: batched numpy draws emit state-code arrays and count
vectors, so array- and counts-backend sweeps can start from adversarial
configurations without materializing ``n`` state objects.  Any code in
``range(num_states())`` decodes to a well-formed state (the encoding is a
bijection), so uniform code draws are exactly the model's "arbitrary
configuration in ``Q^n``".
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.assign_ranks import initial_ar_state
from repro.core.elect_leader import ElectLeader
from repro.core.roles import Role
from repro.core.stable_verify import initial_sv_state
from repro.core.state import TOP, ARPhase, AgentState, ARState, PRState
from repro.scheduler.rng import RNG

#: An adversary: builds a full initial configuration.
Adversary = Callable[[ElectLeader, RNG], list[AgentState]]


def _verifier(protocol: ElectLeader, rank: int) -> AgentState:
    """A clean verifier of the given rank (q_{0,SV} on top of the rank)."""
    return AgentState(
        role=Role.VERIFYING,
        rank=rank,
        sv=initial_sv_state(rank, protocol.params, protocol.partition),
    )


def correct_verifier_configuration(protocol: ElectLeader) -> list[AgentState]:
    """All verifiers, ranking ``1..n``, clean DC states — inside 𝒞_safe."""
    return [_verifier(protocol, rank) for rank in range(1, protocol.n + 1)]


# ---------------------------------------------------------------------------
# Rank-level adversaries
# ---------------------------------------------------------------------------


def all_duplicate_rank(protocol: ElectLeader, rng: RNG, rank: int = 1) -> list[AgentState]:
    """Every agent claims the same rank (n leaders for rank=1, else none)."""
    config = []
    for _ in range(protocol.n):
        agent = _verifier(protocol, rank)
        assert agent.sv is not None
        agent.sv.probation_timer = rng.choice([0, protocol.params.probation_max])
        config.append(agent)
    return config


def duplicate_ranks(protocol: ElectLeader, rng: RNG, duplicates: int = 1) -> list[AgentState]:
    """A correct ranking with ``duplicates`` agents overwritten by existing
    ranks — so ``duplicates`` ranks are missing and as many are doubled."""
    n = protocol.n
    if not 1 <= duplicates <= n - 1:
        raise ValueError(f"need 1 <= duplicates <= n-1, got {duplicates}")
    config = correct_verifier_configuration(protocol)
    victims = rng.sample(range(n), duplicates)
    for index in victims:
        donor = rng.randrange(n)
        while donor == index:
            donor = rng.randrange(n)
        new_rank = config[donor].rank
        config[index] = _verifier(protocol, new_rank)
    return config


# ---------------------------------------------------------------------------
# Message-system adversaries
# ---------------------------------------------------------------------------


def corrupted_messages(
    protocol: ElectLeader, rng: RNG, corruptions: int = 4
) -> list[AgentState]:
    """Correct ranking, but circulating message contents scrambled.

    Repairing this without a hard reset is the job of the soft-reset
    mechanism (Section 3.2): the ranking must be preserved.
    """
    config = correct_verifier_configuration(protocol)
    params, partition = protocol.params, protocol.partition
    for _ in range(corruptions):
        agent = config[rng.randrange(len(config))]
        assert agent.sv is not None and agent.sv.dc is not TOP
        dc = agent.sv.dc
        governed = [rank for rank, ids in dc.msgs.items() if ids and rank != agent.rank]
        if not governed:
            continue
        rank = rng.choice(governed)
        msg_id = rng.choice(list(dc.msgs[rank]))
        group_size = partition.group_size(partition.group_of(rank))
        dc.msgs[rank][msg_id] = rng.randrange(1, params.signature_space(group_size) + 1)
    return config


def scrambled_observations(
    protocol: ElectLeader, rng: RNG, corruptions: int = 4
) -> list[AgentState]:
    """Correct ranking, but agents' recorded observations scrambled.

    Only observations for messages the agent does *not* currently hold are
    touched, respecting the paper's state-space restriction that held own
    messages always match their observations (Section 5.1).
    """
    config = correct_verifier_configuration(protocol)
    params, partition = protocol.params, protocol.partition
    for _ in range(corruptions):
        agent = config[rng.randrange(len(config))]
        assert agent.sv is not None and agent.sv.dc is not TOP
        dc = agent.sv.dc
        held_own = set(dc.msgs.get(agent.rank, {}))
        free = [j for j in range(1, len(dc.observations) + 1) if j not in held_own]
        if not free:
            continue
        msg_id = rng.choice(free)
        group_size = partition.group_size(partition.group_of(agent.rank))
        dc.observations[msg_id - 1] = rng.randrange(
            1, params.signature_space(group_size) + 1
        )
    return config


def planted_top(protocol: ElectLeader, rng: RNG, count: int = 2) -> list[AgentState]:
    """Correct ranking with ``count`` agents pre-set to the ⊤ error state."""
    config = correct_verifier_configuration(protocol)
    for index in rng.sample(range(protocol.n), min(count, protocol.n)):
        agent = config[index]
        assert agent.sv is not None
        agent.sv.dc = TOP
        agent.sv.probation_timer = rng.choice([0, protocol.params.probation_max])
    return config


# ---------------------------------------------------------------------------
# Verifier-layer adversaries
# ---------------------------------------------------------------------------


def mixed_generations(protocol: ElectLeader, rng: RNG, spread: int = 3) -> list[AgentState]:
    """Correct ranking, verifiers spread across ``spread`` generations."""
    config = correct_verifier_configuration(protocol)
    modulus = protocol.params.generations
    base = rng.randrange(modulus)
    for agent in config:
        assert agent.sv is not None
        agent.sv.generation = (base + rng.randrange(spread)) % modulus
        agent.sv.probation_timer = rng.choice([0, protocol.params.probation_max])
    return config


def probation_chaos(protocol: ElectLeader, rng: RNG) -> list[AgentState]:
    """Correct ranking, same generation, random probation timers."""
    config = correct_verifier_configuration(protocol)
    for agent in config:
        assert agent.sv is not None
        agent.sv.probation_timer = rng.randrange(protocol.params.probation_max + 1)
    return config


# ---------------------------------------------------------------------------
# Role-level adversaries
# ---------------------------------------------------------------------------


def mid_reset(protocol: ElectLeader, rng: RNG) -> list[AgentState]:
    """A population frozen mid-hard-reset: a mix of triggered, dormant and
    computing agents (𝒞_0 \\ 𝒞_1 territory)."""
    params = protocol.params
    config = []
    for rank in range(1, protocol.n + 1):
        kind = rng.randrange(3)
        if kind == 0:  # triggered resetter
            agent = AgentState()
            protocol.trigger(agent)
            assert agent.pr is not None
            agent.pr.reset_count = rng.randrange(1, params.reset_count_max + 1)
            config.append(agent)
        elif kind == 1:  # dormant resetter
            agent = AgentState(
                role=Role.RESETTING,
                pr=PRState(
                    reset_count=0, delay_timer=rng.randrange(1, params.delay_timer_max + 1)
                ),
            )
            config.append(agent)
        else:  # verifier with this rank
            config.append(_verifier(protocol, rank))
    return config


def _random_ar_state(protocol: ElectLeader, rng: RNG) -> ARState:
    """A ranker in a random AssignRanks phase with plausible field values."""
    params = protocol.params
    r = params.r
    phase = rng.choice(list(ARPhase))
    state = initial_ar_state()
    state.phase = phase
    if phase is ARPhase.LEADER_ELECTION:
        if rng.random() < 0.5:
            state.identifier = rng.randrange(1, params.identifier_space + 1)
            state.min_identifier = rng.randrange(1, state.identifier + 1)
            state.le_count = rng.randrange(params.le_count_max + 1)
            state.leader_done = state.le_count == 0
            state.leader_bit = state.leader_done and rng.random() < 0.2
        return state
    channel = tuple(rng.randrange(params.labels_per_deputy + 1) for _ in range(r))
    state.channel = channel
    if phase is ARPhase.SHERIFF:
        state.low_badge = rng.randrange(1, r + 1)
        state.high_badge = rng.randrange(state.low_badge, r + 1)
    elif phase is ARPhase.DEPUTY:
        state.deputy_id = rng.randrange(1, r + 1)
        state.counter = rng.randrange(1, params.labels_per_deputy + 1)
    elif phase is ARPhase.RECIPIENT:
        if rng.random() < 0.5:
            state.label = (
                rng.randrange(1, r + 1),
                rng.randrange(1, params.labels_per_deputy + 1),
            )
    elif phase is ARPhase.SLEEPER:
        state.label = (
            rng.randrange(1, r + 1),
            rng.randrange(1, params.labels_per_deputy + 1),
        )
        state.sleep_timer = rng.randrange(1, params.sleep_timer_max + 1)
    elif phase is ARPhase.RANKED:
        state.channel = ()
        state.rank = rng.randrange(1, params.n + 1)
    return state


def mid_ranking(protocol: ElectLeader, rng: RNG) -> list[AgentState]:
    """All agents are rankers in arbitrary AssignRanks phases."""
    params = protocol.params
    config = []
    for _ in range(protocol.n):
        agent = AgentState(
            role=Role.RANKING,
            countdown=rng.randrange(1, params.countdown_max + 1),
            ar=_random_ar_state(protocol, rng),
        )
        config.append(agent)
    return config


def random_agent(protocol: ElectLeader, rng: RNG) -> AgentState:
    """One agent with independently scrambled role and fields."""
    params = protocol.params
    kind = rng.randrange(4)
    if kind == 0:
        return AgentState(
            role=Role.RESETTING,
            pr=PRState(
                reset_count=rng.randrange(params.reset_count_max + 1),
                delay_timer=rng.randrange(1, params.delay_timer_max + 1),
            ),
        )
    if kind == 1:
        return AgentState(
            role=Role.RANKING,
            countdown=rng.randrange(1, params.countdown_max + 1),
            ar=_random_ar_state(protocol, rng),
        )
    rank = rng.randrange(1, params.n + 1)
    agent = _verifier(protocol, rank)
    assert agent.sv is not None
    agent.sv.generation = rng.randrange(params.generations)
    agent.sv.probation_timer = rng.randrange(params.probation_max + 1)
    if rng.random() < 0.1:
        agent.sv.dc = TOP
    return agent


def random_soup(protocol: ElectLeader, rng: RNG) -> list[AgentState]:
    """Independent per-agent garbage across all roles and layers."""
    return [random_agent(protocol, rng) for _ in range(protocol.n)]


def single_agent_scrambler(protocol: ElectLeader):
    """An :class:`~repro.sim.faults.FaultInjector`-compatible corruption:
    replaces one agent's entire memory with independent garbage."""

    def corrupt(state: AgentState, rng: RNG) -> AgentState:
        return random_agent(protocol, rng)

    return corrupt


# ---------------------------------------------------------------------------
# Vectorized finite-state initializers (state-code arrays / count vectors)
# ---------------------------------------------------------------------------
#
# The adversaries above speak ``ElectLeader``'s state layout; finite-state
# protocols (the array/counts backends' clientele) get their adversarial
# starts from the encoded state space instead.  Each initializer comes in
# two shapes sharing one law:
#
# * ``*_codes``  — an ``(n,)`` int64 state-code array (the array backend's
#   native configuration; the object backend decodes it);
# * ``*_counts`` — an ``(S,)`` int64 count vector (the counts backend's
#   native configuration), distributed identically to ``bincount`` of the
#   codes variant.
#
# Both draw from a caller-supplied ``numpy.random.Generator`` (use
# :func:`code_rng` to build one from a derived seed) so adversarial sweeps
# stay pure functions of their spec seed — and, given one seed, every
# backend starts from the same configuration law.  numpy is imported
# lazily: the object-only runtime keeps working without it.


def code_rng(seed: int):
    """A PCG64 generator for the vectorized initializers.

    Thin alias of :func:`repro.scheduler.rng.np_generator` — the blessed
    stream constructor — kept so initializer signatures read as "pass a
    code-space generator" at the call site.
    """
    from repro.scheduler.rng import np_generator

    return np_generator(seed)


def _encoding_size(protocol) -> int:
    size = protocol.num_states()
    if size is None:
        raise ValueError(
            f"protocol '{protocol.name}' has no finite state encoding; "
            "code-space adversaries need num_states()"
        )
    return size


def _plant_count(n: int) -> int:
    """Default corruption budget of the planting adversary: ⌈n/8⌉.

    Mirrors ``duplicate_ranks``'s ``n // 8`` convention — enough damage
    to matter, small enough that recovery is measurably different from
    the full scramble.
    """
    return max(1, -(-n // 8))


def scrambled_codes(protocol, generator, n: int):
    """Uniform over the full encoded space ``Q^n`` — the generic
    adversarial start (the finite-state analogue of ``random_soup``)."""
    import numpy

    size = _encoding_size(protocol)
    return generator.integers(0, size, size=n, dtype=numpy.int64)


def scrambled_counts(protocol, generator, n: int):
    """Count-vector twin of :func:`scrambled_codes` (multinomial law)."""
    import numpy

    size = _encoding_size(protocol)
    pvals = numpy.full(size, 1.0 / size)
    return generator.multinomial(n, pvals).astype(numpy.int64)


def planted_codes(protocol, generator, n: int, planted: int | None = None):
    """A clean start with ``planted`` agents overwritten by uniform codes.

    The limited-corruption adversary class: positions are chosen uniformly
    without replacement, so recovery experiments see the damage scattered
    rather than clustered.  ``planted`` defaults to ⌈n/8⌉.
    """
    import numpy

    size = _encoding_size(protocol)
    count = _plant_count(n) if planted is None else planted
    if not 1 <= count <= n:
        raise ValueError(f"need 1 <= planted <= n, got {count}, n={n}")
    codes = numpy.full(n, int(protocol.encode_state(protocol.initial_state())),
                       dtype=numpy.int64)
    positions = generator.permutation(n)[:count]
    codes[positions] = generator.integers(0, size, size=count, dtype=numpy.int64)
    return codes


def planted_counts(protocol, generator, n: int, planted: int | None = None):
    """Count-vector twin of :func:`planted_codes`.

    Positions carry no information in count space, so the law reduces to
    ``n - planted`` agents on the clean code plus a uniform multinomial
    over the ``planted`` corrupted ones — identically distributed to
    ``bincount(planted_codes(...))``.
    """
    import numpy

    size = _encoding_size(protocol)
    count = _plant_count(n) if planted is None else planted
    if not 1 <= count <= n:
        raise ValueError(f"need 1 <= planted <= n, got {count}, n={n}")
    counts = numpy.zeros(size, dtype=numpy.int64)
    counts[int(protocol.encode_state(protocol.initial_state()))] = n - count
    pvals = numpy.full(size, 1.0 / size)
    counts += generator.multinomial(count, pvals).astype(numpy.int64)
    return counts


#: Code-space adversary suite for finite-state protocols: each entry maps
#: ``(protocol, numpy_generator, n)`` to an ``(n,)`` state-code array that
#: any execution backend can start from (via ``init=CodeArray(...)`` or
#: lazily through ``repro.sim.initial_state.SampledStart``).
CODE_ADVERSARIES: dict[str, Callable] = {
    "scramble": scrambled_codes,
    "plant_minority": planted_codes,
}


#: The ``O(S)`` count-vector twins of :data:`CODE_ADVERSARIES`, keyed by
#: the same names: each maps ``(protocol, numpy_generator, n)`` to an
#: ``(S,)`` count vector distributed identically to ``bincount`` of the
#: codes form.  Counts-native backends (``Backend.counts_native`` in the
#: registry) consume these directly, so an adversarial ``n = 10⁶`` sweep
#: cell draws a few hundred integers instead of a million codes.
COUNTS_ADVERSARIES: dict[str, Callable] = {
    "scramble": scrambled_counts,
    "plant_minority": planted_counts,
}


#: Named adversary suite used by the recovery experiment (E4).
ADVERSARIES: dict[str, Adversary] = {
    "all_duplicate_rank": lambda p, rng: all_duplicate_rank(p, rng),
    "duplicate_ranks": lambda p, rng: duplicate_ranks(p, rng, duplicates=max(1, p.n // 8)),
    "corrupted_messages": lambda p, rng: corrupted_messages(p, rng),
    "scrambled_observations": lambda p, rng: scrambled_observations(p, rng),
    "planted_top": lambda p, rng: planted_top(p, rng),
    "mixed_generations": lambda p, rng: mixed_generations(p, rng),
    "probation_chaos": lambda p, rng: probation_chaos(p, rng),
    "mid_reset": lambda p, rng: mid_reset(p, rng),
    "mid_ranking": lambda p, rng: mid_ranking(p, rng),
    "random_soup": lambda p, rng: random_soup(p, rng),
}


def validate_configuration(config: Sequence[AgentState]) -> bool:
    """Sanity check: every agent populates exactly its role's sub-state."""
    return all(agent.consistent() for agent in config)

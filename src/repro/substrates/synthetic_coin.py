"""Synthetic coins — derandomizing the transition function (Appendix B).

Population-protocol transition functions are deterministic; the only
randomness is the scheduler's choice of pairs.  The paper's protocols are
*presented* with agents sampling values (almost) u.a.r. from some ``[N]``;
Lemma B.1 shows this is implementable with a ``O(N log N)`` state blow-up:

* each agent keeps a bit ``Coin`` that it flips on **every** interaction,
  so the population stays within ``(1/2 ± 1/(10 log N))·n`` agents per coin
  value after ``O(n log N)`` interactions (Berenbrink, Friedetzky, Kaaser,
  Kling);
* each agent keeps a cyclic counter ``CoinCount`` (mod ``log N``) and an
  array ``Coins`` of the last ``log N`` partner-coin observations;
* whenever the protocol needs a sample from ``[N]``, the agent reads the
  integer encoded by ``Coins`` — provided at least ``log N`` of its own
  interactions passed since the previous read, the sample is fresh and
  each value has probability in ``[1/(2N), 2/N]`` ("almost u.a.r.").

Experiment E11 measures the empirical sampling distribution and checks the
``[1/(2N), 2/N]`` envelope, and the coin-balance concentration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.scheduler.rng import RNG


def bits_needed(value_space: int) -> int:
    """``log2 N`` observation bits for sampling from ``[N]`` (N ≥ 2)."""
    if value_space < 2:
        raise ValueError(f"value space must be >= 2, got {value_space}")
    return max(1, math.ceil(math.log2(value_space)))


@dataclass(slots=True)
class SyntheticCoinState:
    """Per-agent synthetic-coin fields (Appendix B)."""

    coin: int = 0
    coins: list[int] = field(default_factory=list)
    coin_count: int = 0

    def clone(self) -> "SyntheticCoinState":
        return SyntheticCoinState(self.coin, list(self.coins), self.coin_count)


class SyntheticCoinPopulation:
    """A population running only the synthetic-coin machinery.

    The machinery normally piggybacks on a host protocol's interactions;
    isolating it lets experiment E11 measure the sampling distribution
    directly.  ``value_space`` is the ``N`` of Lemma B.1.
    """

    def __init__(self, n: int, value_space: int, rng: RNG):
        if n < 2:
            raise ValueError("need at least two agents")
        self.n = n
        self.value_space = value_space
        self.k = bits_needed(value_space)
        self._rng = rng
        # Worst-case adversarial start: all coins equal (maximally biased).
        self.states = [SyntheticCoinState(coin=0, coins=[0] * self.k) for _ in range(n)]

    # ------------------------------------------------------------------

    def interact(self, i: int, j: int) -> None:
        """One interaction between agents ``i`` and ``j`` (Eqs. 4-7)."""
        u, v = self.states[i], self.states[j]
        u_coin_before, v_coin_before = u.coin, v.coin
        for agent, partner_coin in ((u, v_coin_before), (v, u_coin_before)):
            # Eq. 4: flip own coin on every interaction.
            agent.coin = 1 - agent.coin
            # Eq. 5: advance the cyclic counter.
            agent.coin_count = (agent.coin_count + 1) % self.k
            # Eqs. 6-7: record the partner's coin.
            agent.coins[agent.coin_count] = partner_coin

    def step(self) -> None:
        """One uniformly random interaction."""
        rng = self._rng
        i = rng.randrange(self.n)
        j = rng.randrange(self.n - 1)
        if j >= i:
            j += 1
        self.interact(i, j)

    def run(self, interactions: int) -> None:
        for _ in range(interactions):
            self.step()

    # ------------------------------------------------------------------

    def coin_balance(self) -> float:
        """Fraction of agents with coin = 1 (→ 1/2 after O(n log N) steps)."""
        return sum(s.coin for s in self.states) / self.n

    def sample_value(self, agent: int) -> int:
        """The ``[0, 2^k)`` value currently encoded by an agent's coin array.

        Callers must respect Lemma B.1's freshness condition (≥ ``log N``
        own interactions between reads) for consecutive samples to be
        independent.
        """
        state = self.states[agent]
        value = 0
        for bit in state.coins:
            value = (value << 1) | bit
        return value

    def collect_samples(self, reads: int, spacing_interactions: int) -> list[int]:
        """Read every agent's encoded value ``reads`` times, spacing reads by
        ``spacing_interactions`` global interactions (the experiment E11
        harness).  Returns the pooled samples.
        """
        samples: list[int] = []
        for _ in range(reads):
            self.run(spacing_interactions)
            samples.extend(self.sample_value(a) for a in range(self.n))
        return samples

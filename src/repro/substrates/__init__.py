"""Standalone substrates used (and analysed) by the paper.

* :mod:`repro.substrates.epidemics` -- one-way/two-way/min epidemics
  (Lemma A.2, the broadcast workhorse of every sub-protocol);
* :mod:`repro.substrates.load_balancing` -- the Berenbrink et al. token
  load-balancing process coupled to message spreading in Lemma E.6;
* :mod:`repro.substrates.synthetic_coin` -- the Appendix B derandomization
  of the transition function's random sampling.
"""

from repro.substrates.epidemics import (
    EpidemicProtocol,
    MinEpidemicProtocol,
    OneWayEpidemicProtocol,
)
from repro.substrates.load_balancing import LoadBalancingProcess
from repro.substrates.synthetic_coin import SyntheticCoinPopulation, SyntheticCoinState

__all__ = [
    "EpidemicProtocol",
    "OneWayEpidemicProtocol",
    "MinEpidemicProtocol",
    "LoadBalancingProcess",
    "SyntheticCoinPopulation",
    "SyntheticCoinState",
]

"""Token load balancing — the substrate behind Lemma E.6.

Lemma E.6 couples the spreading of refreshed collision-detection messages
to the "Tight & Simple Load Balancing" process of Berenbrink, Friedetzky,
Kaaser and Kling (IPDPS '19): every agent holds an integer number of
tokens; when two agents interact they split their combined tokens as
evenly as possible (the initiator keeping the extra token on odd totals).
Theorem 1 of that paper gives a discrepancy of at most ``O(1)`` (here:
everyone within {⌊avg⌋-1, ⌈avg⌉+1}, and in particular *nobody at zero*
when the average is ≥ 1) after ``O(m log m)`` interactions w.h.p. — which
is exactly what ``DetectCollision_r`` needs: once an agent refreshes the
``Θ(r)`` messages it holds for its rank, load balancing puts at least one
refreshed message in every other group member's hands fast.

Experiment E9 measures the time for the process to leave no agent empty,
starting from the maximally clumped configuration, and checks the
``m log m`` shape.

This module is a *process*, not a :class:`PopulationProtocol` instance:
token counts are unbounded, which falls outside the finite-state model,
but the coupling argument only needs the marginal interaction dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scheduler.rng import RNG


@dataclass
class LoadBalancingProcess:
    """The averaging token process over ``m`` agents."""

    loads: list[int] = field(default_factory=list)

    @classmethod
    def clumped(cls, m: int, tokens: int) -> "LoadBalancingProcess":
        """All ``tokens`` tokens start at agent 0 (maximal discrepancy)."""
        if m < 2:
            raise ValueError("need at least two agents")
        loads = [0] * m
        loads[0] = tokens
        return cls(loads)

    @classmethod
    def uniform(cls, m: int, per_agent: int) -> "LoadBalancingProcess":
        return cls([per_agent] * m)

    @property
    def m(self) -> int:
        return len(self.loads)

    @property
    def total(self) -> int:
        return sum(self.loads)

    def discrepancy(self) -> int:
        """max load − min load."""
        return max(self.loads) - min(self.loads)

    def min_load(self) -> int:
        return min(self.loads)

    def step(self, rng: RNG) -> None:
        """One interaction: a uniform pair splits its tokens evenly.

        The initiator receives the ceiling half — the same deterministic
        tie-break as ``BalanceLoad`` (Protocol 14), which hands the larger
        half to the currently poorer agent; for the two-agent marginal the
        processes couple exactly (proof of Lemma E.6).
        """
        m = self.m
        i = rng.randrange(m)
        j = rng.randrange(m - 1)
        if j >= i:
            j += 1
        combined = self.loads[i] + self.loads[j]
        half, extra = divmod(combined, 2)
        self.loads[i] = half + extra
        self.loads[j] = half

    def run_until_covered(self, rng: RNG, max_interactions: int) -> int | None:
        """Interactions until every agent holds ≥ 1 token, or None on budget.

        This is the event Lemma E.6 needs ("X_t contains no zeros").
        """
        if self.total < self.m:
            raise ValueError("cannot cover: fewer tokens than agents")
        for t in range(max_interactions + 1):
            if self.min_load() >= 1:
                return t
            self.step(rng)
        return None

    def run_until_balanced(
        self, rng: RNG, max_interactions: int, target_discrepancy: int = 3
    ) -> int | None:
        """Interactions until discrepancy ≤ target, or None on budget."""
        for t in range(max_interactions + 1):
            if self.discrepancy() <= target_discrepancy:
                return t
            self.step(rng)
        return None

"""Epidemic (broadcast) primitives — the paper's Appendix A toolbox.

Every sub-protocol of ``ElectLeader_r`` leans on *epidemics*: information
that spreads from agent to agent on contact.  Lemma A.2 (via Lemma 2.9 of
Burman et al.) states that there is a constant ``c_epi < 7`` such that any
epidemic infects all agents within ``c_epi · n log n`` interactions w.h.p.
Experiment E8 measures the empirical completion-time distribution and
checks the ``n log n`` shape and the constant.

Three variants, all standalone :class:`PopulationProtocol` instances:

* :class:`EpidemicProtocol` — two-way infection: after a contact between
  a marked and an unmarked agent, both are marked.
* :class:`OneWayEpidemicProtocol` — only the *responder* can be infected
  by the *initiator* (models directed broadcast).
* :class:`MinEpidemicProtocol` — agents carry integers and both adopt the
  minimum on contact (the ``MinIdentifier`` mechanism of FastLeaderElect,
  Eq. 10, and the channel max-broadcast of AssignRanks up to sign).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.protocol import PopulationProtocol
from repro.scheduler.rng import RNG


@dataclass(slots=True)
class MarkState:
    """A single infection bit."""

    marked: bool = False

    def clone(self) -> "MarkState":
        return MarkState(self.marked)


class EpidemicProtocol(PopulationProtocol):
    """Two-way epidemic: contact with a marked agent marks both."""

    name = "epidemic-two-way"

    def initial_state(self) -> MarkState:
        return MarkState(False)

    @staticmethod
    def seeded_configuration(n: int, sources: int = 1) -> list[MarkState]:
        """A configuration with the first ``sources`` agents marked."""
        if not 1 <= sources <= n:
            raise ValueError(f"need 1 <= sources <= n, got {sources}, n={n}")
        return [MarkState(i < sources) for i in range(n)]

    def transition(self, u: MarkState, v: MarkState, rng: RNG) -> None:
        if u.marked or v.marked:
            u.marked = True
            v.marked = True

    # Finite-state encoding (array backend): the infection bit.  Shared by
    # the one-way variant, whose δ differs but whose state space does not.

    def num_states(self) -> int:
        return 2

    def encode_state(self, state: MarkState) -> int:
        return int(state.marked)

    def decode_state(self, code: int) -> MarkState:
        return MarkState(marked=bool(code))

    def output(self, state: MarkState) -> bool:
        return state.marked

    def is_goal_configuration(self, config: Sequence[MarkState]) -> bool:
        """Complete = everyone infected."""
        return all(s.marked for s in config)

    def goal_counts(self, counts) -> bool:
        """Counts form (counts backend): no unmarked agents remain."""
        return int(counts[0]) == 0

    def goal_counts_rows(self, counts_rows):
        """Row-vectorized form (batch engines): one array op over rows."""
        return counts_rows[:, 0] == 0


class OneWayEpidemicProtocol(EpidemicProtocol):
    """One-way epidemic: the initiator infects the responder only."""

    name = "epidemic-one-way"

    def transition(self, u: MarkState, v: MarkState, rng: RNG) -> None:
        if u.marked:
            v.marked = True


@dataclass(slots=True)
class ValueState:
    """An integer payload for min/max epidemics."""

    value: int = 0

    def clone(self) -> "ValueState":
        return ValueState(self.value)


class MinEpidemicProtocol(PopulationProtocol):
    """Two-way min-epidemic over integer payloads."""

    name = "epidemic-min"

    def initial_state(self) -> ValueState:
        return ValueState(0)

    @staticmethod
    def valued_configuration(values: Sequence[int]) -> list[ValueState]:
        return [ValueState(int(v)) for v in values]

    def transition(self, u: ValueState, v: ValueState, rng: RNG) -> None:
        merged = min(u.value, v.value)
        u.value = merged
        v.value = merged

    def output(self, state: ValueState) -> int:
        return state.value

    def is_goal_configuration(self, config: Sequence[ValueState]) -> bool:
        """Complete = everyone agrees on the global minimum."""
        target = min(s.value for s in config)
        return all(s.value == target for s in config)

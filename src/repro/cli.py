"""Command-line interface: ``python -m repro <command>``.

Four subcommands mirror the library's main entry points:

* ``run``       — stabilize ``ElectLeader_r`` from a clean start;
* ``recover``   — stabilize from a named adversarial configuration;
* ``tradeoff``  — sweep r at fixed n and print the measured trade-off;
* ``statespace`` — print the analytic bit-complexity comparison table.

All commands are deterministic given ``--seed`` — including ``tradeoff``
under ``--workers N``: trials fan out over a process pool but each trial's
randomness comes from its own derived seed, so worker count never changes
the numbers.  ``--batch`` sets the convergence-check interval, which is
also the batch size of the simulator's observer-free fast path.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.adversary.initializers import ADVERSARIES
from repro.analysis.statespace import comparison_table, elect_leader_bits
from repro.analysis.theory import predicted_stabilization_interactions
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.scheduler.rng import make_rng
from repro.sim.simulation import Simulation
from repro.sim.trials import format_table, run_trials


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _workers_count(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0 (0 = one per CPU), got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Self-stabilizing leader election in population protocols "
        "(PODC 2025 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    batch_help = "interactions per convergence check (the fast-path batch size)"
    workers_help = "worker processes for trial fan-out (0 = one per CPU)"

    run = sub.add_parser("run", help="stabilize from a clean start")
    run.add_argument("-n", type=int, default=32, help="population size")
    run.add_argument("-r", type=int, default=4, help="trade-off parameter")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--max-interactions", type=int, default=20_000_000)
    run.add_argument("--batch", type=_positive_int, default=1_000, help=batch_help)

    recover = sub.add_parser("recover", help="stabilize from an adversarial start")
    recover.add_argument("adversary", choices=sorted(ADVERSARIES))
    recover.add_argument("-n", type=int, default=32)
    recover.add_argument("-r", type=int, default=4)
    recover.add_argument("--seed", type=int, default=0)
    recover.add_argument("--max-interactions", type=int, default=40_000_000)
    recover.add_argument("--batch", type=_positive_int, default=1_000, help=batch_help)

    tradeoff = sub.add_parser("tradeoff", help="sweep r at fixed n")
    tradeoff.add_argument("-n", type=int, default=36)
    tradeoff.add_argument("--trials", type=int, default=5)
    tradeoff.add_argument("--seed", type=int, default=0)
    tradeoff.add_argument("--workers", type=_workers_count, default=1, help=workers_help)
    tradeoff.add_argument("--batch", type=_positive_int, default=1_000, help=batch_help)

    statespace = sub.add_parser("statespace", help="bit-complexity comparison")
    statespace.add_argument(
        "--sizes", type=int, nargs="+", default=[16, 64, 256, 1024, 4096]
    )

    return parser


def _stabilize(
    protocol: ElectLeader, config, seed: int, budget: int, batch: int = 1_000
) -> int:
    sim = Simulation(protocol, config=config, n=None if config else protocol.n, seed=seed)
    result = sim.run_until(
        protocol.is_safe_configuration, max_interactions=budget, check_interval=batch
    )
    if not result.converged:
        print(f"did NOT stabilize within {budget} interactions", file=sys.stderr)
        return 1
    summary = protocol.describe_configuration(result.config)
    print(
        f"stabilized after {result.interactions} interactions "
        f"({result.parallel_time:.1f} parallel time)"
    )
    print(f"leaders: {summary['leaders']}  ranking_correct: {summary['ranking_correct']}")
    print(
        f"events: hard_resets={protocol.events['hard_reset']} "
        f"soft_resets={protocol.events['soft_reset']}"
    )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    protocol = ElectLeader(ProtocolParams(n=args.n, r=args.r))
    print(f"ElectLeader_r: n={args.n} r={args.r} seed={args.seed} (clean start)")
    return _stabilize(protocol, None, args.seed, args.max_interactions, args.batch)


def cmd_recover(args: argparse.Namespace) -> int:
    protocol = ElectLeader(ProtocolParams(n=args.n, r=args.r))
    config = ADVERSARIES[args.adversary](protocol, make_rng(args.seed))
    print(
        f"ElectLeader_r: n={args.n} r={args.r} seed={args.seed} "
        f"(adversary: {args.adversary})"
    )
    return _stabilize(protocol, config, args.seed + 1, args.max_interactions, args.batch)


def cmd_tradeoff(args: argparse.Namespace) -> int:
    n = args.n
    rs = sorted({1, 2, 4, max(1, n // 8), max(1, n // 2)})
    rows = []
    for r in rs:
        if r > n // 2:
            continue
        protocol = ElectLeader(ProtocolParams(n=n, r=r))
        summary = run_trials(
            protocol,
            protocol.is_safe_configuration,
            n=n,
            trials=args.trials,
            max_interactions=50_000_000,
            seed=args.seed + r,
            check_interval=args.batch,
            label=f"r={r}",
            workers=args.workers,
        )
        rows.append(
            {
                "r": r,
                "median_interactions": summary.median_interactions,
                "parallel_time": round(summary.median_time, 1),
                "predicted": round(
                    predicted_stabilization_interactions(protocol.params)
                ),
                "state_bits": round(elect_leader_bits(n, r), 1),
            }
        )
    print(format_table(rows, title=f"Space-time trade-off at n={n}"))
    return 0


def cmd_statespace(args: argparse.Namespace) -> int:
    rows = comparison_table(args.sizes)
    print(format_table(rows, title="Bit complexity (log2 #states)"))
    return 0


COMMANDS = {
    "run": cmd_run,
    "recover": cmd_recover,
    "tradeoff": cmd_tradeoff,
    "statespace": cmd_statespace,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

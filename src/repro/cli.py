"""Command-line interface: ``python -m repro <command>``.

The subcommands mirror the library's main entry points:

* ``run``       — stabilize ``ElectLeader_r`` from a clean start;
* ``recover``   — stabilize from a named adversarial configuration;
* ``tradeoff``  — sweep r at fixed n and print the measured trade-off;
* ``sweep``     — run a scenario grid (protocols × n × r × adversaries ×
  fault rates) with streaming JSONL checkpoints and ``--resume``; with
  ``--shard i/k`` it runs one deterministic shard of the grid, and with
  ``--grid grid.json`` the whole grid arrives as one declarative file
  (flags still override it);
* ``merge``     — validate a complete, disjoint shard set and merge it
  into the byte-identical unsharded checkpoint;
* ``pool``      — run a sharded sweep on a lease-based worker pool
  (``repro.fabric``): workers are spawned through a provider, heartbeat
  via checkpoint growth, and timed-out leases are reclaimed with capped
  retries;
* ``statespace`` — print the analytic bit-complexity comparison table;
* ``lint``       — statically check the repository's contracts;
* ``trace``      — summarize a ``repro.obs`` trace file (top spans, step-
  phase breakdown, per-shard lease timelines) and export Chrome
  trace-event JSON for Perfetto.

``sweep`` and ``pool`` accept ``--trace PATH`` (equivalent to setting
``$REPRO_TRACE``) to stream span/event records to a JSONL sink while
they run; tracing never touches an RNG stream, so traced and untraced
runs produce byte-identical checkpoints.

All commands are deterministic given ``--seed`` — including ``tradeoff``
and ``sweep`` under ``--workers N``: trials fan out over a process pool
but each trial's randomness comes from its own derived seed, so worker
count never changes the numbers.  ``--batch`` sets the convergence-check
interval, which is also the batch size of the simulator's fast path.
``sweep --backend`` selects an execution engine from the backend registry
(:mod:`repro.sim.backends`): ``array`` (vectorized per-agent state
codes), ``counts`` (count-vector aggregate) or ``batch`` (trial-
vectorized counts matrix, one lockstep engine per sweep cell) for
finite-state protocols, else the default ``object`` engine (or
``$REPRO_BENCH_BACKEND``); see README "Execution backends".
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.adversary.initializers import ADVERSARIES, CODE_ADVERSARIES
from repro.analysis.statespace import comparison_table, elect_leader_bits
from repro.analysis.theory import predicted_stabilization_interactions
from repro.core.elect_leader import ElectLeader
from repro.core.params import ProtocolParams
from repro.fabric import (
    BudgetCaps,
    FabricError,
    merge_checkpoints,
    parse_shard,
    provider_names,
    run_pool,
)
from repro.obs import TraceError, configure_tracing
from repro.scheduler.rng import make_rng
from repro.sim.backends import BACKEND_OBJECT, backend_names, resolve_backend
from repro.sim.fault_engine import DEFAULT_FAULT_MODEL, fault_model_names
from repro.sim.simulation import Simulation
from repro.sim.sweep import (
    CLEAN,
    PROTOCOLS,
    GridSpec,
    SweepError,
    aggregate_rows,
    expand_grid,
    load_checkpoint,
    load_grid_file,
    run_sweep,
)
from repro.sim.trials import format_table, run_trials


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _population_size(text: str) -> int:
    value = int(text)
    if value < 2:
        raise argparse.ArgumentTypeError(
            f"population size must be an integer >= 2, got {value}"
        )
    return value


def _tradeoff_r(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"trade-off parameter r must be an integer >= 1, got {value}"
        )
    return value


def _fault_rate(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"fault rate must be >= 0, got {value}")
    return value


def _workers_count(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0 (0 = one per CPU), got {value}")
    return value


def _shard_spec(text: str) -> tuple[int, int]:
    try:
        return parse_shard(text)
    except FabricError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


#: Grid values used when neither a flag nor a --grid file supplies one.
#: Keys are GridSpec fields; ``backend=None`` defers to resolve_backend
#: ($REPRO_BENCH_BACKEND, else 'object').
_GRID_DEFAULTS: dict[str, object] = {
    "protocols": ["elect_leader"],
    "ns": [16, 32],
    "rs": [4],
    "adversaries": [CLEAN],
    "fault_rates": [0.0],
    "fault_models": [DEFAULT_FAULT_MODEL],
    "burst_sizes": [1],
    "trials": 5,
    "seed": 0,
    "max_interactions": 20_000_000,
    "check_interval": 1_000,
    "backend": None,
}

#: argparse dest -> GridSpec key for the grid-shaped flags.
_GRID_ARG_KEYS: dict[str, str] = {
    "protocols": "protocols",
    "ns": "ns",
    "rs": "rs",
    "adversaries": "adversaries",
    "fault_rates": "fault_rates",
    "fault_models": "fault_models",
    "burst_sizes": "burst_sizes",
    "trials": "trials",
    "seed": "seed",
    "max_interactions": "max_interactions",
    "batch": "check_interval",
    "backend": "backend",
}


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """The grid-shaped flags shared by ``sweep`` and ``pool``.

    Every flag defaults to ``None`` so :func:`_grid_from_args` can layer
    the three sources cleanly: explicit flag > ``--grid`` file value >
    built-in default (:data:`_GRID_DEFAULTS`).
    """
    batch_help = "interactions per convergence check (the fast-path batch size)"
    parser.add_argument(
        "--grid", default=None, metavar="FILE",
        help="declarative grid file: a JSON object with GridSpec keys "
        "(protocols, ns, rs, adversaries, fault_rates, fault_models, "
        "burst_sizes, trials, seed, max_interactions, check_interval, "
        "backend); explicit flags override its values",
    )
    parser.add_argument(
        "--protocols", nargs="+", choices=sorted(PROTOCOLS), default=None,
        help="protocol axis of the grid",
    )
    parser.add_argument(
        "--ns", nargs="+", type=_population_size, default=None, metavar="N",
        help="population sizes (each >= 2)",
    )
    parser.add_argument(
        "--rs", nargs="+", type=_tradeoff_r, default=None, metavar="R",
        help="trade-off parameters (each >= 1; cells with r > n/2 are skipped)",
    )
    parser.add_argument(
        "--adversaries", nargs="+",
        choices=[CLEAN, *sorted(ADVERSARIES), *sorted(CODE_ADVERSARIES)],
        default=None,
        help="initializer axis ('clean' = protocol's own start; 'scramble'/"
        "'plant_minority' = code-space adversaries for finite-state protocols)",
    )
    parser.add_argument(
        "--fault-rates", nargs="+", type=_fault_rate, default=None, metavar="RATE",
        help="fault bursts per unit of parallel time (0 = no injection)",
    )
    parser.add_argument(
        "--fault-model", dest="fault_models", nargs="+",
        choices=fault_model_names(), default=None, metavar="MODEL",
        help="fault-model axis for cells with a positive fault rate "
        f"(registry: {', '.join(fault_model_names())}; ignored at rate 0). "
        "Fault cells run the availability workload and record availability "
        "and median repair time as first-class JSONL fields.",
    )
    parser.add_argument(
        "--burst-size", dest="burst_sizes", nargs="+", type=_positive_int,
        default=None, metavar="K",
        help="agents corrupted per fault burst (an axis of the grid; "
        "ignored at rate 0, where it collapses to 1)",
    )
    parser.add_argument(
        "--backend", choices=backend_names(), default=None,
        help="execution engine (from the backend registry): 'object' = "
        "per-interaction, 'array' = vectorized per-agent state codes, "
        "'counts' = count-vector aggregate, 'batch' = trial-vectorized "
        "counts matrix running each whole cell in lockstep (the "
        "vectorized engines are finite-state only). "
        "Default: $REPRO_BENCH_BACKEND, else 'object'.",
    )
    parser.add_argument(
        "--trials", type=_positive_int, default=None, help="trials per cell"
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--max-interactions", type=_positive_int, default=None)
    parser.add_argument("--batch", type=_positive_int, default=None, help=batch_help)


def _grid_from_args(args: argparse.Namespace) -> GridSpec:
    """Build the GridSpec: flags over the --grid file over the defaults."""
    values = dict(_GRID_DEFAULTS)
    if args.grid is not None:
        values.update(load_grid_file(args.grid))
    for dest, key in _GRID_ARG_KEYS.items():
        flag = getattr(args, dest)
        if flag is not None:
            values[key] = flag
    try:
        backend = resolve_backend(values["backend"])
    except ValueError as error:  # bad $REPRO_BENCH_BACKEND or file backend
        raise _UsageError(str(error)) from error
    return GridSpec(
        protocols=tuple(values["protocols"]),
        ns=tuple(values["ns"]),
        rs=tuple(values["rs"]),
        adversaries=tuple(values["adversaries"]),
        fault_rates=tuple(values["fault_rates"]),
        fault_models=tuple(values["fault_models"]),
        burst_sizes=tuple(values["burst_sizes"]),
        trials=values["trials"],
        seed=values["seed"],
        max_interactions=values["max_interactions"],
        check_interval=values["check_interval"],
        backend=backend,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Self-stabilizing leader election in population protocols "
        "(PODC 2025 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    batch_help = "interactions per convergence check (the fast-path batch size)"
    workers_help = "worker processes for trial fan-out (0 = one per CPU)"

    run = sub.add_parser("run", help="stabilize from a clean start")
    run.add_argument("-n", type=_population_size, default=32, help="population size (>= 2)")
    run.add_argument("-r", type=_tradeoff_r, default=4, help="trade-off parameter (>= 1)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--max-interactions", type=int, default=20_000_000)
    run.add_argument("--batch", type=_positive_int, default=1_000, help=batch_help)

    recover = sub.add_parser("recover", help="stabilize from an adversarial start")
    recover.add_argument("adversary", choices=sorted(ADVERSARIES))
    recover.add_argument("-n", type=_population_size, default=32)
    recover.add_argument("-r", type=_tradeoff_r, default=4)
    recover.add_argument("--seed", type=int, default=0)
    recover.add_argument("--max-interactions", type=int, default=40_000_000)
    recover.add_argument("--batch", type=_positive_int, default=1_000, help=batch_help)

    tradeoff = sub.add_parser("tradeoff", help="sweep r at fixed n")
    tradeoff.add_argument("-n", type=_population_size, default=36)
    tradeoff.add_argument("--trials", type=_positive_int, default=5)
    tradeoff.add_argument("--seed", type=int, default=0)
    tradeoff.add_argument("--workers", type=_workers_count, default=1, help=workers_help)
    tradeoff.add_argument("--batch", type=_positive_int, default=1_000, help=batch_help)

    sweep = sub.add_parser(
        "sweep",
        help="run a scenario grid with streaming JSONL checkpoints",
        description="Expand a Cartesian scenario grid (protocols × n × r × "
        "adversaries × fault rates), run every cell for --trials seeded "
        "trials, stream each outcome to a JSONL checkpoint as it lands, and "
        "print the per-cell aggregate table.  An interrupted sweep continues "
        "from its checkpoint with --resume.  --shard I/K runs one "
        "deterministic shard of the grid (merge the K shard files back with "
        "'repro merge'); --grid FILE reads the whole grid from one JSON "
        "artifact, with flags overriding it.",
    )
    _add_grid_arguments(sweep)
    sweep.add_argument("--workers", type=_workers_count, default=1, help=workers_help)
    sweep.add_argument(
        "--shard", type=_shard_spec, default=None, metavar="I/K",
        help="run only shard I of K (deterministic trial-hash partition; "
        "the checkpoint records the shard and 'repro merge' reassembles "
        "the unsharded file byte-identically)",
    )
    sweep.add_argument(
        "--out", default="sweep.jsonl", metavar="PATH",
        help="JSONL results/checkpoint file (default: sweep.jsonl)",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted sweep from --out instead of failing",
    )
    sweep.add_argument(
        "--force", action="store_true",
        help="discard an existing --out file and start over",
    )
    sweep.add_argument(
        "--no-progress", action="store_true", help="suppress the stderr progress line"
    )
    sweep.add_argument(
        "--trace", default=None, metavar="PATH",
        help="append span/event records to this JSONL trace file while the "
        "sweep runs (same as setting $REPRO_TRACE; summarize it with "
        "'repro trace'); tracing never changes the checkpoint bytes",
    )

    merge = sub.add_parser(
        "merge",
        help="merge shard checkpoints into the unsharded file",
        description="Validate a complete set of shard checkpoints (one "
        "sweep, every shard present, each shard complete, no trial counted "
        "twice) and write the merged checkpoint — byte-identical to the "
        "file an unsharded 'repro sweep' of the same grid writes.",
    )
    merge.add_argument(
        "shards", nargs="+", metavar="SHARD_JSONL",
        help="every shard checkpoint of one sharded sweep (any order)",
    )
    merge.add_argument(
        "--out", default="merged.jsonl", metavar="PATH",
        help="merged checkpoint file (default: merged.jsonl)",
    )

    pool = sub.add_parser(
        "pool",
        help="run a sharded sweep on a lease-based worker pool",
        description="Shard the grid, lease each shard to a worker spawned "
        "through --provider, heartbeat via checkpoint growth, reclaim "
        "timed-out leases with capped exponential-backoff retries, and "
        "finish with the merge-validated unsharded checkpoint at --out "
        "plus a JSON run report beside it.",
    )
    _add_grid_arguments(pool)
    pool.add_argument(
        "--workers", type=_positive_int, default=2,
        help="concurrent workers, and the shard count unless --shards is given",
    )
    pool.add_argument(
        "--shards", type=_positive_int, default=None, metavar="K",
        help="shard count (default: --workers); more shards than workers "
        "gives the pool elasticity — finished workers pick up waiting shards",
    )
    pool.add_argument(
        "--lease-timeout", type=float, default=60.0, metavar="S",
        help="seconds without checkpoint growth before a lease is "
        "reclaimed and its worker killed (default: 60)",
    )
    pool.add_argument(
        "--provider", choices=provider_names(), default="local",
        help="worker substrate from the provider registry (default: local)",
    )
    pool.add_argument(
        "--max-retries", type=int, default=3, metavar="N",
        help="re-leases allowed per shard before the pool fails (default: 3)",
    )
    pool.add_argument(
        "--backoff", type=float, default=0.5, metavar="S",
        help="base of the exponential re-lease delay (default: 0.5s)",
    )
    pool.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="hard wall-clock budget cap: the fleet is killed when it trips",
    )
    pool.add_argument(
        "--max-trials", type=int, default=None, metavar="T",
        help="hard cap on the grid's expanded trial count, checked before "
        "any worker spawns",
    )
    pool.add_argument(
        "--out", default="pool.jsonl", metavar="PATH",
        help="merged checkpoint file (default: pool.jsonl; the run report "
        "lands beside it)",
    )
    pool.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="directory for shard checkpoints, worker logs and grid.json "
        "(default: <out>-shards next to --out)",
    )
    pool.add_argument(
        "--no-progress", action="store_true", help="suppress the stderr progress line"
    )
    pool.add_argument(
        "--trace", default=None, metavar="PATH",
        help="append span/event records (including the lease lifecycle) to "
        "this JSONL trace file; worker processes inherit the sink via "
        "$REPRO_TRACE",
    )

    statespace = sub.add_parser("statespace", help="bit-complexity comparison")
    statespace.add_argument(
        "--sizes", type=int, nargs="+", default=[16, 64, 256, 1024, 4096]
    )

    lint = sub.add_parser(
        "lint",
        help="statically check the repository's reproduction contracts",
        description="Run the AST/importlib contract checker (repro.lint) "
        "over the source tree: RNG discipline, backend-contract "
        "conformance, registry-only dispatch, transition purity, removed "
        "keyword shims and counts dtype width.  Exits 0 when clean, 1 "
        "when any rule fires.",
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to check (default: src, benchmarks, "
        "examples under the current directory)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="finding output: human text or the versioned JSON document "
        "CI archives (default: text)",
    )
    lint.add_argument(
        "--rules", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )

    trace = sub.add_parser(
        "trace",
        help="summarize a repro.obs trace file",
        description="Read a JSONL trace written via --trace / $REPRO_TRACE "
        "and print its summary: top spans by total and self time, the "
        "draw/match/apply/retire step-phase table, and per-shard lease "
        "timelines from a pool run.  --chrome exports the trace as Chrome "
        "trace-event JSON loadable in Perfetto (ui.perfetto.dev) or "
        "chrome://tracing.",
    )
    trace.add_argument("trace_file", metavar="TRACE_JSONL", help="trace file to read")
    trace.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="summary output: human text or a JSON document (default: text)",
    )
    trace.add_argument(
        "--chrome", default=None, metavar="PATH",
        help="also write the trace as Chrome trace-event JSON to PATH",
    )

    return parser


def _stabilize(
    protocol: ElectLeader, config, seed: int, budget: int, batch: int = 1_000
) -> int:
    sim = Simulation(protocol, config=config, n=None if config else protocol.n, seed=seed)
    result = sim.run_until(
        protocol.is_safe_configuration, max_interactions=budget, check_interval=batch
    )
    if not result.converged:
        print(f"did NOT stabilize within {budget} interactions", file=sys.stderr)
        return 1
    summary = protocol.describe_configuration(result.config)
    print(
        f"stabilized after {result.interactions} interactions "
        f"({result.parallel_time:.1f} parallel time)"
    )
    print(f"leaders: {summary['leaders']}  ranking_correct: {summary['ranking_correct']}")
    print(
        f"events: hard_resets={protocol.events['hard_reset']} "
        f"soft_resets={protocol.events['soft_reset']}"
    )
    return 0


class _UsageError(Exception):
    """A parameter combination argparse can't validate (e.g. r > n/2)."""


def _build_protocol(n: int, r: int) -> ElectLeader:
    try:
        return ElectLeader(ProtocolParams(n=n, r=r))
    except ValueError as error:
        raise _UsageError(str(error)) from error


def cmd_run(args: argparse.Namespace) -> int:
    protocol = _build_protocol(args.n, args.r)
    print(f"ElectLeader_r: n={args.n} r={args.r} seed={args.seed} (clean start)")
    return _stabilize(protocol, None, args.seed, args.max_interactions, args.batch)


def cmd_recover(args: argparse.Namespace) -> int:
    protocol = _build_protocol(args.n, args.r)
    config = ADVERSARIES[args.adversary](protocol, make_rng(args.seed))
    print(
        f"ElectLeader_r: n={args.n} r={args.r} seed={args.seed} "
        f"(adversary: {args.adversary})"
    )
    return _stabilize(protocol, config, args.seed + 1, args.max_interactions, args.batch)


def cmd_tradeoff(args: argparse.Namespace) -> int:
    n = args.n
    rs = sorted({1, 2, 4, max(1, n // 8), max(1, n // 2)})
    rows = []
    for r in rs:
        if r > n // 2:
            continue
        protocol = ElectLeader(ProtocolParams(n=n, r=r))
        summary = run_trials(
            protocol,
            protocol.is_safe_configuration,
            n=n,
            trials=args.trials,
            max_interactions=50_000_000,
            seed=args.seed + r,
            check_interval=args.batch,
            label=f"r={r}",
            workers=args.workers,
            # ElectLeader has no finite state encoding, so this command is
            # object-engine only; pinning it keeps a stray
            # $REPRO_BENCH_BACKEND from turning the sweep into a traceback.
            backend=BACKEND_OBJECT,
        )
        rows.append(
            {
                "r": r,
                "median_interactions": summary.median_interactions,
                "parallel_time": round(summary.median_time, 1),
                "predicted": round(
                    predicted_stabilization_interactions(protocol.params)
                ),
                "state_bits": round(elect_leader_bits(n, r), 1),
            }
        )
    print(format_table(rows, title=f"Space-time trade-off at n={n}"))
    return 0


def _sweep_progress(stream) -> Callable[[int, int], None]:
    """A progress printer: live \\r updates on a tty, sparse lines otherwise."""
    interactive = hasattr(stream, "isatty") and stream.isatty()
    last_reported = -1

    def report(done: int, total: int) -> None:
        nonlocal last_reported
        if interactive:
            end = "\n" if done == total else ""
            print(f"\rsweep: {done}/{total} trials", end=end, file=stream, flush=True)
        else:
            # Non-interactive (CI logs): at most ~10 lines plus the endpoints.
            step = max(1, total // 10)
            if done == total or done == 0 or done - last_reported >= step:
                print(f"sweep: {done}/{total} trials", file=stream, flush=True)
                last_reported = done

    return report


def cmd_sweep(args: argparse.Namespace) -> int:
    grid = _grid_from_args(args)
    if args.trace is not None:
        configure_tracing(args.trace)
    progress = None if args.no_progress else _sweep_progress(sys.stderr)
    result = run_sweep(
        grid,
        workers=args.workers,
        jsonl_path=args.out,
        resume=args.resume,
        force=args.force,
        progress=progress,
        shard=args.shard,
    )
    cells = len(result.rows)
    if result.shard is not None:
        index, count = result.shard
        title = (
            f"Scenario sweep shard {index}/{count}: {len(result.specs)} "
            f"owned trials over {cells} cells"
        )
    else:
        title = f"Scenario sweep: {len(result.specs)} trials over {cells} cells"
    if result.resumed_trials:
        title += f" ({result.resumed_trials} resumed from checkpoint)"
    print(format_table(result.rows, title=title))
    print(f"[per-trial results in {args.out}]")
    return 0


def cmd_merge(args: argparse.Namespace) -> int:
    report = merge_checkpoints(args.shards, args.out)
    print(f"merged {report.shards} shards ({report.trials} trials) into {report.out}")
    return 0


def cmd_pool(args: argparse.Namespace) -> int:
    grid = _grid_from_args(args)
    if args.trace is not None:
        # configure_tracing exports $REPRO_TRACE, so spawned shard workers
        # inherit the same sink and their spans land in the same file.
        configure_tracing(args.trace)
    budget = BudgetCaps(max_seconds=args.max_seconds, max_trials=args.max_trials)
    progress = None if args.no_progress else _sweep_progress(sys.stderr)
    result = run_pool(
        grid,
        out=args.out,
        workers=args.workers,
        shards=args.shards,
        lease_timeout=args.lease_timeout,
        provider=args.provider,
        max_retries=args.max_retries,
        backoff=args.backoff,
        budget=budget,
        workdir=args.workdir,
        progress=progress,
    )
    specs = expand_grid(grid)
    outcomes, _ = load_checkpoint(Path(args.out), grid, specs)
    rows = aggregate_rows(specs, [outcomes[index] for index in range(len(specs))])
    title = (
        f"Pooled sweep: {len(specs)} trials over "
        f"{result.report['shards']} shards"
    )
    print(format_table(rows, title=title))
    print(f"[merged results in {result.out}; run report in {result.report_path}]")
    return 0


def cmd_statespace(args: argparse.Namespace) -> int:
    rows = comparison_table(args.sizes)
    print(format_table(rows, title="Bit complexity (log2 #states)"))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    # Imported here, not at module top: the lint rules consult the live
    # backend/protocol registries, and the other subcommands should not
    # pay that import (or require numpy-adjacent modules) to parse args.
    from repro.lint import registered_rules, render_json, render_text, run_lint
    from repro.lint.engine import LintUsageError

    if args.list_rules:
        for rule in registered_rules():
            print(f"{rule.rule_id} {rule.name}: {rule.summary}")
        return 0
    try:
        report = run_lint(args.paths or None, rules_filter=args.rules)
    except LintUsageError as error:
        raise _UsageError(str(error)) from error
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.clean else 1


def cmd_trace(args: argparse.Namespace) -> int:
    # Imported here, not at module top, to mirror cmd_lint: the summary
    # helpers are only needed by this subcommand.
    import json

    from repro.obs import (
        load_trace,
        render_summary_text,
        summarize_trace,
        to_chrome_trace,
    )

    records = load_trace(args.trace_file)
    summary = summarize_trace(records)
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_summary_text(summary))
    if args.chrome is not None:
        chrome_path = Path(args.chrome)
        chrome_path.write_text(
            json.dumps(to_chrome_trace(records)) + "\n", encoding="utf-8"
        )
        # stderr on purpose: stdout stays machine-parseable under
        # ``--format json`` even when an export rides along.
        print(
            f"[chrome trace written to {chrome_path}; open in ui.perfetto.dev]",
            file=sys.stderr,
        )
    return 0


COMMANDS = {
    "run": cmd_run,
    "recover": cmd_recover,
    "tradeoff": cmd_tradeoff,
    "sweep": cmd_sweep,
    "merge": cmd_merge,
    "pool": cmd_pool,
    "statespace": cmd_statespace,
    "lint": cmd_lint,
    "trace": cmd_trace,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except (FabricError, SweepError, TraceError, _UsageError) as error:
        # Parameter combinations argparse can't see (r > n/2, a checkpoint
        # for a different grid, ...) get one clean line, not a traceback;
        # anything else propagates so real bugs keep their tracebacks.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

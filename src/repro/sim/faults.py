"""Transient-fault injection and availability measurement.

The paper's motivation (Section 1): "the agents' memory and, therefore,
their states can be corrupted through all kinds of outside influences" —
self-stabilization is the answer to faults being the rule rather than the
exception.  This module turns that story into a measurable workload:

* :class:`FaultInjector` corrupts a random subset of agents at
  exponentially-distributed intervals (rate ``faults_per_parallel_time``
  per unit of parallel time), using a caller-supplied corruption function
  — typically one of the adversary suite's single-agent scramblers;
* :func:`measure_availability` runs a protocol under continuous injection
  and reports the fraction of checkpoints at which the output was correct
  (a unique leader), plus mean-time-to-repair statistics.

Experiment E15 sweeps the fault rate: availability should degrade
gracefully and recover to ~1 when the mean fault interval exceeds the
recovery time — the operational content of Theorem 1.1's recovery bound.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.protocol import PopulationProtocol
from repro.scheduler.rng import RNG
from repro.sim.simulation import Simulation

#: Corrupts one agent's state in place (or returns a replacement state).
AgentCorruption = Callable[[Any, RNG], Any]


@dataclass
class FaultEvent:
    """One injected fault burst."""

    interaction: int
    agents: list[int]


class FaultInjector:
    """Injects corruption bursts into a running simulation.

    Burst times follow an exponential inter-arrival law with mean
    ``n / rate`` interactions (i.e. ``rate`` bursts per unit of parallel
    time); each burst corrupts ``burst_size`` uniformly chosen agents.
    """

    def __init__(
        self,
        corruption: AgentCorruption,
        rate: float,
        burst_size: int,
        rng: RNG,
    ):
        if rate <= 0:
            raise ValueError("fault rate must be positive")
        if burst_size < 1:
            raise ValueError("burst size must be at least one agent")
        self.corruption = corruption
        self.rate = rate
        self.burst_size = burst_size
        self._rng = rng
        self.events: list[FaultEvent] = []
        self._next_burst: float | None = None

    def _schedule(self, sim: Simulation) -> None:
        mean_gap = sim.n / self.rate
        self._next_burst = sim.metrics.interactions + self._rng.expovariate(1.0 / mean_gap)

    def observe(self, sim: Simulation, i: int, j: int) -> None:
        """Install as a simulation observer."""
        if self._next_burst is None:
            self._schedule(sim)
        assert self._next_burst is not None
        if sim.metrics.interactions < self._next_burst:
            return
        victims = self._rng.sample(range(sim.n), min(self.burst_size, sim.n))
        for victim in victims:
            replacement = self.corruption(sim.config[victim], self._rng)
            if replacement is not None:
                sim.config[victim] = replacement
        self.events.append(FaultEvent(sim.metrics.interactions, victims))
        self._schedule(sim)


class AvailabilityAccounting:
    """Shared checkpoint bookkeeping of the availability workloads.

    Both availability drivers — :func:`measure_availability` here (object
    engine, observer-based injection) and :meth:`repro.sim.fault_engine
    .FaultEngine.measure_availability` (backend-generic) — sample a
    correctness predicate at checkpoints and owe **one repair sample per
    burst**, measured to the first correct checkpoint after it.  That
    accounting was subtle enough to have been fixed once already (earlier
    bursts used to be dropped when several landed before a repair), so it
    lives here exactly once and the drivers only feed it events and
    checkpoint verdicts.
    """

    def __init__(self) -> None:
        self.checkpoints = 0
        self.available = 0
        self.repair_times: list[int] = []
        self.last_correct = False
        # Every burst still awaiting its first correct checkpoint.
        # Keeping all of them (not just the latest) is what makes the
        # repair-time sample one-per-burst: under bursty injection
        # several faults can land before the protocol recovers, and each
        # owes a measurement.
        self._pending_faults: list[int] = []
        self._fault_cursor = 0

    def note_events(self, events: Sequence[FaultEvent]) -> None:
        """Absorb any bursts injected since the last call."""
        while self._fault_cursor < len(events):
            self._pending_faults.append(events[self._fault_cursor].interaction)
            self._fault_cursor += 1

    def checkpoint(self, now: int, correct: bool) -> None:
        """Record one checkpoint verdict at interaction count ``now``."""
        self.checkpoints += 1
        self.last_correct = correct
        if correct:
            self.available += 1
            self.repair_times.extend(now - fault for fault in self._pending_faults)
            self._pending_faults.clear()

    def report(self, *, total_interactions: int, fault_bursts: int) -> "AvailabilityReport":
        return AvailabilityReport(
            interactions=total_interactions,
            checkpoints=self.checkpoints,
            available_checkpoints=self.available,
            fault_bursts=fault_bursts,
            repair_times=self.repair_times,
            last_checkpoint_correct=self.last_correct,
        )


@dataclass
class AvailabilityReport:
    """Result of an availability run."""

    interactions: int
    checkpoints: int
    available_checkpoints: int
    fault_bursts: int
    repair_times: list[int]
    #: Whether the final checkpoint was correct — "available right now" at
    #: the end of the run (the convergence stand-in for fault workloads).
    last_checkpoint_correct: bool = False

    @property
    def availability(self) -> float:
        return self.available_checkpoints / self.checkpoints if self.checkpoints else 0.0

    @property
    def median_repair_interactions(self) -> float:
        return statistics.median(self.repair_times) if self.repair_times else math.nan

    def as_row(self) -> dict[str, object]:
        return {
            "availability": round(self.availability, 3),
            "fault_bursts": self.fault_bursts,
            "median_repair": self.median_repair_interactions,
        }


def measure_availability(
    protocol: PopulationProtocol,
    correct: Callable[[Sequence[Any]], bool],
    injector: FaultInjector,
    *,
    n: int,
    seed: int,
    total_interactions: int,
    checkpoint_every: int,
    warmup_interactions: int = 0,
    config: list[Any] | None = None,
) -> AvailabilityReport:
    """Run under fault injection; sample correctness at checkpoints.

    ``correct`` is the instantaneous output predicate (cheap; evaluated at
    every checkpoint).  Repair times are measured from each fault burst to
    the first correct checkpoint after it.
    """
    sim = Simulation(protocol, config=config, n=None if config else n, seed=seed)
    if warmup_interactions:
        sim.run(warmup_interactions)
    sim.observers.append(injector.observe)

    accounting = AvailabilityAccounting()
    remaining = total_interactions
    while remaining > 0:
        burst = min(checkpoint_every, remaining)
        sim.run(burst)
        remaining -= burst
        # Account for any faults injected during the burst.
        accounting.note_events(injector.events)
        accounting.checkpoint(sim.metrics.interactions, correct(sim.config))
    return accounting.report(
        total_interactions=total_interactions, fault_bursts=len(injector.events)
    )

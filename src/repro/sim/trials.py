"""Multi-trial experiment runner with w.h.p.-style aggregation.

The paper's guarantees are "with high probability" statements; at finite
``n`` we estimate the corresponding quantiles by running many independent
seeded trials and reporting median / p95 alongside the success rate within
the interaction budget.

Trials are independent by construction (each gets a child seed via
:func:`derive_seed` and, when a per-trial ``init`` factory is supplied,
its own start configuration built in the parent), so execution is delegated to
:mod:`repro.sim.parallel`: ``workers=1`` runs in-process exactly as the
original sequential runner did, ``workers>1`` fans the same specs out over
a process pool with bit-identical results.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from repro.core.protocol import PopulationProtocol
from repro.scheduler.rng import derive_seed
from repro.sim.backends import get_backend, resolve_backend
from repro.sim.initial_state import (
    InitialState,
    reject_positional,
    reject_removed_kwargs,
)
from repro.sim.parallel import TrialSpec, run_trial_specs
from repro.sim.simulation import ConfigPredicate

#: The ``init=`` argument of :func:`run_trials`: one shared
#: :class:`InitialState`, or a per-trial factory mapping the trial index
#: to an ``InitialState`` (or ``None`` for a clean start).
InitFactory = Callable[[int], Optional[InitialState]]
TrialsInit = Union[InitialState, InitFactory, None]


@dataclass
class TrialSummary:
    """Aggregated statistics over independent trials of one experiment."""

    label: str
    n: int
    trials: int
    converged: int
    interactions: list[float]
    parallel_times: list[float]

    @property
    def success_rate(self) -> float:
        return self.converged / self.trials if self.trials else 0.0

    @property
    def median_interactions(self) -> float:
        return statistics.median(self.interactions) if self.interactions else float("nan")

    @property
    def median_time(self) -> float:
        return statistics.median(self.parallel_times) if self.parallel_times else float("nan")

    @property
    def p95_time(self) -> float:
        """Nearest-rank 95th percentile: the smallest value whose rank is
        >= ceil(0.95 k).  ``int(0.95 k)`` would return the maximum (p100)
        for any k not divisible by 20 — e.g. rank 19 of 20 is the p95,
        not rank 20."""
        if not self.parallel_times:
            return float("nan")
        ordered = sorted(self.parallel_times)
        rank = min(len(ordered), math.ceil(0.95 * len(ordered)))
        return ordered[rank - 1]

    @property
    def mean_time(self) -> float:
        return statistics.fmean(self.parallel_times) if self.parallel_times else float("nan")

    def as_row(self) -> dict[str, object]:
        return {
            "label": self.label,
            "n": self.n,
            "trials": self.trials,
            "success_rate": round(self.success_rate, 3),
            "median_interactions": self.median_interactions,
            "median_time": round(self.median_time, 2),
            "p95_time": round(self.p95_time, 2),
        }


def run_trials(
    protocol: PopulationProtocol,
    predicate: ConfigPredicate,
    *misused: object,
    n: int,
    trials: int,
    max_interactions: int,
    seed: int = 0,
    check_interval: int = 1,
    init: TrialsInit = None,
    label: str = "",
    workers: Optional[int] = 1,
    backend: Optional[str] = None,
    **removed: object,
) -> TrialSummary:
    """Run ``trials`` independent seeded executions and aggregate.

    Only converged trials contribute to the time statistics; the success
    rate reports how many converged within the interaction budget (the
    empirical stand-in for the paper's w.h.p. qualifier).

    ``workers`` selects the execution substrate: ``1`` (default) runs
    in-process, ``>1`` fans trials out over that many worker processes,
    ``None``/``0`` uses one worker per CPU.  The summary is identical for
    every worker count — each trial is determined by its derived seed, and
    outcomes are aggregated in trial order.

    ``init`` describes each trial's start: ``None`` for a clean
    ``n``-agent start, one :class:`~repro.sim.initial_state.InitialState`
    shared by every trial, or a per-trial factory ``index ->
    Optional[InitialState]`` (adversarial starts use
    :class:`~repro.sim.initial_state.SampledStart`, which ships as an
    ``O(1)`` handle and materializes in whichever representation the
    backend asks for).  The removed ``config_factory=``/
    ``codes_factory=``/``counts_factory=`` kwargs raise a pointed
    :class:`TypeError`.

    ``backend`` names a registered execution engine
    (:mod:`repro.sim.backends`; ``None`` resolves ``$REPRO_BENCH_BACKEND``,
    defaulting to the object engine).  Resolution happens exactly once,
    here in the parent: specs carry the resolved name, and everything
    downstream — :func:`repro.sim.parallel.run_trial` in whichever
    process, :func:`repro.sim.backends.make_simulation` — does a pure
    registry lookup that never consults the environment, so workers
    cannot disagree with their parent about which engine ran.  A backend
    with a native ``trial_runner`` (the batch engine) takes the whole
    spec list as one in-process batch; ``workers`` is irrelevant there —
    the batch engine's lockstep matrix *is* its parallelism.
    """
    reject_positional("run_trials", misused, ("n", "trials", "max_interactions"))
    reject_removed_kwargs("run_trials", removed)
    engine = resolve_backend(backend)

    def init_for(index: int) -> Optional[InitialState]:
        if init is None or isinstance(init, InitialState):
            return init
        return init(index)

    def build_spec(index: int) -> TrialSpec:
        start = init_for(index)
        return TrialSpec(
            index=index,
            protocol=protocol,
            predicate=predicate,
            seed=derive_seed(seed, index),
            max_interactions=max_interactions,
            check_interval=check_interval,
            init=start,
            n=None if start is not None else n,
            backend=engine,
        )

    entry = get_backend(engine)
    if entry.trial_runner is not None:
        # Native batch execution: the whole spec list becomes one engine.
        outcomes = entry.trial_runner([build_spec(index) for index in range(trials)])
    else:
        # A generator keeps the sequential path at O(one config) peak
        # memory: each spec is built, run, and discarded in turn.  The
        # parallel path materializes the list (the pool needs every spec
        # up front anyway).
        outcomes = run_trial_specs(
            (build_spec(index) for index in range(trials)), workers=workers
        )
    interactions: list[float] = []
    times: list[float] = []
    converged = 0
    for outcome in outcomes:
        if outcome.converged:
            converged += 1
            interactions.append(outcome.interactions)
            times.append(outcome.parallel_time)
    return TrialSummary(
        label=label or protocol.name,
        n=n,
        trials=trials,
        converged=converged,
        interactions=interactions,
        parallel_times=times,
    )


def format_table(rows: Sequence[dict[str, object]], title: str = "") -> str:
    """Render aggregated rows as a fixed-width text table (bench output)."""
    if not rows:
        return f"{title}\n(no rows)"
    keys = list(rows[0].keys())
    widths = {k: max(len(str(k)), max(len(str(row.get(k, ""))) for row in rows)) for k in keys}
    header = "  ".join(str(k).ljust(widths[k]) for k in keys)
    rule = "-" * len(header)
    lines = [title, rule, header, rule] if title else [header, rule]
    for row in rows:
        lines.append("  ".join(str(row.get(k, "")).ljust(widths[k]) for k in keys))
    lines.append(rule)
    return "\n".join(lines)

"""Interaction accounting and event logging for simulations.

The paper measures protocols in *interactions* and in *(parallel) time* =
interactions / n.  :class:`Metrics` tracks both, plus protocol-level events
(hard resets, soft resets, ⊤ detections) that instrumented simulations
record via :meth:`Metrics.record_event`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class Metrics:
    """Counters collected over one simulation run."""

    n: int
    interactions: int = 0
    events: Counter = field(default_factory=Counter)
    #: interaction index of the first occurrence of each event kind
    first_occurrence: dict[str, int] = field(default_factory=dict)

    @property
    def parallel_time(self) -> float:
        """Interactions divided by n — the paper's notion of time."""
        return self.interactions / self.n

    def record_event(self, kind: str, count: int = 1) -> None:
        """Record ``count`` occurrences of an event kind at the current step."""
        if count <= 0:
            return
        if kind not in self.first_occurrence:
            self.first_occurrence[kind] = self.interactions
        self.events[kind] += count

    def as_dict(self) -> dict[str, object]:
        return {
            "n": self.n,
            "interactions": self.interactions,
            "parallel_time": self.parallel_time,
            "events": dict(self.events),
            "first_occurrence": dict(self.first_occurrence),
        }

"""Parallel trial execution — fan independent trials out over processes.

The paper's guarantees are w.h.p. statements, so every experiment in this
repository reduces to many independent seeded trials; those trials are
embarrassingly parallel.  This module is the execution substrate under
:func:`repro.sim.trials.run_trials`:

* a :class:`TrialSpec` is a picklable, fully-determined work item — the
  protocol, the convergence predicate, an optional explicit start
  configuration, and a child seed already derived in the parent via
  :func:`repro.scheduler.rng.derive_seed` (so seed derivation never
  depends on which process runs the trial);
* :func:`run_trial` executes one spec and ships back a light-weight
  :class:`TrialOutcome` (no configurations cross the process boundary);
* :func:`run_trial_specs` executes a batch on a ``ProcessPoolExecutor``,
  chunking specs to amortize pickling, and returns outcomes **in spec
  order** regardless of completion order — ``seed → results`` is therefore
  bit-identical to the sequential runner for any worker count.

Closures and lambdas do not pickle; when a spec is unpicklable (common in
tests that pass ``lambda config: False``) the batch silently degrades to
in-process execution, which is always semantically equivalent.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from repro.core.protocol import PopulationProtocol
from repro.sim.simulation import ConfigPredicate, run_until


@dataclass
class TrialSpec:
    """One fully-determined trial, picklable for process fan-out."""

    index: int
    protocol: PopulationProtocol
    predicate: ConfigPredicate
    seed: int
    max_interactions: int
    check_interval: int = 1
    config: Optional[list[Any]] = None
    n: Optional[int] = None


@dataclass
class TrialOutcome:
    """The light-weight per-trial result shipped back from a worker."""

    index: int
    converged: bool
    interactions: int
    parallel_time: float


def run_trial(spec: TrialSpec) -> TrialOutcome:
    """Execute one spec (in whichever process it landed)."""
    result = run_until(
        spec.protocol,
        spec.predicate,
        config=spec.config,
        n=spec.n,
        seed=spec.seed,
        max_interactions=spec.max_interactions,
        check_interval=spec.check_interval,
    )
    return TrialOutcome(
        index=spec.index,
        converged=result.converged,
        interactions=result.interactions,
        parallel_time=result.parallel_time,
    )


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count request: ``None``/``0`` → one per CPU."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be positive (or None/0 for auto), got {workers}")
    return workers


def _picklable(specs: Sequence[TrialSpec]) -> bool:
    # Specs differ per trial (config_factory-built configurations), so
    # every one must cross the process boundary — probe them all, one at
    # a time so the throwaway blobs never accumulate.
    try:
        for spec in specs:
            pickle.dumps(spec)
    except Exception:
        return False
    return True


def run_trial_specs(
    specs: Iterable[TrialSpec],
    workers: Optional[int] = 1,
) -> list[TrialOutcome]:
    """Execute specs on ``workers`` processes; outcomes come back in spec order.

    ``workers=1`` (the default) runs in-process with zero pool overhead,
    consuming ``specs`` lazily — a generator of specs is built, run, and
    discarded one trial at a time, so peak memory stays O(one config).
    ``workers=None`` or ``0`` uses one worker per CPU.  Unpicklable specs
    (lambda predicates, closure-built protocols) degrade to in-process
    execution with a warning rather than failing.
    """
    if resolve_workers(workers) <= 1:
        return [run_trial(spec) for spec in specs]
    spec_list = list(specs)
    worker_count = min(resolve_workers(workers), len(spec_list))
    if worker_count <= 1 or len(spec_list) <= 1:
        return [run_trial(spec) for spec in spec_list]
    if not _picklable(spec_list):
        warnings.warn(
            "trial specs are not picklable (lambda/closure predicate or protocol?); "
            "falling back to sequential execution",
            RuntimeWarning,
            stacklevel=2,
        )
        return [run_trial(spec) for spec in spec_list]
    # Chunk so each IPC round-trip carries several trials' worth of work.
    chunksize = max(1, len(spec_list) // (worker_count * 4))
    with ProcessPoolExecutor(max_workers=worker_count) as pool:
        return list(pool.map(run_trial, spec_list, chunksize=chunksize))

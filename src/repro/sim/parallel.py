"""Parallel trial execution — fan independent trials out over processes.

The paper's guarantees are w.h.p. statements, so every experiment in this
repository reduces to many independent seeded trials; those trials are
embarrassingly parallel.  This module is the execution substrate under
:func:`repro.sim.trials.run_trials`:

* a :class:`TrialSpec` is a picklable, fully-determined work item — the
  protocol, the convergence predicate, an optional explicit start
  configuration, and a child seed already derived in the parent via
  :func:`repro.scheduler.rng.derive_seed` (so seed derivation never
  depends on which process runs the trial);
* :func:`run_trial` executes one spec and ships back a light-weight
  :class:`TrialOutcome` (no configurations cross the process boundary);
* :func:`run_trial_specs` executes a batch on a ``ProcessPoolExecutor``,
  chunking specs to amortize pickling, and returns outcomes **in spec
  order** regardless of completion order — ``seed → results`` is therefore
  bit-identical to the sequential runner for any worker count;
* :func:`stream_ordered` is the streaming substrate under long sweeps:
  it submits work items individually (``submit``/``wait`` instead of the
  blocking ``pool.map``) and *yields* each result as soon as it can be
  emitted in item order — a reorder buffer holds early completions, so
  consumers (JSONL checkpoint writers, progress lines, aggregators) see
  exactly the sequential stream for any worker count;
* :func:`run_trial_specs_streaming` is :func:`stream_ordered` applied to
  :func:`run_trial`.

Closures and lambdas do not pickle; when a spec is unpicklable (common in
tests that pass ``lambda config: False``) the batch silently degrades to
in-process execution, which is always semantically equivalent.  The
streaming path degrades per item: an unpicklable item runs in the parent
at submission time, picklable neighbours still fan out.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence, TypeVar

from repro.core.protocol import PopulationProtocol
from repro.obs import SpanBuffer, get_tracer
from repro.sim.backends import DEFAULT_BACKEND
from repro.sim.initial_state import InitialState, reject_positional, require_init
from repro.sim.simulation import ConfigPredicate, run_until


@dataclass
class TrialSpec:
    """One fully-determined trial, picklable for process fan-out.

    ``backend`` names a registered execution engine, *already resolved*
    by the parent (:func:`repro.sim.backends.resolve_backend`): workers
    do a pure registry lookup and never consult their own environment,
    so every process runs the same engine.

    The start configuration is ``init`` — an
    :class:`~repro.sim.initial_state.InitialState`, whose members cover
    every pickle-cost point from full state-object lists down to the
    ``O(S)`` count vectors and ``O(1)`` sampled-adversary handles — or
    ``n`` for a clean start.
    """

    index: int
    protocol: PopulationProtocol
    predicate: ConfigPredicate
    seed: int
    max_interactions: int
    check_interval: int = 1
    init: Optional[InitialState] = None
    n: Optional[int] = None
    backend: str = DEFAULT_BACKEND

    def __post_init__(self) -> None:
        require_init(self.init)


@dataclass
class TrialOutcome:
    """The light-weight per-trial result shipped back from a worker."""

    index: int
    converged: bool
    interactions: int
    parallel_time: float


def run_trial(spec: TrialSpec) -> TrialOutcome:
    """Execute one spec (in whichever process it landed)."""
    result = run_until(
        spec.protocol,
        spec.predicate,
        init=spec.init,
        n=spec.n,
        seed=spec.seed,
        max_interactions=spec.max_interactions,
        check_interval=spec.check_interval,
        backend=spec.backend,
    )
    return TrialOutcome(
        index=spec.index,
        converged=result.converged,
        interactions=result.interactions,
        parallel_time=result.parallel_time,
    )


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count request: ``None``/``0`` → one per CPU."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be positive (or None/0 for auto), got {workers}")
    return workers


def _picklable(specs: Sequence[TrialSpec]) -> bool:
    # Specs differ per trial (init-factory-built configurations), so
    # every one must cross the process boundary — probe them all, one at
    # a time so the throwaway blobs never accumulate.
    try:
        for spec in specs:
            pickle.dumps(spec)
    except Exception:
        return False
    return True


def run_trial_specs(
    specs: Iterable[TrialSpec],
    *misused: Any,
    workers: Optional[int] = 1,
) -> list[TrialOutcome]:
    """Execute specs on ``workers`` processes; outcomes come back in spec order.

    ``workers`` is keyword-only: ``run_trial_specs(specs, 4)`` used to
    read as "four specs" as easily as "four workers", so the count must
    now be named.  ``workers=1`` (the default) runs in-process with zero
    pool overhead, consuming ``specs`` lazily — a generator of specs is
    built, run, and discarded one trial at a time, so peak memory stays
    O(one config).  ``workers=None`` or ``0`` uses one worker per CPU.
    Unpicklable specs (lambda predicates, closure-built protocols)
    degrade to in-process execution with a warning rather than failing.
    """
    reject_positional("run_trial_specs", misused, ("workers",))
    if resolve_workers(workers) <= 1:
        return [run_trial(spec) for spec in specs]
    spec_list = list(specs)
    worker_count = min(resolve_workers(workers), len(spec_list))
    if worker_count <= 1 or len(spec_list) <= 1:
        return [run_trial(spec) for spec in spec_list]
    if not _picklable(spec_list):
        warnings.warn(
            "trial specs are not picklable (lambda/closure predicate or protocol?); "
            "falling back to sequential execution",
            RuntimeWarning,
            stacklevel=2,
        )
        return [run_trial(spec) for spec in spec_list]
    # Chunk so each IPC round-trip carries several trials' worth of work.
    chunksize = max(1, len(spec_list) // (worker_count * 4))
    with ProcessPoolExecutor(max_workers=worker_count) as pool:
        return list(pool.map(run_trial, spec_list, chunksize=chunksize))


_Item = TypeVar("_Item")
_Result = TypeVar("_Result")

_UNPICKLABLE_WARNING = (
    "work item is not picklable (lambda/closure predicate or protocol?); "
    "running it in-process while picklable items keep fanning out"
)


def _run_span_buffered(fn: Callable[[_Item], _Result], span_name: str, item: _Item):
    """Run ``fn(item)`` under a :class:`SpanBuffer` span and ship both back.

    Module-level (so ``partial(_run_span_buffered, fn, name)`` pickles
    wherever ``fn`` does): the worker collects its span records in memory
    — it never opens the sink — and the parent writes them at the reorder
    buffer's in-order yield, labeled with the item index there.  The
    tracer only reads the monotonic clock, so a traced worker's RNG
    streams and results are untouched.
    """
    buffer = SpanBuffer()
    with buffer.span(span_name, worker=os.getpid()):
        result = fn(item)
    return result, buffer.records


def stream_ordered(
    items: Iterable[_Item],
    fn: Callable[[_Item], _Result],
    *misused: Any,
    workers: Optional[int] = 1,
    window: Optional[int] = None,
    span: Optional[str] = None,
) -> Iterator[_Result]:
    """Apply ``fn`` to ``items`` on a process pool, yielding results in item order.

    The streaming counterpart of :func:`run_trial_specs`: items are
    submitted individually and each result is yielded as soon as every
    earlier item has been yielded — completions that arrive early wait in
    a reorder buffer, so the yielded stream is identical to
    ``map(fn, items)`` for any worker count.  Consumers can therefore
    checkpoint or aggregate incrementally without giving up determinism.

    ``workers`` and ``window`` are keyword-only (a bare
    ``stream_ordered(items, fn, 8)`` is ambiguous between the two);
    stray positionals raise at *call* time, not first-``next`` time —
    validation lives in this plain function, which then hands off to the
    inner generator.

    ``items`` is consumed lazily: at most ``window`` items (default
    ``4 × workers``) are in flight or buffered at once, so arbitrarily
    long sweeps run in O(window) memory.  ``workers`` follows
    :func:`resolve_workers`; ``workers=1`` degenerates to a plain lazy
    ``map``.  An unpicklable item runs in the parent process at
    submission time (with a one-time warning) instead of failing the
    sweep — its result still streams out at its index, but while it runs
    the parent cannot yield earlier completions.

    ``span`` names a per-item tracing span (see :mod:`repro.obs`): when
    tracing is enabled each item's ``fn`` call runs under a span carrying
    a ``worker`` (pid) label, buffered in the worker and written by the
    parent at the in-order yield with the item index added — so the
    trace's span order is deterministic for any worker count, exactly
    like the result stream.  With tracing disabled (the default) ``span``
    costs one attribute check and changes nothing.
    """
    reject_positional("stream_ordered", misused, ("workers", "window", "span"))
    worker_count = resolve_workers(workers)
    if window is not None and window < 1:
        raise ValueError(f"window must be positive, got {window}")
    return _stream_ordered(items, fn, worker_count, window, span)


def _stream_ordered(
    items: Iterable[_Item],
    fn: Callable[[_Item], _Result],
    worker_count: int,
    window: Optional[int],
    span: Optional[str] = None,
) -> Iterator[_Result]:
    tracer = get_tracer()
    traced = span is not None and tracer.enabled
    if worker_count <= 1:
        if traced:
            for index, item in enumerate(items):
                with tracer.span(span, item=index, worker=os.getpid()):
                    result = fn(item)
                yield result
            return
        for item in items:
            yield fn(item)
        return
    if window is None:
        window = worker_count * 4
    # With tracing on, the worker call is wrapped so each item's span
    # records ride back with its result; the parent unwraps at the
    # in-order yield below.
    call: Callable[[_Item], Any] = (
        partial(_run_span_buffered, fn, span) if traced else fn
    )

    iterator = enumerate(items)
    pending: dict[Any, int] = {}  # future -> item index
    buffered: dict[int, _Result] = {}  # completed, waiting for their turn
    next_yield = 0
    exhausted = False
    warned = False
    pool = ProcessPoolExecutor(max_workers=worker_count)
    try:
        while True:
            # Top up the in-flight window.  Items are submitted in order, so
            # whenever index k is still unsubmitted nothing above k has been
            # either — the drain below can never starve.
            while not exhausted and len(pending) + len(buffered) < window:
                try:
                    index, item = next(iterator)
                except StopIteration:
                    exhausted = True
                    break
                # The probe costs one extra serialization per item — same
                # trade as _picklable() above, and the high-volume callers
                # (sweep ScenarioSpecs) submit a few dozen bytes per item.
                try:
                    pickle.dumps(item)
                except Exception:
                    if not warned:
                        warnings.warn(_UNPICKLABLE_WARNING, RuntimeWarning, stacklevel=2)
                        warned = True
                    buffered[index] = call(item)
                else:
                    pending[pool.submit(call, item)] = index
            while next_yield in buffered:
                value = buffered.pop(next_yield)
                if traced:
                    value, records = value
                    for record in records:
                        # SpanBuffer records carry raw monotonic stamps
                        # (epoch 0); rebase onto this tracer's origin and
                        # label with the deterministic item index.
                        record["ts"] = record.get("ts", 0.0) - tracer.epoch
                        record.setdefault("labels", {})["item"] = next_yield
                        tracer.write_record(record)
                yield value
                next_yield += 1
            if exhausted and not pending:
                return
            if pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    buffered[pending.pop(future)] = future.result()
    finally:
        # An abandoned generator (consumer break / error) must not leave
        # worker processes running queued items.
        pool.shutdown(wait=True, cancel_futures=True)


def run_trial_specs_streaming(
    specs: Iterable[TrialSpec],
    *misused: Any,
    workers: Optional[int] = 1,
    window: Optional[int] = None,
) -> Iterator[TrialOutcome]:
    """Execute specs on ``workers`` processes, yielding outcomes in spec order.

    Unlike :func:`run_trial_specs` this never blocks on the whole batch:
    each outcome is yielded as soon as it and all its predecessors have
    completed, so long sweeps can checkpoint incrementally.  The yielded
    sequence is identical to the blocking runner for any worker count.
    ``workers`` and ``window`` are keyword-only, as everywhere on this
    surface.  Each trial runs under a ``"trial"`` span when tracing is
    enabled (worker pid + trial index labels, merged in spec order).
    """
    reject_positional("run_trial_specs_streaming", misused, ("workers", "window"))
    return stream_ordered(specs, run_trial, workers=workers, window=window, span="trial")

"""Backend-generic fault injection — named fault models, one burst law.

The paper's opening premise is that state corruption is the rule, not the
exception; self-stabilization is the answer.  The original fault machinery
(:mod:`repro.sim.faults`) turns that into a measurable workload, but only
on the object backend: it corrupts state *objects* through a
per-interaction observer, which the vectorized engines deliberately do not
have.  This module is the backend-generic replacement — the subsystem that
lets every ``protocol × fault model × fault rate × n`` cell run on every
execution engine, up to the ``n = 10⁶`` populations only the counts
backend reaches (experiment E21).

**Fault models.**  A :class:`FaultModel` is one named corruption law with
three *law-matched* appliers, one per configuration representation:

* ``apply_config`` — per-agent corruption of a state-object list (the
  object engine; for protocols without a finite encoding this wraps the
  classic :data:`repro.sim.faults.AgentCorruption` scramblers);
* ``apply_codes``  — vectorized index corruption of an ``(n,)`` state-code
  array (the array engine);
* ``apply_counts`` — ``O(S)`` state-mass moves on an ``(S,)`` count vector
  (the counts engine): victims are drawn by a multivariate-hypergeometric
  sample from the count vector — exactly the state multiset of a uniform
  without-replacement victim draw — and the replacement mass follows the
  model's corruption law in aggregate form.

Law-matched means: for a fixed model, the post-burst configuration has the
same distribution on every backend (and the config/codes appliers consume
the *same* generator draws, so object- and array-side bursts are
bit-identical given one corruption stream).  The built-in registry:

======================  =====================================================
``scramble_burst``      victims' states drawn uniformly from the encoded
                        space (the generic transient fault; wraps the
                        object-layout scrambler for ``ElectLeader_r``).
``kill_leaders``        up to ``burst_size`` agents currently *outputting
                        leader* are demoted to the first non-leader state —
                        the targeted attack behind the availability story.
``plant_minority``      one uniformly drawn state is planted into all
                        victims — a coordinated minority, the burst-shaped
                        twin of the ``plant_minority`` adversary.
``crash_reset``         victims are reset to the protocol's clean initial
                        state — a crash-and-reboot fault (runs on *every*
                        protocol, encoded or not).
======================  =====================================================

**The burst engine.**  :class:`FaultEngine` owns two PCG64 streams derived
from one seed: a *schedule* stream drawing exponential burst inter-arrival
gaps (mean ``n / rate`` interactions — ``rate`` bursts per unit of
parallel time), and a *corruption* stream feeding the appliers.  Because
the schedule stream is consumed identically no matter which engine runs,
the burst schedule is **bit-identical across backends for a given seed**
(E21 gates this); the corruption draws are representation-shaped and match
in law.  Injection slices ``run_batch`` at each burst's interaction
boundary — on the counts backend this truncates the collision-free run at
the burst, which is exact (the Markov property: restarting a run from the
current counts is the counts process's own law).

Drivers: :meth:`FaultEngine.run_until` stabilizes under continuous
injection (the classic recovery workload) and
:meth:`FaultEngine.measure_availability` samples a correctness predicate
at checkpoints (the E15/E21 availability workload), both written against
the common engine surface (``run_batch`` / ``predicate_holds`` /
``apply_fault`` / ``metrics``) so any registered backend works unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional
from weakref import WeakKeyDictionary

from repro.core.elect_leader import ElectLeader
from repro.core.protocol import PopulationProtocol
from repro.scheduler.rng import make_rng, np_stream
from repro.sim.array_backend import require_numpy
from repro.sim.faults import AvailabilityAccounting, AvailabilityReport, FaultEvent
from repro.sim.simulation import ConfigPredicate, SimulationResult

#: Derived-seed stream tags under a :class:`FaultEngine` seed: the burst
#: *schedule* stream (identical consumption on every backend) and the
#: *corruption* stream (representation-shaped draws, matched in law).
_SCHEDULE_STREAM = 0x5C
_CORRUPT_STREAM = 0xC0


class FaultEngineError(RuntimeError):
    """A fault model cannot run on this protocol (or numpy is missing)."""


@dataclass(frozen=True)
class FaultSpec:
    """One trial's fault-injection recipe, as plain data.

    The portable form of a :class:`FaultEngine` construction: batch
    drivers (:mod:`repro.sim.batch_backend`) and sweep cells carry one
    ``FaultSpec`` per trial row and materialize engines — or the
    equivalent per-row stream state — from it.  ``seed`` is the engine
    seed; the schedule and corruption streams derive from it with the
    same tags a :class:`FaultEngine` uses, so a ``FaultSpec`` replayed
    through any driver produces the bit-identical burst schedule.
    """

    model: str
    rate: float
    burst_size: int = 1
    seed: int = 0

    def make_engine(self, protocol: PopulationProtocol, *, n: int) -> FaultEngine:
        return make_fault_engine(
            self.model, protocol, n=n, rate=self.rate,
            burst_size=self.burst_size, seed=self.seed,
        )


# ---------------------------------------------------------------------------
# Per-protocol caches shared by the appliers
# ---------------------------------------------------------------------------


_LEADER_MASK_CACHE: "WeakKeyDictionary[PopulationProtocol, Any]" = WeakKeyDictionary()


def leader_code_mask(protocol: PopulationProtocol):
    """Boolean ``(S,)`` mask of state codes whose output is truthy (leader).

    A pure function of the protocol's parameters, cached per instance like
    the transition table — ``kill_leaders`` consults it on every burst.
    """
    np = require_numpy()
    mask = _LEADER_MASK_CACHE.get(protocol)
    if mask is None:
        size = protocol.num_states()
        if size is None:
            raise FaultEngineError(
                f"protocol '{protocol.name}' has no finite state encoding"
            )
        mask = np.fromiter(
            (bool(protocol.output(protocol.decode_state(code))) for code in range(size)),
            dtype=bool,
            count=size,
        )
        _LEADER_MASK_CACHE[protocol] = mask
    return mask


def initial_state_code(protocol: PopulationProtocol) -> int:
    """The code of the protocol's clean initial state."""
    return int(protocol.encode_state(protocol.initial_state()))


# ---------------------------------------------------------------------------
# Fault models
# ---------------------------------------------------------------------------


class FaultModel:
    """One named corruption law with three law-matched appliers.

    Subclasses customize the *replacement* law through two hooks —
    :meth:`_replacement_codes` (per-victim codes) and
    :meth:`_replacement_mass` (the aggregate counts form of the same law)
    — and, where victim selection is state-dependent (``kill_leaders``),
    override the appliers themselves.  The base appliers select victims
    uniformly without replacement, which is what makes the hypergeometric
    counts draw the exact aggregate twin.
    """

    name: str = "fault-model"
    description: str = ""

    def supports(self, protocol: PopulationProtocol) -> Optional[str]:
        """``None`` when this model can corrupt ``protocol``, else the reason."""
        if protocol.num_states() is None:
            return (
                "it has no finite state encoding (num_states() is None), "
                "which this fault model's corruption law requires"
            )
        return None

    def require(self, protocol: PopulationProtocol) -> None:
        reason = self.supports(protocol)
        if reason is not None:
            raise FaultEngineError(
                f"fault model '{self.name}' cannot corrupt protocol "
                f"'{protocol.name}': {reason}"
            )

    # -- replacement-law hooks (uniform-victim models) ------------------

    def _replacement_codes(self, protocol: PopulationProtocol, old_codes, generator):
        """Replacement codes for victims currently in ``old_codes``."""
        raise NotImplementedError

    def _replacement_mass(self, protocol: PopulationProtocol, removed, generator):
        """The ``(S,)`` aggregate twin of :meth:`_replacement_codes`.

        ``removed`` is the hypergeometric victim draw (mass leaving each
        code); the result is the mass entering each code, summing to
        ``removed.sum()`` and distributed as ``bincount`` of the codes
        form would be.
        """
        raise NotImplementedError

    @staticmethod
    def _uniform_victims(generator, n: int, burst_size: int):
        """``min(burst_size, n)`` distinct victim indices, uniform."""
        return generator.choice(n, size=min(burst_size, n), replace=False)

    # -- the three appliers ---------------------------------------------

    def apply_codes(self, protocol: PopulationProtocol, codes, burst_size: int, generator):
        """Corrupt ``burst_size`` agents of an ``(n,)`` state-code array."""
        victims = self._uniform_victims(generator, codes.shape[0], burst_size)
        codes[victims] = self._replacement_codes(protocol, codes[victims], generator)

    def apply_counts(self, protocol: PopulationProtocol, counts, burst_size: int, generator):
        """Move ``burst_size`` agents' mass on an ``(S,)`` count vector.

        ``O(S)`` regardless of ``n``: the victims' state multiset is a
        multivariate-hypergeometric draw from ``counts`` (exactly the law
        of ``bincount(codes[uniform distinct victims])``), and the
        replacement mass follows the model's aggregate law.
        """
        total = int(counts.sum())
        size = min(burst_size, total)
        removed = generator.multivariate_hypergeometric(counts, size)
        counts -= removed
        counts += self._replacement_mass(protocol, removed, generator)

    def apply_config(
        self, protocol: PopulationProtocol, config: list[Any], burst_size: int, generator
    ) -> None:
        """Corrupt ``burst_size`` agents of a state-object list.

        Default: run the codes applier on an encoded view and decode the
        changed entries back — the object and array backends therefore
        consume *identical* corruption draws, so one corruption stream
        produces bit-identical bursts on both.
        """
        np = require_numpy()
        self.require(protocol)
        encode = protocol.encode_state
        codes = np.fromiter(
            (encode(state) for state in config), dtype=np.int64, count=len(config)
        )
        before = codes.copy()
        self.apply_codes(protocol, codes, burst_size, generator)
        for index in np.flatnonzero(codes != before).tolist():
            config[index] = protocol.decode_state(int(codes[index]))


class ScrambleBurst(FaultModel):
    """Victims' states are redrawn uniformly from the encoded space.

    The generic transient fault: any code decodes to a well-formed state
    (the encoding is a bijection), so this is the model's "arbitrary
    memory corruption" restricted to a burst.  For protocols *without* a
    finite encoding — ``ElectLeader_r`` — the object applier wraps the
    classic :func:`repro.adversary.initializers.single_agent_scrambler`
    (an :data:`~repro.sim.faults.AgentCorruption`), so the legacy E15
    corruption law keeps running through the new engine.
    """

    name = "scramble_burst"
    description = "victims redrawn uniformly from the encoded state space"

    def supports(self, protocol: PopulationProtocol) -> Optional[str]:
        if protocol.num_states() is not None:
            return None
        if isinstance(protocol, ElectLeader):
            return None  # the object-layout scrambler speaks this protocol
        return (
            "it has no finite state encoding and no object-layout scrambler; "
            "only ElectLeader-shaped protocols take the AgentCorruption path"
        )

    def _replacement_codes(self, protocol, old_codes, generator):
        np = require_numpy()
        return generator.integers(
            0, protocol.num_states(), size=old_codes.shape[0], dtype=np.int64
        )

    def _replacement_mass(self, protocol, removed, generator):
        np = require_numpy()
        size = protocol.num_states()
        pvals = np.full(size, 1.0 / size)
        return generator.multinomial(int(removed.sum()), pvals).astype(np.int64)

    def apply_config(self, protocol, config, burst_size, generator) -> None:
        if protocol.num_states() is not None:
            super().apply_config(protocol, config, burst_size, generator)
            return
        # Object-layout leg: select victims from the shared corruption
        # stream, then hand each to the classic scrambler through a child
        # random.Random — deterministic, and exactly the E15 corruption.
        from repro.adversary.initializers import single_agent_scrambler

        self.require(protocol)
        victims = self._uniform_victims(generator, len(config), burst_size)
        rng = make_rng(int(generator.integers(1 << 62)))
        corrupt = single_agent_scrambler(protocol)
        for victim in victims.tolist():
            replacement = corrupt(config[victim], rng)
            if replacement is not None:
                config[victim] = replacement


class KillLeaders(FaultModel):
    """Demote up to ``burst_size`` current leaders to a non-leader state.

    The targeted attack: victims are drawn uniformly among the agents
    whose *output* is truthy, and each is moved to the first non-leader
    code — for a ranking protocol that plants a duplicate rank, for a
    leader-bit protocol it clears the bit.  A burst with no leaders alive
    is a no-op (still scheduled and recorded).
    """

    name = "kill_leaders"
    description = "uniformly chosen current leaders demoted to a non-leader state"

    def supports(self, protocol: PopulationProtocol) -> Optional[str]:
        reason = super().supports(protocol)
        if reason is not None:
            return reason
        if self._fallback_code(protocol) is None:
            return "every state outputs leader, so there is no state to demote to"
        return None

    @staticmethod
    def _fallback_code(protocol: PopulationProtocol) -> Optional[int]:
        np = require_numpy()
        non_leaders = np.flatnonzero(~leader_code_mask(protocol))
        return int(non_leaders[0]) if non_leaders.size else None

    def apply_codes(self, protocol, codes, burst_size, generator):
        np = require_numpy()
        leaders = np.flatnonzero(leader_code_mask(protocol)[codes])
        size = min(burst_size, int(leaders.size))
        if size == 0:
            return
        victims = generator.choice(leaders, size=size, replace=False)
        codes[victims] = self._fallback_code(protocol)

    def apply_counts(self, protocol, counts, burst_size, generator):
        np = require_numpy()
        mask = leader_code_mask(protocol)
        leader_counts = np.where(mask, counts, 0)
        size = min(burst_size, int(leader_counts.sum()))
        if size == 0:
            return
        removed = generator.multivariate_hypergeometric(leader_counts, size)
        counts -= removed
        counts[self._fallback_code(protocol)] += size


class PlantMinority(FaultModel):
    """All victims are planted with one uniformly drawn state.

    The burst-shaped twin of the ``plant_minority`` adversary: a
    *coordinated* minority (every victim agrees) rather than independent
    scrambling — the hardest shape for collision detection at a given
    corruption budget.
    """

    name = "plant_minority"
    description = "one uniformly drawn state planted into every victim"

    def _replacement_codes(self, protocol, old_codes, generator):
        np = require_numpy()
        planted = int(generator.integers(0, protocol.num_states()))
        return np.full(old_codes.shape[0], planted, dtype=np.int64)

    def _replacement_mass(self, protocol, removed, generator):
        np = require_numpy()
        added = np.zeros(protocol.num_states(), dtype=np.int64)
        added[int(generator.integers(0, protocol.num_states()))] = int(removed.sum())
        return added


class CrashReset(FaultModel):
    """Victims crash and reboot into the protocol's clean initial state.

    Deterministic damage (the replacement is ``initial_state()``), so
    recovery-time measurements are not confounded by corruption
    randomness.  Runs on *every* protocol — an initial state always
    exists — making it the one model available to ``ElectLeader_r`` and
    the finite-state family alike.
    """

    name = "crash_reset"
    description = "victims rebooted into the protocol's clean initial state"

    def supports(self, protocol: PopulationProtocol) -> Optional[str]:
        return None  # initial_state() is part of the base protocol contract

    def _replacement_codes(self, protocol, old_codes, generator):
        np = require_numpy()
        return np.full(old_codes.shape[0], initial_state_code(protocol), dtype=np.int64)

    def _replacement_mass(self, protocol, removed, generator):
        np = require_numpy()
        added = np.zeros(protocol.num_states(), dtype=np.int64)
        added[initial_state_code(protocol)] = int(removed.sum())
        return added

    def apply_config(self, protocol, config, burst_size, generator) -> None:
        # No encoding needed: replace victims with fresh initial states
        # (consumes exactly the victim draw, like the codes applier).
        victims = self._uniform_victims(generator, len(config), burst_size)
        for victim in victims.tolist():
            config[victim] = protocol.initial_state()


# ---------------------------------------------------------------------------
# The fault-model registry
# ---------------------------------------------------------------------------


#: Name → model, in registration order (the default model first).
FAULT_MODELS: dict[str, FaultModel] = {}

#: The model used when a fault axis is active but none is named.
DEFAULT_FAULT_MODEL = "scramble_burst"


def register_fault_model(model: FaultModel, *, replace: bool = False) -> FaultModel:
    """Add a model to the registry (the extension point for new laws)."""
    if not model.name or not model.name.isidentifier():
        raise ValueError(f"fault model name must be a simple identifier, got {model.name!r}")
    if model.name in FAULT_MODELS and not replace:
        raise ValueError(f"fault model '{model.name}' is already registered")
    FAULT_MODELS[model.name] = model
    return model


def fault_model_names() -> tuple[str, ...]:
    """All registered fault-model names, default model first."""
    return tuple(FAULT_MODELS)


def get_fault_model(name: str) -> FaultModel:
    """Pure registry lookup; unknown names list the known models."""
    try:
        return FAULT_MODELS[name]
    except KeyError:
        known = ", ".join(fault_model_names())
        raise ValueError(f"unknown fault model '{name}' (known: {known})") from None


register_fault_model(ScrambleBurst())
register_fault_model(KillLeaders())
register_fault_model(PlantMinority())
register_fault_model(CrashReset())


# ---------------------------------------------------------------------------
# The burst engine
# ---------------------------------------------------------------------------


class FaultEngine:
    """Schedules and injects fault bursts into any execution backend.

    Bursts arrive with exponential inter-arrival gaps of mean ``n / rate``
    interactions (``rate`` bursts per unit of parallel time) drawn from a
    dedicated PCG64 *schedule* stream; each burst corrupts ``burst_size``
    agents through the model's applier for the simulation's
    representation (``sim.apply_fault``), drawing from a separate
    *corruption* stream.  Both streams derive from one ``seed``, and the
    schedule stream's consumption never depends on the backend — so for a
    fixed seed the burst schedule (interaction indices and count) is
    bit-identical on every engine, while the corruption matches in law.

    Attach to a *fresh* simulation (``metrics.interactions == 0``); the
    drivers below own the run loop, slicing ``run_batch`` exactly at
    burst boundaries (which keeps the counts backend's collision-free
    runs law-exact — a truncated run restarted from the current counts is
    the process's own Markov law).
    """

    def __init__(
        self,
        model: FaultModel,
        protocol: PopulationProtocol,
        *,
        n: int,
        rate: float,
        burst_size: int = 1,
        seed: int = 0,
    ):
        np = require_numpy()
        if rate <= 0:
            raise ValueError("fault rate must be positive")
        if burst_size < 1:
            raise ValueError("burst size must be at least one agent")
        model.require(protocol)
        self.model = model
        self.protocol = protocol
        self.n = n
        self.rate = rate
        self.burst_size = burst_size
        self.seed = seed
        self.mean_gap = n / rate
        self._schedule = np_stream(seed, _SCHEDULE_STREAM)
        self._corrupt = np_stream(seed, _CORRUPT_STREAM)
        self._next_burst = self._schedule.exponential(self.mean_gap)
        self.events: list[FaultEvent] = []

    # ------------------------------------------------------------------

    def _advance_to(self, sim, position: int, target: int) -> int:
        """Run ``sim`` from ``position`` to ``target`` interactions,
        firing every burst scheduled on the way (at the first interaction
        boundary at or after its continuous arrival time)."""
        while True:
            fire_at = math.ceil(self._next_burst)
            if fire_at > target:
                break
            if fire_at > position:
                sim.run_batch(fire_at - position)
                position = fire_at
            sim.apply_fault(self.model, self.burst_size, self._corrupt)
            self.events.append(FaultEvent(position, []))
            self._next_burst += self._schedule.exponential(self.mean_gap)
        if target > position:
            sim.run_batch(target - position)
        return target

    @property
    def fault_bursts(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Drivers (generic over the common engine surface)
    # ------------------------------------------------------------------

    def run_until(
        self,
        sim,
        predicate: ConfigPredicate,
        *,
        max_interactions: int,
        check_interval: int = 1,
    ) -> SimulationResult:
        """Run ``sim`` under continuous injection until the predicate holds.

        The backend-generic counterpart of every engine's ``run_until``:
        same check discipline (before the first step, then every
        ``check_interval`` interactions, via ``sim.predicate_holds`` so
        counts-aware predicates stay ``O(S)``), with bursts injected at
        their scheduled interaction boundaries in between.
        """
        if check_interval < 1:
            raise ValueError("check_interval must be positive")
        if sim.predicate_holds(predicate):
            return self._result(sim, converged=True)
        position = 0
        while position < max_interactions:
            position = self._advance_to(
                sim, position, min(position + check_interval, max_interactions)
            )
            if sim.predicate_holds(predicate):
                return self._result(sim, converged=True)
        return self._result(sim, converged=False)

    def measure_availability(
        self,
        sim,
        correct: ConfigPredicate,
        *,
        total_interactions: int,
        checkpoint_every: int,
    ) -> AvailabilityReport:
        """Run the availability workload: inject, checkpoint, report.

        Backend-generic twin of :func:`repro.sim.faults
        .measure_availability`: runs the full budget under injection,
        samples ``correct`` every ``checkpoint_every`` interactions, and
        reports the available fraction plus one repair-time sample per
        burst (measured to the first correct checkpoint after it).
        """
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be positive")
        accounting = AvailabilityAccounting()
        position = 0
        while position < total_interactions:
            position = self._advance_to(
                sim, position, min(position + checkpoint_every, total_interactions)
            )
            accounting.note_events(self.events)
            accounting.checkpoint(position, sim.predicate_holds(correct))
        return accounting.report(
            total_interactions=total_interactions, fault_bursts=len(self.events)
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _result(sim, converged: bool) -> SimulationResult:
        return SimulationResult(
            converged=converged,
            interactions=sim.metrics.interactions,
            parallel_time=sim.metrics.parallel_time,
            metrics=sim.metrics,
            config=sim.config,
        )


def make_fault_engine(
    model: str | FaultModel,
    protocol: PopulationProtocol,
    *,
    n: int,
    rate: float,
    burst_size: int = 1,
    seed: int = 0,
) -> FaultEngine:
    """Build a :class:`FaultEngine`, resolving a model name via the registry."""
    resolved = get_fault_model(model) if isinstance(model, str) else model
    return FaultEngine(
        resolved, protocol, n=n, rate=rate, burst_size=burst_size, seed=seed
    )


__all__ = [
    "DEFAULT_FAULT_MODEL",
    "FAULT_MODELS",
    "CrashReset",
    "FaultEngine",
    "FaultEngineError",
    "FaultModel",
    "FaultSpec",
    "KillLeaders",
    "PlantMinority",
    "ScrambleBurst",
    "fault_model_names",
    "get_fault_model",
    "initial_state_code",
    "leader_code_mask",
    "make_fault_engine",
    "register_fault_model",
]

"""Structured execution tracing for ``ElectLeader_r``.

Debugging a self-stabilizing protocol means reconstructing *why* the
population took a reset, which generation an error surfaced in, and when
roles flipped.  :class:`ProtocolTracer` is a simulation observer that
watches an ``ElectLeader`` population and emits typed events:

* ``role_change``       — an agent changed role (ranker→verifier, hard reset, …);
* ``generation_change`` — a verifier advanced its generation (soft reset
  or epidemic adoption);
* ``hard_reset`` / ``soft_reset`` — a ⊤ (or generation gap) was handled
  this interaction; sourced from the protocol's event counters, since the
  ⊤ state itself is transient within a single ``StableVerify`` call;
* ``rank_change``       — a verifier's frozen rank changed (only possible
  through a reset cycle).

Events carry the interaction index and the agents involved, are stored in
a bounded ring buffer, and can be rendered as a timeline.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Optional

from repro.core.elect_leader import ElectLeader
from repro.core.roles import Role
from repro.core.state import AgentState
from repro.sim.simulation import Simulation


@dataclass(frozen=True)
class TraceEvent:
    """One observed protocol event."""

    interaction: int
    kind: str
    agent: int
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"t={self.interaction:>8d}  {self.kind:<18s} agent {self.agent}: {self.detail}"


def _snapshot(state: AgentState) -> tuple:
    """The observable facets the tracer diffs between interactions."""
    role = state.role
    generation: Optional[int] = None
    if state.sv is not None:
        generation = state.sv.generation
    return (role, generation, state.rank if role is Role.VERIFYING else None)


class ProtocolTracer:
    """Simulation observer emitting role/generation/⊤/rank events.

    Install with ``sim.observers.append(tracer.observe)``.  Only the two
    interacting agents are diffed per step, so tracing is O(1) overhead.
    """

    def __init__(self, protocol: ElectLeader, capacity: int = 10_000):
        self.protocol = protocol
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self.counts: Counter[str] = Counter()
        self._snapshots: dict[int, tuple] = {}
        self._reset_counts = dict(protocol.events)

    def observe(self, sim: Simulation, i: int, j: int) -> None:
        t = sim.metrics.interactions
        # Reset events are transient inside StableVerify; read them off the
        # protocol's counters and attribute them to the interacting pair.
        for kind in ("hard_reset", "soft_reset"):
            now = self.protocol.events.get(kind, 0)
            delta = now - self._reset_counts.get(kind, 0)
            if delta > 0:
                self._emit(t, kind, i, f"×{delta} during interaction ({i}, {j})")
            self._reset_counts[kind] = now
        for index in (i, j):
            state = sim.config[index]
            now_snapshot = _snapshot(state)
            before = self._snapshots.get(index)
            self._snapshots[index] = now_snapshot
            if before is None or before == now_snapshot:
                continue
            self._diff(t, index, before, now_snapshot)

    def _diff(self, t: int, agent: int, before: tuple, now: tuple) -> None:
        role_before, gen_before, rank_before = before
        role_now, gen_now, rank_now = now
        if role_before is not role_now:
            self._emit(t, "role_change", agent, f"{role_before.value} → {role_now.value}")
        if gen_before is not None and gen_now is not None and gen_before != gen_now:
            self._emit(t, "generation_change", agent, f"{gen_before} → {gen_now}")
        if (
            rank_before is not None
            and rank_now is not None
            and rank_before != rank_now
        ):
            self._emit(t, "rank_change", agent, f"{rank_before} → {rank_now}")

    def _emit(self, t: int, kind: str, agent: int, detail: str) -> None:
        self.events.append(TraceEvent(t, kind, agent, detail))
        self.counts[kind] += 1

    # ------------------------------------------------------------------

    def timeline(self, last: int = 50) -> str:
        """The most recent events, one per line."""
        recent = list(self.events)[-last:]
        if not recent:
            return "(no events)"
        return "\n".join(str(event) for event in recent)

    def summary(self) -> dict[str, int]:
        return dict(self.counts)

"""The simulation engine.

:class:`Simulation` owns a configuration (a list of agent states), a
protocol, a scheduler and a metrics object, and advances the population
one uniformly random interaction at a time.  Convergence predicates are
evaluated every ``check_interval`` interactions (full-configuration
predicates such as ``ElectLeader.is_safe_configuration`` walk the whole
message system, so per-interaction evaluation would dominate runtime).

Determinism: a simulation is fully determined by ``(protocol, initial
configuration, seed)`` — the seed drives both the scheduler and the
transition-function sampling, through two independent derived streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from repro.core.protocol import PopulationProtocol
from repro.obs import STEP_PHASES, perf_counter
from repro.scheduler.rng import RNG, derive_seed, make_rng
from repro.scheduler.scheduler import RandomScheduler

# Legacy aliases: the canonical constants live in the backend registry
# (cycle-free import — backends only needs core.protocol at module level).
from repro.sim.backends import (  # noqa: F401
    BACKEND_ARRAY,
    BACKEND_ENV,
    BACKEND_OBJECT,
)
from repro.sim.metrics import Metrics

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.sim.initial_state import InitialState

#: A predicate over the full configuration.
ConfigPredicate = Callable[[Sequence[Any]], bool]
#: Observer invoked as ``observer(simulation, i, j)`` after each interaction.
Observer = Callable[["Simulation", int, int], None]


@dataclass
class SimulationResult:
    """Outcome of :meth:`Simulation.run_until` / :func:`run_until`."""

    converged: bool
    interactions: int
    parallel_time: float
    metrics: Metrics
    config: list[Any]

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.converged


class Simulation:
    """A single protocol execution under the uniform random scheduler.

    The configuration arguments are keyword-only: ``Simulation(p, cfg)``
    used to bind a stray int to ``config`` (and ``Simulation(p, cfg, 32,
    7)`` an ``n``-shaped int to ``seed``) silently; now both get the
    pointed :class:`TypeError` from :func:`~repro.sim.initial_state
    .reject_positional`.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        *misused: Any,
        config: Optional[list[Any]] = None,
        n: Optional[int] = None,
        seed: int = 0,
    ):
        from repro.sim.initial_state import reject_positional

        reject_positional("Simulation", misused, ("config", "n", "seed"))
        if config is None:
            if n is None:
                raise ValueError("provide either an initial config or a population size n")
            config = protocol.clean_configuration(n)
        self.protocol = protocol
        self.config = config
        self.n = len(config)
        if self.n < 2:
            raise ValueError("population must have at least two agents")
        self.seed = seed
        self._scheduler_rng: RNG = make_rng(derive_seed(seed, 0))
        self.transition_rng: RNG = make_rng(derive_seed(seed, 1))
        self.scheduler = RandomScheduler(self.n, self._scheduler_rng)
        self.metrics = Metrics(n=self.n)
        self.observers: list[Observer] = []
        self._timings: Optional[dict[str, float]] = None

    # ------------------------------------------------------------------

    def step(self) -> tuple[int, int]:
        """Run one interaction; returns the interacting pair."""
        i, j = self.scheduler.next_pair()
        self.protocol.transition(self.config[i], self.config[j], self.transition_rng)
        self.metrics.interactions += 1
        for observer in self.observers:
            observer(self, i, j)
        return i, j

    def run(self, interactions: int) -> None:
        """Run a fixed number of interactions."""
        self.run_batch(interactions)

    def run_batch(self, count: int) -> None:
        """Run ``count`` interactions through the batched fast path.

        Scheduler pairs stream through the lazy :meth:`RandomScheduler
        .pairs` iterator — each pair is drawn, unpacked, and freed in turn
        (never a list of ``count`` tuples) — and transitions run in a
        tight loop that touches only locals; the interaction counter is
        bumped once per batch.  Because observers may read
        ``metrics.interactions`` (or mutate the configuration) mid-run,
        any registered observer routes the batch through the per-step path
        instead — either way the RNG streams are consumed identically, so
        ``run_batch(k)`` is bit-identical to ``k`` calls of :meth:`step`.
        """
        if count < 0:
            raise ValueError(f"interaction count must be non-negative, got {count}")
        if self.observers:
            for _ in range(count):
                self.step()
            return
        config = self.config
        transition = self.protocol.transition
        rng = self.transition_rng
        timings = self._timings
        if timings is not None:
            # Instrumented twin of the fast path: the pair draws are
            # materialized first so draw and apply time separate cleanly.
            # The scheduler and transition streams are independent, so
            # batching the draws consumes both streams in the same order
            # — instrumented runs stay bit-identical (tests pin this).
            start = perf_counter()
            pairs = list(self.scheduler.pairs(count))
            drawn = perf_counter()
            timings["draw"] += drawn - start
            for i, j in pairs:
                transition(config[i], config[j], rng)
            timings["apply"] += perf_counter() - drawn
            self.metrics.interactions += count
            return
        for i, j in self.scheduler.pairs(count):
            transition(config[i], config[j], rng)
        self.metrics.interactions += count

    def run_until(
        self,
        predicate: ConfigPredicate,
        max_interactions: int,
        check_interval: int = 1,
    ) -> SimulationResult:
        """Run until ``predicate(config)`` holds or the budget is exhausted.

        The predicate is evaluated before the first step (an adversarial
        start may already satisfy it) and then every ``check_interval``
        interactions.
        """
        if check_interval < 1:
            raise ValueError("check_interval must be positive")
        if self.predicate_holds(predicate):
            return self._result(converged=True)
        remaining = max_interactions
        while remaining > 0:
            burst = min(check_interval, remaining)
            self.run_batch(burst)
            remaining -= burst
            if self.predicate_holds(predicate):
                return self._result(converged=True)
        return self._result(converged=False)

    def predicate_holds(self, predicate: ConfigPredicate) -> bool:
        """Evaluate a convergence/correctness predicate on the current state.

        Part of the common engine surface (see :mod:`repro.sim.backends`):
        each backend evaluates predicates in its cheapest native form —
        here, simply on the configuration list.
        """
        timings = self._timings
        if timings is None:
            return bool(predicate(self.config))
        start = perf_counter()
        held = bool(predicate(self.config))
        timings["retire"] += perf_counter() - start
        return held

    def instrument_steps(self) -> dict[str, float]:
        """Switch on per-phase wall-clock accounting (common engine surface).

        Returns the live accumulator mapping :data:`repro.obs.STEP_PHASES`
        to seconds: ``draw`` (scheduler pair generation), ``apply``
        (transition dispatch), ``retire`` (predicate checks); ``match``
        stays zero — the object engine has no separate pairing phase.
        Instrumentation only reads the monotonic clock; the RNG streams
        are consumed identically, so results never change.
        """
        if self._timings is None:
            self._timings = {phase: 0.0 for phase in STEP_PHASES}
        return self._timings

    @property
    def step_timings(self) -> Optional[dict[str, float]]:
        """The accumulator from :meth:`instrument_steps` (``None`` when off)."""
        return self._timings

    def apply_fault(self, model, burst_size: int, generator) -> None:
        """Inject one fault burst (common engine surface).

        ``model`` is a :class:`repro.sim.fault_engine.FaultModel`; on this
        backend its per-agent object applier corrupts the configuration
        list in place, drawing victims and replacements from ``generator``.
        """
        model.apply_config(self.protocol, self.config, burst_size, generator)

    def _result(self, converged: bool) -> SimulationResult:
        return SimulationResult(
            converged=converged,
            interactions=self.metrics.interactions,
            parallel_time=self.metrics.parallel_time,
            metrics=self.metrics,
            config=self.config,
        )


def resolve_backend(backend: Optional[str] = None, *misused: Any) -> str:
    """Normalize a backend request (see :func:`repro.sim.backends.resolve_backend`)."""
    from repro.sim import backends

    return backends.resolve_backend(backend, *misused)


def make_simulation(
    protocol: PopulationProtocol,
    *misused: Any,
    init: Optional["InitialState"] = None,
    n: Optional[int] = None,
    seed: int = 0,
    backend: Optional[str] = None,
    **removed: Any,
) -> Any:
    """Build a simulation on the requested execution backend.

    Thin delegate of :func:`repro.sim.backends.make_simulation`: the
    engine is looked up in the backend registry and its factory builds
    the simulation from the :class:`~repro.sim.initial_state
    .InitialState` ``init`` (or a clean ``n``-agent start).  Every engine
    exposes the canonical surface
    (:data:`repro.sim.backends.ENGINE_SURFACE`).  The removed
    ``config=``/``codes=``/``counts=`` triple raises a pointed
    :class:`TypeError`.
    """
    from repro.sim import backends

    return backends.make_simulation(
        protocol, *misused, init=init, n=n, seed=seed, backend=backend, **removed
    )


def run_until(
    protocol: PopulationProtocol,
    predicate: ConfigPredicate,
    *misused: Any,
    init: Optional["InitialState"] = None,
    n: Optional[int] = None,
    seed: int = 0,
    max_interactions: int,
    check_interval: int = 1,
    backend: Optional[str] = None,
    **removed: Any,
) -> SimulationResult:
    """One-shot convenience wrapper around :func:`make_simulation`."""
    from repro.sim.initial_state import reject_positional

    reject_positional(
        "run_until", misused, ("init", "n", "seed", "max_interactions")
    )
    sim = make_simulation(
        protocol, init=init, n=n, seed=seed, backend=backend, **removed
    )
    return sim.run_until(predicate, max_interactions, check_interval)


def __getattr__(name: str):
    # Legacy alias: the static BACKENDS tuple became the live registry.
    if name == "BACKENDS":
        from repro.sim import backends

        return backends.backend_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

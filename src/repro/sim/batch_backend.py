"""Trial-vectorized counts engine — T whole trials as one ``(T, S)`` matrix.

The counts backend made one trial cheap: ``O(S)`` state, ``Θ(√n)``
interactions per numpy call.  But a sweep cell runs *hundreds* of such
trials, and at ``S ≪ n`` each trial's per-step cost is dominated by
Python-level dispatch — a dozen tiny numpy calls per collision-free run —
multiplied by ``T`` engine instances.  This module batches the trials
themselves: the whole cell is one ``(T, S)`` ``int64`` counts matrix, and
every lockstep step serves *all* live trials with a fixed number of numpy
calls — one run-length block draw
(:meth:`repro.scheduler.scheduler.CollisionRunSampler.next_run_lengths`),
one row-wise multivariate-hypergeometric draw (a conditional
hypergeometric chain over the ``S`` codes, vectorized across rows), and
the whole run applied by *pair-type counts* (the same chain sampling the
uniform pairing's exact law) — ``O(S²)`` work per step regardless of the
run length, with a segmented-shuffle fallback for wide-``S`` protocols
(see :meth:`BatchCountsEngine._step_rows`).  The
live set shrinks monotonically: trials retire as they converge, go
silent, or exhaust their budget, so stragglers never pay for finished
neighbours.

**Law.**  Per row, every draw has exactly the per-trial engine's law:
run lengths follow the same birthday-problem survival curve, the ``2k``
agents' states are a multivariate hypergeometric sample (drawn via the
chain rule — numpy's own ``marginals`` method of the same
distribution), the pairing is a uniform shuffle, and the colliding
``(L+1)``-th interaction uses the identical used/unused category weights
``U(U-1) : U·A : A·U``.  Rows share one PCG64 stream (seeded
``derive_seed(seed, 0)`` like a single counts engine), with each row
consuming disjoint i.i.d. draws — rows are therefore mutually
independent and each is *distribution*-identical to a per-trial counts
run, though not bit-identical for ``T > 1`` (the stream interleaving
differs).  At ``T = 1`` the engine simply *is* a
:class:`~repro.sim.counts_backend.CountsSimulation` (constructed with
the same seed), so single-trial batches are bit-for-bit the per-trial
engine — the anchor the test suite pins.

**Faults.**  Each row may carry a :class:`~repro.sim.fault_engine
.FaultSpec`; the lockstep loop is sliced at every row's burst
boundaries, with the row dropping out of the stepping set, firing its
burst from its own schedule/corruption streams (the same derived-seed
tags a :class:`~repro.sim.fault_engine.FaultEngine` uses), and
re-entering.  Burst *positions* are a pure function of the schedule
stream, so a row's burst schedule is bit-identical to a per-trial
``FaultEngine`` under the same ``FaultSpec`` — the cross-engine gate E22
enforces.  Bursts never land on retired rows: a converged row's
per-trial twin stops running at its passing check, so later bursts are
never fired there either.

Construction goes through the backend registry
(``make_simulation(backend="batch")``) with a
:class:`~repro.sim.initial_state.Replicated` initial state describing
the batch; :func:`run_trial_batch` is the ``Backend.trial_runner`` hook
that lets :func:`repro.sim.trials.run_trials` hand a whole spec list to
one engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.core.protocol import PopulationProtocol
from repro.obs import STEP_PHASES as _STEP_PHASES
from repro.obs import perf_counter
from repro.scheduler.rng import np_stream
from repro.scheduler.scheduler import CollisionRunSampler
from repro.sim.array_backend import require_numpy, transition_table_for
from repro.sim.counts_backend import (
    MAX_SILENCE_STATES,
    CountsBackendError,
    CountsSimulation,
    configuration_from_counts,
    counts_are_silent,
)
from repro.sim.fault_engine import (
    _CORRUPT_STREAM,
    _SCHEDULE_STREAM,
    FaultSpec,
    get_fault_model,
)
from repro.sim.faults import AvailabilityAccounting, AvailabilityReport, FaultEvent
from repro.sim.initial_state import Clean, InitialState, Replicated
from repro.sim.simulation import ConfigPredicate


@dataclass(frozen=True)
class RowOutcome:
    """One batch row's result — the light per-trial record of the drivers."""

    row: int
    converged: bool
    interactions: int
    parallel_time: float


class _RowFaultState:
    """One row's materialized :class:`FaultSpec` — streams, clock, events.

    The per-row twin of a :class:`~repro.sim.fault_engine.FaultEngine`'s
    mutable state: the schedule stream is seeded and consumed exactly as
    the engine's (one exponential at construction, one per fired burst),
    so the burst positions recorded in ``events`` are bit-identical to
    the per-trial engine's under the same spec.
    """

    __slots__ = (
        "model", "burst_size", "mean_gap", "schedule", "corrupt",
        "next_burst", "events",
    )

    def __init__(self, spec: FaultSpec, protocol: PopulationProtocol, n: int):
        np = require_numpy()
        if spec.rate <= 0:
            raise ValueError("fault rate must be positive")
        if spec.burst_size < 1:
            raise ValueError("burst size must be at least one agent")
        model = get_fault_model(spec.model) if isinstance(spec.model, str) else spec.model
        model.require(protocol)
        self.model = model
        self.burst_size = spec.burst_size
        self.mean_gap = n / spec.rate
        self.schedule = np_stream(spec.seed, _SCHEDULE_STREAM)
        self.corrupt = np_stream(spec.seed, _CORRUPT_STREAM)
        self.next_burst = self.schedule.exponential(self.mean_gap)
        self.events: list[FaultEvent] = []


class BatchCountsEngine:
    """``T`` trials as one ``(T, S)`` counts matrix in lockstep.

    ``init`` is a :class:`~repro.sim.initial_state.Replicated` batch (one
    shared spec or one :class:`InitialState` per row); any non-batch
    ``init`` — or a plain ``n`` — is a batch of one.  Every row must
    describe the same population size (the collision-run law and the
    fault clock are per-``n``).

    The engine is driven through :meth:`run_rows_until` (the batched
    ``run_until``) or :meth:`measure_rows_availability` (the batched
    availability workload); both accept an optional per-row
    :class:`~repro.sim.fault_engine.FaultSpec` list.  Drive an engine
    **once** — like every engine here it is a consumed object, not a
    reusable runner.

    At ``T = 1`` the engine wraps a single
    :class:`~repro.sim.counts_backend.CountsSimulation` (same seed, same
    streams) and also exposes the common per-trial engine surface
    (``run`` / ``run_batch`` / ``run_until`` / ``predicate_holds`` /
    ``apply_fault`` / ``metrics`` / ``config``) by delegation — so
    ``make_simulation(backend="batch")`` without a ``Replicated`` start
    behaves bit-for-bit like the counts engine.  For ``T > 1`` those
    per-trial methods raise: a batch has rows, not a single trajectory.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        *,
        init: Optional[InitialState] = None,
        n: Optional[int] = None,
        seed: int = 0,
    ):
        np = require_numpy()
        size = protocol.num_states()
        if size is None:
            raise CountsBackendError(
                f"protocol '{protocol.name}' has no finite state encoding "
                "(num_states() is None), so it cannot run on the batch "
                "backend; use backend='object'"
            )
        self.protocol = protocol
        self.num_states = size
        self.seed = seed
        self._np = np
        self._single: Optional[CountsSimulation] = None
        self._matrix = None
        self._driven = False
        self._row_events: list[list[FaultEvent]] = []
        self._timings: Optional[dict[str, float]] = None

        if isinstance(init, Replicated):
            rows = [init.row(index) for index in range(init.trials)]
        else:
            rows = [init]
        self.trials = len(rows)

        if self.trials == 1:
            row = rows[0]
            counts = row.to_counts(protocol) if row is not None else None
            self._single = CountsSimulation(
                protocol, counts=counts, n=n, seed=seed
            )
            self.table = self._single.table
            self.n = self._single.n
            return

        vectors = []
        for index, row in enumerate(rows):
            vector = np.asarray(row.to_counts(protocol), dtype=np.int64).copy()
            if vector.shape != (size,):
                raise CountsBackendError(
                    f"batch row {index}: counts must have shape ({size},), "
                    f"got {vector.shape}"
                )
            if vector.size and vector.min() < 0:
                raise CountsBackendError(f"batch row {index}: counts must be non-negative")
            vectors.append(vector)
        sums = {int(vector.sum()) for vector in vectors}
        if len(sums) != 1:
            raise ValueError(
                f"every batch row must describe the same population size, "
                f"got row sums {sorted(sums)}"
            )
        self.n = sums.pop()
        if n is not None and n != self.n:
            raise ValueError(
                f"n={n} disagrees with the batch rows' population size {self.n}"
            )
        if self.n < 2:
            raise ValueError("population must have at least two agents")
        self.table = transition_table_for(protocol)
        self._matrix = np.stack(vectors)
        self._codes = np.arange(size, dtype=np.int64)
        self._generator = np_stream(seed, 0)
        self._runs = CollisionRunSampler(self.n, self._generator)
        # Per-ordered-pair aggregate delta: row ``i*S + j`` is the counts
        # change of one ``(i, j)`` interaction.  With it, a whole run is
        # applied as ``pair-type counts @ delta`` — no per-agent arrays.
        u_flat, v_flat = self.table.flat
        pairs = np.arange(size * size, dtype=np.int64)
        delta = np.zeros((size * size, size), dtype=np.int64)
        np.add.at(delta, (pairs, u_flat), 1)
        np.add.at(delta, (pairs, v_flat), 1)
        np.subtract.at(delta, (pairs, pairs // size), 1)
        np.subtract.at(delta, (pairs, pairs % size), 1)
        self._pair_delta = delta
        # Pair runs by type counts (S² hypergeometric chain) when that
        # beats materializing the Θ(√n)-length agent multiset; both paths
        # sample the identical law (see _step_rows).
        self._matching = size * (size - 1) <= math.isqrt(self.n)
        # (S, S) mask of pairs the protocol's δ actually changes, for the
        # row-vectorized silence check (None above the O(S²) memory bar).
        if size <= MAX_SILENCE_STATES:
            self._effectful = (
                (self.table.u_out != self._codes[:, None])
                | (self.table.v_out != self._codes[None, :])
            )
        else:
            self._effectful = None

    # ------------------------------------------------------------------
    # Shared views
    # ------------------------------------------------------------------

    @property
    def counts(self):
        """The batch as a ``(T, S)`` matrix (a live view, not a copy)."""
        if self._single is not None:
            return self._single.counts.reshape(1, -1)
        return self._matrix

    def fault_events(self, row: int = 0) -> list[FaultEvent]:
        """Row ``row``'s fired bursts from the last driven workload."""
        if not self._row_events:
            raise RuntimeError("no batch workload has been driven yet")
        return self._row_events[row]

    # ------------------------------------------------------------------
    # Per-step wall-clock instrumentation (benchmark breakdowns)
    # ------------------------------------------------------------------

    #: Indirection point so subclasses and tests share one clock (the
    #: blessed :data:`repro.obs.perf_counter`).
    _perf_counter = staticmethod(perf_counter)

    #: The accounted phases, in hot-loop order (the canonical tuple lives
    #: in :data:`repro.obs.STEP_PHASES`; re-exported here for engines).
    STEP_PHASES: tuple[str, ...] = _STEP_PHASES

    def instrument_steps(self) -> dict[str, float]:
        """Switch on per-phase wall-clock accounting for this engine.

        Returns the live accumulator mapping each of :data:`STEP_PHASES`
        — ``draw`` (run lengths + composition sampling), ``match``
        (pairing), ``apply`` (delta application + collisions), ``retire``
        (convergence/silence checks) — to seconds spent so far.
        Instrumentation never changes the draws: the numpy stepper only
        reads the clock around its existing sections, and the jitted
        engine switches to phase-split kernels that consume identical
        per-row streams.  Call before driving; the benchmarks (E22/E24)
        use this to print attributable breakdowns next to the gate.
        """
        if self._single is not None:
            # T=1 delegates the whole drive to its CountsSimulation, so
            # the live accumulator must be that engine's.
            self._timings = self._single.instrument_steps()
            return self._timings
        if self._timings is None:
            self._timings = {phase: 0.0 for phase in self.STEP_PHASES}
        return self._timings

    @property
    def step_timings(self) -> Optional[dict[str, float]]:
        """The accumulator from :meth:`instrument_steps` (``None`` when off)."""
        return self._timings

    # ------------------------------------------------------------------
    # T=1: the common per-trial engine surface, by delegation
    # ------------------------------------------------------------------

    def _single_sim(self) -> CountsSimulation:
        if self._single is None:
            raise ValueError(
                f"this BatchCountsEngine holds a batch of {self.trials} "
                "trials and has no single-trial surface; use "
                "run_rows_until()/measure_rows_availability()"
            )
        return self._single

    @property
    def config(self) -> list[Any]:
        return self._single_sim().config

    @property
    def metrics(self):
        return self._single_sim().metrics

    def run(self, interactions: int) -> None:
        self._single_sim().run(interactions)

    def run_batch(self, count: int) -> None:
        self._single_sim().run_batch(count)

    def run_until(self, predicate, max_interactions, check_interval=1):
        return self._single_sim().run_until(predicate, max_interactions, check_interval)

    def predicate_holds(self, predicate) -> bool:
        return self._single_sim().predicate_holds(predicate)

    def apply_fault(self, model, burst_size: int, generator) -> None:
        self._single_sim().apply_fault(model, burst_size, generator)

    def configuration_is_silent(self) -> bool:
        return self._single_sim().configuration_is_silent()

    # ------------------------------------------------------------------
    # Batch drivers
    # ------------------------------------------------------------------

    def run_rows_until(
        self,
        predicate: ConfigPredicate,
        *,
        max_interactions: int,
        check_interval: int = 1,
        faults: Optional[Sequence[Optional[FaultSpec]]] = None,
    ) -> list[RowOutcome]:
        """Batched ``run_until``: every row to convergence or budget.

        Same check discipline as every engine — the predicate is
        evaluated per row before the first step and then every
        ``check_interval`` interactions; a converged row retires with its
        interaction count (a check boundary), a row that exhausts the
        budget reports ``max_interactions`` unconverged.  A row that goes
        *silent* without faults can never converge, so it retires
        unconverged immediately (same outcome the per-trial engine
        reports after idling out its budget).  ``faults`` gives each row
        an optional :class:`FaultSpec`, sliced into the lockstep loop at
        that row's burst boundaries.
        """
        if check_interval < 1:
            raise ValueError("check_interval must be positive")
        specs = self._normalize_faults(faults)
        self._claim_drive()
        if self._single is not None:
            return [self._drive_single_until(
                predicate, max_interactions, check_interval, specs[0]
            )]

        states = [self._make_fault_state(spec) for spec in specs]
        self._row_events = [state.events if state else [] for state in states]
        outcomes: list[Optional[RowOutcome]] = [None] * self.trials
        timings = self._timings
        live = list(range(self.trials))
        position = 0
        checked = self._perf_counter() if timings is not None else 0.0
        live = self._retire_converged(live, outcomes, predicate, position)
        live = self._retire_silent(live, outcomes, states, max_interactions)
        if timings is not None:
            timings["retire"] += self._perf_counter() - checked
        while live and position < max_interactions:
            target = min(position + check_interval, max_interactions)
            self._advance_rows(live, position, target, states)
            position = target
            checked = self._perf_counter() if timings is not None else 0.0
            live = self._retire_converged(live, outcomes, predicate, position)
            if position < max_interactions:
                live = self._retire_silent(live, outcomes, states, max_interactions)
            if timings is not None:
                timings["retire"] += self._perf_counter() - checked
        for row in live:
            outcomes[row] = RowOutcome(
                row, False, max_interactions, max_interactions / self.n
            )
        return outcomes  # type: ignore[return-value]

    def measure_rows_availability(
        self,
        correct: ConfigPredicate,
        *,
        total_interactions: int,
        checkpoint_every: int,
        faults: Optional[Sequence[Optional[FaultSpec]]] = None,
    ) -> list[AvailabilityReport]:
        """Batched availability workload: inject, checkpoint, report per row.

        Every row runs the full budget (availability has no early exit);
        rows that go silent with no faults pending stop *sampling* — their
        counts are provably frozen — but keep checkpointing, exactly like
        the per-trial engine's silence skip.
        """
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be positive")
        specs = self._normalize_faults(faults)
        self._claim_drive()
        if self._single is not None:
            return [self._drive_single_availability(
                correct, total_interactions, checkpoint_every, specs[0]
            )]

        states = [self._make_fault_state(spec) for spec in specs]
        self._row_events = [state.events if state else [] for state in states]
        accounting = [AvailabilityAccounting() for _ in range(self.trials)]
        frozen: set[int] = set()
        position = 0
        while position < total_interactions:
            target = min(position + checkpoint_every, total_interactions)
            active = [row for row in range(self.trials) if row not in frozen]
            self._advance_rows(active, position, target, states)
            position = target
            for row in range(self.trials):
                state = states[row]
                if state is not None:
                    accounting[row].note_events(state.events)
                accounting[row].checkpoint(position, self._row_predicate(correct, row))
                if row not in frozen and state is None and self._row_silent(row):
                    frozen.add(row)
        return [
            accounting[row].report(
                total_interactions=total_interactions,
                fault_bursts=len(states[row].events) if states[row] else 0,
            )
            for row in range(self.trials)
        ]

    # ------------------------------------------------------------------
    # T=1 delegation drivers (bit-identical to the per-trial engines)
    # ------------------------------------------------------------------

    def _drive_single_until(self, predicate, max_interactions, check_interval, spec):
        sim = self._single_sim()
        if spec is None:
            self._row_events = [[]]
            result = sim.run_until(predicate, max_interactions, check_interval)
        else:
            engine = spec.make_engine(self.protocol, n=self.n)
            result = engine.run_until(
                sim, predicate,
                max_interactions=max_interactions, check_interval=check_interval,
            )
            self._row_events = [engine.events]
        return RowOutcome(0, result.converged, result.interactions, result.parallel_time)

    def _drive_single_availability(self, correct, total_interactions, checkpoint_every, spec):
        sim = self._single_sim()
        if spec is None:
            # Fault-free availability: checkpoint the plain run (the
            # engine's own silence skip already freezes idle stretches).
            accounting = AvailabilityAccounting()
            position = 0
            while position < total_interactions:
                target = min(position + checkpoint_every, total_interactions)
                sim.run_batch(target - position)
                position = target
                accounting.checkpoint(position, sim.predicate_holds(correct))
            self._row_events = [[]]
            return accounting.report(
                total_interactions=total_interactions, fault_bursts=0
            )
        engine = spec.make_engine(self.protocol, n=self.n)
        report = engine.measure_availability(
            sim, correct,
            total_interactions=total_interactions, checkpoint_every=checkpoint_every,
        )
        self._row_events = [engine.events]
        return report

    # ------------------------------------------------------------------
    # Retirement and per-row checks
    # ------------------------------------------------------------------

    def _row_predicate(self, predicate, row: int) -> bool:
        on_counts = getattr(predicate, "on_counts", None)
        if on_counts is not None:
            return bool(on_counts(self.counts[row]))
        return bool(predicate(configuration_from_counts(self.protocol, self.counts[row])))

    def _row_silent(self, row: int) -> bool:
        return counts_are_silent(self.table, self.counts[row])

    def _retire_converged(self, live, outcomes, predicate, position):
        if not live:
            return []
        held = self._rows_predicate(predicate, live)
        survivors = []
        for row, holds in zip(live, held):
            if holds:
                outcomes[row] = RowOutcome(row, True, position, position / self.n)
            else:
                survivors.append(row)
        return survivors

    def _rows_predicate(self, predicate, rows) -> list[bool]:
        """``predicate`` over every row of ``rows`` — one array op when
        the predicate carries a row-vectorized counts form.

        Predicates built by :func:`~repro.sim.counts_backend
        .goal_counts_predicate` expose ``on_counts_rows`` (backed by
        :meth:`~repro.core.protocol.PopulationProtocol.goal_counts_rows`),
        so the whole live set is answered by one ``(R, S)`` expression
        instead of a Python loop over ``T`` — the convergence-check half
        of the batch engines' hot path.  Plain predicates fall back to
        the per-row check.
        """
        on_rows = getattr(predicate, "on_counts_rows", None)
        if on_rows is not None and self._matrix is not None:
            np = self._np
            sub = self._matrix[np.asarray(rows, dtype=np.int64)]
            return [bool(holds) for holds in np.asarray(on_rows(sub)).reshape(-1)]
        return [self._row_predicate(predicate, row) for row in rows]

    def _silent_rows(self, rows):
        """Per-row :func:`counts_are_silent`, vectorized over ``rows``.

        One ``(R, S, S)`` mask against the precomputed effectful-pair
        table — same verdicts as the per-row scan, including the
        diagonal's two-agent requirement.  Falls back to the per-row
        check when ``S`` is past the O(S²)-memory bar.
        """
        np = self._np
        if self._effectful is None:
            return [self._row_silent(row) for row in rows]
        sub = self._matrix[np.asarray(rows, dtype=np.int64)]
        occupied = sub > 0
        changes = occupied[:, :, None] & occupied[:, None, :] & self._effectful
        diagonal = np.arange(self.num_states)
        changes[:, diagonal, diagonal] &= sub > 1
        return ~changes.any(axis=(1, 2))

    def _retire_silent(self, live, outcomes, states, max_interactions):
        # A silent row with no fault stream is frozen forever: its
        # predicate stays False at every future check, so the per-trial
        # engine would idle to the budget and report exactly this.
        # Rows with faults stay live — a burst can corrupt them awake.
        candidates = [row for row in live if states[row] is None]
        if not candidates:
            return list(live)
        silent = dict(zip(candidates, self._silent_rows(candidates)))
        survivors = []
        for row in live:
            if silent.get(row, False):
                outcomes[row] = RowOutcome(
                    row, False, max_interactions, max_interactions / self.n
                )
            else:
                survivors.append(row)
        return survivors

    def _normalize_faults(self, faults) -> list[Optional[FaultSpec]]:
        if faults is None:
            return [None] * self.trials
        specs = list(faults)
        if len(specs) != self.trials:
            raise ValueError(
                f"faults must give one Optional[FaultSpec] per row: "
                f"expected {self.trials}, got {len(specs)}"
            )
        for spec in specs:
            if spec is not None and not isinstance(spec, FaultSpec):
                raise TypeError(f"faults entries must be FaultSpec or None, got {type(spec).__name__}")
        return specs

    def _make_fault_state(self, spec) -> Optional[_RowFaultState]:
        if spec is None:
            return None
        return _RowFaultState(spec, self.protocol, self.n)

    def _claim_drive(self) -> None:
        if self._driven:
            raise RuntimeError(
                "this BatchCountsEngine has already been driven; build a "
                "fresh engine per workload"
            )
        self._driven = True

    # ------------------------------------------------------------------
    # The lockstep advance (burst slicing + the vectorized stepper)
    # ------------------------------------------------------------------

    def _advance_rows(self, rows, position, target, states) -> None:
        """Advance every row in ``rows`` from ``position`` to ``target``,
        firing each row's scheduled bursts at their interaction boundaries
        (the batched twin of :meth:`FaultEngine._advance_to`)."""
        pos = {row: position for row in rows}
        while True:
            stepping: list[int] = []
            amounts: list[int] = []
            all_done = True
            for row in rows:
                state = states[row]
                if state is not None:
                    # Fire every burst due at (or before) this row's
                    # current boundary — several can ceil to one position.
                    while math.ceil(state.next_burst) <= pos[row]:
                        self._fire_burst(row, state, pos[row])
                if pos[row] >= target:
                    continue
                all_done = False
                stop = target
                if state is not None:
                    fire_at = math.ceil(state.next_burst)
                    if fire_at < stop:
                        stop = fire_at
                stepping.append(row)
                amounts.append(stop - pos[row])
                pos[row] = stop
            if all_done:
                return
            self._step_rows(stepping, amounts)

    def _fire_burst(self, row, state, position) -> None:
        state.model.apply_counts(
            self.protocol, self.counts[row], state.burst_size, state.corrupt
        )
        state.events.append(FaultEvent(position, []))
        state.next_burst += state.schedule.exponential(state.mean_gap)

    def _step_rows(self, rows, amounts) -> None:
        """Run ``amounts[i]`` interactions on each row of ``rows``, in
        lockstep collision-free runs; rows leave the stepping set as
        their budget empties (the straggler-retirement hot loop).

        Per iteration, for the R still-stepping rows: one run-length
        block draw, one row-wise hypergeometric sample of the ``2k``
        agents' states, the uniform pairing of those agents, one
        aggregate delta — and a vectorized collision interaction for
        every row whose run completed inside its budget.

        The pairing has two law-identical implementations.  A uniform
        shuffle of the ``2k``-agent multiset decomposes exactly: the
        initiator (odd-position) states are a size-``k`` multivariate
        hypergeometric subsample of the drawn composition, and the
        initiator→responder assignment is a uniform matching, whose
        pair-type counts follow the multivariate Fisher hypergeometric —
        both samplable by the same conditional chain that already draws
        the composition.  That *matching* path costs ``O(S²)`` generator
        calls per step, independent of the run length, so it is used
        whenever ``S(S-1) ≤ √n``; wide-``S`` protocols keep the explicit
        multiset materialization + segmented-shuffle path (``O(R·√n)``
        elements but only a dozen numpy calls).
        """
        np = self._np
        rng = self._generator
        size = self.num_states
        counts = self._matrix
        u_flat, v_flat = self.table.flat
        timings = self._timings
        perf = self._perf_counter
        idx = np.asarray(rows, dtype=np.int64)
        remaining = np.asarray(amounts, dtype=np.int64)
        while idx.size:
            start = perf() if timings is not None else 0.0
            lengths = self._runs.next_run_lengths(int(idx.size))
            k = np.minimum(lengths, remaining)
            collide = (remaining > k) & (k == lengths)
            two_k = 2 * k
            sub = counts[idx]  # (R, S) snapshot of the pre-run counts
            sample = self._sample_rows(sub, two_k)
            live = int(idx.size)
            if timings is not None:
                drawn = perf()
                timings["draw"] += drawn - start
            if self._matching:
                # Run applied by pair-type counts: no per-agent arrays.
                initiators = self._sample_rows(sample, k)
                matched = self._match_rows(initiators, sample - initiators)
                if timings is not None:
                    paired = perf()
                    timings["match"] += paired - drawn
                counts[idx] += matched.reshape(live, size * size) @ self._pair_delta
            else:
                # Pair the drawn states with one segmented shuffle: random
                # keys offset by the local row index sort row-major with a
                # uniform order inside each row; segments have even length,
                # so the global even/odd split never pairs across rows.
                flat_codes = np.repeat(np.tile(self._codes, live), sample.reshape(-1))
                row_local = np.repeat(np.arange(live, dtype=np.int64), two_k)
                order = np.argsort(row_local + rng.random(flat_codes.size))
                shuffled = flat_codes[order]
                initiators = shuffled[0::2]
                responders = shuffled[1::2]
                pair_rows = np.repeat(np.arange(live, dtype=np.int64), k)
                pair_index = initiators * size + responders
                if timings is not None:
                    paired = perf()
                    timings["match"] += paired - drawn
                outputs = np.concatenate(
                    (u_flat.take(pair_index), v_flat.take(pair_index))
                )
                out_rows = np.concatenate((pair_rows, pair_rows))
                delta = np.bincount(out_rows * size + outputs, minlength=live * size)
                delta -= np.bincount(row_local * size + flat_codes, minlength=live * size)
                counts[idx] += delta.reshape(live, size)
            remaining = remaining - k
            if collide.any():
                self._collision_rows(idx[collide], sub[collide] - sample[collide])
                remaining[collide] -= 1
            if timings is not None:
                timings["apply"] += perf() - paired
            keep = remaining > 0
            if not keep.all():
                idx = idx[keep]
                remaining = remaining[keep]

    def _match_rows(self, initiators, responders):
        """Row-wise pair-type counts of a uniform initiator→responder
        matching: ``[r, i, j]`` counts run pairs with initiator code
        ``i`` and responder code ``j``.

        Uniformity makes the responders matched to each initiator code a
        multivariate hypergeometric subsample of the responders not yet
        matched, so the chain over initiator codes (each step one
        :meth:`_sample_rows` call) samples the exact joint law; the last
        code takes whatever remains.
        """
        np = self._np
        size = self.num_states
        matched = np.zeros((initiators.shape[0], size, size), dtype=np.int64)
        remaining = responders.copy()
        for code in range(size - 1):
            taken = self._sample_rows(remaining, initiators[:, code])
            matched[:, code, :] = taken
            remaining -= taken
        matched[:, size - 1, :] = remaining
        return matched

    def _sample_rows(self, sub, nsample):
        """Row-wise multivariate hypergeometric: the states of ``nsample``
        distinct agents drawn from each row of ``sub``.

        The conditional chain over codes (numpy's own ``marginals``
        decomposition): code by code, a vectorized-over-rows scalar
        hypergeometric of the remaining draw against the remaining
        population.  ``S - 1`` generator calls serve the whole batch.
        """
        np = self._np
        rng = self._generator
        out = np.zeros_like(sub)
        population_rest = sub.sum(axis=1)
        draw_rest = nsample.astype(np.int64)
        for code in range(self.num_states - 1):
            good = sub[:, code]
            population_rest = population_rest - good
            # hypergeometric needs a non-empty urn; an exhausted row has
            # draw_rest == 0, so a phantom bad ball never gets drawn.
            bad = np.where(good + population_rest > 0, population_rest, 1)
            taken = rng.hypergeometric(good, bad, draw_rest)
            out[:, code] = taken
            draw_rest = draw_rest - taken
        out[:, -1] = draw_rest
        return out

    def _collision_rows(self, rows, avail) -> None:
        """One colliding interaction per row, vectorized across rows.

        ``avail`` holds each row's unused agents' states; ``counts -
        avail`` (post-run) is the used agents' output multiset.  Category
        weights and pool draws mirror
        :meth:`CountsSimulation._collision_interaction` row-wise.
        """
        np = self._np
        rng = self._generator
        size = self.num_states
        counts = self._matrix
        used = counts[rows] - avail
        used_total = used.sum(axis=1)
        avail_total = self.n - used_total
        w_uu = used_total * (used_total - 1)
        w_ua = used_total * avail_total
        x = rng.random(rows.size) * (w_uu + 2 * w_ua)
        uu = x < w_uu
        ua = (~uu) & (x < w_uu + w_ua)
        au = ~(uu | ua)
        # Two category-merged draws instead of one pair per category:
        # the initiator comes from the used pool except in (unused, used)
        # rows; the responder from the used pool except in (used, unused)
        # rows, with (used, used) rows' pool depleted by the initiator.
        a_pool = np.where(au[:, None], avail, used)
        a = self._draw_state_rows(a_pool, np.where(au, avail_total, used_total))
        b_pool = np.where(ua[:, None], avail, used)
        b_pool[uu, a[uu]] -= 1
        b_total = np.where(ua, avail_total, used_total - uu)
        b = self._draw_state_rows(b_pool, b_total)
        pair_index = a * size + b
        u_flat, v_flat = self.table.flat
        base = rows * size
        flat = counts.reshape(-1)
        flat += np.bincount(
            np.concatenate((base + u_flat.take(pair_index), base + v_flat.take(pair_index))),
            minlength=flat.size,
        )
        flat -= np.bincount(
            np.concatenate((base + a, base + b)), minlength=flat.size
        )

    def _draw_state_rows(self, pools, totals):
        """Row-wise: the state of one agent drawn uniformly from each pool."""
        np = self._np
        x = self._generator.integers(0, totals)
        return (pools.cumsum(axis=1) <= x[:, None]).sum(axis=1).astype(np.int64)


# ---------------------------------------------------------------------------
# The Backend.trial_runner hook
# ---------------------------------------------------------------------------


def run_trial_batch(specs, *, engine_factory=None) -> list:
    """Run a list of :class:`~repro.sim.parallel.TrialSpec` as one batch.

    The ``Backend.trial_runner`` implementation behind
    ``run_trials(backend="batch")``: every spec becomes one matrix row,
    driven in-process by a single :class:`BatchCountsEngine` seeded with
    the first spec's derived seed (per-spec seeds still shape per-row
    :class:`~repro.sim.initial_state.SampledStart` draws).  All specs
    must share the protocol, predicate and budgets — which
    ``run_trials``-built specs do by construction.  Outcomes come back
    in spec order, as the process-pool runner's do.

    ``engine_factory`` (default :class:`BatchCountsEngine`) is how other
    batch-shaped engines reuse this runner — the jitted leg registers
    itself with ``engine_factory=JitBatchCountsEngine`` and inherits the
    whole spec-validation/outcome-mapping contract with no conditionals.
    """
    from repro.sim.parallel import TrialOutcome

    specs = list(specs)
    if not specs:
        return []
    first = specs[0]
    for spec in specs[1:]:
        if (
            spec.protocol is not first.protocol
            or spec.predicate is not first.predicate
            or spec.max_interactions != first.max_interactions
            or spec.check_interval != first.check_interval
        ):
            raise ValueError(
                "a batch trial run needs every spec to share its protocol, "
                "predicate, max_interactions and check_interval"
            )
    rows = tuple(
        spec.init if spec.init is not None else Clean(spec.n) for spec in specs
    )
    if engine_factory is None:
        engine_factory = BatchCountsEngine
    engine = engine_factory(
        first.protocol,
        init=Replicated(rows, len(rows)),
        seed=first.seed,
    )
    outcomes = engine.run_rows_until(
        first.predicate,
        max_interactions=first.max_interactions,
        check_interval=first.check_interval,
    )
    return [
        TrialOutcome(
            index=spec.index,
            converged=outcome.converged,
            interactions=outcome.interactions,
            parallel_time=outcome.parallel_time,
        )
        for spec, outcome in zip(specs, outcomes)
    ]


__all__ = [
    "BatchCountsEngine",
    "RowOutcome",
    "run_trial_batch",
]

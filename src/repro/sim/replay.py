"""Schedule replay — execute a protocol over a fixed interaction sequence.

The population model's *reachability* relation ("C' is reachable from C")
quantifies over interaction sequences; the closure/safety arguments of the
paper (Lemma 6.1, Appendix F.1) are statements about every such sequence.
Replaying recorded or hand-crafted schedules lets tests exercise exactly
those arguments, and — because the transition RNG is explicit — verify
that executions are fully determined by (config, schedule, seed).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from repro.core.protocol import PopulationProtocol
from repro.scheduler.rng import RNG, make_rng
from repro.scheduler.scheduler import RecordedSchedule


def replay(
    protocol: PopulationProtocol,
    config: list[Any],
    schedule: Iterable[tuple[int, int]],
    rng: Optional[RNG] = None,
    on_step: Optional[Callable[[int, int, int], None]] = None,
) -> list[Any]:
    """Apply the schedule to ``config`` in place and return it.

    ``on_step(step_index, i, j)`` is invoked after each interaction.
    """
    rng = rng if rng is not None else make_rng(0)
    n = len(config)
    for step, (i, j) in enumerate(schedule):
        if not (0 <= i < n and 0 <= j < n):
            raise ValueError(f"schedule references agent outside population: ({i}, {j})")
        protocol.transition(config[i], config[j], rng)
        if on_step is not None:
            on_step(step, i, j)
    return config


def reachable_via(
    protocol: PopulationProtocol,
    start: list[Any],
    schedule: Sequence[tuple[int, int]],
    predicate: Callable[[Sequence[Any]], bool],
    rng: Optional[RNG] = None,
) -> bool:
    """Does applying ``schedule`` to ``start`` yield a configuration
    satisfying ``predicate`` at any intermediate point?"""
    rng = rng if rng is not None else make_rng(0)
    if predicate(start):
        return True
    hit = False

    def check(step: int, i: int, j: int) -> None:
        nonlocal hit
        if not hit and predicate(start):
            hit = True

    replay(protocol, start, schedule, rng, on_step=check)
    return hit or predicate(start)


def record_and_replay_matches(
    protocol: PopulationProtocol,
    make_config: Callable[[], list[Any]],
    n: int,
    steps: int,
    seed: int,
    key: Callable[[Any], object] = repr,
) -> bool:
    """Determinism check: two replays of one recorded schedule with equal
    transition seeds produce identical final configurations."""
    schedule = RecordedSchedule.record(n, steps, make_rng(seed))
    first = replay(protocol, make_config(), schedule, make_rng(seed + 1))
    second = replay(protocol, make_config(), schedule, make_rng(seed + 1))
    return [key(s) for s in first] == [key(s) for s in second]

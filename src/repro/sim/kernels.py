"""Compiled lockstep kernels — the numba leg of the batch counts engine.

:class:`~repro.sim.batch_backend.BatchCountsEngine` already runs ``T``
trials as one ``(T, S)`` matrix, but each lockstep step is still a dozen
Python-level numpy dispatches: the run-length draw, ``S - 1``
hypergeometric chain calls, the Fisher-MVH matching chain, the delta
apply, the collision branch.  At small ``S`` (the sweep regime) that
dispatch *is* the cost.  This module compiles the whole step: one
nopython kernel advances every live row through its entire budget slice
— run-length draw, conditional multivariate-hypergeometric chain,
initiator→responder matching, pair application and the colliding
``(L+1)``-th interaction all fused into one scalar loop per row.

**Randomness.**  Compiled code cannot share the engine's PCG64 stream,
so every row owns a *counter-based* stream: a splitmix64 finalizer over
``(key, counter)``, with per-row keys derived through
:func:`repro.scheduler.rng.derive_seed` (the only sanctioned seed
arithmetic) and the counter stored per row.  Draws are a pure function
of ``(key, counter)``, which buys two properties the tests pin: the
fused kernel and the phase-split instrumented kernel consume identical
per-row streams (bit-identical matrices), and no generator object is
ever constructed here (lint rule L001 holds over this module).

**Law.**  Every draw matches the numpy batch engine's law — run lengths
by inverse transform on the same survival curve, compositions by the
same conditional hypergeometric chain (the scalar hypergeometric is a
mode-centered two-sided inversion over the exact pmf recurrences),
matching by the same Fisher-MVH chain, collisions by the same
``U(U-1) : U·A : A·U`` category weights.  Streams differ, bits differ;
distributions do not — ``batch-jit`` vs ``batch`` is *law-exact, not
bit-exact* (gated by Monte-Carlo marginals + KS in
``tests/test_kernels.py`` and benchmark E24).  At ``T = 1`` the engine
inherits the batch engine's :class:`~repro.sim.counts_backend
.CountsSimulation` delegation, so single trials stay bit-for-bit the
per-trial counts engine.

numba is an optional ``[jit]`` extra.  Without it the backend fails
loudly at construction with an install hint — never a silent numpy
fallback (that is what ``backend='batch'`` is for).  Setting
``REPRO_JIT_PURE_PYTHON=1`` runs the same kernel source uncompiled: an
explicit, slow escape hatch that lets numba-free environments (CI's
main matrix included) exercise the kernels' law end to end.
"""

from __future__ import annotations

import contextlib
import math
import os
from typing import Any, Optional

from repro.core.protocol import PopulationProtocol
from repro.scheduler.rng import derive_seed
from repro.sim.batch_backend import BatchCountsEngine
from repro.sim.counts_backend import CountsBackendError
from repro.sim.initial_state import InitialState

try:  # numba is the optional [jit] extra — guarded exactly like numpy
    import numba as _numba
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _numba = None

try:  # numpy is itself optional at import time (the object engine's rule)
    import numpy as np
except ImportError:  # pragma: no cover - numpy-free object-engine installs
    np = None  # type: ignore[assignment]

#: Explicit opt-in: run the kernels uncompiled (slow; tests and CI only).
PURE_PYTHON_ENV = "REPRO_JIT_PURE_PYTHON"

#: The derived-seed tag of the per-row key stream (disjoint from the
#: engine's scheduler stream 0 and the fault engine's stream tags).
_ROW_KEY_STREAM = 3


class JitBackendError(CountsBackendError):
    """The batch-jit backend cannot run here (usually: numba is missing)."""


def jit_available() -> bool:
    """``True`` when numba imported and the kernels are compiled."""
    return _numba is not None


def pure_python_requested() -> bool:
    """``True`` when the explicit uncompiled escape hatch is switched on."""
    return os.environ.get(PURE_PYTHON_ENV, "") == "1"


def require_numba():
    """Return the numba module, or raise the pointed install hint.

    The ``REPRO_JIT_PURE_PYTHON=1`` escape hatch downgrades the error to
    a ``None`` return — callers then run the same kernel source
    uncompiled.  The opt-in is deliberate: without it, a missing numba is
    a loud failure, never a silently slow fallback.
    """
    if _numba is not None:
        return _numba
    if pure_python_requested():
        return None
    raise JitBackendError(
        "the batch-jit backend requires numba; install it with "
        "'pip install repro-podc25-leader-election[jit]', or use "
        "backend='batch' for the same law on pure numpy "
        "(REPRO_JIT_PURE_PYTHON=1 runs the kernels uncompiled — slow, "
        "test environments only)"
    )


def overflow_guard():
    """Context for calling kernels: silences uint64 wraparound warnings.

    The splitmix64 mix *relies* on modular uint64 arithmetic.  Compiled
    code wraps silently; the uncompiled escape hatch runs on numpy
    scalars, where wraparound raises ``RuntimeWarning`` — legitimate
    here, so callers enter this guard around every kernel call.
    """
    if _numba is not None or np is None:
        return contextlib.nullcontext()
    return np.errstate(over="ignore")


# ---------------------------------------------------------------------------
# The counter-based per-row stream (splitmix64 finalizer)
# ---------------------------------------------------------------------------

if np is not None:
    _GOLDEN = np.uint64(0x9E3779B97F4A7C15)
    _MIX1 = np.uint64(0xBF58476D1CE4E5B9)
    _MIX2 = np.uint64(0x94D049BB133111EB)
    _S30 = np.uint64(30)
    _S27 = np.uint64(27)
    _S31 = np.uint64(31)
    _S11 = np.uint64(11)
    _CTR_ONE = np.uint64(1)
    _INV53 = 1.0 / float(1 << 53)


def _k_next(key, ctr):
    """One U[0, 1) draw of row stream ``key`` at ``ctr``; advances ``ctr``."""
    z = key + ctr * _GOLDEN
    z = (z ^ (z >> _S30)) * _MIX1
    z = (z ^ (z >> _S27)) * _MIX2
    z = z ^ (z >> _S31)
    return (z >> _S11) * _INV53, ctr + _CTR_ONE


def _k_randint(key, ctr, total):
    """One uniform integer in ``[0, total)``."""
    u, ctr = _k_next(key, ctr)
    x = int(u * total)
    if x >= total:
        x = total - 1
    return x, ctr


def _k_run_length(key, ctr, neg_survival):
    """One collision-free run length: max ``t`` with ``P(run >= t) > u``.

    The same inverse transform as
    :meth:`~repro.scheduler.scheduler.CollisionRunSampler.next_run_length`
    — a right-bisect on the negated survival curve — fed by this row's
    stream instead of the shared PCG64.
    """
    u, ctr = _k_next(key, ctr)
    target = -u
    lo = 0
    hi = neg_survival.shape[0]
    while lo < hi:
        mid = (lo + hi) // 2
        if neg_survival[mid] <= target:
            lo = mid + 1
        else:
            hi = mid
    if lo < 1:
        lo = 1
    return lo, ctr


def _k_hypergeometric(key, ctr, ngood, nbad, nsample):
    """One scalar hypergeometric draw (good balls among ``nsample`` drawn).

    Mode-centered two-sided inversion: pmf at the mode via ``lgamma``,
    then the exact up/down pmf recurrences fan outward until the uniform
    is consumed — expected ``O(sd)`` iterations, exact law.  Degenerate
    supports (``lo == hi``) consume no randomness.
    """
    lo = nsample - nbad
    if lo < 0:
        lo = 0
    hi = ngood if ngood < nsample else nsample
    if hi <= lo:
        return lo, ctr
    total = ngood + nbad
    mode = ((nsample + 1) * (ngood + 1)) // (total + 2)
    if mode < lo:
        mode = lo
    if mode > hi:
        mode = hi
    logp = (
        math.lgamma(ngood + 1.0)
        - math.lgamma(mode + 1.0)
        - math.lgamma(ngood - mode + 1.0)
        + math.lgamma(nbad + 1.0)
        - math.lgamma(nsample - mode + 1.0)
        - math.lgamma(nbad - nsample + mode + 1.0)
        - math.lgamma(total + 1.0)
        + math.lgamma(nsample + 1.0)
        + math.lgamma(total - nsample + 1.0)
    )
    u, ctr = _k_next(key, ctr)
    p = math.exp(logp)
    if u <= p:
        return mode, ctr
    u -= p
    pu = p
    ku = mode
    pd = p
    kd = mode
    while ku < hi or kd > lo:
        if ku < hi:
            pu *= float((ngood - ku) * (nsample - ku)) / float(
                (ku + 1) * (nbad - nsample + ku + 1)
            )
            ku += 1
            if u <= pu:
                return ku, ctr
            u -= pu
        if kd > lo:
            pd *= float(kd * (nbad - nsample + kd)) / float(
                (ngood - kd + 1) * (nsample - kd + 1)
            )
            kd -= 1
            if u <= pd:
                return kd, ctr
            u -= pd
    # The pmf sums to 1 - O(1e-15); a uniform landing in that float
    # sliver takes the boundary value.
    return hi, ctr


def _k_sample_chain(key, ctr, pool, nsample, out):
    """Multivariate hypergeometric via the conditional chain over codes.

    The same decomposition :meth:`BatchCountsEngine._sample_rows` runs
    row-vectorized — code by code, a scalar hypergeometric of the
    remaining draw against the remaining population; the last code takes
    the remainder.  Writes the composition into ``out``.
    """
    size = pool.shape[0]
    rest = 0
    for code in range(size):
        rest += pool[code]
    draw = nsample
    for code in range(size - 1):
        good = pool[code]
        rest -= good
        taken, ctr = _k_hypergeometric(key, ctr, good, rest, draw)
        out[code] = taken
        draw -= taken
    out[size - 1] = draw
    return ctr


def _k_match_chain(key, ctr, initiators, responders, matched):
    """Fisher-MVH pair-type counts of a uniform initiator→responder
    matching — the scalar twin of :meth:`BatchCountsEngine._match_rows`:
    the chain over initiator codes, each step a multivariate
    hypergeometric subsample of the responders not yet matched."""
    size = initiators.shape[0]
    remaining = responders.copy()
    for code in range(size - 1):
        ctr = _k_sample_chain(key, ctr, remaining, initiators[code], matched[code])
        for other in range(size):
            remaining[other] -= matched[code, other]
    for other in range(size):
        matched[size - 1, other] = remaining[other]
    return ctr


def _k_apply_matched(counts_row, matched, u_out, v_out):
    """Apply a run's pair-type counts to one row — per occupied pair
    ``(i, j)``: remove the pair, add its table outputs, ``m`` times."""
    size = matched.shape[0]
    for i in range(size):
        for j in range(size):
            m = matched[i, j]
            if m != 0:
                counts_row[i] -= m
                counts_row[j] -= m
                counts_row[u_out[i, j]] += m
                counts_row[v_out[i, j]] += m


def _k_draw_state(key, ctr, pool, total):
    """The state of one agent drawn uniformly from ``pool``."""
    x, ctr = _k_randint(key, ctr, total)
    acc = 0
    for code in range(pool.shape[0]):
        acc += pool[code]
        if acc > x:
            return code, ctr
    return pool.shape[0] - 1, ctr


def _k_collision(counts_row, avail, key, ctr, n, u_out, v_out):
    """The colliding ``(L+1)``-th interaction — the scalar twin of
    :meth:`BatchCountsEngine._collision_rows`, with the identical
    ``U(U-1) : U·A : A·U`` used/unused category weights."""
    size = counts_row.shape[0]
    used = np.empty(size, dtype=np.int64)
    used_total = 0
    for code in range(size):
        used[code] = counts_row[code] - avail[code]
        used_total += used[code]
    avail_total = n - used_total
    w_uu = used_total * (used_total - 1)
    w_ua = used_total * avail_total
    u, ctr = _k_next(key, ctr)
    x = u * float(w_uu + 2 * w_ua)
    if x < w_uu:
        a, ctr = _k_draw_state(key, ctr, used, used_total)
        used[a] -= 1
        b, ctr = _k_draw_state(key, ctr, used, used_total - 1)
        used[a] += 1
    elif x < w_uu + w_ua:
        a, ctr = _k_draw_state(key, ctr, used, used_total)
        b, ctr = _k_draw_state(key, ctr, avail, avail_total)
    else:
        a, ctr = _k_draw_state(key, ctr, avail, avail_total)
        b, ctr = _k_draw_state(key, ctr, used, used_total)
    counts_row[a] -= 1
    counts_row[b] -= 1
    counts_row[u_out[a, b]] += 1
    counts_row[v_out[a, b]] += 1
    return ctr


def _k_silent_rows(matrix, rows, effectful, out):
    """Per-row silence scan against the effectful-pair mask — the same
    verdicts as :func:`~repro.sim.counts_backend.counts_are_silent`,
    including the diagonal's two-agent requirement, in ``O(occupied²)``
    per row with no ``(R, S, S)`` temporaries."""
    size = matrix.shape[1]
    for r in range(rows.shape[0]):
        row = rows[r]
        silent = True
        for i in range(size):
            count_i = matrix[row, i]
            if count_i == 0:
                continue
            for j in range(size):
                if not effectful[i, j]:
                    continue
                if matrix[row, j] == 0:
                    continue
                if i == j and count_i < 2:
                    continue
                silent = False
                break
            if not silent:
                break
        out[r] = silent


# ---------------------------------------------------------------------------
# The fused per-row stepper and its phase-split (instrumented) twin
# ---------------------------------------------------------------------------


def _k_run_rows(counts, rows, amounts, neg_survival, u_out, v_out, keys, counters, n):
    """Advance each row of ``rows`` through ``amounts[r]`` interactions.

    The whole budget slice of every row runs inside this one kernel —
    run-length draw, composition chain, matching chain, apply, collision
    — a scalar loop per row on that row's counter-based stream.  Because
    streams are per-row pure functions of ``(key, counter)``, the draw
    sequence is identical to the phase-split twin below (the lockstep
    order across rows does not matter), which is what lets the
    instrumented path stay bit-exact.
    """
    size = counts.shape[1]
    sample = np.empty(size, dtype=np.int64)
    initiators = np.empty(size, dtype=np.int64)
    responders = np.empty(size, dtype=np.int64)
    matched = np.empty((size, size), dtype=np.int64)
    avail = np.empty(size, dtype=np.int64)
    for r in range(rows.shape[0]):
        row = rows[r]
        key = keys[row]
        ctr = counters[row]
        rem = amounts[r]
        while rem > 0:
            length, ctr = _k_run_length(key, ctr, neg_survival)
            k = length if length < rem else rem
            collide = (rem > k) and (k == length)
            ctr = _k_sample_chain(key, ctr, counts[row], 2 * k, sample)
            ctr = _k_sample_chain(key, ctr, sample, k, initiators)
            for code in range(size):
                responders[code] = sample[code] - initiators[code]
            ctr = _k_match_chain(key, ctr, initiators, responders, matched)
            if collide:
                for code in range(size):
                    avail[code] = counts[row, code] - sample[code]
            _k_apply_matched(counts[row], matched, u_out, v_out)
            rem -= k
            if collide:
                ctr = _k_collision(counts[row], avail, key, ctr, n, u_out, v_out)
                rem -= 1
        counters[row] = ctr


def _k_phase_lengths(rows, remaining, keys, counters, neg_survival, out_k, out_collide):
    """Phase 1 of the split stepper: per-row run length, budget clip,
    collision flag (``remaining`` exceeded by a full run)."""
    for r in range(rows.shape[0]):
        row = rows[r]
        length, ctr = _k_run_length(keys[row], counters[row], neg_survival)
        counters[row] = ctr
        rem = remaining[r]
        k = length if length < rem else rem
        out_k[r] = k
        out_collide[r] = (rem > k) and (k == length)


def _k_phase_sample(pools, rows, nsamples, keys, counters, out):
    """Phase 2/3: per-row multivariate hypergeometric over ``pools``."""
    for r in range(pools.shape[0]):
        row = rows[r]
        counters[row] = _k_sample_chain(
            keys[row], counters[row], pools[r], nsamples[r], out[r]
        )


def _k_phase_match(initiators, responders, rows, keys, counters, matched):
    """Phase 4: per-row Fisher-MVH matching chain."""
    for r in range(initiators.shape[0]):
        row = rows[r]
        counters[row] = _k_match_chain(
            keys[row], counters[row], initiators[r], responders[r], matched[r]
        )


def _k_phase_apply(counts, rows, matched, u_out, v_out):
    """Phase 5: apply every row's pair-type counts."""
    for r in range(rows.shape[0]):
        _k_apply_matched(counts[rows[r]], matched[r], u_out, v_out)


def _k_phase_collision(counts, rows, avail, keys, counters, n, u_out, v_out):
    """Phase 6: the colliding interaction for rows whose run completed."""
    for r in range(rows.shape[0]):
        row = rows[r]
        counters[row] = _k_collision(
            counts[row], avail[r], keys[row], counters[row], n, u_out, v_out
        )


if _numba is not None:  # compile in dependency order (globals resolve at compile)
    _k_next = _numba.njit(_k_next)
    _k_randint = _numba.njit(_k_randint)
    _k_run_length = _numba.njit(_k_run_length)
    _k_hypergeometric = _numba.njit(_k_hypergeometric)
    _k_sample_chain = _numba.njit(_k_sample_chain)
    _k_match_chain = _numba.njit(_k_match_chain)
    _k_apply_matched = _numba.njit(_k_apply_matched)
    _k_draw_state = _numba.njit(_k_draw_state)
    _k_collision = _numba.njit(_k_collision)
    _k_silent_rows = _numba.njit(_k_silent_rows)
    _k_run_rows = _numba.njit(_k_run_rows)
    _k_phase_lengths = _numba.njit(_k_phase_lengths)
    _k_phase_sample = _numba.njit(_k_phase_sample)
    _k_phase_match = _numba.njit(_k_phase_match)
    _k_phase_apply = _numba.njit(_k_phase_apply)
    _k_phase_collision = _numba.njit(_k_phase_collision)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class JitBatchCountsEngine(BatchCountsEngine):
    """:class:`BatchCountsEngine` with the lockstep step run in compiled
    kernels on counter-based per-row streams.

    Everything but the stepper is inherited: the ``init`` union, burst
    slicing, retirement discipline, the ``T = 1``
    :class:`~repro.sim.counts_backend.CountsSimulation` delegation (so
    single trials are bit-for-bit the counts engine), the batch-driver
    surface the sweep/fabric stack calls.  For ``T > 1`` the draws come
    from this module's streams — same law as ``backend='batch'``, not
    the same bits (see the module docstring).

    Under :meth:`instrument_steps` the engine switches to the
    phase-split kernels, which consume identical per-row streams — the
    breakdown costs wall-clock, never bit-identity.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        *,
        init: Optional[InitialState] = None,
        n: Optional[int] = None,
        seed: int = 0,
    ):
        require_numba()
        super().__init__(protocol, init=init, n=n, seed=seed)
        if self._matrix is None:
            return  # T = 1: inherited CountsSimulation delegation
        np_mod = self._np
        self._neg_survival = np_mod.ascontiguousarray(-self._runs.survival)
        row_base = derive_seed(self.seed, _ROW_KEY_STREAM)
        self._keys = np_mod.asarray(
            [derive_seed(row_base, row) for row in range(self.trials)],
            dtype=np_mod.uint64,
        )
        self._counters = np_mod.zeros(self.trials, dtype=np_mod.uint64)
        self._u_out = np_mod.ascontiguousarray(self.table.u_out, dtype=np_mod.int64)
        self._v_out = np_mod.ascontiguousarray(self.table.v_out, dtype=np_mod.int64)

    def _step_rows(self, rows, amounts) -> None:
        np_mod = self._np
        idx = np_mod.asarray(rows, dtype=np_mod.int64)
        amt = np_mod.asarray(amounts, dtype=np_mod.int64)
        with overflow_guard():
            if self._timings is None:
                _k_run_rows(
                    self._matrix, idx, amt, self._neg_survival,
                    self._u_out, self._v_out, self._keys, self._counters, self.n,
                )
            else:
                self._step_rows_phased(idx, amt)

    def _step_rows_phased(self, idx, remaining) -> None:
        """The phase-split stepper: same streams, same bits, timed.

        Lockstep across rows like the numpy engine's loop, but each
        phase is one kernel call; per-row ``(key, counter)`` streams
        make the draw sequence identical to the fused kernel's.
        """
        np_mod = self._np
        perf = self._perf_counter
        size = self.num_states
        counts = self._matrix
        timings = self._timings
        while idx.size:
            live = int(idx.size)
            start = perf()
            k = np_mod.empty(live, dtype=np_mod.int64)
            collide = np_mod.zeros(live, dtype=np_mod.bool_)
            _k_phase_lengths(
                idx, remaining, self._keys, self._counters, self._neg_survival,
                k, collide,
            )
            sub = counts[idx]
            sample = np_mod.empty((live, size), dtype=np_mod.int64)
            _k_phase_sample(sub, idx, 2 * k, self._keys, self._counters, sample)
            drawn = perf()
            timings["draw"] += drawn - start
            initiators = np_mod.empty((live, size), dtype=np_mod.int64)
            _k_phase_sample(sample, idx, k, self._keys, self._counters, initiators)
            matched = np_mod.empty((live, size, size), dtype=np_mod.int64)
            _k_phase_match(
                initiators, sample - initiators, idx, self._keys, self._counters,
                matched,
            )
            paired = perf()
            timings["match"] += paired - drawn
            _k_phase_apply(counts, idx, matched, self._u_out, self._v_out)
            remaining = remaining - k
            if collide.any():
                _k_phase_collision(
                    counts, idx[collide], sub[collide] - sample[collide],
                    self._keys, self._counters, self.n, self._u_out, self._v_out,
                )
                remaining[collide] -= 1
            timings["apply"] += perf() - paired
            keep = remaining > 0
            if not keep.all():
                idx = idx[keep]
                remaining = remaining[keep]

    def _silent_rows(self, rows):
        if self._effectful is None:
            return super()._silent_rows(rows)
        np_mod = self._np
        idx = np_mod.asarray(rows, dtype=np_mod.int64)
        out = np_mod.zeros(idx.size, dtype=np_mod.bool_)
        _k_silent_rows(self._matrix, idx, self._effectful, out)
        return out


__all__ = [
    "JitBackendError",
    "JitBatchCountsEngine",
    "PURE_PYTHON_ENV",
    "jit_available",
    "overflow_guard",
    "pure_python_requested",
    "require_numba",
]

"""Vectorized numpy execution engine for finite-state protocols.

The object backend (:class:`repro.sim.simulation.Simulation`) pays Python
dispatch for every interaction; that is the wall-clock bottleneck for the
population sizes (n ≥ 10³–10⁴) where the paper's asymptotic claims become
visible.  This module is the opt-in fast path: protocols whose state space
is small and finite (see :meth:`PopulationProtocol.num_states`) are
compiled to a dense ``S × S`` **pair-transition table**, the configuration
becomes an ``int64`` state-code array, scheduler pairs are drawn in
vectorized blocks (:class:`repro.scheduler.scheduler.ArrayScheduler`), and
transitions are applied by table lookup.

**Which protocols qualify.**  A transition table exists iff the protocol
exposes the encoding hooks *and* its transition function is deterministic
(never touches its ``rng`` argument).  In this repository that covers the
finite-state protocols: the Cai–Izumi–Wada ``n``-state SSLE baseline,
loosely-stabilizing leader election, pairwise elimination, the epidemic
substrates, and the standalone reset epidemic.  ``ElectLeader_r`` itself
is *provably* out of reach: Theorem 1.1 prices its speed at
``2^{O(r² log n)}`` states (countdowns alone take ``Θ((n/r) log n)``
values, FastLeaderElect identifiers range over ``[n³]``), so there is no
small finite encoding to tabulate — requesting ``backend="array"`` for it
raises :class:`ArrayBackendError` with exactly that explanation.

**Sequential-conflict-safe block application.**  A block of pairs drawn in
advance cannot be applied in one vectorized shot: if agent ``a`` interacts
at block positions 3 and 7, position 7 must read the state position 3
wrote.  :func:`apply_pair_block` resolves this with *first-occurrence
rounds*: in each round it applies (fully vectorized) every pending pair
that is the earliest pending occurrence of **both** its agents — such
pairs are mutually disjoint and each has no unapplied predecessor, so the
round is exactly a prefix-consistent chunk of the sequential order — then
repeats on the remainder.  The result is bit-identical to applying the
block's pairs one at a time, which is what makes `RecordedSchedule` replay
through this engine **exact**, not just distribution-equal (the
equivalence gate in ``tests/test_array_backend.py`` checks this for every
table protocol).

**Determinism and cross-backend equivalence.**  An array-backend run is a
pure function of ``(protocol, initial configuration, seed)``, like an
object-backend run — but the two backends draw their scheduler pairs from
different generators (PCG64 vs Mersenne Twister) over the *same* uniform
pair distribution, so they agree in distribution, not bit-for-bit.  The
cross-backend contract, gated by tests and ``bench_array_backend.py``:
same convergence verdicts, statistically indistinguishable
stabilization-time distributions, and exact trajectory agreement when both
replay one recorded schedule.

numpy is an optional dependency (``pip install .[array]``); importing this
module without it succeeds, and every entry point raises a clear
:class:`ArrayBackendError` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence
from weakref import WeakKeyDictionary

from repro.core.protocol import PopulationProtocol
from repro.obs import STEP_PHASES, perf_counter
from repro.scheduler.rng import derive_seed
from repro.scheduler.scheduler import ArrayScheduler
from repro.sim.metrics import Metrics
from repro.sim.simulation import ConfigPredicate, SimulationResult

try:  # pragma: no cover - exercised implicitly on every import
    import numpy as _np
except ImportError:  # pragma: no cover - container images bake numpy in
    _np = None

#: Upper bound on pairs per vectorized block.  Blocks scale with n (more
#: agents = fewer within-block conflicts = fewer application rounds) but
#: are capped so block buffers stay a few MB even at n ≥ 10⁶.
MAX_BLOCK = 1 << 16

#: Refuse tables above this many entries (two int32 arrays ≈ 8 bytes per
#: entry): the dense representation is the point of the backend, and a
#: protocol large enough to blow this limit should not pretend to be
#: "finite-state" in the tractable sense.
MAX_TABLE_ENTRIES = 1 << 25


class ArrayBackendError(RuntimeError):
    """The array backend cannot run this protocol (or numpy is missing)."""


def require_numpy():
    """Return the numpy module, or raise a clear error if it is absent."""
    if _np is None:
        raise ArrayBackendError(
            "the vectorized (array/counts) backends require numpy; install it "
            "with 'pip install repro-podc25-leader-election[array]' or use "
            "backend='object'"
        )
    return _np


class _TableRNG:
    """Poisoned RNG handed to transitions during table building.

    Any attribute access (``randrange``, ``random``, ...) proves the
    transition consumes randomness, which a lookup table cannot replay.
    """

    __slots__ = ()

    def __getattr__(self, name: str):
        raise ArrayBackendError(
            f"transition consumed randomness (rng.{name}) while building the "
            "transition table; randomized protocols cannot run on the array "
            "backend — derandomize first (Appendix B) or use backend='object'"
        )


@dataclass(frozen=True)
class TransitionTable:
    """Dense encoding of δ: ``(u_out[a, b], v_out[a, b]) = δ(a, b)``.

    Both tables are ``(S, S)`` int32 arrays over state codes; ``S`` is
    :attr:`num_states`.  Int32 halves the footprint of the natural int64
    (the Cai–Izumi–Wada table at n=4096 is 2 × 64 MB as int32).
    """

    num_states: int
    u_out: Any  # np.ndarray, shape (S, S), dtype int32
    v_out: Any  # np.ndarray, shape (S, S), dtype int32

    def __post_init__(self) -> None:
        np = require_numpy()
        expected = (self.num_states, self.num_states)
        for name, table in (("u_out", self.u_out), ("v_out", self.v_out)):
            if not isinstance(table, np.ndarray) or table.shape != expected:
                raise ArrayBackendError(
                    f"{name} must be a numpy array of shape {expected}, "
                    f"got {getattr(table, 'shape', type(table))}"
                )
            if table.size and (table.min() < 0 or table.max() >= self.num_states):
                raise ArrayBackendError(f"{name} contains codes outside range(S)")

    def lookup(self, a: int, b: int) -> tuple[int, int]:
        """Scalar δ lookup (test/debug convenience)."""
        return int(self.u_out[a, b]), int(self.v_out[a, b])

    @property
    def flat(self):
        """``(u_flat, v_flat)`` raveled views for single-gather lookups."""
        return self.u_out.ravel(), self.v_out.ravel()


def build_transition_table(protocol: PopulationProtocol) -> TransitionTable:
    """Generic table builder: enumerate all ``S × S`` pairs through δ.

    Decodes every ordered state pair, applies :meth:`transition` with a
    poisoned RNG (so randomized transitions fail loudly instead of being
    frozen into the table), and records the encoded results.  Cost is
    ``S²`` transition calls — fine for the ``S ≲ 10³`` protocols that use
    this default; larger structured tables (Cai–Izumi–Wada's ``n × n``)
    override :meth:`PopulationProtocol.transition_table` with a closed
    form instead.
    """
    np = require_numpy()
    size = protocol.num_states()
    if size is None:
        raise ArrayBackendError(
            f"protocol '{protocol.name}' has no finite state encoding "
            "(num_states() is None), so it cannot run on the array backend; "
            "use backend='object'"
        )
    if size < 1:
        raise ArrayBackendError(f"num_states() must be >= 1, got {size}")
    if size * size > MAX_TABLE_ENTRIES:
        raise ArrayBackendError(
            f"protocol '{protocol.name}' has {size} states; its dense "
            f"{size}x{size} table exceeds the {MAX_TABLE_ENTRIES}-entry cap"
        )
    u_out = np.empty((size, size), dtype=np.int32)
    v_out = np.empty((size, size), dtype=np.int32)
    rng = _TableRNG()
    decode = protocol.decode_state
    encode = protocol.encode_state
    transition = protocol.transition
    for a in range(size):
        row_u = u_out[a]
        row_v = v_out[a]
        for b in range(size):
            u = decode(a)
            v = decode(b)
            transition(u, v, rng)  # type: ignore[arg-type]
            row_u[b] = encode(u)
            row_v[b] = encode(v)
    return TransitionTable(num_states=size, u_out=u_out, v_out=v_out)


#: Per-protocol-instance table cache: tables are pure functions of the
#: protocol's parameters, and building one costs up to S² δ calls.
_TABLE_CACHE: "WeakKeyDictionary[PopulationProtocol, TransitionTable]" = WeakKeyDictionary()


def transition_table_for(protocol: PopulationProtocol) -> TransitionTable:
    """The protocol's transition table, built at most once per instance."""
    table = _TABLE_CACHE.get(protocol)
    if table is None:
        table = protocol.transition_table()
        _TABLE_CACHE[protocol] = table
    return table


def reachable_state_codes(
    protocol: PopulationProtocol,
    seeds: Iterable[Any],
    limit: Optional[int] = None,
) -> set[int]:
    """Codes reachable from ``seeds`` under δ-closure over ordered pairs.

    Walks the transition table from the seed states' codes until no new
    code appears (or ``limit`` codes are seen).  Tests use this to check
    that an encoding covers everything its start configurations can reach
    — the enumeration-completeness half of the table contract.
    """
    table = transition_table_for(protocol)
    known: set[int] = {int(protocol.encode_state(seed)) for seed in seeds}
    frontier = set(known)
    while frontier:
        fresh: set[int] = set()
        for a in frontier:
            for b in known:
                for x, y in ((a, b), (b, a)):
                    out_u, out_v = table.lookup(x, y)
                    for code in (out_u, out_v):
                        if code not in known:
                            fresh.add(code)
        known |= fresh
        frontier = fresh
        if limit is not None and len(known) > limit:
            raise ArrayBackendError(f"more than {limit} reachable states")
    return known


# ---------------------------------------------------------------------------
# Configuration codecs
# ---------------------------------------------------------------------------


def encode_configuration(protocol: PopulationProtocol, config: Sequence[Any]):
    """Encode a list of state objects as an ``int64`` state-code array."""
    np = require_numpy()
    encode = protocol.encode_state
    return np.fromiter((encode(s) for s in config), dtype=np.int64, count=len(config))


def decode_configuration(protocol: PopulationProtocol, codes) -> list[Any]:
    """Decode a state-code array back to fresh state objects."""
    decode = protocol.decode_state
    return [decode(int(code)) for code in codes]


# ---------------------------------------------------------------------------
# Sequential-conflict-safe block application
# ---------------------------------------------------------------------------


#: Pending-pair count below which the round loop finishes scalar: a tail
#: of k conflicted pairs costs k numpy rounds in the worst case (a chain
#: on one agent) but only one cheap Python loop.
SCALAR_TAIL = 64


class Workspace:
    """Preallocated per-simulation buffers for :func:`apply_pair_block`.

    Rounds run many small numpy ops; reusing the scratch arrays and the
    position templates (``arange`` and its pairwise-repeated form) keeps
    the per-round fixed overhead to the kernels that do real work.
    """

    def __init__(self, n: int, max_block: int):
        np = require_numpy()
        self.max_block = max_block
        self.first = np.empty(n, dtype=np.int64)
        self.agents = np.empty(2 * max_block, dtype=np.int64)
        self.positions = np.arange(max_block, dtype=np.int64)
        self.doubled = np.repeat(self.positions, 2)


def _apply_scalar(codes, initiators, responders, table: TransitionTable) -> None:
    """Plain sequential application (the tail path and the oracle).

    Touches only the agents named by the pairs — the tail is a handful of
    conflicted pairs, so an O(n) densify of ``codes`` would dominate it.
    """
    size = table.num_states
    u_flat, v_flat = table.flat
    for i, j in zip(initiators.tolist(), responders.tolist()):
        index = int(codes[i]) * size + int(codes[j])
        codes[i] = u_flat[index]
        codes[j] = v_flat[index]


def _retire_inert_pairs(codes, initiators, responders, table: TransitionTable, workspace):
    """Drop pairs that are provably no-ops; return the remaining pairs.

    A pair is *inert* if δ maps its agents' current codes to themselves.
    Inert pairs cannot be dropped blindly — an earlier pair may change one
    of their agents first — so contamination is closed transitively: flag
    every agent touched by an active pair, then repeatedly flag both
    agents of any pair touching a flagged agent.  At the fixpoint, pairs
    split cleanly into both-agents-flagged (kept, order-sensitive) and
    both-agents-unflagged (retired): unflagged agents are touched only by
    retired pairs, which stay inert because unflagged agents never change.
    Silent(-ish) protocols — CIW near a permutation, epidemics near
    saturation — retire most of every block here for a few vector ops.
    """
    np = require_numpy()
    size = table.num_states
    u_flat, v_flat = table.flat
    a = codes[initiators]
    b = codes[responders]
    index = a * size
    index += b
    active = u_flat.take(index) != a
    active |= v_flat.take(index) != b
    if not active.any():
        return initiators[:0], responders[:0]
    hot = workspace.first  # reused as a per-agent contamination flag
    hot[:] = 0
    hot[initiators[active]] = 1
    hot[responders[active]] = 1
    kept = active
    while True:
        touching = hot[initiators] == 1
        touching |= hot[responders] == 1
        if touching.sum() == kept.sum():
            return initiators[touching], responders[touching]
        kept = touching
        hot[initiators[touching]] = 1
        hot[responders[touching]] = 1


def apply_pair_block(codes, initiators, responders, table: TransitionTable, workspace=None):
    """Apply a block of ordered pairs to ``codes`` in sequential order.

    ``codes`` is the ``(n,)`` int64 configuration (mutated in place);
    ``initiators``/``responders`` are equal-length index vectors.  The
    first-occurrence-rounds scheme (module docstring) makes the result
    bit-identical to a pair-at-a-time loop while staying vectorized:

    * ``first[a]`` = earliest pending block position touching agent ``a``,
      computed by a reversed fancy-index scatter (later writes win, so
      writing positions in descending order leaves the minimum);
    * a pair is *ready* iff it is the first pending occurrence of both its
      agents; ready pairs are mutually disjoint and prefix-consistent, so
      one gather/lookup/scatter applies them all;
    * non-ready pairs carry to the next round.  The earliest pending pair
      is always ready, so every round makes progress; once fewer than
      ``SCALAR_TAIL`` pairs remain the loop finishes scalar — conflict
      chains shrink rounds geometrically, so the tail is where vectorized
      rounds stop paying for their dispatch.  Adversarial schedules (one
      hot pair repeated) degrade to the scalar loop, never to wrong
      results.
    """
    np = require_numpy()
    if initiators.shape != responders.shape:
        raise ValueError("initiator and responder vectors must have equal length")
    if workspace is None or initiators.size > workspace.max_block:
        workspace = Workspace(codes.shape[0], max(1, initiators.size))
    first = workspace.first
    u_flat, v_flat = table.flat
    size = table.num_states
    if initiators.size > SCALAR_TAIL:
        initiators, responders = _retire_inert_pairs(
            codes, initiators, responders, table, workspace
        )
    while initiators.size > SCALAR_TAIL:
        count = initiators.size
        positions = workspace.positions[:count]
        first[:] = count
        agents = workspace.agents[: 2 * count]
        agents[0::2] = initiators
        agents[1::2] = responders
        first[agents[::-1]] = workspace.doubled[: 2 * count][::-1]
        ready = first[initiators] == positions
        ready &= first[responders] == positions
        ready_i = initiators[ready]
        ready_j = responders[ready]
        index = codes[ready_i]
        index *= size
        index += codes[ready_j]
        codes[ready_j] = v_flat.take(index)
        codes[ready_i] = u_flat.take(index)
        pending = ~ready
        initiators = initiators[pending]
        responders = responders[pending]
    if initiators.size:
        _apply_scalar(codes, initiators, responders, table)
    return codes


# ---------------------------------------------------------------------------
# The array simulation
# ---------------------------------------------------------------------------


class ArraySimulation:
    """Table-backed counterpart of :class:`repro.sim.simulation.Simulation`.

    Mirrors the object engine's surface — ``run``/``run_batch``/
    ``run_until``/``metrics``/``config`` — over an ``int64`` state-code
    array.  Seeding: the pair stream is ``PCG64(derive_seed(seed, 0))``
    (the scheduler slot of the object backend's seed derivation, through
    the array scheduler's own generator family); table protocols are
    deterministic, so the transition stream (slot 1) is never consumed.

    Observers are not supported: per-interaction callbacks would force
    scalar dispatch and negate the backend.  Use the object backend for
    instrumented runs.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        config: Optional[Sequence[Any]] = None,
        n: Optional[int] = None,
        seed: int = 0,
        block_size: Optional[int] = None,
        codes: Optional[Sequence[int]] = None,
    ):
        np = require_numpy()
        self.protocol = protocol
        self.table = transition_table_for(protocol)
        if codes is not None:
            if config is not None:
                raise ValueError("provide at most one of config= and codes=")
            # The engine's native currency — adversarial initializers hand
            # state-code arrays straight through without a decode/encode
            # round trip.  Copied: the caller keeps ownership of its array.
            self.codes = np.asarray(codes, dtype=np.int64).copy()
        elif config is None:
            if n is None:
                raise ValueError("provide either an initial config or a population size n")
            self.codes = encode_configuration(protocol, protocol.clean_configuration(n))
        else:
            self.codes = encode_configuration(protocol, config)
        self.n = int(self.codes.shape[0])
        if self.n < 2:
            raise ValueError("population must have at least two agents")
        if self.codes.size and (self.codes.min() < 0 or self.codes.max() >= self.table.num_states):
            raise ArrayBackendError("initial configuration encodes outside range(num_states)")
        self.seed = seed
        self.scheduler = ArrayScheduler(self.n, derive_seed(seed, 0))
        self.metrics = Metrics(n=self.n)
        if block_size is None:
            # ~n/2 pairs per block keeps the expected per-agent multiplicity
            # around 1, so most pairs apply in the first one or two rounds.
            block_size = min(MAX_BLOCK, max(256, self.n // 2))
        if block_size < 1:
            raise ValueError(f"block size must be positive, got {block_size}")
        self.block_size = block_size
        self._workspace = Workspace(self.n, block_size)
        self._timings: Optional[dict[str, float]] = None

    # ------------------------------------------------------------------

    @property
    def config(self) -> list[Any]:
        """The current configuration as fresh decoded state objects."""
        return decode_configuration(self.protocol, self.codes)

    def run(self, interactions: int) -> None:
        """Run a fixed number of interactions."""
        self.run_batch(interactions)

    def run_batch(self, count: int) -> None:
        """Run ``count`` interactions through the vectorized path."""
        if count < 0:
            raise ValueError(f"interaction count must be non-negative, got {count}")
        remaining = count
        timings = self._timings
        if timings is not None:
            # Instrumented twin: same calls, same stream order, clock
            # reads around the two sections (draw = pair blocks, apply =
            # conflict-safe application).
            while remaining > 0:
                block = min(remaining, self.block_size)
                start = perf_counter()
                initiators, responders = self.scheduler.next_pairs(block)
                drawn = perf_counter()
                timings["draw"] += drawn - start
                apply_pair_block(
                    self.codes, initiators, responders, self.table, self._workspace
                )
                timings["apply"] += perf_counter() - drawn
                remaining -= block
            self.metrics.interactions += count
            return
        while remaining > 0:
            block = min(remaining, self.block_size)
            initiators, responders = self.scheduler.next_pairs(block)
            apply_pair_block(self.codes, initiators, responders, self.table, self._workspace)
            remaining -= block
        self.metrics.interactions += count

    def run_until(
        self,
        predicate: ConfigPredicate,
        max_interactions: int,
        check_interval: int = 1,
    ) -> SimulationResult:
        """Run until ``predicate(config)`` holds or the budget is exhausted.

        Identical check discipline to the object backend: the predicate is
        evaluated before the first step and then every ``check_interval``
        interactions — through :meth:`predicate_holds`, so counts-aware
        predicates are answered by one ``bincount`` instead of decoding
        ``n`` state objects per check.
        """
        if check_interval < 1:
            raise ValueError("check_interval must be positive")
        if self.predicate_holds(predicate):
            return self._result(converged=True)
        remaining = max_interactions
        while remaining > 0:
            burst = min(check_interval, remaining)
            self.run_batch(burst)
            remaining -= burst
            if self.predicate_holds(predicate):
                return self._result(converged=True)
        return self._result(converged=False)

    def predicate_holds(self, predicate: ConfigPredicate) -> bool:
        """Evaluate a predicate in this backend's cheapest form.

        A predicate carrying a counts-space form (``predicate.on_counts``,
        see :func:`repro.sim.counts_backend.counts_aware`) is evaluated on
        ``bincount(codes)`` — one ``O(n)`` vectorized pass and an ``O(S)``
        aggregate check, instead of materializing ``n`` decoded state
        objects and walking them in Python.  Plain config predicates fall
        back to the decoded configuration, unchanged.
        """
        timings = self._timings
        start = perf_counter() if timings is not None else 0.0
        on_counts = getattr(predicate, "on_counts", None)
        if on_counts is not None:
            np = require_numpy()
            held = bool(on_counts(np.bincount(self.codes, minlength=self.table.num_states)))
        else:
            held = bool(predicate(self.config))
        if timings is not None:
            timings["retire"] += perf_counter() - start
        return held

    def instrument_steps(self) -> dict[str, float]:
        """Switch on per-phase wall-clock accounting (common engine surface).

        Returns the live accumulator over :data:`repro.obs.STEP_PHASES`:
        ``draw`` (vectorized pair blocks), ``apply`` (conflict-safe block
        application), ``retire`` (predicate checks); ``match`` stays zero
        — pairing happens inside the scheduler draw here.  Only the
        monotonic clock is read; draws and results are unchanged.
        """
        if self._timings is None:
            self._timings = {phase: 0.0 for phase in STEP_PHASES}
        return self._timings

    @property
    def step_timings(self) -> Optional[dict[str, float]]:
        """The accumulator from :meth:`instrument_steps` (``None`` when off)."""
        return self._timings

    def apply_fault(self, model, burst_size: int, generator) -> None:
        """Inject one fault burst (common engine surface).

        ``model`` is a :class:`repro.sim.fault_engine.FaultModel`; on this
        backend its vectorized applier corrupts the state-code array in
        place at the drawn victim indices.
        """
        model.apply_codes(self.protocol, self.codes, burst_size, generator)

    def apply_schedule(self, schedule: Iterable[tuple[int, int]]) -> None:
        """Apply a fixed interaction sequence (e.g. a ``RecordedSchedule``).

        Exact replay: the conflict-safe block machinery reproduces the
        sequential application of ``schedule`` bit-for-bit, so the final
        configuration matches :func:`repro.sim.replay.replay` on the
        object backend whenever both start from the same configuration.
        """
        np = require_numpy()
        pairs = list(schedule)
        if not pairs:
            return
        initiators = np.fromiter((i for i, _ in pairs), dtype=np.int64, count=len(pairs))
        responders = np.fromiter((j for _, j in pairs), dtype=np.int64, count=len(pairs))
        for vector in (initiators, responders):
            if vector.size and (vector.min() < 0 or vector.max() >= self.n):
                raise ValueError("schedule references agent outside population")
        if ((initiators == responders).any()):
            raise ValueError("self-interaction is not a valid pair")
        start = 0
        while start < len(pairs):
            stop = min(start + self.block_size, len(pairs))
            apply_pair_block(
                self.codes, initiators[start:stop], responders[start:stop],
                self.table, self._workspace,
            )
            start = stop
        self.metrics.interactions += len(pairs)

    def _result(self, converged: bool) -> SimulationResult:
        return SimulationResult(
            converged=converged,
            interactions=self.metrics.interactions,
            parallel_time=self.metrics.parallel_time,
            metrics=self.metrics,
            config=self.config,
        )


def replay_array(
    protocol: PopulationProtocol,
    config: Sequence[Any],
    schedule: Iterable[tuple[int, int]],
) -> list[Any]:
    """Array-backend counterpart of :func:`repro.sim.replay.replay`.

    Applies ``schedule`` to ``config`` through the transition table and
    returns the final configuration as decoded state objects.  Unlike the
    random-schedule path, this is *exact* relative to the object backend:
    same schedule + same start ⇒ identical final states.
    """
    sim = ArraySimulation(protocol, config=list(config), seed=0)
    sim.apply_schedule(schedule)
    return sim.config

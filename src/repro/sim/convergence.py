"""Composable convergence predicates and silence detection.

Protocols carry their own correctness predicates
(``is_goal_configuration``, ``is_safe_configuration``, ...); this module
provides generic combinators on top of them plus *silence* detection —
"no agent changes its state for T consecutive interactions" — which is the
operational convergence notion for the paper's silent protocols
(AssignRanks, CIW, Burman-style SSR; see Section 1.1's definition of a
silent self-stabilizing protocol).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.core.protocol import PopulationProtocol, RankingProtocol
from repro.sim.simulation import ConfigPredicate, Simulation


def unique_leader(protocol: PopulationProtocol) -> ConfigPredicate:
    """Exactly one agent outputs leader."""

    def predicate(config: Sequence[Any]) -> bool:
        return protocol.leader_count(config) == 1

    return predicate


def correct_ranking(protocol: RankingProtocol) -> ConfigPredicate:
    """Ranks form a permutation of [n]."""

    def predicate(config: Sequence[Any]) -> bool:
        return protocol.ranking_correct(config)

    return predicate


def all_of(*predicates: ConfigPredicate) -> ConfigPredicate:
    """Conjunction of predicates."""

    def predicate(config: Sequence[Any]) -> bool:
        return all(p(config) for p in predicates)

    return predicate


def any_of(*predicates: ConfigPredicate) -> ConfigPredicate:
    """Disjunction of predicates."""

    def predicate(config: Sequence[Any]) -> bool:
        return any(p(config) for p in predicates)

    return predicate


class SilenceDetector:
    """Detects configurations that have been silent for a window.

    Usage: install :meth:`observe` as a simulation observer and use
    :meth:`silent_for` as (part of) the convergence predicate.  A protocol
    is *silent* once no interaction changes any state (the absorbing
    configurations of CIW, ranked AssignRanks populations, ...); since
    state equality checks are expensive, we fingerprint configurations
    with a caller-supplied key function (default: ``repr``).
    """

    def __init__(self, key: Callable[[Any], object] = repr):
        self._key = key
        self._last_fingerprint: object = None
        self._unchanged_since: int = 0

    def observe(self, sim: Simulation, i: int, j: int) -> None:
        fingerprint = tuple(self._key(state) for state in sim.config)
        if fingerprint != self._last_fingerprint:
            self._last_fingerprint = fingerprint
            self._unchanged_since = sim.metrics.interactions

    def quiet_interactions(self, sim: Simulation) -> int:
        """Interactions since the configuration last changed."""
        return sim.metrics.interactions - self._unchanged_since

    def silent_for(self, sim: Simulation, window: int) -> ConfigPredicate:
        """Predicate: configuration unchanged for ≥ ``window`` interactions."""

        def predicate(config: Sequence[Any]) -> bool:
            return self.quiet_interactions(sim) >= window

        return predicate


def run_to_silence(
    protocol: PopulationProtocol,
    *,
    config: list[Any] | None = None,
    n: int | None = None,
    seed: int = 0,
    window: int,
    max_interactions: int,
    key: Callable[[Any], object] = repr,
) -> tuple[Simulation, bool]:
    """Run until the configuration is unchanged for ``window`` interactions.

    Returns the simulation and whether silence was reached.  The reported
    convergence point overshoots the true silencing moment by up to
    ``window`` interactions, which callers should subtract when measuring
    silent-stabilization time.
    """
    sim = Simulation(protocol, config=config, n=n, seed=seed)
    detector = SilenceDetector(key)
    sim.observers.append(detector.observe)
    result = sim.run_until(
        detector.silent_for(sim, window),
        max_interactions=max_interactions,
        check_interval=max(1, window // 4),
    )
    return sim, result.converged

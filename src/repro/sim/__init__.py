"""Simulation engine: run protocols under the uniform random scheduler."""

from repro.sim.convergence import (
    SilenceDetector,
    all_of,
    any_of,
    correct_ranking,
    run_to_silence,
    unique_leader,
)
from repro.sim.batch_backend import (
    BatchCountsEngine,
    RowOutcome,
    run_trial_batch,
)
from repro.sim.fault_engine import (
    FAULT_MODELS,
    FaultEngine,
    FaultEngineError,
    FaultModel,
    FaultSpec,
    fault_model_names,
    get_fault_model,
    make_fault_engine,
    register_fault_model,
)
from repro.sim.initial_state import (
    Clean,
    CodeArray,
    CountVector,
    InitialState,
    ObjectConfig,
    Replicated,
    SampledStart,
    reject_removed_kwargs,
    require_init,
)
from repro.sim.faults import AvailabilityReport, FaultInjector, measure_availability
from repro.sim.metrics import Metrics
from repro.sim.parallel import (
    TrialOutcome,
    TrialSpec,
    resolve_workers,
    run_trial,
    run_trial_specs,
    run_trial_specs_streaming,
    stream_ordered,
)
from repro.sim.array_backend import (
    ArrayBackendError,
    ArraySimulation,
    TransitionTable,
    apply_pair_block,
    build_transition_table,
    replay_array,
    transition_table_for,
)
from repro.sim.backends import (
    Backend,
    backend_names,
    get_backend,
    register_backend,
    supports_backend,
)
from repro.sim.counts_backend import (
    CountsAwarePredicate,
    CountsBackendError,
    CountsSimulation,
    apply_pair_counts,
    configuration_from_counts,
    counts_aware,
    counts_from_codes,
    counts_from_configuration,
    goal_counts_predicate,
)
from repro.sim.replay import replay, record_and_replay_matches
from repro.sim.simulation import (
    Simulation,
    SimulationResult,
    make_simulation,
    resolve_backend,
    run_until,
)


def __getattr__(name: str):
    # Live view of the registered engine names (legacy static-tuple
    # import): evaluated per access so backends registered after this
    # package was imported still show up.
    if name == "BACKENDS":
        return backend_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
from repro.sim.sweep import (
    GridSpec,
    ScenarioOutcome,
    ScenarioSpec,
    SweepError,
    SweepResult,
    aggregate_rows,
    expand_grid,
    load_checkpoint,
    run_scenario,
    run_scenario_cell,
    run_sweep,
)
from repro.sim.trace import ProtocolTracer, TraceEvent
from repro.sim.trials import TrialSummary, format_table, run_trials

__all__ = [
    "Simulation",
    "SimulationResult",
    "run_until",
    "make_simulation",
    "resolve_backend",
    "BACKENDS",
    "Backend",
    "backend_names",
    "get_backend",
    "register_backend",
    "supports_backend",
    "CountsAwarePredicate",
    "CountsBackendError",
    "CountsSimulation",
    "apply_pair_counts",
    "configuration_from_counts",
    "counts_aware",
    "counts_from_codes",
    "counts_from_configuration",
    "goal_counts_predicate",
    "BatchCountsEngine",
    "RowOutcome",
    "run_trial_batch",
    "InitialState",
    "Clean",
    "CodeArray",
    "CountVector",
    "ObjectConfig",
    "Replicated",
    "SampledStart",
    "reject_removed_kwargs",
    "require_init",
    "ArrayBackendError",
    "ArraySimulation",
    "TransitionTable",
    "apply_pair_block",
    "build_transition_table",
    "transition_table_for",
    "replay_array",
    "Metrics",
    "TrialSummary",
    "run_trials",
    "format_table",
    "TrialSpec",
    "TrialOutcome",
    "run_trial",
    "run_trial_specs",
    "run_trial_specs_streaming",
    "stream_ordered",
    "resolve_workers",
    "GridSpec",
    "ScenarioSpec",
    "ScenarioOutcome",
    "SweepError",
    "SweepResult",
    "expand_grid",
    "run_scenario",
    "run_scenario_cell",
    "run_sweep",
    "aggregate_rows",
    "load_checkpoint",
    "replay",
    "record_and_replay_matches",
    "SilenceDetector",
    "run_to_silence",
    "unique_leader",
    "correct_ranking",
    "all_of",
    "any_of",
    "FaultInjector",
    "AvailabilityReport",
    "measure_availability",
    "FAULT_MODELS",
    "FaultEngine",
    "FaultEngineError",
    "FaultModel",
    "FaultSpec",
    "fault_model_names",
    "get_fault_model",
    "make_fault_engine",
    "register_fault_model",
    "ProtocolTracer",
    "TraceEvent",
]

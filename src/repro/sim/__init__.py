"""Simulation engine: run protocols under the uniform random scheduler."""

from repro.sim.convergence import (
    SilenceDetector,
    all_of,
    any_of,
    correct_ranking,
    run_to_silence,
    unique_leader,
)
from repro.sim.faults import AvailabilityReport, FaultInjector, measure_availability
from repro.sim.metrics import Metrics
from repro.sim.parallel import (
    TrialOutcome,
    TrialSpec,
    resolve_workers,
    run_trial,
    run_trial_specs,
    run_trial_specs_streaming,
    stream_ordered,
)
from repro.sim.array_backend import (
    ArrayBackendError,
    ArraySimulation,
    TransitionTable,
    apply_pair_block,
    build_transition_table,
    replay_array,
    transition_table_for,
)
from repro.sim.replay import replay, record_and_replay_matches
from repro.sim.simulation import (
    BACKENDS,
    Simulation,
    SimulationResult,
    make_simulation,
    resolve_backend,
    run_until,
)
from repro.sim.sweep import (
    GridSpec,
    ScenarioOutcome,
    ScenarioSpec,
    SweepError,
    SweepResult,
    aggregate_rows,
    expand_grid,
    load_checkpoint,
    run_scenario,
    run_sweep,
)
from repro.sim.trace import ProtocolTracer, TraceEvent
from repro.sim.trials import TrialSummary, format_table, run_trials

__all__ = [
    "Simulation",
    "SimulationResult",
    "run_until",
    "make_simulation",
    "resolve_backend",
    "BACKENDS",
    "ArrayBackendError",
    "ArraySimulation",
    "TransitionTable",
    "apply_pair_block",
    "build_transition_table",
    "transition_table_for",
    "replay_array",
    "Metrics",
    "TrialSummary",
    "run_trials",
    "format_table",
    "TrialSpec",
    "TrialOutcome",
    "run_trial",
    "run_trial_specs",
    "run_trial_specs_streaming",
    "stream_ordered",
    "resolve_workers",
    "GridSpec",
    "ScenarioSpec",
    "ScenarioOutcome",
    "SweepError",
    "SweepResult",
    "expand_grid",
    "run_scenario",
    "run_sweep",
    "aggregate_rows",
    "load_checkpoint",
    "replay",
    "record_and_replay_matches",
    "SilenceDetector",
    "run_to_silence",
    "unique_leader",
    "correct_ranking",
    "all_of",
    "any_of",
    "FaultInjector",
    "AvailabilityReport",
    "measure_availability",
    "ProtocolTracer",
    "TraceEvent",
]

"""Count-vector execution engine for finite-state protocols (ppsim-style).

The array backend stores one ``int64`` cell per agent, which caps
practical sweeps near ``n ≈ 10⁴–10⁵``: every block of interactions pays
``O(n)`` passes (conflict bookkeeping) and every convergence check decodes
``n`` state objects.  For the ``S ≪ n`` protocols — epidemics, the reset
epidemic, pairwise elimination, loosely-stabilizing leader election — the
configuration is fully described by an ``S``-length **count vector**
``counts[code] = #agents in state code``, and both costs collapse to
``O(S)``.  This module is that engine: the ROADMAP's "count-based
(ppsim-style) representation" follow-up to the array backend, in the
spirit of Doty and Severson's ``ppsim`` (CMSB 2021) and the batching
analysis of Berenbrink et al.

**Law-exact batched sampling.**  The uniform pairwise scheduler draws
agent *identities*, which a count vector deliberately forgets.  The engine
recovers exactness through *collision-free runs*:

* which interactions first reuse an agent is a pure function of agent
  draws — state-independent — so the length ``L`` of the maximal prefix of
  interactions touching ``2L`` distinct agents follows a birthday-problem
  law tabulated once per ``n``
  (:class:`repro.scheduler.scheduler.CollisionRunSampler`);
* conditioned on ``L``, those ``2L`` agents are a uniform sample *without
  replacement* — their states follow a multivariate hypergeometric draw
  from ``counts``, and a uniform shuffle pairs them into initiators and
  responders;
* because the run's agents are distinct, its interactions commute: the
  whole run is applied as one aggregate count delta through the compiled
  ``S × S`` transition table (:func:`apply_pair_counts`, reusing
  :mod:`repro.sim.array_backend`'s table builder);
* the ``(L+1)``-th interaction *collides* — it involves at least one
  already-used agent, whose current state distribution is the multiset of
  run outputs.  It is applied individually from the used/unused split,
  then the run machinery restarts.

Agents in equal states are exchangeable, so the counts process is an
exact lumping of the agent-level chain; truncating a run at a batch
boundary and restarting fresh is likewise exact (the Markov property:
the future law depends only on ``counts``).  The batched sampler is
therefore *distribution*-identical to the object and array engines — and
to this engine's own pair-at-a-time oracle (``batching="pair"``), which
tests use to gate it.

**Determinism.**  A counts run is a pure function of ``(protocol, initial
counts, seed, batching mode, run_batch split sequence)`` — all draws come
from one PCG64 stream.  Unlike the array scheduler there is **no**
slicing-invariance guarantee: changing ``check_interval`` changes how
runs are truncated and therefore the concrete sample path (never the
law).  Checkpoint/resume stays byte-identical because sweep grids pin the
check interval.

**Convergence on counts.**  ``run_until`` evaluates predicates carrying a
counts-space form (``predicate.on_counts``, see :func:`counts_aware` and
:meth:`repro.core.protocol.PopulationProtocol.goal_counts`) directly on
the vector — ``O(S)`` per check — and falls back to expanding a decoded
configuration for plain config predicates (``O(n)``, correct but slow).
The ``O(S)`` check is what makes ``n ≥ 10⁶`` stabilization-vs-``n``
curves affordable: ``bench_counts_backend.py`` gates the end-to-end
workload at ≥ 10× over the array backend at ``n = 10⁶``.

Like the array backend, numpy is optional at import time and every entry
point raises a clear error without it.  ``ElectLeader_r`` is rejected for
the same reason as on the array backend: no finite encoding (Theorem 1.1
prices its speed at ``2^{Θ(r² log n)}`` states).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.core.protocol import PopulationProtocol
from repro.obs import STEP_PHASES, perf_counter
from repro.scheduler.rng import derive_seed
from repro.scheduler.scheduler import CollisionRunSampler
from repro.sim.array_backend import (
    ArrayBackendError,
    TransitionTable,
    require_numpy,
    transition_table_for,
)
from repro.sim.metrics import Metrics
from repro.sim.simulation import ConfigPredicate, SimulationResult


class CountsBackendError(ArrayBackendError):
    """The counts backend cannot run this protocol (or numpy is missing).

    Subclasses :class:`ArrayBackendError` because the two vectorized
    engines share the transition-table machinery — callers that catch the
    array error (the established "no finite encoding" signal) catch this
    one too.
    """


#: The two sampling modes of :class:`CountsSimulation`.
BATCHING_RUN = "run"
BATCHING_PAIR = "pair"
BATCHING_MODES = (BATCHING_RUN, BATCHING_PAIR)

#: Occupied-state cap for the counts-level silence check: above this many
#: occupied codes the O(occupied²) table scan stops paying for itself and
#: the batched sampler just runs (correct either way).
MAX_SILENCE_STATES = 64


# ---------------------------------------------------------------------------
# Count-vector codecs
# ---------------------------------------------------------------------------


def counts_from_configuration(protocol: PopulationProtocol, config: Sequence[Any]):
    """Fold a list of state objects into an ``int64`` count vector."""
    np = require_numpy()
    _require_num_states(protocol)
    encode = protocol.encode_state
    codes = np.fromiter((encode(s) for s in config), dtype=np.int64, count=len(config))
    return counts_from_codes(protocol, codes)


def counts_from_codes(protocol: PopulationProtocol, codes):
    """Fold a state-code sequence into an ``int64`` count vector."""
    np = require_numpy()
    size = _require_num_states(protocol)
    codes = np.asarray(codes, dtype=np.int64)
    if codes.size and (codes.min() < 0 or codes.max() >= size):
        raise CountsBackendError("state codes outside range(num_states)")
    return np.bincount(codes, minlength=size).astype(np.int64)


def configuration_from_counts(protocol: PopulationProtocol, counts) -> list[Any]:
    """Expand a count vector to a configuration list.

    Agents of equal state **share** one decoded object per occupied code —
    a count vector cannot tell them apart anyway.  The result is safe for
    predicates and other read-only consumers; callers that mutate states
    must clone first.
    """
    np = require_numpy()
    counts = np.asarray(counts)
    decode = protocol.decode_state
    config: list[Any] = []
    for code in np.flatnonzero(counts):
        config.extend([decode(int(code))] * int(counts[code]))
    return config


def _require_num_states(protocol: PopulationProtocol) -> int:
    size = protocol.num_states()
    if size is None:
        raise CountsBackendError(
            f"protocol '{protocol.name}' has no finite state encoding "
            "(num_states() is None), so it cannot run on the counts backend; "
            "use backend='object'"
        )
    return size


def counts_are_silent(table: TransitionTable, counts) -> bool:
    """True iff no *possible* interaction can change ``counts``.

    The counts-level form of the paper's silence notion: every ordered
    pair ``(a, b)`` of occupied codes that two distinct agents can
    realize must satisfy ``δ(a, b) = (a, b)``.  A diagonal pair
    ``(a, a)`` needs two agents in code ``a``, so single-occupancy codes
    are exempt on the diagonal — which is exactly why a one-leader
    pairwise-elimination population and a CIW permutation count as
    silent.  ``O(occupied²)`` lookups, bailing out above
    :data:`MAX_SILENCE_STATES` occupied codes (``False`` is always a
    safe answer).  Shared by :class:`CountsSimulation` and the
    trial-vectorized batch engine (:mod:`repro.sim.batch_backend`),
    which evaluates it per batch row.
    """
    np = require_numpy()
    occupied = np.flatnonzero(counts)
    if occupied.size > MAX_SILENCE_STATES:
        return False
    grid = np.ix_(occupied, occupied)
    changes = (table.u_out[grid] != occupied[:, None])
    changes |= (table.v_out[grid] != occupied[None, :])
    if not changes.any():
        return True
    # Non-inert diagonal entries are unrealizable with a single agent.
    diagonal = np.arange(occupied.size)
    changes[diagonal, diagonal] &= counts[occupied] > 1
    return not changes.any()


# ---------------------------------------------------------------------------
# Aggregate application of state-pair interactions
# ---------------------------------------------------------------------------


def apply_pair_counts(counts, initiators, responders, table: TransitionTable) -> None:
    """Apply a batch of state-pair interactions to ``counts`` in place.

    ``initiators``/``responders`` are equal-length vectors of *state
    codes* (not agent indices): entry ``k`` says one interaction happened
    between an agent in state ``initiators[k]`` and an agent in state
    ``responders[k]``.  Each interaction contributes the count delta
    ``-e[a] - e[b] + e[δu(a,b)] + e[δv(a,b)]``; deltas are additive, so
    the vectorized bincount form below is *exactly* the sum a
    pair-at-a-time loop would produce (the hypothesis property test in
    ``tests/test_counts_backend.py`` pins this down).

    The caller guarantees physical feasibility — within one collision-free
    run every interaction involves distinct agents, so the multiset of
    input states is drawn without replacement from ``counts``.
    """
    np = require_numpy()
    if initiators.shape != responders.shape:
        raise ValueError("initiator and responder vectors must have equal length")
    if initiators.size == 0:
        return
    size = table.num_states
    u_flat, v_flat = table.flat
    index = initiators * size
    index = index + responders
    outputs = np.concatenate([u_flat.take(index), v_flat.take(index)])
    counts += np.bincount(outputs, minlength=size)
    counts -= np.bincount(initiators, minlength=size)
    counts -= np.bincount(responders, minlength=size)


def apply_pairs_sequential(counts, initiators, responders, table: TransitionTable) -> None:
    """Pair-at-a-time oracle for :func:`apply_pair_counts` (tests only)."""
    size = table.num_states
    u_flat, v_flat = table.flat
    for a, b in zip(initiators.tolist(), responders.tolist()):
        index = a * size + b
        counts[a] -= 1
        counts[b] -= 1
        counts[int(u_flat[index])] += 1
        counts[int(v_flat[index])] += 1


# ---------------------------------------------------------------------------
# Counts-aware convergence predicates
# ---------------------------------------------------------------------------


class CountsAwarePredicate:
    """A configuration predicate that also carries a counts-space form.

    Calling it evaluates the configuration form (so object- and
    array-backend ``run_until`` use it unchanged); the counts backend
    spots the ``on_counts`` attribute and evaluates that instead —
    ``O(S)`` rather than ``O(n)`` per convergence check.  The optional
    ``on_counts_rows`` form answers a whole ``(T, S)`` batch of rows in
    one call (the batch engines' check path; see
    :meth:`repro.core.protocol.PopulationProtocol.goal_counts_rows`) —
    ``None`` means the batch engines fall back to per-row ``on_counts``.
    """

    __slots__ = ("on_config", "on_counts", "on_counts_rows")

    def __init__(
        self,
        on_config: ConfigPredicate,
        on_counts: Callable[[Any], bool],
        on_counts_rows: Optional[Callable[[Any], Any]] = None,
    ):
        self.on_config = on_config
        self.on_counts = on_counts
        self.on_counts_rows = on_counts_rows

    def __call__(self, config: Sequence[Any]) -> bool:
        return self.on_config(config)


def counts_aware(
    on_config: ConfigPredicate,
    on_counts: Callable[[Any], bool],
    on_counts_rows: Optional[Callable[[Any], Any]] = None,
) -> CountsAwarePredicate:
    """Bundle a config predicate with its counts-space form(s)."""
    return CountsAwarePredicate(on_config, on_counts, on_counts_rows)


def goal_counts_predicate(protocol: PopulationProtocol) -> CountsAwarePredicate:
    """The protocol's goal predicate, counts-aware on every backend."""
    return CountsAwarePredicate(
        protocol.is_goal_configuration,
        protocol.goal_counts,
        protocol.goal_counts_rows,
    )


# ---------------------------------------------------------------------------
# The counts simulation
# ---------------------------------------------------------------------------


class CountsSimulation:
    """Count-vector counterpart of :class:`repro.sim.simulation.Simulation`.

    Mirrors the common engine surface — ``run`` / ``run_batch`` /
    ``run_until`` / ``metrics`` / ``config`` / ``n`` — over an ``int64``
    count vector.  Initial state: exactly one of ``config`` (state
    objects), ``codes`` (encoded codes), ``counts`` (a ready count
    vector) or ``n`` (clean start).  All randomness comes from one PCG64
    stream seeded with ``derive_seed(seed, 0)`` (the scheduler slot of
    the shared seed-derivation scheme; table protocols are deterministic,
    so the transition slot is never consumed).

    ``batching`` selects the sampler: ``"run"`` (default) is the batched
    collision-run sampler, ``"pair"`` the pair-at-a-time oracle — same
    law, wildly different speed; tests run both and compare.

    Observers are not supported (there are no per-agent interactions to
    observe); use the object backend for instrumented runs.  Likewise
    there is no ``RecordedSchedule`` replay: a schedule names agent
    identities, which this representation deliberately forgets.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        config: Optional[Sequence[Any]] = None,
        n: Optional[int] = None,
        seed: int = 0,
        codes: Optional[Sequence[int]] = None,
        counts: Optional[Sequence[int]] = None,
        batching: str = BATCHING_RUN,
    ):
        np = require_numpy()
        if batching not in BATCHING_MODES:
            known = ", ".join(BATCHING_MODES)
            raise ValueError(f"unknown batching mode '{batching}' (known: {known})")
        self.protocol = protocol
        size = _require_num_states(protocol)
        self.table = transition_table_for(protocol)
        given = [x is not None for x in (config, codes, counts)]
        if sum(given) > 1:
            raise ValueError("provide at most one of config=, codes= and counts=")
        if counts is not None:
            self.counts = np.asarray(counts, dtype=np.int64).copy()
            if self.counts.shape != (size,):
                raise CountsBackendError(
                    f"counts must have shape ({size},), got {self.counts.shape}"
                )
            if self.counts.size and self.counts.min() < 0:
                raise CountsBackendError("counts must be non-negative")
        elif codes is not None:
            self.counts = counts_from_codes(protocol, codes)
        elif config is not None:
            self.counts = counts_from_configuration(protocol, config)
        else:
            if n is None:
                raise ValueError("provide an initial config/codes/counts or a population size n")
            # initial_state() is a nullary constructor, so a clean start
            # is n copies of one state — no O(n) encode loop needed.
            self.counts = np.zeros(size, dtype=np.int64)
            self.counts[int(protocol.encode_state(protocol.initial_state()))] = n
        self.num_states = size
        self.n = int(self.counts.sum())
        if self.n < 2:
            raise ValueError("population must have at least two agents")
        self.seed = seed
        self.batching = batching
        self._generator = np.random.Generator(np.random.PCG64(derive_seed(seed, 0)))
        self._runs = CollisionRunSampler(self.n, self._generator)
        self._codes = np.arange(size, dtype=np.int64)
        self.metrics = Metrics(n=self.n)
        self._timings: Optional[dict[str, float]] = None

    # ------------------------------------------------------------------

    @property
    def config(self) -> list[Any]:
        """The configuration as decoded state objects (shared per code)."""
        return configuration_from_counts(self.protocol, self.counts)

    def run(self, interactions: int) -> None:
        """Run a fixed number of interactions."""
        self.run_batch(interactions)

    def run_batch(self, count: int) -> None:
        """Run ``count`` interactions through the configured sampler.

        The batched sampler first runs the counts-level *silence check*
        (:meth:`configuration_is_silent`): when every interaction the
        current configuration can produce is provably a no-op — a silent
        protocol in its goal configuration, an epidemic at saturation —
        the whole batch is skipped in ``O(occupied²)`` table lookups.
        Law-exact: from such a configuration the counts trajectory is
        constant, so skipping changes nothing but the wall clock.  The
        pair-at-a-time oracle never skips (its job is to be obviously
        correct).
        """
        if count < 0:
            raise ValueError(f"interaction count must be non-negative, got {count}")
        timings = self._timings
        if self.batching == BATCHING_PAIR:
            self._run_pairwise(count)
        elif count and timings is None:
            if not self.configuration_is_silent():
                self._run_batched(count)
        elif count:
            # Instrumented twin path: same calls in the same order, with
            # the silence check accounted as 'retire'.
            start = perf_counter()
            silent = self.configuration_is_silent()
            timings["retire"] += perf_counter() - start
            if not silent:
                self._run_batched_timed(count, timings)
        self.metrics.interactions += count

    def run_until(
        self,
        predicate: ConfigPredicate,
        max_interactions: int,
        check_interval: int = 1,
    ) -> SimulationResult:
        """Run until the predicate holds or the budget is exhausted.

        Identical check discipline to the other engines: the predicate is
        evaluated before the first step and then every ``check_interval``
        interactions.  A predicate carrying an ``on_counts`` form (see
        :func:`counts_aware`) is evaluated on the count vector directly;
        a plain config predicate falls back to an expanded configuration
        per check — correct, but ``O(n)``.
        """
        if check_interval < 1:
            raise ValueError("check_interval must be positive")
        if self.predicate_holds(predicate):
            return self._result(converged=True)
        remaining = max_interactions
        while remaining > 0:
            burst = min(check_interval, remaining)
            self.run_batch(burst)
            remaining -= burst
            if self.predicate_holds(predicate):
                return self._result(converged=True)
        return self._result(converged=False)

    def predicate_holds(self, predicate: ConfigPredicate) -> bool:
        """Evaluate a predicate in this backend's cheapest form.

        Counts-aware predicates read the count vector directly (``O(S)``);
        plain config predicates get an expanded configuration per call —
        correct, but ``O(n)``.
        """
        timings = self._timings
        start = perf_counter() if timings is not None else 0.0
        on_counts = getattr(predicate, "on_counts", None)
        if on_counts is not None:
            held = bool(on_counts(self.counts))
        else:
            held = bool(predicate(configuration_from_counts(self.protocol, self.counts)))
        if timings is not None:
            timings["retire"] += perf_counter() - start
        return held

    def instrument_steps(self) -> dict[str, float]:
        """Switch on per-phase wall-clock accounting (common engine surface).

        Returns the live accumulator over :data:`repro.obs.STEP_PHASES`:
        ``draw`` (run lengths + hypergeometric composition), ``match``
        (repeat + shuffle pairing), ``apply`` (aggregate delta +
        collision interaction), ``retire`` (silence + predicate checks).
        The instrumented sampler (:meth:`_run_batched_timed`) issues the
        identical generator calls in the identical order — only the
        monotonic clock is read between sections, so traced and untraced
        runs stay bit-identical.
        """
        if self._timings is None:
            self._timings = {phase: 0.0 for phase in STEP_PHASES}
        return self._timings

    @property
    def step_timings(self) -> Optional[dict[str, float]]:
        """The accumulator from :meth:`instrument_steps` (``None`` when off)."""
        return self._timings

    def apply_fault(self, model, burst_size: int, generator) -> None:
        """Inject one fault burst (common engine surface).

        ``model`` is a :class:`repro.sim.fault_engine.FaultModel`; on this
        backend its ``O(S)`` aggregate applier moves ``burst_size`` agents'
        worth of state mass on the count vector via a multivariate-
        hypergeometric victim draw — no per-agent work at any ``n``.
        """
        model.apply_counts(self.protocol, self.counts, burst_size, generator)

    def configuration_is_silent(self) -> bool:
        """True iff no *possible* interaction can change the counts.

        See :func:`counts_are_silent` for the law (and the
        single-occupancy diagonal exemption).
        """
        return counts_are_silent(self.table, self.counts)

    # ------------------------------------------------------------------
    # The batched collision-run sampler
    # ------------------------------------------------------------------

    def _run_batched(self, count: int) -> None:
        """``count`` interactions as collision-free runs + collision steps.

        Each loop iteration is one (possibly budget-truncated) run: draw
        its length from the birthday law, draw the ``2k`` distinct
        agents' states by multivariate hypergeometric, pair them with a
        shuffle, apply the aggregate delta, then — if the budget allows —
        apply the colliding ``(L+1)``-th interaction individually.
        Truncating a run at the batch boundary and restarting fresh next
        call is exact (see the module docstring).

        The body is the engine's hot loop — ``Θ(√n)`` interactions per
        iteration means tens of thousands of iterations per ``n·log n``
        workload — so the draw/apply kernels are inlined against hoisted
        locals and ndarray *methods* (``.repeat``/``.take``), skipping
        the ``numpy.*`` wrapper dispatch that would otherwise rival the
        kernels themselves.  Draw order matches :func:`apply_pair_counts`
        exactly; the aggregate delta differs only in folding the two
        input-side bincounts into one over the interleaved draw.
        """
        np = require_numpy()
        rng = self._generator
        counts = self.counts
        codes = self._codes
        size = self.num_states
        u_flat, v_flat = self.table.flat
        bincount = np.bincount
        concatenate = np.concatenate
        draw_sample = rng.multivariate_hypergeometric
        shuffle = rng.shuffle
        next_run_length = self._runs.next_run_length
        remaining = count
        while remaining > 0:
            length = next_run_length()
            k = min(length, remaining)
            collide = remaining > k and k == length
            if k:
                sample = draw_sample(counts, 2 * k)
                drawn = codes.repeat(sample)
                shuffle(drawn)
                if collide:
                    avail = counts - sample  # pre-run states of unused agents
                index = drawn[0::2] * size
                index += drawn[1::2]
                outputs = concatenate((u_flat.take(index), v_flat.take(index)))
                counts += bincount(outputs, minlength=size)
                counts -= bincount(drawn, minlength=size)
                remaining -= k
            if collide:
                self._collision_interaction(avail)
                remaining -= 1

    def _run_batched_timed(self, count: int, timings: dict) -> None:
        """Instrumented twin of :meth:`_run_batched`.

        Byte-for-byte the same generator calls in the same order — the
        only additions are :func:`repro.obs.perf_counter` reads between
        the draw / match / apply sections, so an instrumented run's
        trajectory is bit-identical to an uninstrumented one.  Kept as a
        twin so the uninstrumented hot loop pays nothing.
        """
        np = require_numpy()
        counts = self.counts
        codes = self._codes
        size = self.num_states
        u_flat, v_flat = self.table.flat
        bincount = np.bincount
        concatenate = np.concatenate
        draw_sample = self._generator.multivariate_hypergeometric
        shuffle = self._generator.shuffle
        next_run_length = self._runs.next_run_length
        remaining = count
        while remaining > 0:
            start = perf_counter()
            length = next_run_length()
            k = min(length, remaining)
            collide = remaining > k and k == length
            if k:
                sample = draw_sample(counts, 2 * k)
                drawn_at = perf_counter()
                timings["draw"] += drawn_at - start
                drawn = codes.repeat(sample)
                shuffle(drawn)
                if collide:
                    avail = counts - sample
                matched_at = perf_counter()
                timings["match"] += matched_at - drawn_at
                index = drawn[0::2] * size
                index += drawn[1::2]
                outputs = concatenate((u_flat.take(index), v_flat.take(index)))
                counts += bincount(outputs, minlength=size)
                counts -= bincount(drawn, minlength=size)
                remaining -= k
                timings["apply"] += perf_counter() - matched_at
            else:
                timings["draw"] += perf_counter() - start
            if collide:
                collided_at = perf_counter()
                self._collision_interaction(avail)
                remaining -= 1
                timings["apply"] += perf_counter() - collided_at

    def _collision_interaction(self, avail) -> None:
        """One interaction conditioned on touching an already-used agent.

        ``avail`` holds the states of the agents the current run has not
        touched; ``counts - avail`` is the (post-interaction) state
        multiset of the used agents.  The colliding ordered pair is
        uniform over pairs with at least one used member: categories
        (used, used), (used, unused), (unused, used) with weights
        ``U(U-1)``, ``U·A``, ``A·U`` — which sum to
        ``n(n-1) - A(A-1)``, the number of qualifying pairs.
        """
        rng = self._generator
        counts = self.counts
        used = counts - avail
        used_total = int(used.sum())
        avail_total = self.n - used_total
        w_uu = used_total * (used_total - 1)
        w_ua = used_total * avail_total
        x = rng.random() * (w_uu + 2 * w_ua)
        if x < w_uu:
            a = self._draw_state(used, used_total)
            used[a] -= 1
            b = self._draw_state(used, used_total - 1)
            used[a] += 1
        elif x < w_uu + w_ua:
            a = self._draw_state(used, used_total)
            b = self._draw_state(avail, avail_total)
        else:
            a = self._draw_state(avail, avail_total)
            b = self._draw_state(used, used_total)
        self._apply_one(a, b)

    def _draw_state(self, pool, total: int) -> int:
        """The state of one agent drawn uniformly from a count-vector pool."""
        x = int(self._generator.integers(0, total))
        # ndarray methods, not numpy.* wrappers: this runs twice per
        # collision interaction, i.e. once per Θ(√n) simulated steps.
        return int(pool.cumsum().searchsorted(x, side="right"))

    def _apply_one(self, a: int, b: int) -> None:
        counts = self.counts
        out_u, out_v = self.table.lookup(a, b)
        counts[a] -= 1
        counts[b] -= 1
        counts[out_u] += 1
        counts[out_v] += 1

    # ------------------------------------------------------------------
    # The pair-at-a-time oracle
    # ------------------------------------------------------------------

    def _run_pairwise(self, count: int) -> None:
        """Exact sequential sampling over counts (the gating oracle).

        Per interaction: the initiator's state is drawn uniformly over
        all ``n`` agents (i.e. from ``counts``), the responder's over the
        remaining ``n - 1``, and the pair is applied immediately.  Scalar
        and slow — its job is to be obviously correct.
        """
        counts = self.counts
        for _ in range(count):
            a = self._draw_state(counts, self.n)
            counts[a] -= 1  # the responder is one of the other n-1 agents
            b = self._draw_state(counts, self.n - 1)
            counts[a] += 1
            self._apply_one(a, b)

    # ------------------------------------------------------------------

    def _result(self, converged: bool) -> SimulationResult:
        return SimulationResult(
            converged=converged,
            interactions=self.metrics.interactions,
            parallel_time=self.metrics.parallel_time,
            metrics=self.metrics,
            config=self.config,
        )

"""The execution-backend registry — one place that knows every engine.

Three engines run ``Simulation``-shaped workloads today:

* ``object`` — the per-interaction reference engine
  (:class:`repro.sim.simulation.Simulation`): state objects, Python
  dispatch, observers, fault injection.  Runs every protocol.
* ``array``  — the vectorized per-agent engine
  (:class:`repro.sim.array_backend.ArraySimulation`): ``int64`` state
  codes per agent, dense transition tables, block pair application.
  Finite-state protocols only.
* ``counts`` — the count-vector engine
  (:class:`repro.sim.counts_backend.CountsSimulation`): the whole
  population is an ``S``-length count vector; interactions are sampled in
  law-exact collision-free runs and applied as aggregate count deltas.
  Finite-state protocols only, and the engine of choice once only
  aggregate statistics matter (n ≥ 10⁶ stabilization curves).

Every dispatch site in the repository — :func:`make_simulation`,
:func:`repro.sim.simulation.run_until`, :func:`repro.sim.trials
.run_trials`, :class:`repro.sim.sweep.GridSpec`, the ``repro sweep
--backend`` CLI choices — derives from this registry; none of them name a
backend in an ``if``/``elif`` chain.  Adding a fourth engine is therefore
one new module that calls :func:`register_backend` (plus its
registration line below), and every entry point picks it up.

**The registry contract.**  A :class:`Backend` bundles:

* ``name`` — the string users pass as ``backend=`` / ``--backend``;
* ``factory(protocol, *, config, n, seed, codes, counts)`` — builds a
  simulation exposing the common engine surface (``run`` / ``run_batch``
  / ``run_until`` / ``predicate_holds`` / ``apply_fault`` / ``metrics`` /
  ``config`` / ``n``).  ``codes`` is an optional encoded initial
  configuration (a sequence of state codes, the common currency of the
  vectorized adversary initializers) and ``counts`` its ``O(S)``
  count-vector sibling (the currency of the ``*_counts`` adversary
  twins); factories translate either to their native representation;
* ``counts_native`` — ``True`` when the engine's native configuration IS
  a count vector, so callers holding both forms of an initial
  configuration (e.g. an adversary with ``codes`` and ``counts`` twins)
  can hand over the ``O(S)`` one without naming the backend;
* ``supports(protocol)`` — ``None`` when the engine can run the protocol,
  else a human-readable reason (used by :class:`~repro.sim.sweep
  .GridSpec` validation and by callers that want to fail before spawning
  workers).  ``supports`` is a cheap *capability* check — engines may
  still raise at construction time for resource-level problems it cannot
  see (e.g. a transition table that only blows the size cap at the
  sweep's largest ``n``);
* ``description`` — one line for ``--help`` and error messages.

**Resolution happens once.**  :func:`resolve_backend` applies the
``None`` → ``$REPRO_BENCH_BACKEND`` → ``object`` defaulting rule and is
called once, at the outermost entry point (``run_trials``, the sweep
CLI).  Everything downstream carries the resolved name and uses
:func:`get_backend` — a pure dictionary lookup that never consults the
environment — so worker processes can never disagree with their parent
about which engine runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.core.protocol import PopulationProtocol

#: Environment variable naming the default backend (see resolve_backend).
BACKEND_ENV = "REPRO_BENCH_BACKEND"

#: Canonical backend names.  These are ordinary registry keys — nothing
#: dispatches on them — kept as constants so call sites that *pin* an
#: engine (e.g. the object-only ``tradeoff`` CLI command) spell it
#: consistently.
BACKEND_OBJECT = "object"
BACKEND_ARRAY = "array"
BACKEND_COUNTS = "counts"

#: The engine used when neither the caller nor the environment names one.
DEFAULT_BACKEND = BACKEND_OBJECT

#: Factory signature: ``factory(protocol, config=, n=, seed=, codes=, counts=)``.
SimulationFactory = Callable[..., Any]

#: Capability check: ``None`` = supported, else the reason it is not.
SupportsCheck = Callable[[PopulationProtocol], Optional[str]]


@dataclass(frozen=True)
class Backend:
    """One registered execution engine (see the module docstring)."""

    name: str
    factory: SimulationFactory
    supports: SupportsCheck
    description: str = ""
    #: True when the engine's native configuration is a count vector.
    counts_native: bool = False

    def require(self, protocol: PopulationProtocol) -> None:
        """Raise ``ValueError`` unless this engine can run ``protocol``."""
        reason = self.supports(protocol)
        if reason is not None:
            raise ValueError(
                f"protocol '{protocol.name}' cannot run on the "
                f"'{self.name}' backend: {reason}"
            )


#: Name → Backend, in registration order (object first, so iteration and
#: therefore CLI choices list the default engine first).
_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend, *, replace: bool = False) -> Backend:
    """Add an engine to the registry (the one-file-change extension point).

    Registering a name twice is an error unless ``replace=True`` —
    accidental shadowing of a built-in engine should be loud.
    """
    if not backend.name or not backend.name.isidentifier():
        raise ValueError(f"backend name must be a simple identifier, got {backend.name!r}")
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"backend '{backend.name}' is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def backend_names() -> tuple[str, ...]:
    """All registered engine names, default engine first."""
    return tuple(_REGISTRY)


def get_backend(name: str) -> Backend:
    """Pure lookup of a *resolved* backend name (never reads the env)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(backend_names())
        raise ValueError(f"unknown backend '{name}' (known: {known})") from None


def resolve_backend(backend: Optional[str]) -> str:
    """Normalize a backend request: ``None`` → ``$REPRO_BENCH_BACKEND`` → default.

    The environment variable gives benchmarks and the CLI a process-wide
    default without threading a flag through every call site; an explicit
    ``backend=`` argument always wins.  Call this once at the entry point
    and pass the resolved name down (:func:`get_backend` from there on).
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV, "") or DEFAULT_BACKEND
    return get_backend(backend).name


def supports_backend(protocol: PopulationProtocol, backend: str) -> Optional[str]:
    """``None`` if ``backend`` can run ``protocol``, else the reason not."""
    return get_backend(backend).supports(protocol)


def make_simulation(
    protocol: PopulationProtocol,
    *,
    config: Optional[list[Any]] = None,
    n: Optional[int] = None,
    seed: int = 0,
    backend: Optional[str] = None,
    codes: Optional[Sequence[int]] = None,
    counts: Optional[Sequence[int]] = None,
):
    """Build a simulation on the requested execution backend.

    Exactly one of ``config`` (state objects), ``codes`` (encoded state
    codes), ``counts`` (an ``S``-length count vector) or ``n`` (clean
    start) describes the initial configuration.  ``backend=None``
    resolves the environment default; a non-``None`` name is treated as
    already resolved and looked up directly.
    """
    if sum(x is not None for x in (config, codes, counts)) > 1:
        raise ValueError("provide at most one of config=, codes= and counts=")
    entry = get_backend(backend if backend is not None else resolve_backend(None))
    return entry.factory(protocol, config=config, n=n, seed=seed, codes=codes, counts=counts)


# ---------------------------------------------------------------------------
# Built-in engine registrations
# ---------------------------------------------------------------------------
#
# Factories import their engine modules lazily: the object engine must
# stay importable without numpy, and the vectorized engines already
# import-guard numpy themselves and raise a clear error at use time.


def _decode_codes(protocol: PopulationProtocol, codes: Sequence[int]) -> list[Any]:
    """Decode a state-code sequence to fresh state objects (numpy-free).

    Range-checked against ``num_states()`` so invalid codes fail loudly
    here exactly as they do on the vectorized engines — the reference
    engine must not silently run what the others reject.
    """
    size = protocol.num_states()
    decode = protocol.decode_state
    config = []
    for code in codes:
        code = int(code)
        if size is not None and not 0 <= code < size:
            raise ValueError(f"state code {code} outside range({size})")
        config.append(decode(code))
    return config


def _expand_counts(protocol: PopulationProtocol, counts: Sequence[int]) -> list[Any]:
    """Expand a count vector to *fresh* state objects (numpy-free).

    Every agent gets its own decoded object — the object engine mutates
    states in place, so the shared-object expansion the counts backend
    uses for read-only predicates would alias agents together here.
    """
    size = protocol.num_states()
    values = [int(count) for count in counts]
    if size is None or len(values) != size:
        raise ValueError(
            f"counts must have length num_states()={size}, got {len(values)}"
        )
    config: list[Any] = []
    for code, count in enumerate(values):
        if count < 0:
            raise ValueError("counts must be non-negative")
        for _ in range(count):
            config.append(protocol.decode_state(code))
    return config


def _object_factory(protocol, *, config=None, n=None, seed=0, codes=None, counts=None):
    from repro.sim.simulation import Simulation

    if counts is not None:
        config = _expand_counts(protocol, counts)
    elif codes is not None:
        config = _decode_codes(protocol, codes)
    return Simulation(protocol, config=config, n=n, seed=seed)


def _object_supports(protocol: PopulationProtocol) -> Optional[str]:
    return None  # the reference engine runs everything


def _finite_state_supports(protocol: PopulationProtocol) -> Optional[str]:
    """Shared capability check of the table-driven engines."""
    from repro.sim.array_backend import MAX_TABLE_ENTRIES

    size = protocol.num_states()
    if size is None:
        return (
            "it has no finite state encoding (num_states() is None); "
            f"use backend='{BACKEND_OBJECT}'"
        )
    if size * size > MAX_TABLE_ENTRIES:
        return (
            f"its {size}x{size} transition table exceeds the "
            f"{MAX_TABLE_ENTRIES}-entry cap"
        )
    return None


def _array_factory(protocol, *, config=None, n=None, seed=0, codes=None, counts=None):
    from repro.sim.array_backend import ArraySimulation, require_numpy

    if counts is not None:
        np = require_numpy()
        vector = np.asarray(counts, dtype=np.int64)
        size = protocol.num_states()
        if size is None or vector.shape != (size,):
            raise ValueError(
                f"counts must have shape (num_states()={size},), got {vector.shape}"
            )
        codes = np.repeat(np.arange(size, dtype=np.int64), vector)
    return ArraySimulation(protocol, config=config, n=n, seed=seed, codes=codes)


def _counts_factory(protocol, *, config=None, n=None, seed=0, codes=None, counts=None):
    from repro.sim.counts_backend import CountsSimulation

    return CountsSimulation(protocol, config=config, n=n, seed=seed, codes=codes, counts=counts)


register_backend(
    Backend(
        name=BACKEND_OBJECT,
        factory=_object_factory,
        supports=_object_supports,
        description="per-interaction state objects (every protocol; observers, faults)",
    )
)
register_backend(
    Backend(
        name=BACKEND_ARRAY,
        factory=_array_factory,
        supports=_finite_state_supports,
        description="vectorized per-agent state-code array (finite-state protocols)",
    )
)
register_backend(
    Backend(
        name=BACKEND_COUNTS,
        factory=_counts_factory,
        supports=_finite_state_supports,
        description="count-vector over state codes (finite-state protocols, aggregate statistics)",
        counts_native=True,
    )
)
